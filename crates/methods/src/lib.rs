//! # bnm-methods — the browser-based RTT measurement methods
//!
//! The paper's Table 1 taxonomises eleven methods (seven HTTP-based,
//! four socket-based); ten are evaluated (Java UDP is excluded from the
//! paper's own runs "to make the comparison more comparable" — we keep it
//! as an extension). This crate gives each method a first-class identity
//! ([`MethodId`]), builds executable [`ProbePlan`](bnm_browser::ProbePlan)s for them, and
//! regenerates the paper's Table 1 and Table 2 from the same data the
//! simulation runs on.

pub mod method;
pub mod registry;

pub use method::MethodId;
pub use registry::{table1_rows, table2_rows, Table1Row, Table2Row};
