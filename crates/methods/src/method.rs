//! Method identities and plan construction.

use std::fmt;

use bnm_browser::{BrowserProfile, ProbePlan, ProbeTransport, Technology};
use bnm_time::TimingApiKind;

/// The measurement methods of the paper's Table 1.
///
/// Ordering matches the paper's Figure 3 panels (a)–(j); [`MethodId::JavaUdp`]
/// is the Table 1 row the paper lists but does not run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MethodId {
    /// (a) XHR GET — native JavaScript `XMLHttpRequest`.
    XhrGet,
    /// (b) XHR POST.
    XhrPost,
    /// (c) DOM — `<script>`/`<img>` element insertion with `onload`.
    Dom,
    /// (d) WebSocket — native message echo.
    WebSocket,
    /// (e) Flash GET — ActionScript `URLLoader`.
    FlashGet,
    /// (f) Flash POST.
    FlashPost,
    /// (g) Flash TCP socket — ActionScript `Socket`.
    FlashTcp,
    /// (h) Java applet GET — `java.net.URL`.
    JavaGet,
    /// (i) Java applet POST.
    JavaPost,
    /// (j) Java applet TCP socket — `java.net.Socket`.
    JavaTcp,
    /// Java applet UDP socket — `DatagramSocket` (Table 1 row, not run by
    /// the paper; implemented here as an extension).
    JavaUdp,
    /// WebRTC data channel — unreliable/unordered datagrams
    /// (`maxRetransmits: 0`), a post-paper extension: the only method
    /// family that exposes per-probe one-way delay, jitter, loss and
    /// reordering instead of a TCP-smoothed RTT.
    WebRtc,
}

impl MethodId {
    /// The ten methods the paper evaluates, in Figure 3 panel order.
    pub const FIGURE3: [MethodId; 10] = [
        MethodId::XhrGet,
        MethodId::XhrPost,
        MethodId::Dom,
        MethodId::WebSocket,
        MethodId::FlashGet,
        MethodId::FlashPost,
        MethodId::FlashTcp,
        MethodId::JavaGet,
        MethodId::JavaPost,
        MethodId::JavaTcp,
    ];

    /// All methods including the UDP extension.
    pub const ALL: [MethodId; 11] = [
        MethodId::XhrGet,
        MethodId::XhrPost,
        MethodId::Dom,
        MethodId::WebSocket,
        MethodId::FlashGet,
        MethodId::FlashPost,
        MethodId::FlashTcp,
        MethodId::JavaGet,
        MethodId::JavaPost,
        MethodId::JavaTcp,
        MethodId::JavaUdp,
    ];

    /// Every method including post-paper extensions (the WebRTC data
    /// channel). [`MethodId::ALL`] keeps the Table 1 set intact; CLI
    /// lookups and sweeps that accept extensions iterate this instead.
    pub const EXTENDED: [MethodId; 12] = [
        MethodId::XhrGet,
        MethodId::XhrPost,
        MethodId::Dom,
        MethodId::WebSocket,
        MethodId::FlashGet,
        MethodId::FlashPost,
        MethodId::FlashTcp,
        MethodId::JavaGet,
        MethodId::JavaPost,
        MethodId::JavaTcp,
        MethodId::JavaUdp,
        MethodId::WebRtc,
    ];

    /// Probes per repetition for the WebRTC train (legacy methods run 2
    /// rounds; a datagram method needs a train for loss/reordering to be
    /// observable per repetition).
    pub const WEBRTC_TRAIN_LEN: u8 = 16;

    /// The three Java-applet methods of Table 4.
    pub const JAVA: [MethodId; 3] = [MethodId::JavaGet, MethodId::JavaPost, MethodId::JavaTcp];

    /// Short machine label (used in probe markers, CSV columns).
    pub fn label(self) -> &'static str {
        match self {
            MethodId::XhrGet => "xhr_get",
            MethodId::XhrPost => "xhr_post",
            MethodId::Dom => "dom",
            MethodId::WebSocket => "websocket",
            MethodId::FlashGet => "flash_get",
            MethodId::FlashPost => "flash_post",
            MethodId::FlashTcp => "flash_tcp",
            MethodId::JavaGet => "java_get",
            MethodId::JavaPost => "java_post",
            MethodId::JavaTcp => "java_tcp",
            MethodId::JavaUdp => "java_udp",
            MethodId::WebRtc => "webrtc",
        }
    }

    /// Human-readable name as the figures caption it.
    pub fn display_name(self) -> &'static str {
        match self {
            MethodId::XhrGet => "XHR GET",
            MethodId::XhrPost => "XHR POST",
            MethodId::Dom => "DOM",
            MethodId::WebSocket => "WebSocket",
            MethodId::FlashGet => "Flash GET",
            MethodId::FlashPost => "Flash POST",
            MethodId::FlashTcp => "Flash TCP socket",
            MethodId::JavaGet => "Java applet GET",
            MethodId::JavaPost => "Java applet POST",
            MethodId::JavaTcp => "Java applet TCP socket",
            MethodId::JavaUdp => "Java applet UDP socket",
            MethodId::WebRtc => "WebRTC data channel",
        }
    }

    /// Figure 3 panel letter, if the paper plots this method.
    pub fn figure3_panel(self) -> Option<char> {
        Self::FIGURE3
            .iter()
            .position(|m| *m == self)
            .map(|i| (b'a' + i as u8) as char)
    }

    /// Implementation technology (Table 1).
    pub fn technology(self) -> Technology {
        match self {
            MethodId::XhrGet
            | MethodId::XhrPost
            | MethodId::Dom
            | MethodId::WebSocket
            | MethodId::WebRtc => Technology::Native,
            MethodId::FlashGet | MethodId::FlashPost | MethodId::FlashTcp => Technology::Flash,
            MethodId::JavaGet | MethodId::JavaPost | MethodId::JavaTcp | MethodId::JavaUdp => {
                Technology::JavaApplet
            }
        }
    }

    /// Probe transport.
    pub fn transport(self) -> ProbeTransport {
        match self {
            MethodId::XhrGet | MethodId::Dom | MethodId::FlashGet | MethodId::JavaGet => {
                ProbeTransport::HttpGet
            }
            MethodId::XhrPost | MethodId::FlashPost | MethodId::JavaPost => {
                ProbeTransport::HttpPost
            }
            MethodId::FlashTcp | MethodId::JavaTcp => ProbeTransport::TcpEcho,
            MethodId::JavaUdp => ProbeTransport::UdpEcho,
            MethodId::WebSocket => ProbeTransport::WebSocketEcho,
            MethodId::WebRtc => ProbeTransport::WebRtcData,
        }
    }

    /// HTTP-based (vs socket-based), the paper's primary split.
    pub fn is_http_based(self) -> bool {
        self.transport().is_http()
    }

    /// Unreliable-datagram transport: probes are sequence-numbered,
    /// losses are a measured statistic rather than an exclusion, and the
    /// runner appraises each probe individually from both taps.
    pub fn is_datagram(self) -> bool {
        matches!(self.transport(), ProbeTransport::WebRtcData)
    }

    /// The timing API the method's real-world implementations use
    /// (Table 1-era defaults: `Date.getTime()` everywhere).
    pub fn default_timing(self) -> TimingApiKind {
        match self.technology() {
            Technology::Native => TimingApiKind::JsDateGetTime,
            Technology::Flash => TimingApiKind::FlashGetTime,
            Technology::JavaApplet => TimingApiKind::JavaDateGetTime,
        }
    }

    /// Is the method subject to the same-origin policy by default
    /// (Table 1), and can that be bypassed?
    pub fn same_origin(self) -> SameOrigin {
        match self {
            MethodId::XhrGet | MethodId::XhrPost => SameOrigin::Restricted,
            MethodId::Dom => SameOrigin::Unrestricted,
            MethodId::FlashGet | MethodId::FlashPost | MethodId::FlashTcp => {
                SameOrigin::Bypassable // Flash cross-domain policy file
            }
            MethodId::JavaGet | MethodId::JavaPost => SameOrigin::Bypassable, // signed applet
            MethodId::JavaTcp | MethodId::JavaUdp => SameOrigin::Unrestricted,
            MethodId::WebSocket | MethodId::WebRtc => SameOrigin::Unrestricted,
        }
    }

    /// Whether a runtime profile can execute this method (plug-in and
    /// WebSocket availability).
    pub fn available_in(self, profile: &BrowserProfile) -> bool {
        // WebSocket support doubles as the era proxy for WebRTC: both
        // need a post-2011 native engine.
        if self == MethodId::WebSocket || self == MethodId::WebRtc {
            return profile.supports_websocket;
        }
        match profile.runtime {
            bnm_browser::Runtime::AppletViewer => self.technology() == Technology::JavaApplet,
            // No plug-ins on mobile platforms (§2.1).
            bnm_browser::Runtime::MobileWebKit => self.technology() == Technology::Native,
            bnm_browser::Runtime::Browser(_) => true,
        }
    }

    /// Build the executable plan, optionally overriding the timing API
    /// (the paper's Table 4 swaps Java methods to `System.nanoTime()`).
    pub fn plan(self, timing_override: Option<TimingApiKind>) -> ProbePlan {
        let mut plan = ProbePlan::new(
            self.label(),
            self.technology(),
            self.transport(),
            timing_override.unwrap_or_else(|| self.default_timing()),
        );
        if self == MethodId::WebRtc {
            plan.rounds = Self::WEBRTC_TRAIN_LEN;
        }
        plan
    }

    /// Path-quality metrics the method can measure (Table 1 column).
    pub fn metrics(self) -> &'static str {
        match self {
            MethodId::JavaUdp => "RTT, Tput, Loss",
            MethodId::WebRtc => "OWD, Jitter, Loss, Reordering",
            _ => "RTT, Tput",
        }
    }

    /// Representative tools/services using the method (Table 1 column).
    pub fn tools(self) -> &'static str {
        match self {
            MethodId::XhrGet | MethodId::XhrPost => "Speedof.me, BandwidthPlace, Janc's methods",
            MethodId::Dom => "Janc's methods, BandwidthPlace, Wang's method",
            MethodId::FlashGet | MethodId::FlashPost => {
                "Speedtest.net, AuditMyPC, Speedchecker, Bandwidth Meter, InternetFrog"
            }
            MethodId::FlashTcp => "Speedtest.net",
            MethodId::WebSocket
            | MethodId::JavaGet
            | MethodId::JavaPost
            | MethodId::JavaTcp
            | MethodId::JavaUdp => "Netalyzr, HMN, JavaNws, Pingtest, NDT, AuditMyPC",
            MethodId::WebRtc => "WebRTC-based probes (Nakagawa's tool, MopEye-style apps)",
        }
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

/// Table 1's same-origin column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SameOrigin {
    /// Subject to the policy, no standard bypass.
    Restricted,
    /// Subject by default, but bypassable (Flash cross-domain policy,
    /// signed Java applets).
    Bypassable,
    /// Not subject to the policy.
    Unrestricted,
}

impl SameOrigin {
    /// Table cell text matching the paper.
    pub fn cell(self) -> &'static str {
        match self {
            SameOrigin::Restricted => "Yes",
            SameOrigin::Bypassable => "Yes*",
            SameOrigin::Unrestricted => "No",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnm_browser::BrowserKind;
    use bnm_time::OsKind;

    #[test]
    fn ten_figure3_methods_in_panel_order() {
        assert_eq!(MethodId::FIGURE3.len(), 10);
        assert_eq!(MethodId::XhrGet.figure3_panel(), Some('a'));
        assert_eq!(MethodId::WebSocket.figure3_panel(), Some('d'));
        assert_eq!(MethodId::FlashTcp.figure3_panel(), Some('g'));
        assert_eq!(MethodId::JavaTcp.figure3_panel(), Some('j'));
        assert_eq!(MethodId::JavaUdp.figure3_panel(), None);
    }

    #[test]
    fn http_socket_split_matches_table1() {
        let http: Vec<_> = MethodId::ALL.iter().filter(|m| m.is_http_based()).collect();
        let socket: Vec<_> = MethodId::ALL
            .iter()
            .filter(|m| !m.is_http_based())
            .collect();
        assert_eq!(http.len(), 7);
        assert_eq!(socket.len(), 4);
    }

    #[test]
    fn plans_are_valid_table1_combinations() {
        for m in MethodId::ALL {
            let p = m.plan(None);
            assert!(p.is_table1_combination(), "{m}");
            assert_eq!(p.label, m.label());
        }
    }

    #[test]
    fn timing_override_applies() {
        let p = MethodId::JavaTcp.plan(Some(TimingApiKind::JavaNanoTime));
        assert_eq!(p.timing, TimingApiKind::JavaNanoTime);
        let d = MethodId::JavaTcp.plan(None);
        assert_eq!(d.timing, TimingApiKind::JavaDateGetTime);
    }

    #[test]
    fn default_timing_follows_technology() {
        assert_eq!(
            MethodId::XhrGet.default_timing(),
            TimingApiKind::JsDateGetTime
        );
        assert_eq!(
            MethodId::FlashTcp.default_timing(),
            TimingApiKind::FlashGetTime
        );
        assert_eq!(
            MethodId::JavaPost.default_timing(),
            TimingApiKind::JavaDateGetTime
        );
    }

    #[test]
    fn websocket_unavailable_in_ie_and_safari() {
        let ie = BrowserProfile::build(BrowserKind::Ie9, OsKind::Windows7).unwrap();
        let safari = BrowserProfile::build(BrowserKind::Safari, OsKind::Windows7).unwrap();
        let chrome = BrowserProfile::build(BrowserKind::Chrome, OsKind::Windows7).unwrap();
        assert!(!MethodId::WebSocket.available_in(&ie));
        assert!(!MethodId::WebSocket.available_in(&safari));
        assert!(MethodId::WebSocket.available_in(&chrome));
        assert!(MethodId::XhrGet.available_in(&ie));
    }

    #[test]
    fn appletviewer_runs_only_java_methods() {
        let av = BrowserProfile::appletviewer(OsKind::Windows7);
        assert!(MethodId::JavaTcp.available_in(&av));
        assert!(MethodId::JavaGet.available_in(&av));
        assert!(!MethodId::XhrGet.available_in(&av));
        assert!(!MethodId::FlashTcp.available_in(&av));
        assert!(!MethodId::WebSocket.available_in(&av));
    }

    #[test]
    fn same_origin_column() {
        assert_eq!(MethodId::XhrGet.same_origin().cell(), "Yes");
        assert_eq!(MethodId::Dom.same_origin().cell(), "No");
        assert_eq!(MethodId::FlashGet.same_origin().cell(), "Yes*");
        assert_eq!(MethodId::WebSocket.same_origin().cell(), "No");
        assert_eq!(MethodId::JavaTcp.same_origin().cell(), "No");
    }

    #[test]
    fn udp_measures_loss() {
        assert!(MethodId::JavaUdp.metrics().contains("Loss"));
        assert!(!MethodId::JavaTcp.metrics().contains("Loss"));
    }

    #[test]
    fn webrtc_is_an_extension_outside_table1() {
        // The Table 1 sets stay untouched; EXTENDED = ALL + WebRtc.
        assert!(!MethodId::ALL.contains(&MethodId::WebRtc));
        assert_eq!(MethodId::EXTENDED.len(), MethodId::ALL.len() + 1);
        assert_eq!(MethodId::EXTENDED[..11], MethodId::ALL);
        assert_eq!(MethodId::WebRtc.figure3_panel(), None);
        let p = MethodId::WebRtc.plan(None);
        assert_eq!(p.rounds, MethodId::WEBRTC_TRAIN_LEN);
        assert!(!p.transport.is_http());
        assert!(MethodId::WebRtc.metrics().contains("Reordering"));
    }

    #[test]
    fn webrtc_needs_a_modern_engine() {
        let ie = BrowserProfile::build(BrowserKind::Ie9, OsKind::Windows7).unwrap();
        let chrome = BrowserProfile::build(BrowserKind::Chrome, OsKind::Windows7).unwrap();
        assert!(!MethodId::WebRtc.available_in(&ie));
        assert!(MethodId::WebRtc.available_in(&chrome));
    }
}
