//! Regenerators for the paper's Table 1 and Table 2.

use bnm_browser::{BrowserKind, Technology};
use bnm_time::OsKind;

use crate::method::MethodId;

/// One row of Table 1 ("A summary of the browser-based network
/// measurement methods and tools").
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// "HTTP-based" or "Socket-based".
    pub approach: &'static str,
    /// Technology column (XHR / DOM / Flash / Java applet / WebSocket).
    pub technology: &'static str,
    /// "Native" or "Plug-in".
    pub availability: &'static str,
    /// Methods column (GET / POST / TCP / UDP).
    pub method: &'static str,
    /// Same-origin column ("Yes" / "Yes*" / "No").
    pub same_origin: &'static str,
    /// Measured path-quality metrics.
    pub metrics: &'static str,
    /// Tools / services.
    pub tools: &'static str,
    /// Back-reference to the method id.
    pub id: MethodId,
}

/// Technology cell for a method, matching Table 1's grouping (XHR and
/// DOM are distinct rows even though both are native).
fn technology_cell(id: MethodId) -> &'static str {
    match id {
        MethodId::XhrGet | MethodId::XhrPost => "XHR",
        MethodId::Dom => "DOM",
        MethodId::WebSocket => "WebSocket",
        MethodId::FlashGet | MethodId::FlashPost | MethodId::FlashTcp => "Flash",
        MethodId::JavaGet | MethodId::JavaPost | MethodId::JavaTcp | MethodId::JavaUdp => {
            "Java applet"
        }
        // Not a Table 1 row; the cell exists for extension listings.
        MethodId::WebRtc => "WebRTC",
    }
}

/// Generate Table 1, in the paper's row order (HTTP-based block first,
/// then socket-based; eleven rows).
pub fn table1_rows() -> Vec<Table1Row> {
    let order = [
        MethodId::XhrGet,
        MethodId::XhrPost,
        MethodId::Dom,
        MethodId::FlashGet,
        MethodId::FlashPost,
        MethodId::JavaGet,
        MethodId::JavaPost,
        MethodId::WebSocket,
        MethodId::JavaTcp,
        MethodId::JavaUdp,
        MethodId::FlashTcp,
    ];
    order
        .into_iter()
        .map(|id| Table1Row {
            approach: if id.is_http_based() {
                "HTTP-based"
            } else {
                "Socket-based"
            },
            technology: technology_cell(id),
            availability: if id.technology() == Technology::Native {
                "Native"
            } else {
                "Plug-in"
            },
            method: id.transport().name(),
            same_origin: id.same_origin().cell(),
            metrics: id.metrics(),
            tools: id.tools(),
            id,
        })
        .collect()
}

/// One row of Table 2 ("Configurations of the browsers and systems").
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// OS.
    pub os: OsKind,
    /// Browser.
    pub browser: BrowserKind,
    /// Browser version.
    pub version: &'static str,
    /// Flash plug-in version.
    pub flash: &'static str,
    /// Java plug-in version.
    pub java: &'static str,
    /// WebSocket support (the paper's ✓/✗ column).
    pub websocket: bool,
}

/// Generate Table 2, Windows block first like the paper.
pub fn table2_rows() -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for os in [OsKind::Windows7, OsKind::Ubuntu1204] {
        for browser in BrowserKind::ALL {
            if !browser.available_on(os) {
                continue;
            }
            rows.push(Table2Row {
                os,
                browser,
                version: browser.version(),
                flash: browser.flash_version(os),
                java: browser.java_version(os),
                websocket: browser.supports_websocket(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_eleven_rows_seven_http() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 11);
        let http = rows.iter().filter(|r| r.approach == "HTTP-based").count();
        assert_eq!(http, 7);
        // HTTP block precedes the socket block.
        let first_socket = rows
            .iter()
            .position(|r| r.approach == "Socket-based")
            .unwrap();
        assert!(rows[..first_socket]
            .iter()
            .all(|r| r.approach == "HTTP-based"));
    }

    #[test]
    fn table1_dom_is_native_get_unrestricted() {
        let rows = table1_rows();
        let dom = rows.iter().find(|r| r.id == MethodId::Dom).unwrap();
        assert_eq!(dom.technology, "DOM");
        assert_eq!(dom.availability, "Native");
        assert_eq!(dom.method, "GET");
        assert_eq!(dom.same_origin, "No");
    }

    #[test]
    fn table1_flash_rows_are_bypassable_plugins() {
        for r in table1_rows() {
            if r.technology == "Flash" {
                assert_eq!(r.availability, "Plug-in");
                assert_eq!(r.same_origin, "Yes*");
            }
        }
    }

    #[test]
    fn table2_has_eight_rows() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 8);
        let win = rows.iter().filter(|r| r.os == OsKind::Windows7).count();
        assert_eq!(win, 5);
        let no_ws: Vec<_> = rows.iter().filter(|r| !r.websocket).collect();
        assert_eq!(no_ws.len(), 2); // IE 9 and Safari 5
    }

    #[test]
    fn table2_versions_spot_check() {
        let rows = table2_rows();
        let chrome_win = rows
            .iter()
            .find(|r| r.browser == BrowserKind::Chrome && r.os == OsKind::Windows7)
            .unwrap();
        assert_eq!(chrome_win.version, "23.0");
        assert_eq!(chrome_win.flash, "11.7.700");
        assert_eq!(chrome_win.java, "1.7.0");
        let ff_ubu = rows
            .iter()
            .find(|r| r.browser == BrowserKind::Firefox && r.os == OsKind::Ubuntu1204)
            .unwrap();
        assert_eq!(ff_ubu.flash, "11.2.202");
        assert_eq!(ff_ubu.java, "1.6.0");
    }
}
