//! Two-sample Kolmogorov–Smirnov test.
//!
//! Used by the verification harness to compare Δd distributions: is
//! Δd1 distributed like Δd2 (same regime, no first-use effect)? Did a
//! seed change actually alter a cell's distribution? The statistic is the
//! max CDF gap; the p-value uses the asymptotic Kolmogorov distribution
//! (fine for the 50-sample sets the paper works with).

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTest {
    /// The KS statistic `D = sup |F1(x) − F2(x)|`.
    pub statistic: f64,
    /// Asymptotic two-sided p-value.
    pub p_value: f64,
    /// Sizes of the two samples.
    pub n: (usize, usize),
}

impl KsTest {
    /// Whether the samples differ significantly at level `alpha`.
    pub fn rejects_same_distribution(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Run the two-sample KS test. Panics on empty input.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> KsTest {
    assert!(!a.is_empty() && !b.is_empty(), "KS test of empty sample");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    let (na, nb) = (sa.len(), sb.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < na && j < nb {
        let x = sa[i].min(sb[j]);
        while i < na && sa[i] <= x {
            i += 1;
        }
        while j < nb && sb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / na as f64;
        let fb = j as f64 / nb as f64;
        d = d.max((fa - fb).abs());
    }
    let en = ((na * nb) as f64 / (na + nb) as f64).sqrt();
    // Asymptotic Kolmogorov survival function with the standard
    // small-sample correction (Stephens 1970).
    let lambda = (en + 0.12 + 0.11 / en) * d;
    let p_value = kolmogorov_sf(lambda);
    KsTest {
        statistic: d,
        p_value,
        n: (na, nb),
    }
}

/// Kolmogorov distribution survival function
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2 k² λ²)`.
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda.powi(2)).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_do_not_reject() {
        let a: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let t = ks_two_sample(&a, &a);
        assert_eq!(t.statistic, 0.0);
        assert!(t.p_value > 0.99);
        assert!(!t.rejects_same_distribution(0.05));
    }

    #[test]
    fn disjoint_samples_reject_strongly() {
        let a: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..50).map(|i| 100.0 + i as f64 * 0.1).collect();
        let t = ks_two_sample(&a, &b);
        assert_eq!(t.statistic, 1.0);
        assert!(t.p_value < 1e-6);
        assert!(t.rejects_same_distribution(0.01));
    }

    #[test]
    fn shifted_distributions_reject() {
        // Two uniform-ish samples shifted by their full width.
        let a: Vec<f64> = (0..80).map(|i| (i % 40) as f64).collect();
        let b: Vec<f64> = (0..80).map(|i| (i % 40) as f64 + 30.0).collect();
        let t = ks_two_sample(&a, &b);
        assert!(t.statistic > 0.5);
        assert!(t.rejects_same_distribution(0.05));
    }

    #[test]
    fn same_distribution_interleaved_passes() {
        // Even/odd split of one sequence: same underlying distribution.
        let a: Vec<f64> = (0..100).step_by(2).map(|i| i as f64).collect();
        let b: Vec<f64> = (1..100).step_by(2).map(|i| i as f64).collect();
        let t = ks_two_sample(&a, &b);
        assert!(t.statistic < 0.1);
        assert!(!t.rejects_same_distribution(0.05));
    }

    #[test]
    fn unequal_sizes_work() {
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..200).map(|i| (i % 20) as f64).collect();
        let t = ks_two_sample(&a, &b);
        assert_eq!(t.n, (20, 200));
        assert!(!t.rejects_same_distribution(0.01));
    }

    #[test]
    fn sf_is_monotone() {
        let mut last = 1.0;
        for i in 1..40 {
            let v = kolmogorov_sf(i as f64 * 0.1);
            assert!(v <= last + 1e-12);
            last = v;
        }
        assert!(kolmogorov_sf(0.5) > 0.9);
        assert!(kolmogorov_sf(2.0) < 0.001);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        ks_two_sample(&[], &[1.0]);
    }
}
