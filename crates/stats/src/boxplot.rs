//! Tukey box-and-whisker statistics, matching the description under
//! Figure 3 of the paper: "the top and bottom of the box are given by the
//! 75th percentile and 25th percentile, and the mark inside is the median.
//! The upper and lower whiskers are the maximum and minimum, respectively,
//! after excluding the outliers" — with outliers beyond 1.5·IQR from the
//! quartiles.

use crate::summary::Summary;

/// Box-plot statistics for one sample.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxStats {
    /// Median.
    pub median: f64,
    /// Lower quartile.
    pub q1: f64,
    /// Upper quartile.
    pub q3: f64,
    /// Smallest observation ≥ `q1 − 1.5·IQR`.
    pub whisker_lo: f64,
    /// Largest observation ≤ `q3 + 1.5·IQR`.
    pub whisker_hi: f64,
    /// Observations outside the whiskers, ascending.
    pub outliers: Vec<f64>,
    /// Sample size.
    pub n: usize,
}

impl BoxStats {
    /// Compute box statistics. Panics on empty data.
    pub fn of(data: &[f64]) -> BoxStats {
        let s = Summary::of(data);
        let iqr = s.iqr();
        let lo_fence = s.q1 - 1.5 * iqr;
        let hi_fence = s.q3 + 1.5 * iqr;
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        // Whiskers reach the most extreme observation inside the fences,
        // but never retreat inside the box: with interpolated quartiles it
        // is possible for *every* observation above q3 to be an outlier,
        // in which case the whisker degenerates to the box edge.
        let whisker_lo = sorted
            .iter()
            .copied()
            .find(|&x| x >= lo_fence)
            .unwrap_or(s.min)
            .min(s.q1);
        let whisker_hi = sorted
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .unwrap_or(s.max)
            .max(s.q3);
        let outliers = sorted
            .iter()
            .copied()
            .filter(|&x| x < lo_fence || x > hi_fence)
            .collect();
        BoxStats {
            median: s.median,
            q1: s.q1,
            q3: s.q3,
            whisker_lo,
            whisker_hi,
            outliers,
            n: s.n,
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Total span including outliers (for axis scaling).
    pub fn full_range(&self) -> (f64, f64) {
        let lo = self
            .outliers
            .first()
            .copied()
            .unwrap_or(self.whisker_lo)
            .min(self.whisker_lo);
        let hi = self
            .outliers
            .last()
            .copied()
            .unwrap_or(self.whisker_hi)
            .max(self.whisker_hi);
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_outliers_whiskers_are_min_max() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = BoxStats::of(&data);
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 5.0);
        assert!(b.outliers.is_empty());
        assert_eq!(b.median, 3.0);
    }

    #[test]
    fn single_high_outlier_detected() {
        let mut data = vec![10.0; 20];
        for (i, d) in data.iter_mut().enumerate() {
            *d += i as f64 * 0.1; // 10.0 .. 11.9
        }
        data.push(100.0);
        let b = BoxStats::of(&data);
        assert_eq!(b.outliers, vec![100.0]);
        assert!(b.whisker_hi < 100.0);
    }

    #[test]
    fn symmetric_outliers_both_sides() {
        let mut data: Vec<f64> = (0..20).map(|i| 50.0 + i as f64).collect();
        data.push(-500.0);
        data.push(500.0);
        let b = BoxStats::of(&data);
        assert_eq!(b.outliers, vec![-500.0, 500.0]);
        assert_eq!(b.whisker_lo, 50.0);
        assert_eq!(b.whisker_hi, 69.0);
    }

    #[test]
    fn full_range_covers_outliers() {
        let mut data: Vec<f64> = (0..20).map(|i| i as f64).collect();
        data.push(1000.0);
        let b = BoxStats::of(&data);
        let (lo, hi) = b.full_range();
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 1000.0);
    }

    #[test]
    fn constant_sample_degenerates_cleanly() {
        let b = BoxStats::of(&[7.0; 10]);
        assert_eq!(b.median, 7.0);
        assert_eq!(b.iqr(), 0.0);
        assert_eq!(b.whisker_lo, 7.0);
        assert_eq!(b.whisker_hi, 7.0);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn fifty_sample_shape_like_the_paper() {
        // A plausible Δd sample: cluster near 3 ms plus two render-jank
        // spikes — the spikes must land in `outliers`, not stretch the
        // whiskers.
        let mut data = vec![];
        for i in 0..48 {
            data.push(2.5 + (i % 10) as f64 * 0.12);
        }
        data.push(25.0);
        data.push(40.0);
        let b = BoxStats::of(&data);
        assert_eq!(b.n, 50);
        assert_eq!(b.outliers.len(), 2);
        assert!(b.whisker_hi < 5.0);
    }
}
