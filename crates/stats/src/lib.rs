//! # bnm-stats — the paper's statistical toolkit
//!
//! Everything Section 3–4 of the paper computes from its 50-repetition
//! samples:
//!
//! * [`summary::Summary`] — min/median/quartiles/mean/std (quantiles use
//!   the R-7 linear-interpolation rule).
//! * [`boxplot::BoxStats`] — Tukey box-and-whisker statistics with the
//!   1.5·IQR outlier rule, exactly as the caption of Figure 3 describes.
//! * [`cdf::Cdf`] — empirical CDFs (Figure 4), including a discrete-level
//!   detector used to verify the "two discrete levels ~16 ms apart"
//!   finding.
//! * [`ci`] — mean with a 95% Student-t confidence interval (Table 4).
//! * [`jitter`] — inter-sample jitter metrics (the paper argues unstable
//!   overhead corrupts jitter measurement; we quantify it).
//! * [`ascii`] — terminal renderings of box plots and CDFs for the
//!   experiment binaries.
//! * [`sketch::QuantileSketch`] — bounded-memory streaming quantiles
//!   with relative-error guarantees, for crowd-scale sweeps whose raw
//!   per-session samples would otherwise grow with the client count.
//! * [`window::WindowedSketch`] — tumbling/sliding windows of sketches
//!   over virtual time, for the continuous-monitoring mode.

pub mod ascii;
pub mod boxplot;
pub mod cdf;
pub mod ci;
pub mod jitter;
pub mod ks;
pub mod sketch;
pub mod summary;
pub mod window;

pub use boxplot::BoxStats;
pub use cdf::Cdf;
pub use ci::MeanCi;
pub use ks::{ks_two_sample, KsTest};
pub use sketch::QuantileSketch;
pub use summary::Summary;
pub use window::WindowedSketch;
