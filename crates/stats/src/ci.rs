//! Mean with a 95% Student-t confidence interval — the statistic of the
//! paper's Table 4 ("mean with 95% confidence interval, in ms").

use crate::summary::Summary;

/// Two-sided 95% critical values of Student's t for ν = 1..=30 degrees of
/// freedom (standard table), then selected larger ν.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];
const T95_LARGE: [(usize, f64); 4] = [(40, 2.021), (60, 2.000), (120, 1.980), (usize::MAX, 1.960)];

/// The 95% two-sided t critical value for `df` degrees of freedom
/// (linear interpolation between tabulated points above ν = 30).
pub fn t_critical_95(df: usize) -> f64 {
    assert!(df >= 1, "need at least 1 degree of freedom");
    if df <= 30 {
        return T95[df - 1];
    }
    let mut prev = (30usize, T95[29]);
    for &(nu, t) in &T95_LARGE {
        if df <= nu {
            if nu == usize::MAX {
                // Interpolate toward the normal limit via 1/ν, the
                // conventional rule for t tables.
                let (p_nu, p_t) = prev;
                let w = (1.0 / p_nu as f64 - 1.0 / df as f64) / (1.0 / p_nu as f64);
                return p_t + (1.960 - p_t) * w;
            }
            let (p_nu, p_t) = prev;
            let w = (df - p_nu) as f64 / (nu - p_nu) as f64;
            return p_t + (t - p_t) * w;
        }
        prev = (nu, t);
    }
    1.960
}

/// A mean with its 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95% CI (`t · s/√n`); 0 for n = 1.
    pub half_width: f64,
    /// Sample size.
    pub n: usize,
}

impl MeanCi {
    /// Compute from a sample. Panics on empty input.
    pub fn of(data: &[f64]) -> MeanCi {
        let s = Summary::of(data);
        let half_width = if s.n > 1 {
            t_critical_95(s.n - 1) * s.std / (s.n as f64).sqrt()
        } else {
            0.0
        };
        MeanCi {
            mean: s.mean,
            half_width,
            n: s.n,
        }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Format as the paper's Table 4 does: `mean±half` with two decimals.
    pub fn format_table4(&self) -> String {
        format!("{:.2}±{:.2}", self.mean, self.half_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_exact_values() {
        assert_eq!(t_critical_95(1), 12.706);
        assert_eq!(t_critical_95(10), 2.228);
        assert_eq!(t_critical_95(30), 2.042);
    }

    #[test]
    fn t_interpolates_above_30() {
        let t49 = t_critical_95(49); // n = 50 samples, the paper's case
        assert!(t49 < t_critical_95(40));
        assert!(t49 > t_critical_95(60));
        assert!((t49 - 2.010).abs() < 0.01, "t(49) = {t49}");
        // Monotone decreasing toward 1.96.
        assert!(t_critical_95(1000) < t_critical_95(120));
        assert!(t_critical_95(1000) >= 1.960);
    }

    #[test]
    fn ci_of_constant_sample_is_zero_width() {
        let ci = MeanCi::of(&[4.0; 50]);
        assert_eq!(ci.mean, 4.0);
        assert_eq!(ci.half_width, 0.0);
    }

    #[test]
    fn ci_hand_checked() {
        // n=4, mean=5, s=2: hw = 3.182 * 2/2 = 3.182.
        let ci = MeanCi::of(&[3.0, 4.0, 6.0, 7.0]);
        assert_eq!(ci.mean, 5.0);
        let s = ((1.0f64 + 4.0 + 1.0 + 4.0) / 3.0).sqrt();
        assert!((ci.half_width - 3.182 * s / 2.0).abs() < 1e-9);
        assert!(ci.lo() < ci.mean && ci.mean < ci.hi());
    }

    #[test]
    fn single_sample_has_zero_half_width() {
        let ci = MeanCi::of(&[9.0]);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.n, 1);
    }

    #[test]
    fn table4_formatting() {
        let ci = MeanCi {
            mean: 2.9649,
            half_width: 0.0201,
            n: 50,
        };
        assert_eq!(ci.format_table4(), "2.96±0.02");
    }
}
