//! Empirical CDFs (the paper's Figure 4) and a discrete-level detector.

use crate::summary::quantile;

/// An empirical cumulative distribution function.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from a sample. Panics on empty or NaN-bearing input.
    pub fn of(data: &[f64]) -> Cdf {
        assert!(!data.is_empty(), "CDF of empty data");
        assert!(data.iter().all(|x| !x.is_nan()), "CDF of NaN data");
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Cdf { sorted }
    }

    /// `F(x)`: fraction of observations ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `p`-quantile (R-7 interpolation).
    pub fn quantile(&self, p: f64) -> f64 {
        quantile(&self.sorted, p)
    }

    /// Step points `(x, F(x))` for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }

    /// Sample size.
    pub fn n(&self) -> usize {
        self.sorted.len()
    }

    /// Smallest / largest observation.
    pub fn range(&self) -> (f64, f64) {
        (self.sorted[0], self.sorted[self.sorted.len() - 1])
    }

    /// Cluster the observations into **discrete levels**: maximal runs of
    /// consecutive sorted values whose gaps stay below `tolerance`.
    /// Returns `(level center, mass fraction)` per cluster.
    ///
    /// Figure 4(a) of the paper shows Δd concentrating on two such levels
    /// ~16 ms apart; this is the tool the verification harness uses to
    /// assert that shape.
    pub fn levels(&self, tolerance: f64) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut out = Vec::new();
        let mut start = 0usize;
        for i in 1..=n {
            let boundary = i == n || self.sorted[i] - self.sorted[i - 1] > tolerance;
            if boundary {
                let cluster = &self.sorted[start..i];
                let center = cluster.iter().sum::<f64>() / cluster.len() as f64;
                out.push((center, cluster.len() as f64 / n as f64));
                start = i;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic() {
        let c = Cdf::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.eval(0.5), 0.0);
        assert_eq!(c.eval(1.0), 0.25);
        assert_eq!(c.eval(2.5), 0.5);
        assert_eq!(c.eval(10.0), 1.0);
    }

    #[test]
    fn points_are_a_valid_step_function() {
        let c = Cdf::of(&[3.0, 1.0, 2.0]);
        let pts = c.points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (1.0, 1.0 / 3.0));
        assert_eq!(pts[2], (3.0, 1.0));
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
    }

    #[test]
    fn quantiles_match_summary() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let c = Cdf::of(&data);
        assert_eq!(c.quantile(0.5), 2.5);
    }

    #[test]
    fn two_discrete_levels_detected() {
        // Mimic Figure 4(a): half the mass near -5, half near +11,
        // ~16 ms apart.
        let mut data = Vec::new();
        for i in 0..25 {
            data.push(-5.0 + (i % 5) as f64 * 0.1);
            data.push(11.0 + (i % 5) as f64 * 0.1);
        }
        let c = Cdf::of(&data);
        let levels = c.levels(2.0);
        assert_eq!(levels.len(), 2);
        assert!((levels[0].0 - (-4.8)).abs() < 0.5);
        assert!((levels[1].0 - 11.2).abs() < 0.5);
        assert!((levels[0].1 - 0.5).abs() < 0.01);
        let gap = levels[1].0 - levels[0].0;
        assert!((gap - 16.0).abs() < 1.0, "gap {gap}");
    }

    #[test]
    fn continuous_data_is_one_level_under_loose_tolerance() {
        let data: Vec<f64> = (0..100).map(|i| i as f64 * 0.05).collect();
        let c = Cdf::of(&data);
        assert_eq!(c.levels(0.1).len(), 1);
        // And many levels under an impossibly tight tolerance.
        assert_eq!(c.levels(0.01).len(), 100);
    }

    #[test]
    fn range_and_n() {
        let c = Cdf::of(&[5.0, -2.0, 8.0]);
        assert_eq!(c.range(), (-2.0, 8.0));
        assert_eq!(c.n(), 3);
    }
}
