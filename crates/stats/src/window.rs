//! Virtual-time windowed quantile sketches for continuous monitoring.
//!
//! A long-running monitor folds every round's Δd into *windows* — "the
//! last second", "the last ten seconds", "the last minute" of virtual
//! time — and must do so in memory that is bounded regardless of how
//! many rounds it has seen. [`WindowedSketch`] provides that: it keeps
//! a ring of per-*pan* [`QuantileSketch`]es (a pan is the tumbling base
//! interval, e.g. 1 s) and rotates pans out as virtual time advances,
//! so a window spanning `N` pans holds at most `N` sketches no matter
//! how long the monitor runs. Querying merges the live pans into one
//! sketch, which preserves the per-sketch relative-error bound exactly
//! (bucket counts add; see [`crate::sketch`]).
//!
//! Rotation is driven by the caller's clock ([`WindowedSketch::advance`]
//! / the timestamp given to [`WindowedSketch::record`]), never by wall
//! time — the monitor runs over *virtual* time and must stay
//! deterministic.

use std::collections::VecDeque;

use crate::sketch::QuantileSketch;

/// A sliding window of [`QuantileSketch`]es over virtual time.
///
/// The window covers the `span_pans` pans ending at the pan of the most
/// recent timestamp passed to [`WindowedSketch::advance`] or
/// [`WindowedSketch::record`]. With `span_pans == 1` it degenerates to
/// a tumbling window (the current pan only).
///
/// Timestamps must be non-decreasing (the monitor's virtual clock only
/// moves forward); a value older than the live window is dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedSketch {
    alpha: f64,
    pan_ns: u64,
    span_pans: usize,
    /// Live `(pan index, sketch)` pairs, ascending pan index; only pans
    /// that received samples exist, and at most `span_pans` are live.
    pans: VecDeque<(u64, QuantileSketch)>,
}

impl WindowedSketch {
    /// A window of `span_pans` pans of `pan_ns` nanoseconds each, whose
    /// per-pan sketches use accuracy `alpha`. `pan_ns` and `span_pans`
    /// are clamped to at least 1.
    pub fn new(alpha: f64, pan_ns: u64, span_pans: usize) -> WindowedSketch {
        WindowedSketch {
            alpha,
            pan_ns: pan_ns.max(1),
            span_pans: span_pans.max(1),
            pans: VecDeque::new(),
        }
    }

    /// The per-pan sketch accuracy parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Pan width in nanoseconds.
    pub fn pan_ns(&self) -> u64 {
        self.pan_ns
    }

    /// Window span in pans.
    pub fn span_pans(&self) -> usize {
        self.span_pans
    }

    /// Window span in nanoseconds.
    pub fn span_ns(&self) -> u64 {
        self.pan_ns.saturating_mul(self.span_pans as u64)
    }

    /// The guaranteed relative error of merged-window quantiles — the
    /// same `√γ − 1` bound every per-pan sketch carries (merging only
    /// adds bucket counts, it never re-buckets).
    pub fn relative_error_bound(&self) -> f64 {
        QuantileSketch::new(self.alpha).relative_error_bound()
    }

    fn pan_of(&self, t_ns: u64) -> u64 {
        t_ns / self.pan_ns
    }

    /// Advance the window's clock to `t_ns`, rotating out pans that
    /// fall outside the span ending at `t_ns`'s pan. Idempotent; safe
    /// to call with any timestamp at or after the last one.
    pub fn advance(&mut self, t_ns: u64) {
        let current = self.pan_of(t_ns);
        let oldest_live = current.saturating_sub(self.span_pans as u64 - 1);
        while self.pans.front().is_some_and(|(pan, _)| *pan < oldest_live) {
            self.pans.pop_front();
        }
    }

    /// Record `v` at virtual time `t_ns`, rotating first. A timestamp
    /// older than the live window drops the value (the window has
    /// already moved past it).
    pub fn record(&mut self, t_ns: u64, v: f64) {
        self.advance(t_ns);
        let pan = self.pan_of(t_ns);
        if self.pans.back().is_some_and(|(last, _)| *last > pan) {
            // Out-of-window past (advance() kept a newer pan ring).
            return;
        }
        if self.pans.back().is_none_or(|(last, _)| *last != pan) {
            self.pans.push_back((pan, QuantileSketch::new(self.alpha)));
        }
        // The push above guarantees a back entry for `pan`.
        self.pans
            .back_mut()
            .expect("current pan exists")
            .1
            .insert(v);
    }

    /// All live pans merged into one sketch — the window's distribution.
    pub fn merged(&self) -> QuantileSketch {
        let mut out = QuantileSketch::new(self.alpha);
        for (_, sk) in &self.pans {
            out.merge(sk);
        }
        out
    }

    /// Samples currently inside the window.
    pub fn count(&self) -> u64 {
        self.pans.iter().map(|(_, sk)| sk.count()).sum()
    }

    /// Whether the window currently holds no samples.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Live pans — the rotation gauge, never more than
    /// [`WindowedSketch::span_pans`].
    pub fn live_pans(&self) -> usize {
        self.pans.len()
    }

    /// Occupied buckets summed over live pans — the memory gauge,
    /// `O(span_pans · log(max/min)/α)` regardless of rounds folded.
    pub fn bucket_count(&self) -> usize {
        self.pans.iter().map(|(_, sk)| sk.bucket_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::quantile as r7;

    const S: u64 = 1_000_000_000;

    #[test]
    fn tumbling_window_keeps_only_the_current_pan() {
        let mut w = WindowedSketch::new(0.01, S, 1);
        w.record(0, 1.0);
        w.record(S / 2, 2.0);
        assert_eq!(w.count(), 2);
        w.record(S, 3.0); // next pan: the first tumbles out
        assert_eq!(w.count(), 1);
        assert_eq!(w.live_pans(), 1);
        assert_eq!(w.merged().max(), 3.0);
    }

    #[test]
    fn sliding_window_rotates_at_pan_boundaries() {
        let mut w = WindowedSketch::new(0.01, S, 3);
        for t in 0..6u64 {
            w.record(t * S, t as f64);
        }
        // Pans 3, 4, 5 are live.
        assert_eq!(w.live_pans(), 3);
        assert_eq!(w.count(), 3);
        assert_eq!(w.merged().min(), 3.0);
        assert_eq!(w.merged().max(), 5.0);
        // Advancing without recording still rotates.
        w.advance(7 * S);
        assert_eq!(w.count(), 1);
        w.advance(100 * S);
        assert!(w.is_empty());
        assert_eq!(w.live_pans(), 0);
    }

    #[test]
    fn sparse_pans_only_exist_when_sampled() {
        let mut w = WindowedSketch::new(0.01, S, 10);
        w.record(0, 1.0);
        w.record(9 * S, 2.0);
        assert_eq!(w.live_pans(), 2, "empty pans are not materialised");
        assert_eq!(w.count(), 2);
        w.record(10 * S, 3.0); // pan 0 exits the 10-pan span
        assert_eq!(w.count(), 2);
    }

    #[test]
    fn too_old_values_are_dropped() {
        let mut w = WindowedSketch::new(0.01, S, 2);
        w.record(5 * S, 1.0);
        w.record(0, 99.0); // five pans in the past: outside the window
        assert_eq!(w.count(), 1);
        assert_eq!(w.merged().max(), 1.0);
    }

    #[test]
    fn merged_quantiles_track_exact_within_bound() {
        let mut w = WindowedSketch::new(0.01, S, 4);
        let mut x = 0xDEAD_BEEFu64;
        let mut window_vals = Vec::new();
        for t in 0..8u64 {
            for _ in 0..50 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let v = (x % 10_000) as f64 / 100.0;
                w.record(t * S, v);
                if t >= 4 {
                    window_vals.push(v);
                }
            }
        }
        window_vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let m = w.merged();
        assert_eq!(m.count(), window_vals.len() as u64);
        for p in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let exact = r7(&window_vals, p);
            let est = m.quantile(p);
            let bound = m.relative_error_bound() * exact.abs().max(1e-9) + 1e-9;
            assert!(
                (est - exact).abs() <= bound,
                "p={p}: {est} vs {exact} (bound {bound})"
            );
        }
    }

    #[test]
    fn footprint_is_bounded_by_span_not_rounds() {
        let mut w = WindowedSketch::new(0.01, S, 5);
        let mut peak = 0usize;
        for t in 0..10_000u64 {
            w.record(t * S, (t % 37) as f64);
            peak = peak.max(w.bucket_count());
        }
        assert!(w.live_pans() <= 5);
        // 5 pans × a handful of distinct values each.
        assert!(peak < 5 * 64, "bucket peak {peak}");
    }
}
