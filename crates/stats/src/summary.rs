//! Five-number summaries and moments.

/// Quantile by the R-7 rule (linear interpolation, the default of R and
/// NumPy) over `sorted` data.
///
/// Panics if `sorted` is empty or `p` is outside `[0, 1]`.
pub fn quantile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&p), "p out of range");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = p * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Summary statistics of one sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 when n = 1).
    pub std: f64,
    /// Median (R-7).
    pub median: f64,
    /// Lower quartile (R-7).
    pub q1: f64,
    /// Upper quartile (R-7).
    pub q3: f64,
}

impl Summary {
    /// Compute a summary. Panics on empty input or NaN values.
    pub fn of(data: &[f64]) -> Summary {
        assert!(!data.is_empty(), "summary of empty data");
        assert!(
            data.iter().all(|x| !x.is_nan()),
            "summary of data containing NaN"
        );
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            n,
            min: sorted[0],
            max: sorted[n - 1],
            mean,
            std: var.sqrt(),
            median: quantile(&sorted, 0.5),
            q1: quantile(&sorted, 0.25),
            q3: quantile(&sorted, 0.75),
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_value() {
        let s = Summary::of(&[5.0]);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn known_quartiles_r7() {
        // R: quantile(c(1,2,3,4), c(.25,.5,.75)) -> 1.75 2.50 3.25
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&sorted, 0.25), 1.75);
        assert_eq!(quantile(&sorted, 0.5), 2.5);
        assert_eq!(quantile(&sorted, 0.75), 3.25);
        assert_eq!(quantile(&sorted, 0.0), 1.0);
        assert_eq!(quantile(&sorted, 1.0), 4.0);
    }

    #[test]
    fn summary_of_shuffled_data() {
        let data = [9.0, 1.0, 5.0, 3.0, 7.0];
        let s = Summary::of(&data);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.q1, 3.0);
        assert_eq!(s.q3, 7.0);
        assert_eq!(s.iqr(), 4.0);
    }

    #[test]
    fn std_matches_hand_computation() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        // Sample std with n-1: sqrt(32/7).
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn negative_values_fine() {
        // Δd can be negative (Java on Windows) — the stats must not assume
        // positivity.
        let s = Summary::of(&[-15.0, -1.0, 0.0, 1.0]);
        assert_eq!(s.min, -15.0);
        assert!(s.mean < 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        Summary::of(&[1.0, f64::NAN]);
    }
}
