//! Terminal renderings of box plots and CDFs, used by the experiment
//! binaries to print Figure 3/4-style panels next to their numeric rows.

use crate::boxplot::BoxStats;
use crate::cdf::Cdf;

/// Render one horizontal box plot onto a `width`-column axis spanning
/// `[axis_lo, axis_hi]`.
///
/// Glyphs: `o` outliers, `|-` / `-|` whiskers, `[`, `]` quartiles, `#`
/// median.
pub fn render_box(b: &BoxStats, axis_lo: f64, axis_hi: f64, width: usize) -> String {
    assert!(width >= 10, "axis too narrow");
    assert!(axis_hi > axis_lo, "degenerate axis");
    let mut row = vec![b' '; width];
    let pos = |x: f64| -> usize {
        let frac = ((x - axis_lo) / (axis_hi - axis_lo)).clamp(0.0, 1.0);
        ((frac * (width - 1) as f64).round() as usize).min(width - 1)
    };
    // Whisker lines.
    row[pos(b.whisker_lo)..=pos(b.q1)].fill(b'-');
    row[pos(b.q3)..=pos(b.whisker_hi)].fill(b'-');
    // Box body.
    row[pos(b.q1)..=pos(b.q3)].fill(b'=');
    row[pos(b.whisker_lo)] = b'|';
    row[pos(b.whisker_hi)] = b'|';
    row[pos(b.q1)] = b'[';
    row[pos(b.q3)] = b']';
    row[pos(b.median)] = b'#';
    for &o in &b.outliers {
        row[pos(o)] = b'o';
    }
    String::from_utf8(row).expect("ascii")
}

/// Render a CDF as `height` rows by `width` columns of `*` marks.
pub fn render_cdf(cdf: &Cdf, axis_lo: f64, axis_hi: f64, width: usize, height: usize) -> String {
    assert!(width >= 10 && height >= 4);
    let mut grid = vec![vec![b' '; width]; height];
    let marks = (0..width).map(|col| {
        let x = axis_lo + (axis_hi - axis_lo) * col as f64 / (width - 1) as f64;
        let row = ((1.0 - cdf.eval(x)) * (height - 1) as f64).round() as usize;
        row.min(height - 1)
    });
    for (col, row) in marks.enumerate() {
        grid[row][col] = b'*';
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = 1.0 - i as f64 / (height - 1) as f64;
        out.push_str(&format!("{label:4.2} |"));
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push('\n');
    }
    out.push_str(&format!(
        "      {:<10.2}{:>width$.2}\n",
        axis_lo,
        axis_hi,
        width = width - 10
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_glyphs_present_and_ordered() {
        let data: Vec<f64> = (0..50).map(|i| 10.0 + (i % 7) as f64).collect();
        let b = BoxStats::of(&data);
        let row = render_box(&b, 0.0, 20.0, 60);
        assert_eq!(row.len(), 60);
        let med = row.find('#').unwrap();
        let q1 = row.find('[').unwrap();
        let q3 = row.find(']').unwrap();
        assert!(q1 < med && med < q3);
    }

    #[test]
    fn outliers_render_as_o() {
        let mut data = vec![5.0; 30];
        data.push(19.0);
        let b = BoxStats::of(&data);
        let row = render_box(&b, 0.0, 20.0, 40);
        assert!(row.contains('o'));
    }

    #[test]
    fn values_off_axis_clamp() {
        let b = BoxStats::of(&[100.0, 101.0, 102.0, 103.0]);
        // Axis that doesn't contain the data: everything clamps to the
        // right edge without panicking.
        let row = render_box(&b, 0.0, 10.0, 30);
        assert_eq!(row.len(), 30);
        assert_eq!(row.chars().last(), Some('#'));
    }

    #[test]
    fn cdf_render_shape() {
        let data: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let c = Cdf::of(&data);
        let plot = render_cdf(&c, 0.0, 10.0, 40, 8);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 9); // 8 rows + axis
        assert!(lines[0].starts_with("1.00"));
        assert!(lines.iter().take(8).all(|l| l.contains('*')));
    }

    #[test]
    #[should_panic(expected = "axis too narrow")]
    fn narrow_axis_panics() {
        let b = BoxStats::of(&[1.0, 2.0]);
        render_box(&b, 0.0, 1.0, 5);
    }
}
