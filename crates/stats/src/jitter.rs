//! Jitter metrics.
//!
//! Section 2.2 of the paper: "the delay overhead, if not stable enough,
//! will also affect the jitter measurement". These estimators quantify
//! that effect for the impact-analysis extension experiment.

/// Mean absolute difference of consecutive samples — the simplest jitter
/// estimator speedtest-style tools use.
pub fn consecutive_jitter(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let sum: f64 = samples.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
    sum / (samples.len() - 1) as f64
}

/// RFC 3550-*style* smoothing over consecutive **sample** differences.
///
/// **Approximation, kept for backward compatibility.** RFC 3550 §6.4.1
/// defines jitter over interarrival *transit-time* differences
/// `D(i-1,i) = (R_i − R_{i-1}) − (S_i − S_{i-1})`, which needs both the
/// send and receive timestamp of each packet — see
/// [`rfc3550_transit_jitter`]. When only a delay *series* is available
/// (e.g. RTT samples), smoothing consecutive sample differences is the
/// common shortcut; it coincides with the RFC estimator only when the
/// samples themselves are per-packet transit times (then
/// `D = d_i − d_{i-1}` exactly), and even then the series form hides
/// which side contributed the variation.
pub fn rfc3550_jitter(samples: &[f64]) -> f64 {
    let mut j = 0.0;
    for w in samples.windows(2) {
        let d = (w[1] - w[0]).abs();
        j += (d - j) / 16.0;
    }
    j
}

/// RFC 3550 §6.4.1 interarrival jitter, computed as the RFC defines it:
/// over `(send, receive)` timestamp pairs of consecutively *arriving*
/// packets.
///
/// For each pair of consecutive arrivals `i-1, i`:
///
/// ```text
/// D(i-1, i) = (R_i − R_{i-1}) − (S_i − S_{i-1})
/// J_i       = J_{i-1} + (|D(i-1, i)| − J_{i-1}) / 16
/// ```
///
/// `pairs` must be ordered by arrival (the order the receiver saw the
/// packets — NOT sorted by sequence number: reordered arrivals
/// legitimately contribute negative interarrival transit differences).
/// Units are whatever the timestamps are in (ms here).
pub fn rfc3550_transit_jitter(pairs: &[(f64, f64)]) -> f64 {
    let mut j = 0.0;
    for w in pairs.windows(2) {
        let (s0, r0) = w[0];
        let (s1, r1) = w[1];
        let d = (r1 - r0) - (s1 - s0);
        j += (d.abs() - j) / 16.0;
    }
    j
}

/// Peak-to-peak spread.
pub fn peak_to_peak(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    max - min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_has_zero_jitter() {
        let s = [50.0; 20];
        assert_eq!(consecutive_jitter(&s), 0.0);
        assert_eq!(rfc3550_jitter(&s), 0.0);
        assert_eq!(peak_to_peak(&s), 0.0);
    }

    #[test]
    fn alternating_series() {
        let s = [50.0, 52.0, 50.0, 52.0, 50.0];
        assert_eq!(consecutive_jitter(&s), 2.0);
        assert_eq!(peak_to_peak(&s), 2.0);
        let j = rfc3550_jitter(&s);
        assert!(j > 0.0 && j < 2.0, "smoothed estimate below raw: {j}");
    }

    #[test]
    fn short_inputs() {
        assert_eq!(consecutive_jitter(&[]), 0.0);
        assert_eq!(consecutive_jitter(&[1.0]), 0.0);
        assert_eq!(peak_to_peak(&[]), 0.0);
    }

    #[test]
    fn transit_jitter_matches_hand_computed_rfc_reference() {
        // Reference trace, hand-evaluated per RFC 3550 §6.4.1.
        // Sends every 20 ms; transit times 50, 55, 52, 60 ms.
        let pairs = [(0.0, 50.0), (20.0, 75.0), (40.0, 92.0), (60.0, 120.0)];
        // D = 5, -3, 8  →  J = 5/16, then +(3-J)/16, then +(8-J)/16.
        let j = rfc3550_transit_jitter(&pairs);
        assert!((j - 0.950439453125).abs() < 1e-12, "J = {j}");
        // On an in-order trace D(i-1,i) equals the transit-time delta,
        // so the series approximation over per-packet transit times
        // coincides with the true estimator…
        let transit: Vec<f64> = pairs.iter().map(|(s, r)| r - s).collect();
        assert_eq!(rfc3550_jitter(&transit), j);
    }

    #[test]
    fn series_approximation_diverges_under_reordering() {
        // …but not once arrivals reorder. Sent at 0/20/40 ms; packet 2
        // is delayed past packet 3. Arrival order: 1, 3, 2.
        let arrival_pairs = [(0.0, 50.0), (40.0, 95.0), (20.0, 100.0)];
        // D(1,3) = 45-40 = 5; D(3,2) = 5-(-20) = 25.
        let true_j = rfc3550_transit_jitter(&arrival_pairs);
        assert!((true_j - 1.85546875).abs() < 1e-12, "J = {true_j}");
        // The legacy shortcut over seq-ordered one-way delays [50, 80,
        // 55] sees |30| then |25| and lands somewhere else entirely —
        // the documented approximation error the transit API fixes.
        let approx = rfc3550_jitter(&[50.0, 80.0, 55.0]);
        assert!((approx - 3.3203125).abs() < 1e-12, "approx = {approx}");
        assert!((approx - true_j).abs() > 1.0);
    }

    #[test]
    fn transit_jitter_short_inputs() {
        assert_eq!(rfc3550_transit_jitter(&[]), 0.0);
        assert_eq!(rfc3550_transit_jitter(&[(0.0, 50.0)]), 0.0);
    }

    #[test]
    fn overhead_noise_inflates_jitter() {
        // True RTT constant at 50; overhead adds alternating 0/10 ms —
        // measured jitter is entirely an artifact of the overhead.
        let truth = [50.0; 10];
        let measured: Vec<f64> = (0..10)
            .map(|i| 50.0 + if i % 2 == 0 { 0.0 } else { 10.0 })
            .collect();
        assert_eq!(consecutive_jitter(&truth), 0.0);
        assert_eq!(consecutive_jitter(&measured), 10.0);
    }
}
