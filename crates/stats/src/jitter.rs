//! Jitter metrics.
//!
//! Section 2.2 of the paper: "the delay overhead, if not stable enough,
//! will also affect the jitter measurement". These estimators quantify
//! that effect for the impact-analysis extension experiment.

/// Mean absolute difference of consecutive samples — the simplest jitter
/// estimator speedtest-style tools use.
pub fn consecutive_jitter(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let sum: f64 = samples.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
    sum / (samples.len() - 1) as f64
}

/// RFC 3550 §6.4.1 interarrival-jitter estimator: an exponentially
/// smoothed mean of consecutive absolute differences with gain 1/16.
pub fn rfc3550_jitter(samples: &[f64]) -> f64 {
    let mut j = 0.0;
    for w in samples.windows(2) {
        let d = (w[1] - w[0]).abs();
        j += (d - j) / 16.0;
    }
    j
}

/// Peak-to-peak spread.
pub fn peak_to_peak(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    max - min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_has_zero_jitter() {
        let s = [50.0; 20];
        assert_eq!(consecutive_jitter(&s), 0.0);
        assert_eq!(rfc3550_jitter(&s), 0.0);
        assert_eq!(peak_to_peak(&s), 0.0);
    }

    #[test]
    fn alternating_series() {
        let s = [50.0, 52.0, 50.0, 52.0, 50.0];
        assert_eq!(consecutive_jitter(&s), 2.0);
        assert_eq!(peak_to_peak(&s), 2.0);
        let j = rfc3550_jitter(&s);
        assert!(j > 0.0 && j < 2.0, "smoothed estimate below raw: {j}");
    }

    #[test]
    fn short_inputs() {
        assert_eq!(consecutive_jitter(&[]), 0.0);
        assert_eq!(consecutive_jitter(&[1.0]), 0.0);
        assert_eq!(peak_to_peak(&[]), 0.0);
    }

    #[test]
    fn overhead_noise_inflates_jitter() {
        // True RTT constant at 50; overhead adds alternating 0/10 ms —
        // measured jitter is entirely an artifact of the overhead.
        let truth = [50.0; 10];
        let measured: Vec<f64> = (0..10)
            .map(|i| 50.0 + if i % 2 == 0 { 0.0 } else { 10.0 })
            .collect();
        assert_eq!(consecutive_jitter(&truth), 0.0);
        assert_eq!(consecutive_jitter(&measured), 10.0);
    }
}
