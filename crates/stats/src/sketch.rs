//! Streaming quantile sketches for crowd-scale runs.
//!
//! A 1,000-client contend sweep produces per-session Δd sample vectors
//! whose total size grows as `clients × reps × rounds`; keeping every
//! raw `f64` alive until reporting defeats the bounded-memory goal of
//! the streaming pipeline. [`QuantileSketch`] replaces a raw vector
//! with a log-bucketed histogram in the spirit of DDSketch: values are
//! counted in geometrically-spaced buckets, so the sketch answers any
//! quantile with a *relative* error bound that is independent of the
//! number of samples, while storing only the occupied buckets.
//!
//! # Error bound
//!
//! With accuracy parameter `α` the bucket boundaries grow by
//! `γ = (1 + α) / (1 − α)` per bucket and a bucket is summarised by its
//! geometric midpoint, so every recorded value `v` with
//! `|v| > ZERO_EPSILON` is represented by a value `r` with
//!
//! ```text
//! |r − v| ≤ (√γ − 1) · |v|        (√γ − 1 ≈ α for small α)
//! ```
//!
//! Values with `|v| ≤ ZERO_EPSILON` land in a single zero bucket and
//! carry an absolute error of at most `ZERO_EPSILON`. Bucket *counts*
//! are exact, so the sketch locates the true order statistic's bucket
//! exactly and [`QuantileSketch::quantile`] — which interpolates
//! between the ranks `⌊h⌋` and `⌈h⌉` at `h = p·(n−1)`, mirroring the
//! R-7 rule of [`crate::summary::quantile`] — satisfies
//!
//! ```text
//! |quantile(p) − R7(p)| ≤ (√γ − 1) · max(|x_⌊h⌋|, |x_⌈h⌉|) + ZERO_EPSILON
//! ```
//!
//! where `x_i` are the sorted raw samples. The proptest in
//! `tests/properties.rs` holds the implementation to exactly this
//! bound on arbitrary inputs.

use std::collections::BTreeMap;

/// Absolute half-width of the zero bucket: values at or below this
/// magnitude are stored as "zero" and reproduce with at most this
/// absolute error. Δd samples are milliseconds, so 1e-9 ms = 1 fs is
/// far below both the simulator's nanosecond clock and any physical
/// meaning.
pub const ZERO_EPSILON: f64 = 1e-9;

/// Default relative accuracy (1%): a Δd median of 16 ms reproduces
/// within ±0.16 ms, an order of magnitude under the paper's 0.3 ms
/// software-capture noise floor.
pub const DEFAULT_ALPHA: f64 = 0.01;

/// A mergeable streaming quantile sketch with relative-error
/// guarantees (see the module docs for the exact bound).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Relative accuracy parameter α.
    alpha: f64,
    /// Bucket growth factor γ = (1+α)/(1−α).
    gamma: f64,
    /// ln(γ), cached for key computation.
    ln_gamma: f64,
    /// Occupied buckets: key 0 is the zero bucket, key `k > 0` covers
    /// `(ZERO_EPSILON·γ^(k−1), ZERO_EPSILON·γ^k]`, negative keys mirror
    /// for negative values. `BTreeMap` iterates keys in ascending
    /// order, which is ascending value order.
    buckets: BTreeMap<i32, u64>,
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new(DEFAULT_ALPHA)
    }
}

impl QuantileSketch {
    /// A sketch with relative accuracy `alpha`, clamped to
    /// `[1e-4, 0.25]` (coarser is meaningless, finer needless).
    pub fn new(alpha: f64) -> Self {
        let alpha = alpha.clamp(1e-4, 0.25);
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            alpha,
            gamma,
            ln_gamma: gamma.ln(),
            buckets: BTreeMap::new(),
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// The accuracy parameter the sketch was built with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The guaranteed relative error bound, `√γ − 1`.
    pub fn relative_error_bound(&self) -> f64 {
        self.gamma.sqrt() - 1.0
    }

    /// Record one value. Non-finite values are ignored (and flagged in
    /// debug builds — the pipeline never produces them).
    pub fn insert(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "sketch fed non-finite value {v}");
        if !v.is_finite() {
            return;
        }
        *self.buckets.entry(self.key(v)).or_insert(0) += 1;
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Record every value in `vs`.
    pub fn extend(&mut self, vs: &[f64]) {
        for &v in vs {
            self.insert(v);
        }
    }

    /// Fold another sketch into this one. Both must use the same
    /// accuracy parameter (they bucket incompatibly otherwise).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(
            self.alpha.to_bits(),
            other.alpha.to_bits(),
            "merging sketches with different accuracies"
        );
        for (&k, &c) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum of the recorded values (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Exact maximum of the recorded values (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Exact mean of the recorded values (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of occupied buckets — the sketch's actual footprint,
    /// `O(log(max/min) / α)` regardless of sample count.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The `p`-quantile (`0 ≤ p ≤ 1`) under the R-7 fractional-rank
    /// rule, within the error bound in the module docs. NaN when empty.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let p = p.clamp(0.0, 1.0);
        let h = p * (self.count - 1) as f64;
        let lo = h.floor() as u64;
        let hi = h.ceil() as u64;
        let frac = h - lo as f64;
        let v_lo = self.value_at_rank(lo);
        if lo == hi {
            return v_lo;
        }
        let v_hi = self.value_at_rank(hi);
        v_lo + (v_hi - v_lo) * frac
    }

    /// Convenience: the median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Representative value for the bucket holding the 0-based rank
    /// `r` order statistic, clamped into the exact `[min, max]` range
    /// (clamping only ever moves the representative *toward* the true
    /// order statistic, so the error bound is preserved). The extreme
    /// ranks are the tracked min/max themselves, so they come back
    /// exact rather than as bucket midpoints.
    fn value_at_rank(&self, r: u64) -> f64 {
        if r == 0 {
            return self.min;
        }
        if r + 1 >= self.count {
            return self.max;
        }
        let mut cum = 0u64;
        for (&k, &c) in &self.buckets {
            cum += c;
            if cum > r {
                return self.representative(k).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Bucket index for a value (see `buckets` field docs).
    fn key(&self, v: f64) -> i32 {
        let mag = v.abs();
        if mag <= ZERO_EPSILON {
            return 0;
        }
        // ceil() rather than floor()+1 so an exact boundary value
        // stays in the bucket it is the upper edge of.
        let k = ((mag / ZERO_EPSILON).ln() / self.ln_gamma).ceil().max(1.0) as i32;
        if v < 0.0 {
            -k
        } else {
            k
        }
    }

    /// Geometric midpoint of bucket `k`.
    fn representative(&self, k: i32) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let mag = ZERO_EPSILON * self.gamma.powf(f64::from(k.abs()) - 0.5);
        if k < 0 {
            -mag
        } else {
            mag
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::quantile as r7;

    fn assert_within_bound(sketch: &QuantileSketch, sorted: &[f64], p: f64) {
        let n = sorted.len();
        let h = p * (n - 1) as f64;
        let (lo, hi) = (h.floor() as usize, h.ceil() as usize);
        let eps = sketch.relative_error_bound();
        let bound = eps * sorted[lo].abs().max(sorted[hi].abs()) + ZERO_EPSILON;
        let got = sketch.quantile(p);
        let want = r7(sorted, p);
        assert!(
            (got - want).abs() <= bound * (1.0 + 1e-9),
            "p={p}: sketch {got} vs exact {want}, bound {bound}"
        );
    }

    #[test]
    fn empty_sketch_is_nan() {
        let s = QuantileSketch::default();
        assert!(s.quantile(0.5).is_nan());
        assert!(s.min().is_nan());
        assert!(s.mean().is_nan());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn single_value_reproduces_exactly() {
        let mut s = QuantileSketch::default();
        s.insert(16.25);
        // min/max clamping pins a single sample exactly.
        assert_eq!(s.quantile(0.0), 16.25);
        assert_eq!(s.quantile(0.5), 16.25);
        assert_eq!(s.quantile(1.0), 16.25);
    }

    #[test]
    fn quantiles_track_r7_within_bound() {
        let mut s = QuantileSketch::new(0.01);
        // Deterministic skewed data spanning several decades, with
        // negatives and zeros mixed in.
        let mut x = 0x9E37_79B9u64;
        let mut data = Vec::new();
        for i in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = match i % 7 {
                0 => 0.0,
                1 => -((x % 1000) as f64) / 10.0,
                _ => (x % 1_000_000) as f64 / 100.0,
            };
            data.push(v);
            s.insert(v);
        }
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert_within_bound(&s, &data, p);
        }
        assert_eq!(s.count(), 5000);
        // Footprint stays tiny relative to the sample count.
        assert!(s.bucket_count() < 2200, "buckets: {}", s.bucket_count());
    }

    #[test]
    fn merge_equals_inserting_everything() {
        let mut a = QuantileSketch::new(0.02);
        let mut b = QuantileSketch::new(0.02);
        let mut all = QuantileSketch::new(0.02);
        for i in 0..100 {
            let v = (i * i) as f64 / 3.0;
            if i % 2 == 0 {
                a.insert(v);
            } else {
                b.insert(v);
            }
            all.insert(v);
        }
        a.merge(&b);
        // Bucket contents and extremes match exactly; the running sum
        // only up to fp association order.
        assert_eq!(a.buckets, all.buckets);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert_eq!(a.quantile(0.5), all.quantile(0.5));
    }

    #[test]
    fn identical_streams_give_identical_sketches() {
        let mk = || {
            let mut s = QuantileSketch::default();
            s.extend(&[3.5, -1.0, 0.0, 88.25, 3.5]);
            s
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    #[should_panic(expected = "different accuracies")]
    fn merging_mismatched_accuracies_panics() {
        let mut a = QuantileSketch::new(0.01);
        a.merge(&QuantileSketch::new(0.05));
    }
}
