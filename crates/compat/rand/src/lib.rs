//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships the small slice of the rand 0.8 API it actually
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ (the same family rand 0.8's `SmallRng`
//! uses on 64-bit targets), seeded through SplitMix64 exactly like
//! `SeedableRng::seed_from_u64`. Streams are deterministic across runs and
//! platforms, which is all the simulation requires — every distributional
//! claim in the test suite is about the *shape* of sampled noise, not about
//! matching the upstream crate's exact byte stream.

/// Core source of randomness: 32/64-bit outputs plus byte fill.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` by expanding it with SplitMix64 (the rand 0.8
    /// convention, which keeps low-entropy seeds well separated).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut state);
            let bytes = v.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics on an empty range,
    /// like the upstream crate.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((u128::sample_standard(rng) % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-domain range: every bit pattern is valid.
                    return u128::sample_standard(rng) as $t;
                }
                lo.wrapping_add((u128::sample_standard(rng) % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t>::sample_standard(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + <$t>::sample_standard(rng) * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing sampling helpers, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a value over a type's whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG — xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(0u8..=3);
            assert!(v <= 3);
            saw_lo |= v == 0;
            saw_hi |= v == 3;
        }
        assert!(saw_lo && saw_hi);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.1)));
    }
}
