//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Supports the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — with honest wall-clock measurement (median of timed batches)
//! and plain-text reporting. No statistics engine, no HTML reports.

use std::time::{Duration, Instant};

/// Re-exported std hint; good enough to defeat trivial const-folding.
pub use std::hint::black_box;

/// Batch sizing hints (accepted, unused).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

/// Top-level harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.measurement_time,
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&id.into());
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }
}

/// A named group; ids are prefixed with the group name.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        self.parent.bench_function(full, f);
        self
    }

    /// Override the sample count for the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(2);
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then timed samples until the budget or the
        // sample count runs out.
        black_box(routine());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let best = sorted[0];
        println!(
            "{id:<40} median {median:>12?}  best {best:>12?}  ({} samples)",
            sorted.len()
        );
    }
}

/// Group benchmark functions, optionally with a configured `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(5);
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls >= 2);
    }

    #[test]
    fn groups_prefix_names_and_batched_runs() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("g");
        let mut n = 0;
        g.bench_function("inner", |b| {
            b.iter_batched(
                || vec![1u8; 8],
                |v| {
                    n += 1;
                    v.len()
                },
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert!(n >= 2);
    }
}
