//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate, covering the subset this workspace uses: cheaply-cloneable
//! immutable [`Bytes`] (backed by an `Arc` with zero-copy `slice`),
//! growable [`BytesMut`] with `freeze`, and the [`BufMut`] put-methods the
//! wire codecs emit through.
//!
//! Unlike the first iteration of this shim (which stored `Arc<[u8]>` and
//! therefore had to copy on every `Vec<u8> -> Bytes` conversion), the
//! buffer is an `Arc<Vec<u8>>`: conversion and `freeze` are moves, and
//! when the last reference drops the backing `Vec` is returned to a
//! thread-local [`pool`] for reuse. In the simulator's hot loop — build
//! frame, deliver through links/switch ports, tap it, drop it — this
//! turns per-frame heap churn into constant-space buffer recycling.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::mem::ManuallyDrop;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Thread-local recycling pool for the `Vec<u8>` allocations behind
/// [`Bytes`] and [`BytesMut`].
///
/// The pool is best-effort and invisible to value semantics: buffers are
/// cleared before reuse, so whether an allocation is fresh or recycled
/// never changes observable bytes (and therefore never perturbs the
/// simulator's determinism). Each thread keeps its own free list; a
/// buffer reclaimed on one thread is reused by that thread only.
pub mod pool {
    use std::cell::RefCell;

    /// Retain at most this many free buffers per thread.
    const MAX_POOLED_BUFFERS: usize = 4096;
    /// Don't retain buffers larger than this (keeps a burst of jumbo
    /// allocations from pinning memory forever).
    const MAX_POOLED_CAPACITY: usize = 1 << 16;

    /// Counters describing pool behaviour since the last
    /// [`reset_stats`], for benchmarks and diagnostics.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    pub struct PoolStats {
        /// Buffers handed back out from the free list.
        pub reused: u64,
        /// Buffers that had to be freshly allocated.
        pub allocated: u64,
        /// Buffers returned to the free list on drop.
        pub reclaimed: u64,
        /// `Bytes` backing buffers currently alive on this thread:
        /// births (every `Vec<u8> -> Bytes` conversion with nonzero
        /// capacity, which all allocating constructors funnel through)
        /// minus last-reference drops. A buffer that migrates to
        /// another thread before its final drop is debited there, so
        /// per-thread values are approximate under cross-thread
        /// hand-off; single-threaded flows (an engine run) are exact.
        pub live: i64,
        /// High-water mark of [`PoolStats::live`] since the last reset
        /// — the retention gauge the streaming capture pipeline bounds.
        pub live_peak: i64,
    }

    struct PoolInner {
        enabled: bool,
        free: Vec<Vec<u8>>,
        stats: PoolStats,
    }

    thread_local! {
        static POOL: RefCell<PoolInner> = const {
            RefCell::new(PoolInner {
                enabled: true,
                free: Vec::new(),
                stats: PoolStats {
                    reused: 0,
                    allocated: 0,
                    reclaimed: 0,
                    live: 0,
                    live_peak: 0,
                },
            })
        };
    }

    impl PoolStats {
        /// Fold another thread's counters into this one: counts and
        /// `live` add; `live_peak` adds too, making the absorbed value
        /// an **upper bound** on the true cross-thread peak (the
        /// threads' peaks need not have coincided in time).
        pub fn absorb(&mut self, other: &PoolStats) {
            self.reused += other.reused;
            self.allocated += other.allocated;
            self.reclaimed += other.reclaimed;
            self.live += other.live;
            self.live_peak += other.live_peak;
        }
    }

    /// Enable or disable recycling on the current thread. Disabling
    /// drops the free list; allocation behaviour then matches a
    /// pool-free build (useful as a benchmark baseline).
    pub fn set_enabled(on: bool) {
        let _ = POOL.try_with(|p| {
            let mut p = p.borrow_mut();
            p.enabled = on;
            if !on {
                p.free.clear();
            }
        });
    }

    /// Pool counters for the current thread.
    pub fn stats() -> PoolStats {
        POOL.try_with(|p| p.borrow().stats).unwrap_or_default()
    }

    /// Zero the counters for the current thread. `live`/`live_peak`
    /// restart from zero, so they gauge buffers born after the reset;
    /// buffers already outstanding debit below zero when they drop.
    pub fn reset_stats() {
        let _ = POOL.try_with(|p| p.borrow_mut().stats = PoolStats::default());
    }

    /// Number of buffers currently parked on this thread's free list.
    pub fn free_buffers() -> usize {
        POOL.try_with(|p| p.borrow().free.len()).unwrap_or(0)
    }

    pub(crate) fn acquire(cap: usize) -> Vec<u8> {
        POOL.try_with(|p| {
            let mut p = p.borrow_mut();
            if p.enabled {
                if let Some(mut v) = p.free.pop() {
                    v.clear();
                    if v.capacity() < cap {
                        v.reserve(cap - v.len());
                    }
                    p.stats.reused += 1;
                    return v;
                }
            }
            p.stats.allocated += 1;
            Vec::with_capacity(cap)
        })
        .unwrap_or_else(|_| Vec::with_capacity(cap))
    }

    /// A `Bytes` backing buffer came alive on this thread.
    pub(crate) fn note_birth() {
        let _ = POOL.try_with(|p| {
            let mut p = p.borrow_mut();
            p.stats.live += 1;
            if p.stats.live > p.stats.live_peak {
                p.stats.live_peak = p.stats.live;
            }
        });
    }

    /// The last reference to a `Bytes` backing buffer dropped.
    pub(crate) fn note_death() {
        let _ = POOL.try_with(|p| p.borrow_mut().stats.live -= 1);
    }

    pub(crate) fn reclaim(mut v: Vec<u8>) {
        if v.capacity() == 0 || v.capacity() > MAX_POOLED_CAPACITY {
            return;
        }
        let _ = POOL.try_with(|p| {
            let mut p = p.borrow_mut();
            if p.enabled && p.free.len() < MAX_POOLED_BUFFERS {
                v.clear();
                p.free.push(v);
                p.stats.reclaimed += 1;
            }
        });
    }
}

/// A cheaply cloneable, sliceable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    // `ManuallyDrop` so `Drop` can take the `Arc` out and, when this was
    // the last reference, recycle the backing `Vec` through the pool.
    data: ManuallyDrop<Arc<Vec<u8>>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice (no allocation in the real crate; here one
    /// buffer allocation, amortized by clones being free).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(bytes)
    }

    /// Copy a slice into a new buffer (recycled from the pool when one
    /// is available).
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        let mut v = pool::acquire(data.len());
        v.extend_from_slice(data);
        Bytes::from(v)
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-view. Panics if the range is out of bounds,
    /// matching the upstream crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds of {}",
            self.len()
        );
        Bytes {
            data: ManuallyDrop::new(Arc::clone(&self.data)),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the view out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Drop for Bytes {
    fn drop(&mut self) {
        // SAFETY: `self.data` is never touched again — this is the drop
        // glue, and `ManuallyDrop` suppresses the automatic second drop.
        let arc = unsafe { ManuallyDrop::take(&mut self.data) };
        if let Ok(v) = Arc::try_unwrap(arc) {
            if v.capacity() > 0 {
                pool::note_death();
            }
            pool::reclaim(v);
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        // Capacity-0 vectors (e.g. the derived `Default`) hold no
        // allocation, so they don't count toward the live gauge —
        // `Drop` applies the same gate.
        if v.capacity() > 0 {
            pool::note_birth();
        }
        let end = v.len();
        Bytes {
            data: ManuallyDrop::new(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == &other[..]
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self[..].iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut {
            data: pool::acquire(0),
        }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: pool::acquire(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Reserve additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(mut self) -> Bytes {
        Bytes::from(std::mem::take(&mut self.data))
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Split off and return the first `at` bytes, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.data.split_off(at);
        BytesMut {
            data: std::mem::replace(&mut self.data, rest),
        }
    }
}

impl Drop for BytesMut {
    fn drop(&mut self) {
        pool::reclaim(std::mem::take(&mut self.data));
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.data), f)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> BytesMut {
        BytesMut { data }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

/// Big-endian (network order) append operations, as the wire codecs use.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Sequential read access (the tiny subset of `bytes::Buf` in use).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_share_storage_and_compare() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..2), Bytes::from(vec![2u8, 3]));
        assert_eq!(b.slice(4..), Bytes::from(vec![5u8]));
        assert_eq!(b.slice(..), b);
        assert!(b.slice(2..2).is_empty());
    }

    #[test]
    fn bytes_mut_put_and_freeze() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(0xAB);
        m.put_u16(0x0102);
        m.put_u32(0x03040506);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(&b[..], &[0xAB, 1, 2, 3, 4, 5, 6, b'x', b'y']);
    }

    #[test]
    fn equality_across_forms() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b, Bytes::copy_from_slice(b"hello"));
        assert_eq!(b, b"hello"[..]);
        assert_eq!(b.to_vec(), b"hello".to_vec());
        assert!(format!("{b:?}").contains("hello"));
    }

    #[test]
    fn buf_reading() {
        let mut b = Bytes::from(vec![9u8, 8, 7]);
        assert_eq!(b.remaining(), 3);
        b.advance(2);
        assert_eq!(b.chunk(), &[7]);
    }

    #[test]
    fn from_vec_is_a_move() {
        let v = vec![1u8; 64];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ref().as_ptr(), ptr, "From<Vec<u8>> must not copy");
    }

    #[test]
    fn freeze_is_a_move() {
        let mut m = BytesMut::with_capacity(64);
        m.put_slice(&[7u8; 48]);
        let ptr = m.as_ref().as_ptr();
        let b = m.freeze();
        assert_eq!(b.as_ref().as_ptr(), ptr, "freeze must not copy");
    }

    #[test]
    fn slices_keep_buffer_alive_after_parent_drop() {
        let b = Bytes::from(vec![9u8; 32]);
        let s = b.slice(8..16);
        drop(b);
        assert_eq!(&s[..], &[9u8; 8]);
    }

    #[test]
    fn pool_recycles_dropped_buffers() {
        pool::set_enabled(true);
        pool::reset_stats();
        // Drain whatever the test harness left parked so the reuse is
        // attributable to the buffer we drop below.
        let baseline = pool::free_buffers();
        let b = Bytes::from(vec![1u8; 256]);
        drop(b);
        assert!(pool::free_buffers() > baseline, "drop should reclaim");
        let c = Bytes::copy_from_slice(&[2u8; 128]);
        assert_eq!(&c[..], &[2u8; 128]);
        assert!(pool::stats().reused >= 1, "copy should reuse the buffer");
    }

    #[test]
    fn pool_disabled_matches_plain_alloc() {
        pool::set_enabled(false);
        pool::reset_stats();
        drop(Bytes::from(vec![1u8; 64]));
        assert_eq!(pool::free_buffers(), 0);
        assert_eq!(pool::stats().reclaimed, 0);
        let b = Bytes::copy_from_slice(b"still works");
        assert_eq!(&b[..], b"still works");
        pool::set_enabled(true);
    }

    #[test]
    fn live_gauge_tracks_births_and_last_drops() {
        pool::reset_stats();
        let base = pool::stats().live;
        let a = Bytes::from(vec![1u8; 32]);
        let b = Bytes::copy_from_slice(&[2u8; 32]);
        let c = Bytes::from(String::from("frozen payload"));
        assert_eq!(pool::stats().live, base + 3);
        assert!(pool::stats().live_peak >= base + 3);
        let view = a.slice(4..8); // clone of the same buffer: no birth
        assert_eq!(pool::stats().live, base + 3);
        drop(a); // `view` still holds the buffer
        assert_eq!(pool::stats().live, base + 3);
        drop(view);
        assert_eq!(pool::stats().live, base + 2);
        drop((b, c));
        assert_eq!(pool::stats().live, base);
        // Default/empty Bytes hold no allocation and never count.
        drop(Bytes::new());
        assert_eq!(pool::stats().live, base);
    }

    #[test]
    fn shared_buffers_are_not_reclaimed_early() {
        pool::set_enabled(true);
        let b = Bytes::from(vec![5u8; 64]);
        let clone = b.clone();
        let before = pool::free_buffers();
        drop(b); // still referenced by `clone`
        assert_eq!(pool::free_buffers(), before);
        assert_eq!(&clone[..], &[5u8; 64]);
    }
}
