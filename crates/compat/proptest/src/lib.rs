//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use, over a deterministic per-test RNG (seeded from the
//! test name, so failures reproduce exactly across runs). No shrinking:
//! a failing case panics with the sampled values visible in the assertion
//! message.

use std::ops::{Range, RangeInclusive};

/// Cases each `proptest!` test runs. Upstream defaults to 256; 96 keeps
/// the suite fast while still exercising the generators broadly.
pub const CASES: usize = 96;

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name so every test gets an independent,
    /// reproducible stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for b in name.bytes() {
            state = (state ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a whole-domain default strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, broadly ranged values.
        (rng.next_f64() - 0.5) * 2e12
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// Whole-domain strategy for `T` (`any::<u32>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The [`any`] strategy.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(((u128::from(rng.next_u64()) % span) as $t))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

/// A string literal is a regex-flavoured strategy. Supports the subset
/// used in the tests: literal characters, `[...]` character classes with
/// ranges, and `{n}` / `{m,n}` repetition.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_regex(self, rng)
    }
}

fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let mut class = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        class.extend((lo..=hi).filter(|c| c.is_ascii()));
                        i += 3;
                    } else {
                        class.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // consume ']'
                class
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min_rep, max_rep) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("closing }")
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((a, b)) => (a.parse().expect("rep min"), b.parse().expect("rep max")),
                None => {
                    let n: usize = spec.parse().expect("rep count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let reps = if max_rep > min_rep {
            min_rep + rng.below((max_rep - min_rep + 1) as u64) as usize
        } else {
            min_rep
        };
        assert!(!alphabet.is_empty(), "empty alphabet in pattern {pattern}");
        for _ in 0..reps {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draw a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// The [`vec`] strategy.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// `None` about a quarter of the time, otherwise `Some(inner)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The [`of`] strategy.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
    /// Upstream nests strategy modules under `prop::`.
    pub mod prop {
        pub use crate::{collection, option};
    }
}

/// Define property tests: each `#[test] fn name(pat in strategy, ...)`
/// becomes a test that samples every strategy [`CASES`] times.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng = $crate::TestRng::deterministic(stringify!($name));
                for __proptest_case in 0..$crate::CASES {
                    let _ = __proptest_case;
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                    $body
                }
            }
        )+
    };
}

/// `assert!` under a property-test name (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_collections_sample_in_bounds() {
        let mut rng = TestRng::deterministic("t1");
        for _ in 0..1000 {
            let v = (5u32..10).sample(&mut rng);
            assert!((5..10).contains(&v));
            let xs = collection::vec(any::<u8>(), 3..6).sample(&mut rng);
            assert!((3..6).contains(&xs.len()));
            let o = option::of(1u8..=1).sample(&mut rng);
            assert!(o.is_none() || o == Some(1));
        }
    }

    #[test]
    fn regex_subset_sampler() {
        let mut rng = TestRng::deterministic("t2");
        for _ in 0..200 {
            let s = "[A-Za-z0-9+/]{22}==".sample(&mut rng);
            assert_eq!(s.len(), 24);
            assert!(s.ends_with("=="));
            assert!(s[..22]
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '+' || c == '/'));
        }
        let t = "ab{3}c".sample(&mut rng);
        assert_eq!(t, "abbbc");
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = TestRng::deterministic("t3");
        let s = any::<u32>().prop_map(|v| u64::from(v) * 2);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u8..10, ys in crate::collection::vec(0u16..100, 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(ys.iter().all(|&y| y < 100), "ys {ys:?}");
        }
    }
}
