//! WebSocket (RFC 6455): upgrade handshake and framing.
//!
//! The paper identifies WebSocket as "the most accurate and consistent RTT
//! measurement in the context of JavaScript and DOM", so this module gets a
//! faithful treatment: a real key/accept handshake (SHA-1 + base64,
//! implemented in-tree) and byte-exact frames with client-side masking.

pub mod base64;
pub mod frame;
pub mod sha1;

pub use frame::{Frame, FrameDecoder, FrameError, Opcode};

use crate::message::{HttpRequest, HttpResponse, Method};

/// The protocol GUID from RFC 6455 §1.3.
pub const WS_GUID: &str = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11";

/// Build the client upgrade request for `path` with a 16-byte nonce.
pub fn client_handshake(path: &str, host: &str, nonce: [u8; 16]) -> HttpRequest {
    HttpRequest::new(Method::Get, path)
        .header("Host", host)
        .header("Upgrade", "websocket")
        .header("Connection", "Upgrade")
        .header("Sec-WebSocket-Key", base64::encode(&nonce))
        .header("Sec-WebSocket-Version", "13")
}

/// Compute the `Sec-WebSocket-Accept` value for a key.
pub fn accept_key(key: &str) -> String {
    let digest = sha1::sha1(format!("{key}{WS_GUID}").as_bytes());
    base64::encode(&digest)
}

/// Validate an upgrade request; returns the 101 response, or `None` if the
/// request is not a well-formed WebSocket upgrade.
pub fn server_handshake(req: &HttpRequest) -> Option<HttpResponse> {
    if req.method != Method::Get {
        return None;
    }
    let upgrade = req.get_header("upgrade")?;
    if !upgrade.eq_ignore_ascii_case("websocket") {
        return None;
    }
    let key = req.get_header("sec-websocket-key")?;
    // The key must decode to exactly 16 bytes.
    if base64::decode(key).map(|k| k.len()) != Some(16) {
        return None;
    }
    Some(
        HttpResponse::new(101)
            .header("Upgrade", "websocket")
            .header("Connection", "Upgrade")
            .header("Sec-WebSocket-Accept", accept_key(key)),
    )
}

/// Validate the server's 101 against the client's key.
pub fn verify_accept(resp: &HttpResponse, nonce: [u8; 16]) -> bool {
    resp.status == 101
        && resp.get_header("sec-websocket-accept")
            == Some(accept_key(&base64::encode(&nonce)).as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc6455_worked_example() {
        // §1.3: key "dGhlIHNhbXBsZSBub25jZQ==" → accept
        // "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=".
        assert_eq!(
            accept_key("dGhlIHNhbXBsZSBub25jZQ=="),
            "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        );
    }

    #[test]
    fn full_handshake_roundtrip() {
        let nonce = [7u8; 16];
        let req = client_handshake("/ws", "server", nonce);
        let resp = server_handshake(&req).expect("valid upgrade");
        assert_eq!(resp.status, 101);
        assert!(verify_accept(&resp, nonce));
        assert!(!verify_accept(&resp, [8u8; 16]));
    }

    #[test]
    fn non_upgrade_requests_rejected() {
        let plain = HttpRequest::new(Method::Get, "/ws").header("Host", "server");
        assert!(server_handshake(&plain).is_none());
        let post = HttpRequest::new(Method::Post, "/ws")
            .header("Upgrade", "websocket")
            .header("Sec-WebSocket-Key", base64::encode(&[1u8; 16]));
        assert!(server_handshake(&post).is_none());
    }

    #[test]
    fn bad_key_length_rejected() {
        let req = HttpRequest::new(Method::Get, "/ws")
            .header("Upgrade", "websocket")
            .header("Sec-WebSocket-Key", base64::encode(b"short"));
        assert!(server_handshake(&req).is_none());
    }
}
