//! RFC 6455 WebSocket frame encoding and incremental decoding.

use bytes::{BufMut, Bytes, BytesMut};

/// WebSocket opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Continuation of a fragmented message (unused by the probes).
    Continuation,
    /// UTF-8 text message.
    Text,
    /// Binary message.
    Binary,
    /// Connection close.
    Close,
    /// Ping.
    Ping,
    /// Pong.
    Pong,
}

impl Opcode {
    fn value(self) -> u8 {
        match self {
            Opcode::Continuation => 0x0,
            Opcode::Text => 0x1,
            Opcode::Binary => 0x2,
            Opcode::Close => 0x8,
            Opcode::Ping => 0x9,
            Opcode::Pong => 0xA,
        }
    }

    fn from_value(v: u8) -> Option<Opcode> {
        match v {
            0x0 => Some(Opcode::Continuation),
            0x1 => Some(Opcode::Text),
            0x2 => Some(Opcode::Binary),
            0x8 => Some(Opcode::Close),
            0x9 => Some(Opcode::Ping),
            0xA => Some(Opcode::Pong),
            _ => None,
        }
    }
}

/// A single (unfragmented) WebSocket frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame opcode.
    pub opcode: Opcode,
    /// Unmasked payload.
    pub payload: Bytes,
}

impl Frame {
    /// A text frame.
    pub fn text(s: &str) -> Frame {
        Frame {
            opcode: Opcode::Text,
            payload: Bytes::copy_from_slice(s.as_bytes()),
        }
    }

    /// A binary frame.
    pub fn binary(data: Bytes) -> Frame {
        Frame {
            opcode: Opcode::Binary,
            payload: data,
        }
    }

    /// Serialize with FIN set. Client frames must be masked (RFC 6455
    /// §5.1); pass the 4-byte masking key. Servers pass `None`.
    pub fn emit(&self, mask: Option<[u8; 4]>) -> Bytes {
        let len = self.payload.len();
        let mut buf = BytesMut::with_capacity(len + 14);
        buf.put_u8(0x80 | self.opcode.value()); // FIN + opcode
        let mask_bit = if mask.is_some() { 0x80 } else { 0x00 };
        if len < 126 {
            buf.put_u8(mask_bit | len as u8);
        } else if len <= u16::MAX as usize {
            buf.put_u8(mask_bit | 126);
            buf.put_u16(len as u16);
        } else {
            buf.put_u8(mask_bit | 127);
            buf.put_u64(len as u64);
        }
        match mask {
            Some(key) => {
                buf.put_slice(&key);
                for (i, b) in self.payload.iter().enumerate() {
                    buf.put_u8(b ^ key[i % 4]);
                }
            }
            None => buf.put_slice(&self.payload),
        }
        buf.freeze()
    }
}

/// Error from the frame decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Reserved opcode or reserved bits set.
    Malformed,
    /// Fragmented messages are not supported by the probe protocol.
    Fragmented,
}

/// Incremental frame decoder over a TCP byte stream.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append stream bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Try to decode the next complete frame.
    pub fn poll(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.buf.len() < 2 {
            return Ok(None);
        }
        let b0 = self.buf[0];
        let b1 = self.buf[1];
        let fin = b0 & 0x80 != 0;
        if b0 & 0x70 != 0 {
            return Err(FrameError::Malformed); // RSV bits
        }
        let opcode = Opcode::from_value(b0 & 0x0F).ok_or(FrameError::Malformed)?;
        if !fin || opcode == Opcode::Continuation {
            return Err(FrameError::Fragmented);
        }
        let masked = b1 & 0x80 != 0;
        let mut offset = 2usize;
        let len7 = (b1 & 0x7F) as usize;
        let len = match len7 {
            126 => {
                if self.buf.len() < offset + 2 {
                    return Ok(None);
                }
                let l = u16::from_be_bytes([self.buf[2], self.buf[3]]) as usize;
                offset += 2;
                l
            }
            127 => {
                if self.buf.len() < offset + 8 {
                    return Ok(None);
                }
                let mut b = [0u8; 8];
                b.copy_from_slice(&self.buf[2..10]);
                offset += 8;
                u64::from_be_bytes(b) as usize
            }
            l => l,
        };
        let mask_key = if masked {
            if self.buf.len() < offset + 4 {
                return Ok(None);
            }
            let mut k = [0u8; 4];
            k.copy_from_slice(&self.buf[offset..offset + 4]);
            offset += 4;
            Some(k)
        } else {
            None
        };
        if self.buf.len() < offset + len {
            return Ok(None);
        }
        let mut payload = self.buf[offset..offset + len].to_vec();
        if let Some(key) = mask_key {
            for (i, b) in payload.iter_mut().enumerate() {
                *b ^= key[i % 4];
            }
        }
        self.buf.drain(..offset + len);
        Ok(Some(Frame {
            opcode,
            payload: Bytes::from(payload),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmasked_text_roundtrip() {
        let f = Frame::text("ping r=1");
        let wire = f.emit(None);
        assert_eq!(wire[0], 0x81);
        assert_eq!(wire[1], 8);
        let mut d = FrameDecoder::new();
        d.feed(&wire);
        assert_eq!(d.poll().unwrap().unwrap(), f);
        assert!(d.poll().unwrap().is_none());
    }

    #[test]
    fn masked_roundtrip_unmasks() {
        let f = Frame::binary(Bytes::from_static(&[1, 2, 3, 4, 5]));
        let wire = f.emit(Some([0xDE, 0xAD, 0xBE, 0xEF]));
        assert_eq!(wire[1] & 0x80, 0x80);
        // Masked payload differs on the wire.
        assert_ne!(&wire[6..], &[1, 2, 3, 4, 5]);
        let mut d = FrameDecoder::new();
        d.feed(&wire);
        assert_eq!(d.poll().unwrap().unwrap(), f);
    }

    #[test]
    fn extended_16bit_length() {
        let payload = Bytes::from(vec![7u8; 300]);
        let f = Frame::binary(payload.clone());
        let wire = f.emit(None);
        assert_eq!(wire[1], 126);
        assert_eq!(u16::from_be_bytes([wire[2], wire[3]]), 300);
        let mut d = FrameDecoder::new();
        d.feed(&wire);
        assert_eq!(d.poll().unwrap().unwrap().payload, payload);
    }

    #[test]
    fn extended_64bit_length() {
        let payload = Bytes::from(vec![9u8; 70_000]);
        let f = Frame::binary(payload.clone());
        let wire = f.emit(None);
        assert_eq!(wire[1], 127);
        let mut d = FrameDecoder::new();
        d.feed(&wire);
        assert_eq!(d.poll().unwrap().unwrap().payload.len(), 70_000);
    }

    #[test]
    fn partial_feeds_return_none_until_complete() {
        let wire = Frame::text("hello").emit(Some([1, 2, 3, 4]));
        let mut d = FrameDecoder::new();
        for i in 0..wire.len() - 1 {
            d.feed(&wire[i..i + 1]);
            assert!(d.poll().unwrap().is_none(), "complete too early at {i}");
        }
        d.feed(&wire[wire.len() - 1..]);
        assert_eq!(&d.poll().unwrap().unwrap().payload[..], b"hello");
    }

    #[test]
    fn two_frames_in_one_feed() {
        let mut d = FrameDecoder::new();
        let mut wire = Frame::text("a").emit(None).to_vec();
        wire.extend_from_slice(&Frame::text("b").emit(None));
        d.feed(&wire);
        assert_eq!(&d.poll().unwrap().unwrap().payload[..], b"a");
        assert_eq!(&d.poll().unwrap().unwrap().payload[..], b"b");
        assert!(d.poll().unwrap().is_none());
    }

    #[test]
    fn control_frames() {
        for op in [Opcode::Close, Opcode::Ping, Opcode::Pong] {
            let f = Frame {
                opcode: op,
                payload: Bytes::new(),
            };
            let mut d = FrameDecoder::new();
            d.feed(&f.emit(None));
            assert_eq!(d.poll().unwrap().unwrap().opcode, op);
        }
    }

    #[test]
    fn reserved_bits_rejected() {
        let mut wire = Frame::text("x").emit(None).to_vec();
        wire[0] |= 0x40;
        let mut d = FrameDecoder::new();
        d.feed(&wire);
        assert_eq!(d.poll().unwrap_err(), FrameError::Malformed);
    }

    #[test]
    fn fragmentation_rejected() {
        let mut wire = Frame::text("x").emit(None).to_vec();
        wire[0] &= 0x7F; // clear FIN
        let mut d = FrameDecoder::new();
        d.feed(&wire);
        assert_eq!(d.poll().unwrap_err(), FrameError::Fragmented);
    }
}
