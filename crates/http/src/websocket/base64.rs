//! Standard-alphabet base64 (RFC 4648), in-tree for the WebSocket
//! handshake keys.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode `data` with padding.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decode padded base64; `None` on any malformed input.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some(u32::from(c - b'A')),
            b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for chunk in bytes.chunks_exact(4) {
        let pad = chunk.iter().filter(|&&c| c == b'=').count();
        // Padding may only appear at the end of the chunk.
        if pad > 2 || chunk[..4 - pad].contains(&b'=') {
            return None;
        }
        let mut n: u32 = 0;
        for &c in &chunk[..4 - pad] {
            n = (n << 6) | val(c)?;
        }
        n <<= 6 * pad as u32;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn decode_vectors() {
        assert_eq!(decode("Zm9vYmFy").unwrap(), b"foobar");
        assert_eq!(decode("Zg==").unwrap(), b"f");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn roundtrip_all_byte_values() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(decode("Zg=").is_none()); // bad length
        assert!(decode("Z!==").is_none()); // bad char
        assert!(decode("=Zg=").is_none()); // padding inside
        assert!(decode("====").is_none()); // too much padding
    }

    #[test]
    fn websocket_sample_nonce() {
        // RFC 6455 §1.3 sample key decodes to 16 bytes.
        let k = decode("dGhlIHNhbXBsZSBub25jZQ==").unwrap();
        assert_eq!(k.len(), 16);
        assert_eq!(encode(&k), "dGhlIHNhbXBsZSBub25jZQ==");
    }
}
