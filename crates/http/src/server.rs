//! The testbed web server: an Apache-like [`HostApp`].
//!
//! Serves everything the ten measurement methods need (paper §3):
//!
//! * `GET /` and `GET /container/<anything>` — the **container page** with
//!   the embedded "measurement code" (preparation phase);
//! * `GET /probe?...` and `POST /probe` — the measurement endpoint; the
//!   response is deliberately small enough for one packet;
//! * `GET /ws` — WebSocket upgrade; afterwards every text/binary message
//!   is echoed back;
//! * a raw **TCP echo** port for the Flash/Java socket methods;
//! * a **UDP echo** port for the Java UDP method.
//!
//! An optional per-request `handler_delay` models server think time — the
//! knob behind the server-side-overhead extension experiment. (The
//! testbed's 50 ms "Internet" delay is *not* here: it is netem-style extra
//! delay on the server's link, exactly as in the paper.)

use std::collections::HashMap;

use bytes::Bytes;

use bnm_sim::time::SimDuration;
use bnm_sim::wire::{ChunkKind, DataChunk};
use bnm_tcp::stack::SockEvent;
use bnm_tcp::udp::UdpRx;
use bnm_tcp::{HostApp, HostCtx, SocketId};

use crate::message::{HttpRequest, HttpResponse, Method};
use crate::parser::{HttpParser, ParseOutcome};
use crate::websocket::{self, Frame, FrameDecoder, Opcode};

/// Web server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// HTTP (and WebSocket-upgrade) port.
    pub http_port: u16,
    /// Raw TCP echo port for socket-based methods.
    pub tcp_echo_port: u16,
    /// UDP echo port.
    pub udp_echo_port: u16,
    /// WebRTC data-channel port (DCEP handshake + datagram echo).
    pub webrtc_port: u16,
    /// Per-request server think time (0 in the baseline testbed).
    pub handler_delay: SimDuration,
    /// Size of the served container page.
    pub container_page_size: usize,
    /// Size of probe responses (kept single-packet, per §3).
    pub probe_response_size: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            http_port: 80,
            tcp_echo_port: 8081,
            udp_echo_port: 7,
            webrtc_port: 3478,
            handler_delay: SimDuration::ZERO,
            container_page_size: 2048,
            probe_response_size: 64,
        }
    }
}

/// Per-connection protocol state.
enum Conn {
    /// Parsing HTTP requests (possibly keep-alive pipelined).
    Http { parser: HttpParser },
    /// Upgraded to WebSocket.
    WebSocket { decoder: FrameDecoder },
    /// Raw TCP echo.
    Echo,
}

/// Parse a WebSocket bulk request: `bulk n=<n> r=<r> t=<t>`.
fn parse_ws_bulk(payload: &[u8]) -> Option<(usize, String, String)> {
    let text = std::str::from_utf8(payload).ok()?;
    let rest = text.strip_prefix("bulk ")?;
    let mut n = None;
    let mut r = None;
    let mut t = None;
    for kv in rest.split_whitespace() {
        match kv.split_once('=') {
            Some(("n", v)) => n = v.parse().ok(),
            Some(("r", v)) => r = Some(v.to_string()),
            Some(("t", v)) => t = Some(v.to_string()),
            _ => {}
        }
    }
    Some((n?, r?, t?))
}

/// A reply scheduled after the handler delay.
struct PendingReply {
    sock: SocketId,
    bytes: Bytes,
    close_after: bool,
}

/// Counters exposed for tests and reports.
#[derive(Debug, Default, Clone)]
pub struct ServerStats {
    /// HTTP requests answered (by method).
    pub gets: u64,
    /// POST requests answered.
    pub posts: u64,
    /// Container pages served.
    pub pages: u64,
    /// WebSocket upgrades performed.
    pub ws_upgrades: u64,
    /// WebSocket messages echoed.
    pub ws_echoes: u64,
    /// Raw TCP echo payload bytes.
    pub tcp_echo_bytes: u64,
    /// UDP datagrams echoed.
    pub udp_echoes: u64,
    /// WebRTC data channels opened (DCEP OPEN answered with ACK).
    pub webrtc_opens: u64,
    /// WebRTC data chunks echoed.
    pub webrtc_echoes: u64,
    /// Requests answered 404.
    pub not_found: u64,
    /// Bulk (throughput-test) bytes served.
    pub bulk_bytes: u64,
    /// Most TCP connections open at once — the accept/parse backlog a
    /// multi-client scenario piles onto one server.
    pub peak_concurrent: u64,
}

/// The web server application.
pub struct WebServer {
    cfg: ServerConfig,
    conns: HashMap<SocketId, Conn>,
    pending: Vec<PendingReply>,
    /// Bytes a full send buffer rejected, awaiting `Writable`.
    tx_backlog: HashMap<SocketId, (Bytes, bool)>,
    /// Service counters.
    pub stats: ServerStats,
}

impl WebServer {
    /// A server with the given configuration.
    pub fn new(cfg: ServerConfig) -> Self {
        WebServer {
            cfg,
            conns: HashMap::new(),
            pending: Vec::new(),
            tx_backlog: HashMap::new(),
            stats: ServerStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// The container page body: HTML with a script stub, padded to the
    /// configured size (its exact content is irrelevant to timing; its
    /// size is what shows up on the wire).
    fn container_page(&self) -> Bytes {
        let head = "<!DOCTYPE html><html><head><title>bnm probe</title></head><body>\
                    <script src=\"/measure.js\"></script>";
        let tail = "</body></html>";
        let mut page = String::with_capacity(self.cfg.container_page_size);
        page.push_str(head);
        while page.len() + tail.len() < self.cfg.container_page_size {
            page.push_str("<!-- padding -->");
        }
        page.truncate(self.cfg.container_page_size.saturating_sub(tail.len()));
        page.push_str(tail);
        Bytes::from(page)
    }

    fn probe_body(&self, round: &str, token: &str) -> Bytes {
        let mut body = format!("pong r={round} t={token} ");
        while body.len() < self.cfg.probe_response_size {
            body.push('.');
        }
        body.truncate(self.cfg.probe_response_size);
        Bytes::from(body)
    }

    /// A bulk (throughput-test) body: marker line + padding to `n` bytes.
    fn bulk_body(round: &str, token: &str, n: usize) -> Bytes {
        let marker = format!("bulk r={round} t={token} ");
        let mut body = Vec::with_capacity(n.max(marker.len()));
        body.extend_from_slice(marker.as_bytes());
        body.resize(n.max(marker.len()), b'#');
        Bytes::from(body)
    }

    fn route(&mut self, req: &HttpRequest) -> (HttpResponse, bool) {
        let close = req
            .get_header("connection")
            .is_some_and(|c| c.eq_ignore_ascii_case("close"));
        let resp = match (req.method, req.path()) {
            (Method::Get, "/") | (Method::Get, "/index.html") => {
                self.stats.pages += 1;
                HttpResponse::new(200)
                    .header("Server", "bnm-apache/2.2")
                    .header("Content-Type", "text/html")
                    .with_body(self.container_page())
            }
            (Method::Get, p) if p.starts_with("/container/") => {
                self.stats.pages += 1;
                HttpResponse::new(200)
                    .header("Server", "bnm-apache/2.2")
                    .header("Content-Type", "text/html")
                    .with_body(self.container_page())
            }
            (Method::Get, "/measure.js") => {
                self.stats.gets += 1;
                HttpResponse::new(200)
                    .header("Server", "bnm-apache/2.2")
                    .header("Content-Type", "application/javascript")
                    .with_body(Bytes::from_static(b"/* measurement code stub */"))
            }
            (Method::Get, "/plugin.swf") => {
                self.stats.gets += 1;
                // A stand-in SWF: magic bytes + padding (the size is what
                // matters to the wire, not the content).
                let mut body = b"FWS\x09".to_vec();
                body.resize(1200, 0u8);
                HttpResponse::new(200)
                    .header("Server", "bnm-apache/2.2")
                    .header("Content-Type", "application/x-shockwave-flash")
                    .with_body(Bytes::from(body))
            }
            (Method::Get, "/applet.jar") => {
                self.stats.gets += 1;
                // A stand-in JAR: ZIP magic + padding.
                let mut body = b"PK\x03\x04".to_vec();
                body.resize(1800, 0u8);
                HttpResponse::new(200)
                    .header("Server", "bnm-apache/2.2")
                    .header("Content-Type", "application/java-archive")
                    .with_body(Bytes::from(body))
            }
            (Method::Get, "/probe") => {
                self.stats.gets += 1;
                let r = req.query_param("r").unwrap_or("0").to_string();
                let t = req.query_param("t").unwrap_or("0").to_string();
                HttpResponse::new(200)
                    .header("Server", "bnm-apache/2.2")
                    .header("Content-Type", "text/plain")
                    .header("Cache-Control", "no-store")
                    .with_body(self.probe_body(&r, &t))
            }
            (Method::Get, "/bulk") => {
                self.stats.gets += 1;
                let r = req.query_param("r").unwrap_or("0").to_string();
                let t = req.query_param("t").unwrap_or("0").to_string();
                let n: usize = req
                    .query_param("n")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(65536);
                self.stats.bulk_bytes += n as u64;
                HttpResponse::new(200)
                    .header("Server", "bnm-apache/2.2")
                    .header("Content-Type", "application/octet-stream")
                    .header("Cache-Control", "no-store")
                    .with_body(Self::bulk_body(&r, &t, n))
            }
            (Method::Post, "/probe") => {
                self.stats.posts += 1;
                let body = String::from_utf8_lossy(&req.body).to_string();
                let param = |k: &str| {
                    body.split('&')
                        .find_map(|kv| kv.split_once('=').filter(|(n, _)| *n == k).map(|(_, v)| v))
                        .unwrap_or("0")
                        .to_string()
                };
                let r = param("r");
                let t = param("t");
                HttpResponse::new(200)
                    .header("Server", "bnm-apache/2.2")
                    .header("Content-Type", "text/plain")
                    .header("Cache-Control", "no-store")
                    .with_body(self.probe_body(&r, &t))
            }
            _ => {
                self.stats.not_found += 1;
                HttpResponse::new(404)
                    .header("Server", "bnm-apache/2.2")
                    .with_body(Bytes::from_static(b"not found"))
            }
        };
        (resp, close)
    }

    /// Write as much of `bytes` as the send buffer takes; stash the rest
    /// for the `Writable` event (backpressure-correct bulk replies).
    fn send_with_backlog(
        &mut self,
        ctx: &mut HostCtx,
        sock: SocketId,
        bytes: Bytes,
        close_after: bool,
    ) {
        let n = ctx.send(sock, &bytes);
        if n < bytes.len() {
            self.tx_backlog
                .insert(sock, (bytes.slice(n..), close_after));
        } else if close_after {
            ctx.close(sock);
        }
    }

    fn queue_reply(&mut self, ctx: &mut HostCtx, sock: SocketId, bytes: Bytes, close_after: bool) {
        if self.cfg.handler_delay == SimDuration::ZERO {
            self.send_with_backlog(ctx, sock, bytes, close_after);
        } else {
            self.pending.push(PendingReply {
                sock,
                bytes,
                close_after,
            });
            let token = (self.pending.len() - 1) as u64;
            ctx.set_app_timer(self.cfg.handler_delay, token);
        }
    }

    fn on_http_bytes(&mut self, ctx: &mut HostCtx, sock: SocketId, data: &[u8]) {
        // Take the connection state out to sidestep the borrow of `self`.
        let Some(mut conn) = self.conns.remove(&sock) else {
            return;
        };
        match &mut conn {
            Conn::Http { parser } => {
                let mut outcome = parser.feed(data);
                loop {
                    match outcome {
                        ParseOutcome::Request(req) => {
                            // WebSocket upgrade?
                            if let Some(resp) = websocket::server_handshake(&req) {
                                self.stats.ws_upgrades += 1;
                                ctx.send(sock, &resp.emit());
                                let mut decoder = FrameDecoder::new();
                                let rem = parser.take_remainder();
                                decoder.feed(&rem);
                                self.conns.insert(sock, Conn::WebSocket { decoder });
                                // Frames may have arrived piggybacked on the
                                // upgrade segment: process them right away.
                                self.on_http_bytes(ctx, sock, &[]);
                                return;
                            }
                            let (resp, close) = self.route(&req);
                            self.queue_reply(ctx, sock, resp.emit(), close);
                        }
                        ParseOutcome::Error(_) => {
                            ctx.send(
                                sock,
                                &HttpResponse::new(400)
                                    .with_body(Bytes::from_static(b"bad request"))
                                    .emit(),
                            );
                            ctx.close(sock);
                            break;
                        }
                        ParseOutcome::Incomplete | ParseOutcome::Response(_) => break,
                    }
                    outcome = parser.poll();
                }
            }
            Conn::WebSocket { decoder } => {
                decoder.feed(data);
                loop {
                    match decoder.poll() {
                        Ok(Some(frame)) => match frame.opcode {
                            Opcode::Text | Opcode::Binary => {
                                self.stats.ws_echoes += 1;
                                // Throughput mode: "bulk n=<n> r=<r> t=<t>"
                                // requests a large binary reply.
                                let reply = match parse_ws_bulk(&frame.payload) {
                                    Some((n, r, t)) => {
                                        self.stats.bulk_bytes += n as u64;
                                        Frame {
                                            opcode: Opcode::Binary,
                                            payload: WebServer::bulk_body(&r, &t, n),
                                        }
                                    }
                                    None => Frame {
                                        opcode: frame.opcode,
                                        payload: frame.payload,
                                    },
                                };
                                // Server frames are unmasked.
                                let bytes = reply.emit(None);
                                self.queue_reply(ctx, sock, bytes, false);
                            }
                            Opcode::Ping => {
                                let pong = Frame {
                                    opcode: Opcode::Pong,
                                    payload: frame.payload,
                                };
                                ctx.send(sock, &pong.emit(None));
                            }
                            Opcode::Close => {
                                ctx.send(
                                    sock,
                                    &Frame {
                                        opcode: Opcode::Close,
                                        payload: Bytes::new(),
                                    }
                                    .emit(None),
                                );
                                ctx.close(sock);
                            }
                            Opcode::Pong | Opcode::Continuation => {}
                        },
                        Ok(None) => break,
                        Err(_) => {
                            ctx.abort(sock);
                            break;
                        }
                    }
                }
            }
            Conn::Echo => {
                self.stats.tcp_echo_bytes += data.len() as u64;
                let echoed = Bytes::copy_from_slice(data);
                self.queue_reply(ctx, sock, echoed, false);
            }
        }
        self.conns.insert(sock, conn);
    }
}

impl HostApp for WebServer {
    fn on_boot(&mut self, ctx: &mut HostCtx) {
        ctx.listen(self.cfg.http_port);
        ctx.listen(self.cfg.tcp_echo_port);
        ctx.udp_bind(self.cfg.udp_echo_port);
        ctx.udp_bind(self.cfg.webrtc_port);
    }

    fn on_event(&mut self, ctx: &mut HostCtx, ev: SockEvent) {
        match ev {
            SockEvent::Accepted {
                listener_port,
                sock,
                ..
            } => {
                let conn = if listener_port == self.cfg.tcp_echo_port {
                    Conn::Echo
                } else {
                    Conn::Http {
                        parser: HttpParser::new(),
                    }
                };
                self.conns.insert(sock, conn);
                self.stats.peak_concurrent =
                    self.stats.peak_concurrent.max(self.conns.len() as u64);
            }
            SockEvent::Data { sock } => {
                let data = ctx.recv(sock);
                self.on_http_bytes(ctx, sock, &data);
            }
            SockEvent::PeerClosed { sock } => {
                ctx.close(sock);
            }
            SockEvent::Closed { sock } | SockEvent::Reset { sock } => {
                self.conns.remove(&sock);
                self.tx_backlog.remove(&sock);
            }
            SockEvent::Writable { sock } => {
                if let Some((bytes, close_after)) = self.tx_backlog.remove(&sock) {
                    self.send_with_backlog(ctx, sock, bytes, close_after);
                }
            }
            SockEvent::Connected { .. } => {}
        }
    }

    fn on_udp(&mut self, ctx: &mut HostCtx, rx: UdpRx) {
        if rx.local_port == self.cfg.udp_echo_port {
            self.stats.udp_echoes += 1;
            ctx.udp_send(rx.local_port, rx.from, rx.payload);
        } else if rx.local_port == self.cfg.webrtc_port {
            // WebRTC data-channel endpoint: answer DCEP opens, echo data
            // chunks verbatim (seq included, so the client sees exactly
            // what the network delivered — no retransmit, no reorder-fix).
            let Ok(chunk) = DataChunk::parse(&rx.payload) else {
                return;
            };
            match chunk.kind {
                ChunkKind::DcepOpen => {
                    self.stats.webrtc_opens += 1;
                    ctx.udp_send(rx.local_port, rx.from, DataChunk::ack(chunk.stream).emit());
                }
                ChunkKind::Data => {
                    self.stats.webrtc_echoes += 1;
                    ctx.udp_send(rx.local_port, rx.from, rx.payload);
                }
                ChunkKind::DcepAck => {}
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCtx, token: u64) {
        let Some(reply) = self.pending.get(token as usize) else {
            return;
        };
        let bytes = reply.bytes.clone();
        let sock = reply.sock;
        let close_after = reply.close_after;
        self.send_with_backlog(ctx, sock, bytes, close_after);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnm_sim::engine::Engine;
    use bnm_sim::link::LinkSpec;
    use bnm_sim::time::SimTime;
    use bnm_sim::wire::MacAddr;
    use bnm_tcp::{Host, HostConfig};
    use std::net::Ipv4Addr;

    const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 2);
    const SERVER_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 10);

    /// Scripted client: connects, writes raw bytes, collects raw bytes.
    struct RawClient {
        port: u16,
        to_send: Vec<u8>,
        received: Vec<u8>,
        recv_times: Vec<SimTime>,
        sock: Option<SocketId>,
    }

    impl HostApp for RawClient {
        fn on_boot(&mut self, ctx: &mut HostCtx) {
            self.sock = Some(ctx.connect((SERVER_IP, self.port)));
        }
        fn on_event(&mut self, ctx: &mut HostCtx, ev: SockEvent) {
            match ev {
                SockEvent::Connected { sock } => {
                    let data = self.to_send.clone();
                    ctx.send(sock, &data);
                }
                SockEvent::Data { sock } => {
                    self.recv_times.push(ctx.now());
                    self.received.extend_from_slice(&ctx.recv(sock));
                }
                _ => {}
            }
        }
    }

    fn run_with_client(cfg: ServerConfig, port: u16, to_send: Vec<u8>) -> (Engine, usize, usize) {
        let mut e = Engine::new();
        let c = e.add_node(Box::new(Host::new(
            HostConfig::new("client", MacAddr::local(2), CLIENT_IP)
                .with_neighbor(SERVER_IP, MacAddr::local(1)),
            RawClient {
                port,
                to_send,
                received: Vec::new(),
                recv_times: Vec::new(),
                sock: None,
            },
        )));
        let s = e.add_node(Box::new(Host::new(
            HostConfig::new("server", MacAddr::local(1), SERVER_IP)
                .with_neighbor(CLIENT_IP, MacAddr::local(2)),
            WebServer::new(cfg),
        )));
        e.connect(c, 0, s, 0, LinkSpec::fast_ethernet());
        e.run();
        (e, c, s)
    }

    #[test]
    fn serves_container_page() {
        let (e, c, s) = run_with_client(
            ServerConfig::default(),
            80,
            b"GET / HTTP/1.1\r\nHost: server\r\n\r\n".to_vec(),
        );
        let client = e.node_ref::<Host<RawClient>>(c).app();
        let text = String::from_utf8_lossy(&client.received);
        assert!(text.starts_with("HTTP/1.1 200 OK"));
        assert!(text.contains("text/html"));
        assert!(text.contains("<!DOCTYPE html>"));
        assert_eq!(e.node_ref::<Host<WebServer>>(s).app().stats.pages, 1);
    }

    #[test]
    fn container_page_is_requested_size() {
        let cfg = ServerConfig {
            container_page_size: 1000,
            ..ServerConfig::default()
        };
        let server = WebServer::new(cfg);
        assert_eq!(server.container_page().len(), 1000);
    }

    #[test]
    fn probe_get_and_keepalive_second_round() {
        let wire = b"GET /probe?r=1&t=7 HTTP/1.1\r\nHost: s\r\n\r\n\
                     GET /probe?r=2&t=7 HTTP/1.1\r\nHost: s\r\n\r\n"
            .to_vec();
        let (e, c, s) = run_with_client(ServerConfig::default(), 80, wire);
        let client = e.node_ref::<Host<RawClient>>(c).app();
        let text = String::from_utf8_lossy(&client.received);
        assert!(text.contains("pong r=1 t=7"));
        assert!(text.contains("pong r=2 t=7"));
        assert_eq!(e.node_ref::<Host<WebServer>>(s).app().stats.gets, 2);
    }

    #[test]
    fn probe_post_parses_form_body() {
        let wire = b"POST /probe HTTP/1.1\r\nHost: s\r\nContent-Length: 7\r\n\r\nr=2&t=9".to_vec();
        let (e, c, s) = run_with_client(ServerConfig::default(), 80, wire);
        let client = e.node_ref::<Host<RawClient>>(c).app();
        let text = String::from_utf8_lossy(&client.received);
        assert!(text.contains("pong r=2 t=9"));
        assert_eq!(e.node_ref::<Host<WebServer>>(s).app().stats.posts, 1);
    }

    #[test]
    fn unknown_path_is_404() {
        let (e, c, _) = run_with_client(
            ServerConfig::default(),
            80,
            b"GET /nope HTTP/1.1\r\nHost: s\r\n\r\n".to_vec(),
        );
        let client = e.node_ref::<Host<RawClient>>(c).app();
        assert!(String::from_utf8_lossy(&client.received).starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn tcp_echo_port_echoes() {
        let (e, c, s) = run_with_client(
            ServerConfig::default(),
            8081,
            b"\x01\x02binary probe r=1".to_vec(),
        );
        let client = e.node_ref::<Host<RawClient>>(c).app();
        assert_eq!(client.received, b"\x01\x02binary probe r=1");
        assert_eq!(
            e.node_ref::<Host<WebServer>>(s).app().stats.tcp_echo_bytes,
            18
        );
    }

    #[test]
    fn websocket_upgrade_and_echo() {
        let nonce = [3u8; 16];
        let mut wire = websocket::client_handshake("/ws", "server", nonce)
            .emit()
            .to_vec();
        wire.extend_from_slice(&Frame::text("ws probe r=1").emit(Some([9, 9, 9, 9])));
        let (e, c, s) = run_with_client(ServerConfig::default(), 80, wire);
        let client = e.node_ref::<Host<RawClient>>(c).app();
        let text = String::from_utf8_lossy(&client.received);
        assert!(text.starts_with("HTTP/1.1 101"));
        // The echoed frame (unmasked) appears after the 101.
        let idx = client
            .received
            .windows(2)
            .position(|w| w == [0x81, 12])
            .expect("echo frame present");
        assert_eq!(&client.received[idx + 2..idx + 14], b"ws probe r=1");
        let stats = &e.node_ref::<Host<WebServer>>(s).app().stats;
        assert_eq!(stats.ws_upgrades, 1);
        assert_eq!(stats.ws_echoes, 1);
    }

    #[test]
    fn handler_delay_defers_response() {
        let cfg = ServerConfig {
            handler_delay: SimDuration::from_millis(50),
            ..ServerConfig::default()
        };
        let (e, c, _) = run_with_client(
            cfg,
            80,
            b"GET /probe?r=1&t=0 HTTP/1.1\r\nHost: s\r\n\r\n".to_vec(),
        );
        let client = e.node_ref::<Host<RawClient>>(c).app();
        assert!(!client.recv_times.is_empty());
        assert!(client.recv_times[0] >= SimTime::from_millis(50));
    }

    #[test]
    fn connection_close_honored() {
        let (e, c, _) = run_with_client(
            ServerConfig::default(),
            80,
            b"GET /probe?r=1&t=0 HTTP/1.1\r\nHost: s\r\nConnection: close\r\n\r\n".to_vec(),
        );
        // After the response the server closes; the client host sees
        // PeerClosed (we just check the socket count went to zero on the
        // server side eventually — engine ran to completion without hangs).
        let client = e.node_ref::<Host<RawClient>>(c).app();
        assert!(String::from_utf8_lossy(&client.received).contains("pong"));
    }

    #[test]
    fn udp_echo_works() {
        struct UdpProbe {
            got: Option<Bytes>,
        }
        impl HostApp for UdpProbe {
            fn on_boot(&mut self, ctx: &mut HostCtx) {
                let p = ctx.udp_bind_ephemeral();
                ctx.udp_send(p, (SERVER_IP, 7), Bytes::from_static(b"udp r=1"));
            }
            fn on_event(&mut self, _: &mut HostCtx, _: SockEvent) {}
            fn on_udp(&mut self, _ctx: &mut HostCtx, rx: UdpRx) {
                self.got = Some(rx.payload);
            }
        }
        let mut e = Engine::new();
        let c = e.add_node(Box::new(Host::new(
            HostConfig::new("client", MacAddr::local(2), CLIENT_IP)
                .with_neighbor(SERVER_IP, MacAddr::local(1)),
            UdpProbe { got: None },
        )));
        let s = e.add_node(Box::new(Host::new(
            HostConfig::new("server", MacAddr::local(1), SERVER_IP)
                .with_neighbor(CLIENT_IP, MacAddr::local(2)),
            WebServer::new(ServerConfig::default()),
        )));
        e.connect(c, 0, s, 0, LinkSpec::fast_ethernet());
        e.run();
        assert_eq!(
            e.node_ref::<Host<UdpProbe>>(c).app().got.as_deref(),
            Some(&b"udp r=1"[..])
        );
        assert_eq!(e.node_ref::<Host<WebServer>>(s).app().stats.udp_echoes, 1);
    }

    #[test]
    fn webrtc_open_then_data_echo() {
        struct RtcProbe {
            port: Option<u16>,
            acked: bool,
            echoed: Option<DataChunk>,
        }
        impl HostApp for RtcProbe {
            fn on_boot(&mut self, ctx: &mut HostCtx) {
                let p = ctx.udp_bind_ephemeral();
                self.port = Some(p);
                ctx.udp_send(p, (SERVER_IP, 3478), DataChunk::open(1).emit());
            }
            fn on_event(&mut self, _: &mut HostCtx, _: SockEvent) {}
            fn on_udp(&mut self, ctx: &mut HostCtx, rx: UdpRx) {
                let chunk = DataChunk::parse(&rx.payload).expect("chunk");
                match chunk.kind {
                    ChunkKind::DcepAck => {
                        self.acked = true;
                        ctx.udp_send(
                            self.port.unwrap(),
                            (SERVER_IP, 3478),
                            DataChunk::data(1, 7, Bytes::from_static(b"probe m=webrtc r=7 t=0 "))
                                .emit(),
                        );
                    }
                    ChunkKind::Data => self.echoed = Some(chunk),
                    ChunkKind::DcepOpen => {}
                }
            }
        }
        let mut e = Engine::new();
        let c = e.add_node(Box::new(Host::new(
            HostConfig::new("client", MacAddr::local(2), CLIENT_IP)
                .with_neighbor(SERVER_IP, MacAddr::local(1)),
            RtcProbe {
                port: None,
                acked: false,
                echoed: None,
            },
        )));
        let s = e.add_node(Box::new(Host::new(
            HostConfig::new("server", MacAddr::local(1), SERVER_IP)
                .with_neighbor(CLIENT_IP, MacAddr::local(2)),
            WebServer::new(ServerConfig::default()),
        )));
        e.connect(c, 0, s, 0, LinkSpec::fast_ethernet());
        e.run();
        let probe = e.node_ref::<Host<RtcProbe>>(c).app();
        assert!(probe.acked, "DCEP open answered");
        let echoed = probe.echoed.as_ref().expect("data chunk echoed");
        assert_eq!(echoed.seq, 7);
        assert_eq!(&echoed.payload[..], b"probe m=webrtc r=7 t=0 ");
        let stats = &e.node_ref::<Host<WebServer>>(s).app().stats;
        assert_eq!(stats.webrtc_opens, 1);
        assert_eq!(stats.webrtc_echoes, 1);
    }
}

#[cfg(test)]
mod bulk_tests {
    use super::*;

    #[test]
    fn bulk_body_has_marker_and_exact_size() {
        let b = WebServer::bulk_body("2", "17", 4096);
        assert_eq!(b.len(), 4096);
        assert!(b.starts_with(b"bulk r=2 t=17 "));
        assert!(b.ends_with(b"#"));
        // Tiny n still keeps the whole marker.
        let small = WebServer::bulk_body("1", "0", 4);
        assert!(small.starts_with(b"bulk r=1 t=0 "));
    }

    #[test]
    fn ws_bulk_request_parses() {
        assert_eq!(
            parse_ws_bulk(b"bulk n=65536 r=2 t=9"),
            Some((65536, "2".to_string(), "9".to_string()))
        );
        assert_eq!(parse_ws_bulk(b"probe m=ws r=1 t=0 "), None);
        assert_eq!(parse_ws_bulk(b"bulk n=x r=2 t=9"), None);
        assert_eq!(parse_ws_bulk(b"bulk r=2 t=9"), None);
        assert_eq!(parse_ws_bulk(&[0xFF, 0xFE]), None);
    }

    #[test]
    fn bulk_route_serves_requested_size() {
        let mut server = WebServer::new(ServerConfig::default());
        let req = crate::message::HttpRequest::new(Method::Get, "/bulk?n=10000&r=1&t=5");
        let (resp, close) = server.route(&req);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.len(), 10000);
        assert!(!close);
        assert_eq!(server.stats.bulk_bytes, 10000);
    }

    #[test]
    fn bulk_route_defaults_size_when_missing() {
        let mut server = WebServer::new(ServerConfig::default());
        let req = crate::message::HttpRequest::new(Method::Get, "/bulk?r=1&t=5");
        let (resp, _) = server.route(&req);
        assert_eq!(resp.body.len(), 65536);
    }
}
