//! # bnm-http — HTTP/1.1 and WebSocket over `bnm-tcp`
//!
//! The application-layer protocols the paper's measurement methods speak:
//!
//! * [`message`] / [`parser`] — HTTP/1.1 request/response framing and an
//!   incremental parser (headers + `Content-Length` bodies, keep-alive).
//! * [`websocket`] — RFC 6455 framing and the upgrade handshake, with
//!   in-tree SHA-1 and base64 (no external dependencies).
//! * [`server`] — the testbed's web server application: an Apache-like
//!   [`bnm_tcp::HostApp`] that serves the container page, answers probe
//!   requests (GET and POST), upgrades WebSocket connections, and echoes
//!   on raw TCP and UDP ports — every service the ten measurement methods
//!   need, with a configurable handler delay for the server-side-overhead
//!   extension experiment.

pub mod message;
pub mod parser;
pub mod server;
pub mod websocket;

pub use message::{HttpRequest, HttpResponse, Method};
pub use parser::{HttpParser, ParseOutcome};
pub use server::{ServerConfig, WebServer};
