//! HTTP/1.1 message types and serialization.

use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;

/// HTTP request methods the testbed uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET.
    Get,
    /// POST.
    Post,
    /// HEAD (completeness; unused by the paper's methods).
    Head,
}

impl Method {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
        }
    }

    /// Parse the wire spelling.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "HEAD" => Some(Method::Head),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An HTTP/1.1 request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method.
    pub method: Method,
    /// Request target (path + query).
    pub target: String,
    /// Ordered header list (names kept verbatim; lookups are
    /// case-insensitive).
    pub headers: Vec<(String, String)>,
    /// Message body.
    pub body: Bytes,
}

impl HttpRequest {
    /// A request with no headers or body.
    pub fn new(method: Method, target: impl Into<String>) -> Self {
        HttpRequest {
            method,
            target: target.into(),
            headers: Vec::new(),
            body: Bytes::new(),
        }
    }

    /// Append a header.
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Attach a body (a `Content-Length` header is emitted automatically).
    pub fn with_body(mut self, body: Bytes) -> Self {
        self.body = body;
        self
    }

    /// Case-insensitive header lookup.
    pub fn get_header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Path without the query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or("")
    }

    /// Value of a query parameter, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        let q = self.target.split_once('?')?.1;
        q.split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// Serialize to wire bytes.
    pub fn emit(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(256 + self.body.len());
        buf.put_slice(self.method.as_str().as_bytes());
        buf.put_u8(b' ');
        buf.put_slice(self.target.as_bytes());
        buf.put_slice(b" HTTP/1.1\r\n");
        for (n, v) in &self.headers {
            buf.put_slice(n.as_bytes());
            buf.put_slice(b": ");
            buf.put_slice(v.as_bytes());
            buf.put_slice(b"\r\n");
        }
        let has_len = self.get_header("content-length").is_some();
        if !self.body.is_empty() && !has_len {
            buf.put_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        buf.put_slice(b"\r\n");
        buf.put_slice(&self.body);
        buf.freeze()
    }
}

/// An HTTP/1.1 response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Ordered header list.
    pub headers: Vec<(String, String)>,
    /// Message body.
    pub body: Bytes,
}

impl HttpResponse {
    /// A response with the standard reason phrase for `status`.
    pub fn new(status: u16) -> Self {
        let reason = match status {
            200 => "OK",
            101 => "Switching Protocols",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            500 => "Internal Server Error",
            _ => "Unknown",
        };
        HttpResponse {
            status,
            reason: reason.to_string(),
            headers: Vec::new(),
            body: Bytes::new(),
        }
    }

    /// Append a header.
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Attach a body (a `Content-Length` header is emitted automatically).
    pub fn with_body(mut self, body: Bytes) -> Self {
        self.body = body;
        self
    }

    /// Case-insensitive header lookup.
    pub fn get_header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Serialize to wire bytes.
    pub fn emit(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(256 + self.body.len());
        buf.put_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).as_bytes());
        for (n, v) in &self.headers {
            buf.put_slice(n.as_bytes());
            buf.put_slice(b": ");
            buf.put_slice(v.as_bytes());
            buf.put_slice(b"\r\n");
        }
        let has_len = self.get_header("content-length").is_some();
        // 101 upgrade responses have no body and no Content-Length.
        if self.status != 101 && !has_len {
            buf.put_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        buf.put_slice(b"\r\n");
        buf.put_slice(&self.body);
        buf.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_emit_shape() {
        let req = HttpRequest::new(Method::Get, "/probe?m=xhr&r=1")
            .header("Host", "192.168.1.10")
            .header("User-Agent", "bnm/0.1");
        let bytes = req.emit();
        let text = std::str::from_utf8(&bytes).unwrap();
        assert!(text.starts_with("GET /probe?m=xhr&r=1 HTTP/1.1\r\n"));
        assert!(text.contains("Host: 192.168.1.10\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn post_gets_content_length() {
        let req =
            HttpRequest::new(Method::Post, "/probe").with_body(Bytes::from_static(b"r=1&t=42"));
        let text = String::from_utf8(req.emit().to_vec()).unwrap();
        assert!(text.contains("Content-Length: 8\r\n"));
        assert!(text.ends_with("r=1&t=42"));
    }

    #[test]
    fn query_params() {
        let req = HttpRequest::new(Method::Get, "/probe?m=dom&r=2&t=99");
        assert_eq!(req.path(), "/probe");
        assert_eq!(req.query_param("m"), Some("dom"));
        assert_eq!(req.query_param("r"), Some("2"));
        assert_eq!(req.query_param("t"), Some("99"));
        assert_eq!(req.query_param("x"), None);
        let bare = HttpRequest::new(Method::Get, "/index.html");
        assert_eq!(bare.path(), "/index.html");
        assert_eq!(bare.query_param("m"), None);
    }

    #[test]
    fn header_lookup_case_insensitive() {
        let r = HttpResponse::new(200).header("Content-Type", "text/html");
        assert_eq!(r.get_header("content-type"), Some("text/html"));
        assert_eq!(r.get_header("CONTENT-TYPE"), Some("text/html"));
    }

    #[test]
    fn response_emit_shape() {
        let r = HttpResponse::new(200)
            .header("Server", "bnm-apache/2.2")
            .with_body(Bytes::from_static(b"pong"));
        let text = String::from_utf8(r.emit().to_vec()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 4\r\n"));
        assert!(text.ends_with("pong"));
    }

    #[test]
    fn upgrade_response_has_no_content_length() {
        let r = HttpResponse::new(101)
            .header("Upgrade", "websocket")
            .header("Connection", "Upgrade");
        let text = String::from_utf8(r.emit().to_vec()).unwrap();
        assert!(text.starts_with("HTTP/1.1 101 Switching Protocols\r\n"));
        assert!(!text.to_lowercase().contains("content-length"));
    }

    #[test]
    fn method_parse_roundtrip() {
        for m in [Method::Get, Method::Post, Method::Head] {
            assert_eq!(Method::parse(m.as_str()), Some(m));
        }
        assert_eq!(Method::parse("BREW"), None);
    }
}
