//! Incremental HTTP/1.1 parser.
//!
//! Feed it TCP bytes as they arrive; it yields complete messages once the
//! header block and the `Content-Length` body are in. Designed for the
//! simulated byte stream: no chunked transfer encoding (the testbed's
//! responses always carry `Content-Length`, as Apache does for static
//! and small dynamic content).

use bnm_obs::Trace;
use bytes::Bytes;

use crate::message::{HttpRequest, HttpResponse, Method};

/// What `feed` produced.
#[derive(Debug)]
pub enum ParseOutcome {
    /// Need more bytes.
    Incomplete,
    /// A complete request.
    Request(HttpRequest),
    /// A complete response.
    Response(HttpResponse),
    /// Unrecoverable syntax error.
    Error(&'static str),
}

/// Incremental parser over a TCP byte stream carrying HTTP messages.
#[derive(Debug, Default)]
pub struct HttpParser {
    buf: Vec<u8>,
    trace: Trace,
    /// Virtual time the first byte of the in-flight message arrived
    /// (tracing only).
    msg_start_ns: Option<u64>,
    /// Virtual time of the latest `feed_at` call (tracing only).
    last_feed_ns: u64,
}

impl HttpParser {
    /// An empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a trace handle; each completed message gets an
    /// `http/message` span from its first byte (as stamped through
    /// [`HttpParser::feed_at`]) to its completion instant.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Bytes currently buffered (diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Append stream bytes and try to extract the next message.
    /// Call [`HttpParser::poll`] repeatedly to drain multiple pipelined
    /// messages.
    pub fn feed(&mut self, data: &[u8]) -> ParseOutcome {
        if self.trace.is_enabled() {
            if !data.is_empty() && self.buf.is_empty() && self.msg_start_ns.is_none() {
                self.msg_start_ns = Some(self.last_feed_ns);
            }
            self.trace.count("http.bytes_fed", data.len() as u64);
        }
        self.buf.extend_from_slice(data);
        self.poll()
    }

    /// [`HttpParser::feed`] with a virtual-time stamp, so traced parsers
    /// can span a message from first byte to completion.
    pub fn feed_at(&mut self, now_ns: u64, data: &[u8]) -> ParseOutcome {
        self.last_feed_ns = now_ns;
        self.feed(data)
    }

    /// Try to extract the next complete message from buffered bytes.
    pub fn poll(&mut self) -> ParseOutcome {
        let Some(header_end) = find_header_end(&self.buf) else {
            return ParseOutcome::Incomplete;
        };
        let head = match std::str::from_utf8(&self.buf[..header_end]) {
            Ok(h) => h.to_owned(),
            Err(_) => return ParseOutcome::Error("non-utf8 header block"),
        };
        let mut lines = head.split("\r\n");
        let start_line = lines.next().unwrap_or("");
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let Some((name, value)) = line.split_once(':') else {
                return ParseOutcome::Error("malformed header line");
            };
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
        let content_length = headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
            .map(|(_, v)| v.parse::<usize>());
        let body_len = match content_length {
            Some(Ok(n)) => n,
            Some(Err(_)) => return ParseOutcome::Error("bad content-length"),
            None => 0,
        };
        let total = header_end + 4 + body_len;
        if self.buf.len() < total {
            return ParseOutcome::Incomplete;
        }
        let body = Bytes::copy_from_slice(&self.buf[header_end + 4..total]);
        self.buf.drain(..total);
        if self.trace.is_enabled() {
            let start = self.msg_start_ns.take().unwrap_or(self.last_feed_ns);
            self.trace
                .span(start, self.last_feed_ns, "http", "message", None);
            self.trace.count("http.messages", 1);
            // Pipelined leftovers belong to the next message, whose first
            // byte arrived in the same feed.
            if !self.buf.is_empty() {
                self.msg_start_ns = Some(self.last_feed_ns);
            }
        }

        if let Some(rest) = start_line.strip_prefix("HTTP/1.1 ") {
            // Response: "HTTP/1.1 200 OK"
            let mut parts = rest.splitn(2, ' ');
            let status: u16 = match parts.next().unwrap_or("").parse() {
                Ok(s) => s,
                Err(_) => return ParseOutcome::Error("bad status code"),
            };
            let reason = parts.next().unwrap_or("").to_string();
            ParseOutcome::Response(HttpResponse {
                status,
                reason,
                headers,
                body,
            })
        } else {
            // Request: "GET /path HTTP/1.1"
            let mut parts = start_line.split(' ');
            let method = match parts.next().and_then(Method::parse) {
                Some(m) => m,
                None => return ParseOutcome::Error("unknown method"),
            };
            let target = match parts.next() {
                Some(t) => t.to_string(),
                None => return ParseOutcome::Error("missing target"),
            };
            if parts.next() != Some("HTTP/1.1") {
                return ParseOutcome::Error("unsupported version");
            }
            ParseOutcome::Request(HttpRequest {
                method,
                target,
                headers,
                body,
            })
        }
    }

    /// Hand back any bytes that were buffered but not consumed (used when
    /// a connection upgrades to WebSocket mid-stream).
    pub fn take_remainder(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expect_request(o: ParseOutcome) -> HttpRequest {
        match o {
            ParseOutcome::Request(r) => r,
            other => panic!("expected request, got {other:?}"),
        }
    }

    fn expect_response(o: ParseOutcome) -> HttpResponse {
        match o {
            ParseOutcome::Response(r) => r,
            other => panic!("expected response, got {other:?}"),
        }
    }

    #[test]
    fn parses_simple_get() {
        let mut p = HttpParser::new();
        let req = expect_request(p.feed(b"GET /probe?r=1 HTTP/1.1\r\nHost: x\r\n\r\n"));
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.target, "/probe?r=1");
        assert_eq!(req.get_header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn byte_at_a_time_feeding() {
        let wire = b"POST /p HTTP/1.1\r\nContent-Length: 4\r\n\r\nr=1&";
        let mut p = HttpParser::new();
        for (i, b) in wire.iter().enumerate() {
            match p.feed(&[*b]) {
                ParseOutcome::Incomplete => assert!(i + 1 < wire.len()),
                ParseOutcome::Request(req) => {
                    assert_eq!(i + 1, wire.len());
                    assert_eq!(&req.body[..], b"r=1&");
                    return;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        panic!("never completed");
    }

    #[test]
    fn pipelined_messages_drain_one_by_one() {
        let mut p = HttpParser::new();
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let first = expect_request(p.feed(two));
        assert_eq!(first.target, "/a");
        let second = expect_request(p.poll());
        assert_eq!(second.target, "/b");
        assert!(matches!(p.poll(), ParseOutcome::Incomplete));
    }

    #[test]
    fn parses_response_with_body() {
        let mut p = HttpParser::new();
        let r = expect_response(
            p.feed(b"HTTP/1.1 200 OK\r\nServer: apache\r\nContent-Length: 4\r\n\r\npong"),
        );
        assert_eq!(r.status, 200);
        assert_eq!(r.reason, "OK");
        assert_eq!(&r.body[..], b"pong");
    }

    #[test]
    fn parses_101_upgrade() {
        let mut p = HttpParser::new();
        let r = expect_response(
            p.feed(b"HTTP/1.1 101 Switching Protocols\r\nUpgrade: websocket\r\n\r\n"),
        );
        assert_eq!(r.status, 101);
        assert_eq!(r.get_header("upgrade"), Some("websocket"));
    }

    #[test]
    fn remainder_preserved_for_upgrade() {
        let mut p = HttpParser::new();
        let wire = b"HTTP/1.1 101 Switching Protocols\r\n\r\n\x81\x04ping";
        expect_response(p.feed(wire));
        assert_eq!(p.take_remainder(), b"\x81\x04ping");
    }

    #[test]
    fn rejects_bad_content_length() {
        let mut p = HttpParser::new();
        assert!(matches!(
            p.feed(b"GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            ParseOutcome::Error(_)
        ));
    }

    #[test]
    fn rejects_http10() {
        let mut p = HttpParser::new();
        assert!(matches!(
            p.feed(b"GET / HTTP/1.0\r\n\r\n"),
            ParseOutcome::Error(_)
        ));
    }

    #[test]
    fn traced_parser_spans_first_byte_to_completion() {
        let trace = Trace::enabled();
        let mut p = HttpParser::new().with_trace(trace.clone());
        let wire = b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\npong";
        let (head, tail) = wire.split_at(10);
        assert!(matches!(p.feed_at(1_000, head), ParseOutcome::Incomplete));
        expect_response(p.feed_at(5_000, tail));
        let d = trace.take().unwrap();
        let span = d
            .events
            .iter()
            .find(|e| e.scope == "http" && e.label == "message")
            .expect("message span");
        assert_eq!(span.start_ns, 1_000);
        assert_eq!(span.end_ns, 5_000);
        assert_eq!(d.counters["http.messages"], 1);
        assert_eq!(d.counters["http.bytes_fed"], wire.len() as u64);
    }

    #[test]
    fn roundtrip_with_message_emitters() {
        use crate::message::HttpRequest as Req;
        let req = Req::new(Method::Post, "/probe")
            .header("Host", "server")
            .with_body(Bytes::from_static(b"round=2"));
        let mut p = HttpParser::new();
        let parsed = expect_request(p.feed(&req.emit()));
        assert_eq!(parsed.method, Method::Post);
        assert_eq!(&parsed.body[..], b"round=2");
        assert_eq!(parsed.get_header("content-length"), Some("7"));
    }
}
