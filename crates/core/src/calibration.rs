//! Calibration: correcting browser-level RTTs with a measured offset.
//!
//! Section 5 of the paper: "If a measurement object can be reused, the
//! delay overhead can be better estimated by Δd2 without including the
//! TCP handshaking delay." A calibration is exactly that — a per-cell
//! offset (the Δd2 median) plus a residual-spread bound that says how
//! trustworthy the corrected values are.

use bnm_stats::Summary;

use crate::runner::CellResult;

/// A calibration derived from one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Offset subtracted from browser RTTs (median Δd2, ms).
    pub offset_ms: f64,
    /// Residual IQR after subtracting the offset, ms.
    pub residual_iqr_ms: f64,
    /// Residual 95% span (2.5th–97.5th percentile width), ms.
    pub residual_p95_span_ms: f64,
    /// Sample size behind the calibration.
    pub n: usize,
}

impl Calibration {
    /// Derive from a cell result, using the reuse-round (Δd2) samples,
    /// per the paper's §5 recommendation.
    pub fn derive(result: &CellResult) -> Calibration {
        Self::derive_from(&result.d2)
    }

    /// Derive from any Δd sample set.
    pub fn derive_from(samples: &[f64]) -> Calibration {
        let s = Summary::of(samples);
        let offset = s.median;
        let residuals: Vec<f64> = samples.iter().map(|d| d - offset).collect();
        let rs = Summary::of(&residuals);
        let mut sorted = residuals.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let p = |q: f64| bnm_stats::summary::quantile(&sorted, q);
        Calibration {
            offset_ms: offset,
            residual_iqr_ms: rs.iqr(),
            residual_p95_span_ms: p(0.975) - p(0.025),
            n: samples.len(),
        }
    }

    /// Correct one browser-level RTT.
    pub fn correct(&self, browser_rtt_ms: f64) -> f64 {
        browser_rtt_ms - self.offset_ms
    }

    /// Whether corrected values are trustworthy to within `tolerance_ms`
    /// (95% of residuals fit in the band).
    pub fn is_trustworthy(&self, tolerance_ms: f64) -> bool {
        self.residual_p95_span_ms <= 2.0 * tolerance_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_samples_calibrate_well() {
        let samples = [4.0, 4.1, 3.9, 4.05, 3.95, 4.0, 4.2, 3.8];
        let c = Calibration::derive_from(&samples);
        assert!((c.offset_ms - 4.0).abs() < 0.1);
        assert!(c.residual_iqr_ms < 0.2);
        assert!(c.is_trustworthy(0.5));
        // Correcting a browser RTT of 54 ms yields ~50 ms.
        assert!((c.correct(54.0) - 50.0).abs() < 0.1);
    }

    #[test]
    fn spread_samples_are_untrustworthy() {
        let samples = [20.0, 45.0, 80.0, 110.0, 30.0, 65.0, 95.0, 25.0];
        let c = Calibration::derive_from(&samples);
        assert!(!c.is_trustworthy(5.0));
        assert!(c.residual_p95_span_ms > 50.0);
    }

    #[test]
    fn derive_uses_round_two() {
        let r = CellResult {
            d1: vec![100.0; 10], // handshake-inflated round 1
            d2: vec![4.0; 10],
            ..CellResult::default()
        };
        let c = Calibration::derive(&r);
        assert_eq!(c.offset_ms, 4.0);
        assert_eq!(c.n, 10);
        assert_eq!(c.residual_iqr_ms, 0.0);
    }

    #[test]
    fn correction_is_linear() {
        let c = Calibration {
            offset_ms: 3.5,
            residual_iqr_ms: 0.1,
            residual_p95_span_ms: 0.4,
            n: 50,
        };
        assert_eq!(c.correct(53.5), 50.0);
        assert_eq!(c.correct(3.5), 0.0);
    }
}
