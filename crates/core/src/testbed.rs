//! The two-machine testbed of the paper's Figure 2.
//!
//! ```text
//!   client ──100 Mbps── switch ──100 Mbps── web server
//!     │                                        └─ 50 ms netem on egress
//!     └─ WinDump/tcpdump (capture tap)
//! ```

use std::net::Ipv4Addr;

use bytes::Bytes;

use bnm_browser::{BrowserProfile, BrowserSession, ProbePlan, ProbeTransport};
use bnm_http::server::{ServerConfig, WebServer};
use bnm_obs::{Trace, TraceData};
use bnm_sim::engine::{Engine, NodeId};
use bnm_sim::link::{LinkId, LinkSpec};
use bnm_sim::time::{SimDuration, SimTime};
use bnm_sim::wire::MacAddr;
use bnm_sim::LinkShape;
use bnm_sim::{Impairment, TapId};
use bnm_tcp::Host;
use bnm_time::MachineTimer;

use crate::error::RunError;
use crate::scenario::{Scenario, SessionSpec};

/// Addresses of the testbed (the paper's lab subnet flavour).
pub const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 2);
/// The web server's address.
pub const SERVER_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 10);
/// Client NIC MAC.
pub const CLIENT_MAC: MacAddr = MacAddr::local(2);
/// Server NIC MAC.
pub const SERVER_MAC: MacAddr = MacAddr::local(1);

/// Cross-traffic load on the testbed (the paper explicitly ensured
/// "the network was free of cross traffic"; this knob breaks that
/// assumption on purpose, to show the methodology's robustness).
#[derive(Debug, Clone, Copy)]
pub struct CrossTraffic {
    /// Noise datagrams per second sent toward the server's UDP echo port
    /// (each is echoed, loading both directions of the server link).
    pub rate_pps: u64,
    /// Noise payload size, bytes.
    pub payload: usize,
    /// How long the noise source runs.
    pub duration: SimDuration,
}

/// Testbed construction parameters.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// One-way netem delay applied on the server's egress (§3: 50 ms).
    pub server_delay: SimDuration,
    /// Capture timestamp noise bound (ns); 0 = exact.
    pub capture_noise_ns: u64,
    /// Web server knobs.
    pub server: ServerConfig,
    /// Master seed for the capture-noise stream.
    pub seed: u64,
    /// The server's access link — the segment every session of a
    /// multi-client [`crate::scenario::Scenario`] contends for. The
    /// default is the paper's 100 Mbps fast Ethernet; the `contend`
    /// experiment narrows it to make the shared bottleneck bite.
    pub server_link: LinkSpec,
    /// Dynamic shaping of the server's access link: per-direction spec
    /// overrides (asymmetric rates), time-varying rate schedules and the
    /// queue discipline ([`LinkShape`]). The default installs nothing —
    /// the clean build stays bit-identical — while the `bloat` and
    /// `varying` battery scenarios plug in deep drop-tail queues, CoDel
    /// and rate schedules here.
    pub server_shape: LinkShape,
    /// Optional cross-traffic source contending on the server link.
    pub cross_traffic: Option<CrossTraffic>,
    /// Network impairment: `up` applies to the client's egress, `down`
    /// to the server's egress (alongside the netem delay), and `jitter`
    /// bounds a uniform per-frame addition to the server-side
    /// `extra_delay`. [`Impairment::NONE`] (the default) leaves the
    /// engine exactly as the clean build wires it.
    pub impairment: Impairment,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            server_delay: SimDuration::from_millis(50),
            capture_noise_ns: 0,
            server: ServerConfig::default(),
            seed: 1,
            server_link: LinkSpec::fast_ethernet(),
            server_shape: LinkShape::default(),
            cross_traffic: None,
            impairment: Impairment::NONE,
        }
    }
}

/// A UDP noise source: floods the server's echo port at a fixed rate for
/// a fixed duration.
pub(crate) struct NoiseSource {
    target: (Ipv4Addr, u16),
    interval: SimDuration,
    remaining: u64,
    payload: usize,
    port: u16,
}

impl NoiseSource {
    pub(crate) fn new(
        target: (Ipv4Addr, u16),
        interval: SimDuration,
        remaining: u64,
        payload: usize,
    ) -> NoiseSource {
        NoiseSource {
            target,
            interval,
            remaining,
            payload,
            port: 0,
        }
    }
}

impl bnm_tcp::HostApp for NoiseSource {
    fn on_boot(&mut self, ctx: &mut bnm_tcp::HostCtx) {
        self.port = ctx.udp_bind_ephemeral();
        if self.remaining > 0 {
            ctx.set_app_timer(self.interval, 0);
        }
    }
    fn on_event(&mut self, _: &mut bnm_tcp::HostCtx, _: bnm_tcp::SockEvent) {}
    fn on_timer(&mut self, ctx: &mut bnm_tcp::HostCtx, _token: u64) {
        ctx.udp_send(
            self.port,
            self.target,
            Bytes::from(vec![0xAAu8; self.payload]),
        );
        self.remaining -= 1;
        if self.remaining > 0 {
            ctx.set_app_timer(self.interval, 0);
        }
    }
}

/// A built testbed, ready to run one browser session.
pub struct Testbed {
    /// The simulation engine.
    pub engine: Engine,
    /// The client host node (carries the [`BrowserSession`]).
    pub client: NodeId,
    /// The server host node.
    pub server: NodeId,
    /// The switch node.
    pub switch: NodeId,
    /// The WinDump tap at the client's NIC.
    pub client_tap: TapId,
    /// A second tap at the server's NIC (for the server-side extension).
    pub server_tap: TapId,
    /// The server's access link (queue-drop and queue-depth gauges are
    /// read off it after a run).
    pub server_link: LinkId,
    trace: Trace,
}

impl Testbed {
    /// Start building a testbed; validation happens at
    /// [`TestbedBuilder::build`], mirroring
    /// [`crate::ExperimentCell::builder`].
    pub fn builder() -> TestbedBuilder {
        TestbedBuilder::default()
    }

    /// Build the Figure 2 testbed around a session (plan + profile +
    /// machine clock).
    pub fn build(
        cfg: &TestbedConfig,
        plan: ProbePlan,
        profile: BrowserProfile,
        machine: MachineTimer,
        rep_token: u64,
        session_seed: u64,
    ) -> Testbed {
        Self::build_traced(
            cfg,
            plan,
            profile,
            machine,
            rep_token,
            session_seed,
            Trace::disabled(),
        )
    }

    /// [`Testbed::build`] with a trace handle wired through the engine,
    /// the client host's TCP stack and the browser session.
    ///
    /// Since the multi-client refactor this is a thin wrapper: it builds
    /// a one-session [`Scenario`] (session id 0) and unwraps it, so the
    /// legacy single-client testbed *is* the N = 1 scenario — there is no
    /// second wiring path to drift out of sync.
    pub fn build_traced(
        cfg: &TestbedConfig,
        plan: ProbePlan,
        profile: BrowserProfile,
        machine: MachineTimer,
        rep_token: u64,
        session_seed: u64,
        trace: Trace,
    ) -> Testbed {
        let scenario = Scenario::build_traced(
            cfg,
            vec![SessionSpec {
                id: 0,
                plan,
                profile,
                machine,
                seed: session_seed,
            }],
            rep_token,
            trace,
        );
        let Scenario {
            engine,
            clients,
            server,
            switch,
            client_taps,
            server_tap,
            server_link,
            trace,
            session_ids: _,
        } = scenario;
        Testbed {
            engine,
            client: clients[0],
            server,
            switch,
            client_tap: client_taps[0],
            server_tap,
            server_link,
            trace,
        }
    }

    /// Extract the recorded trace data, if tracing was enabled. Takes
    /// `&mut self`: the buffer is moved out, and reading it back later
    /// would observe an empty trace.
    pub fn take_trace(&mut self) -> Option<TraceData> {
        self.trace.take()
    }

    /// Run to completion (with a generous horizon as a hang backstop) and
    /// return the finishing time.
    pub fn run(&mut self) -> SimTime {
        self.engine.run_until(SimTime::from_secs(300))
    }

    /// The client's session (read results after [`Testbed::run`]).
    pub fn session(&self) -> &BrowserSession {
        self.engine
            .node_ref::<Host<BrowserSession>>(self.client)
            .app()
    }

    /// The server application (stats).
    pub fn web_server(&self) -> &WebServer {
        self.engine.node_ref::<Host<WebServer>>(self.server).app()
    }
}

/// Builds a [`Testbed`] incrementally, validating at
/// [`TestbedBuilder::build`] instead of panicking mid-run.
#[derive(Default)]
pub struct TestbedBuilder {
    cfg: TestbedConfig,
    plan: Option<ProbePlan>,
    profile: Option<BrowserProfile>,
    machine: Option<MachineTimer>,
    rep_token: u64,
    session_seed: u64,
    trace: bool,
}

impl TestbedBuilder {
    /// Replace the whole network/server configuration.
    pub fn config(mut self, cfg: TestbedConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// One-way netem delay on the server's egress.
    pub fn server_delay(mut self, delay: SimDuration) -> Self {
        self.cfg.server_delay = delay;
        self
    }

    /// Capture timestamp noise bound, ns.
    pub fn capture_noise_ns(mut self, bound: u64) -> Self {
        self.cfg.capture_noise_ns = bound;
        self
    }

    /// Master seed for the capture-noise stream.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// The server's access link spec (the shared bottleneck of
    /// multi-client scenarios; defaults to fast Ethernet).
    pub fn server_link(mut self, spec: LinkSpec) -> Self {
        self.cfg.server_link = spec;
        self
    }

    /// Shape the server's access link: per-direction spec overrides,
    /// time-varying rate schedules and queue disciplines (defaults to
    /// the unshaped static link).
    pub fn server_shape(mut self, shape: LinkShape) -> Self {
        self.cfg.server_shape = shape;
        self
    }

    /// Add a cross-traffic source on the server link.
    pub fn cross_traffic(mut self, ct: CrossTraffic) -> Self {
        self.cfg.cross_traffic = Some(ct);
        self
    }

    /// Impair the testbed network (loss / corruption / duplication /
    /// jitter; the default is the paper's clean network).
    pub fn impairment(mut self, imp: Impairment) -> Self {
        self.cfg.impairment = imp;
        self
    }

    /// The measurement method to execute (required).
    pub fn plan(mut self, plan: ProbePlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// The runtime cost profile (required).
    pub fn profile(mut self, profile: BrowserProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// The client machine's timer (required).
    pub fn machine(mut self, machine: MachineTimer) -> Self {
        self.machine = Some(machine);
        self
    }

    /// Repetition token embedded in probe markers.
    pub fn rep_token(mut self, token: u64) -> Self {
        self.rep_token = token;
        self
    }

    /// Seed for the session's noise streams.
    pub fn session_seed(mut self, seed: u64) -> Self {
        self.session_seed = seed;
        self
    }

    /// Enable trace recording (read back via [`Testbed::take_trace`]).
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Validate and construct. Reports [`RunError::InvalidInput`] when a
    /// required part is missing or the plan cannot run on the profile —
    /// conditions the unchecked [`Testbed::build`] path surfaces as
    /// mid-run panics.
    pub fn build(self) -> Result<Testbed, RunError> {
        let plan = self
            .plan
            .ok_or(RunError::InvalidInput("a probe plan is required"))?;
        let profile = self
            .profile
            .ok_or(RunError::InvalidInput("a browser profile is required"))?;
        let machine = self
            .machine
            .ok_or(RunError::InvalidInput("a machine timer is required"))?;
        if plan.transport == ProbeTransport::WebSocketEcho && !profile.supports_websocket {
            return Err(RunError::InvalidInput(
                "plan requires WebSocket but the runtime lacks it",
            ));
        }
        // A zero-rate or zero-queue link would panic (or silently hang)
        // deep inside the engine; report it as a typed error up front.
        self.cfg
            .server_link
            .validate()
            .map_err(RunError::InvalidInput)?;
        self.cfg
            .server_shape
            .validate()
            .map_err(RunError::InvalidInput)?;
        let trace = if self.trace {
            Trace::enabled()
        } else {
            Trace::disabled()
        };
        Ok(Testbed::build_traced(
            &self.cfg,
            plan,
            profile,
            machine,
            self.rep_token,
            self.session_seed,
            trace,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnm_browser::{BrowserKind, ProbeTransport, Technology};
    use bnm_time::{OsKind, TimingApiKind};

    fn xhr_plan() -> ProbePlan {
        ProbePlan::new(
            "xhr_get",
            Technology::Native,
            ProbeTransport::HttpGet,
            TimingApiKind::JsDateGetTime,
        )
    }

    fn build_default() -> Testbed {
        let profile = BrowserProfile::build(BrowserKind::Chrome, OsKind::Ubuntu1204).unwrap();
        let machine = MachineTimer::new(OsKind::Ubuntu1204, 7);
        Testbed::build(
            &TestbedConfig::default(),
            xhr_plan(),
            profile,
            machine,
            0,
            7,
        )
    }

    #[test]
    fn session_completes_and_taps_capture_traffic() {
        let mut tb = build_default();
        tb.run();
        assert!(tb.session().result().completed);
        assert!(!tb.engine.tap(tb.client_tap).is_empty());
        assert!(!tb.engine.tap(tb.server_tap).is_empty());
        // The server actually served: container page + 2 probes.
        assert_eq!(tb.web_server().stats.pages, 1);
        assert_eq!(tb.web_server().stats.gets, 2);
    }

    #[test]
    fn server_delay_shows_up_in_round_trips() {
        let mut tb = build_default();
        tb.run();
        let rounds = &tb.session().result().rounds;
        for r in rounds {
            assert!(r.browser_rtt_ms() > 50.0, "rtt {}", r.browser_rtt_ms());
        }
    }

    #[test]
    fn capture_noise_is_applied_when_configured() {
        let cfg = TestbedConfig {
            capture_noise_ns: 300_000,
            ..TestbedConfig::default()
        };
        let profile = BrowserProfile::build(BrowserKind::Chrome, OsKind::Ubuntu1204).unwrap();
        let machine = MachineTimer::new(OsKind::Ubuntu1204, 7);
        let mut tb = Testbed::build(&cfg, xhr_plan(), profile, machine, 0, 7);
        tb.run();
        assert!(tb.session().result().completed);
    }

    #[test]
    fn builder_validates_missing_parts_and_websocket_support() {
        let err = match Testbed::builder().build() {
            Ok(_) => panic!("empty builder must not validate"),
            Err(e) => e,
        };
        assert_eq!(err, RunError::InvalidInput("a probe plan is required"));
        // IE9 has no WebSocket (Table 2): the builder reports it up front
        // instead of panicking mid-run.
        let ws_plan = ProbePlan::new(
            "websocket",
            Technology::Native,
            ProbeTransport::WebSocketEcho,
            TimingApiKind::JsDateGetTime,
        );
        let profile = BrowserProfile::build(BrowserKind::Ie9, OsKind::Windows7).unwrap();
        let err = match Testbed::builder()
            .plan(ws_plan)
            .profile(profile)
            .machine(MachineTimer::new(OsKind::Windows7, 1))
            .build()
        {
            Ok(_) => panic!("IE9 WebSocket testbed must not validate"),
            Err(e) => e,
        };
        assert!(matches!(err, RunError::InvalidInput(_)));
    }

    #[test]
    fn builder_rejects_degenerate_link_specs() {
        let profile = BrowserProfile::build(BrowserKind::Chrome, OsKind::Ubuntu1204).unwrap();
        let base = || {
            Testbed::builder()
                .plan(xhr_plan())
                .profile(profile.clone())
                .machine(MachineTimer::new(OsKind::Ubuntu1204, 7))
        };
        let zero_rate = base()
            .server_link(LinkSpec {
                rate_bps: 0,
                ..LinkSpec::fast_ethernet()
            })
            .build();
        assert_eq!(
            zero_rate.err(),
            Some(RunError::InvalidInput("link rate_bps must be positive"))
        );
        let zero_queue = base()
            .server_link(LinkSpec {
                queue_limit_bytes: 0,
                ..LinkSpec::fast_ethernet()
            })
            .build();
        assert_eq!(
            zero_queue.err(),
            Some(RunError::InvalidInput(
                "link queue_limit_bytes must be positive"
            ))
        );
        let bad_shape = base()
            .server_shape(LinkShape {
                down_spec: Some(LinkSpec {
                    rate_bps: 0,
                    ..LinkSpec::fast_ethernet()
                }),
                ..LinkShape::default()
            })
            .build();
        assert!(matches!(bad_shape, Err(RunError::InvalidInput(_))));
        // A valid shape builds and runs.
        let mut tb = base()
            .server_shape(LinkShape::symmetric(bnm_sim::LinkDynamics::codel()))
            .build()
            .unwrap();
        tb.run();
        assert!(tb.session().result().completed);
    }

    #[test]
    fn builder_matches_direct_build_and_records_traces() {
        let profile = BrowserProfile::build(BrowserKind::Chrome, OsKind::Ubuntu1204).unwrap();
        let machine = MachineTimer::new(OsKind::Ubuntu1204, 7);
        let mut tb = Testbed::builder()
            .plan(xhr_plan())
            .profile(profile)
            .machine(machine)
            .session_seed(7)
            .trace(true)
            .build()
            .unwrap();
        tb.run();
        assert!(tb.session().result().completed);
        let data = tb.take_trace().expect("tracing was enabled");
        assert!(data.counters["link.frames"] > 0);
        assert!(data
            .events
            .iter()
            .any(|e| e.scope == "session" && e.label == "round.start"));
        // Same seeds as build_default(): identical wire behaviour.
        let mut direct = build_default();
        direct.run();
        assert!(direct.take_trace().is_none());
        let rounds = |t: &Testbed| t.session().result().rounds.clone();
        assert_eq!(rounds(&tb), rounds(&direct));
    }

    #[test]
    fn identical_seeds_give_identical_traces() {
        let trace = |seed: u64| {
            let profile = BrowserProfile::build(BrowserKind::Firefox, OsKind::Windows7).unwrap();
            let machine = MachineTimer::new(OsKind::Windows7, seed);
            let mut tb = Testbed::build(
                &TestbedConfig::default(),
                xhr_plan(),
                profile,
                machine,
                3,
                seed,
            );
            tb.run();
            tb.engine
                .tap(tb.client_tap)
                .records()
                .iter()
                .map(|r| (r.ts, r.frame.len()))
                .collect::<Vec<_>>()
        };
        assert_eq!(trace(42), trace(42));
        assert_ne!(trace(42), trace(43));
    }
}
