//! The two-machine testbed of the paper's Figure 2.
//!
//! ```text
//!   client ──100 Mbps── switch ──100 Mbps── web server
//!     │                                        └─ 50 ms netem on egress
//!     └─ WinDump/tcpdump (capture tap)
//! ```

use std::net::Ipv4Addr;

use bytes::Bytes;

use bnm_browser::{BrowserProfile, BrowserSession, ProbePlan};
use bnm_browser::session::SessionConfig;
use bnm_http::server::{ServerConfig, WebServer};
use bnm_sim::capture::{CaptureBuffer, TimestampNoise};
use bnm_sim::engine::{Engine, NodeId};
use bnm_sim::link::LinkSpec;
use bnm_sim::rng;
use bnm_sim::switch::Switch;
use bnm_sim::time::{SimDuration, SimTime};
use bnm_sim::wire::MacAddr;
use bnm_sim::TapId;
use bnm_tcp::{Host, HostConfig};
use bnm_time::MachineTimer;

/// Addresses of the testbed (the paper's lab subnet flavour).
pub const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 2);
/// The web server's address.
pub const SERVER_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 10);
/// Client NIC MAC.
pub const CLIENT_MAC: MacAddr = MacAddr::local(2);
/// Server NIC MAC.
pub const SERVER_MAC: MacAddr = MacAddr::local(1);

/// Cross-traffic load on the testbed (the paper explicitly ensured
/// "the network was free of cross traffic"; this knob breaks that
/// assumption on purpose, to show the methodology's robustness).
#[derive(Debug, Clone, Copy)]
pub struct CrossTraffic {
    /// Noise datagrams per second sent toward the server's UDP echo port
    /// (each is echoed, loading both directions of the server link).
    pub rate_pps: u64,
    /// Noise payload size, bytes.
    pub payload: usize,
    /// How long the noise source runs.
    pub duration: SimDuration,
}

/// Testbed construction parameters.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// One-way netem delay applied on the server's egress (§3: 50 ms).
    pub server_delay: SimDuration,
    /// Capture timestamp noise bound (ns); 0 = exact.
    pub capture_noise_ns: u64,
    /// Web server knobs.
    pub server: ServerConfig,
    /// Master seed for the capture-noise stream.
    pub seed: u64,
    /// Optional cross-traffic source contending on the server link.
    pub cross_traffic: Option<CrossTraffic>,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            server_delay: SimDuration::from_millis(50),
            capture_noise_ns: 0,
            server: ServerConfig::default(),
            seed: 1,
            cross_traffic: None,
        }
    }
}

/// A UDP noise source: floods the server's echo port at a fixed rate for
/// a fixed duration.
struct NoiseSource {
    target: (Ipv4Addr, u16),
    interval: SimDuration,
    remaining: u64,
    payload: usize,
    port: u16,
}

impl bnm_tcp::HostApp for NoiseSource {
    fn on_boot(&mut self, ctx: &mut bnm_tcp::HostCtx) {
        self.port = ctx.udp_bind_ephemeral();
        if self.remaining > 0 {
            ctx.set_app_timer(self.interval, 0);
        }
    }
    fn on_event(&mut self, _: &mut bnm_tcp::HostCtx, _: bnm_tcp::SockEvent) {}
    fn on_timer(&mut self, ctx: &mut bnm_tcp::HostCtx, _token: u64) {
        ctx.udp_send(
            self.port,
            self.target,
            Bytes::from(vec![0xAAu8; self.payload]),
        );
        self.remaining -= 1;
        if self.remaining > 0 {
            ctx.set_app_timer(self.interval, 0);
        }
    }
}

/// A built testbed, ready to run one browser session.
pub struct Testbed {
    /// The simulation engine.
    pub engine: Engine,
    /// The client host node (carries the [`BrowserSession`]).
    pub client: NodeId,
    /// The server host node.
    pub server: NodeId,
    /// The switch node.
    pub switch: NodeId,
    /// The WinDump tap at the client's NIC.
    pub client_tap: TapId,
    /// A second tap at the server's NIC (for the server-side extension).
    pub server_tap: TapId,
}

impl Testbed {
    /// Build the Figure 2 testbed around a session (plan + profile +
    /// machine clock).
    pub fn build(
        cfg: &TestbedConfig,
        plan: ProbePlan,
        profile: BrowserProfile,
        machine: MachineTimer,
        rep_token: u64,
        session_seed: u64,
    ) -> Testbed {
        let session = BrowserSession::new(SessionConfig {
            server_ip: SERVER_IP,
            http_port: cfg.server.http_port,
            echo_port: cfg.server.tcp_echo_port,
            udp_port: cfg.server.udp_echo_port,
            plan,
            profile,
            machine,
            rep_token,
            seed: session_seed,
        });
        let mut engine = Engine::new();
        let client = engine.add_node(Box::new(Host::new(
            HostConfig::new("client", CLIENT_MAC, CLIENT_IP).with_neighbor(SERVER_IP, SERVER_MAC),
            session,
        )));
        let server = engine.add_node(Box::new(Host::new(
            HostConfig::new("server", SERVER_MAC, SERVER_IP).with_neighbor(CLIENT_IP, CLIENT_MAC),
            WebServer::new(cfg.server.clone()),
        )));
        let switch_ports = if cfg.cross_traffic.is_some() { 3 } else { 2 };
        let switch = engine.add_node(Box::new(Switch::new(switch_ports)));
        let client_link = engine.connect(client, 0, switch, 0, LinkSpec::fast_ethernet());
        let server_link = engine.connect(server, 0, switch, 1, LinkSpec::fast_ethernet());
        engine.set_one_way_delay(server_link, server, cfg.server_delay);
        if let Some(ct) = cfg.cross_traffic {
            let interval =
                SimDuration::from_nanos((1_000_000_000u64 / ct.rate_pps.max(1)).max(1));
            let sends = ct.duration.as_nanos() / interval.as_nanos().max(1);
            let noise = engine.add_node(Box::new(Host::new(
                HostConfig::new("noise", MacAddr::local(3), Ipv4Addr::new(192, 168, 1, 3))
                    .with_neighbor(SERVER_IP, SERVER_MAC),
                NoiseSource {
                    target: (SERVER_IP, cfg.server.udp_echo_port),
                    interval,
                    remaining: sends,
                    payload: ct.payload,
                    port: 0,
                },
            )));
            engine.connect(noise, 0, switch, 2, LinkSpec::fast_ethernet());
        }

        let mk_tap = |name: &str, stream: &str| {
            let buf = CaptureBuffer::new(name);
            if cfg.capture_noise_ns > 0 {
                buf.with_noise(TimestampNoise::UniformLag {
                    bound_ns: cfg.capture_noise_ns,
                    rng: rng::stream_indexed(cfg.seed, stream, rep_token),
                })
            } else {
                buf
            }
        };
        let client_tap = engine.add_tap(client_link, client, mk_tap("client-nic", "cap.client"));
        let server_tap = engine.add_tap(server_link, server, mk_tap("server-nic", "cap.server"));
        Testbed {
            engine,
            client,
            server,
            switch,
            client_tap,
            server_tap,
        }
    }

    /// Run to completion (with a generous horizon as a hang backstop) and
    /// return the finishing time.
    pub fn run(&mut self) -> SimTime {
        self.engine.run_until(SimTime::from_secs(300))
    }

    /// The client's session (read results after [`Testbed::run`]).
    pub fn session(&self) -> &BrowserSession {
        self.engine.node_ref::<Host<BrowserSession>>(self.client).app()
    }

    /// The server application (stats).
    pub fn web_server(&self) -> &WebServer {
        self.engine.node_ref::<Host<WebServer>>(self.server).app()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnm_browser::{BrowserKind, ProbeTransport, Technology};
    use bnm_time::{OsKind, TimingApiKind};

    fn xhr_plan() -> ProbePlan {
        ProbePlan::new(
            "xhr_get",
            Technology::Native,
            ProbeTransport::HttpGet,
            TimingApiKind::JsDateGetTime,
        )
    }

    fn build_default() -> Testbed {
        let profile = BrowserProfile::build(BrowserKind::Chrome, OsKind::Ubuntu1204).unwrap();
        let machine = MachineTimer::new(OsKind::Ubuntu1204, 7);
        Testbed::build(&TestbedConfig::default(), xhr_plan(), profile, machine, 0, 7)
    }

    #[test]
    fn session_completes_and_taps_capture_traffic() {
        let mut tb = build_default();
        tb.run();
        assert!(tb.session().result().completed);
        assert!(!tb.engine.tap(tb.client_tap).is_empty());
        assert!(!tb.engine.tap(tb.server_tap).is_empty());
        // The server actually served: container page + 2 probes.
        assert_eq!(tb.web_server().stats.pages, 1);
        assert_eq!(tb.web_server().stats.gets, 2);
    }

    #[test]
    fn server_delay_shows_up_in_round_trips() {
        let mut tb = build_default();
        tb.run();
        let rounds = &tb.session().result().rounds;
        for r in rounds {
            assert!(r.browser_rtt_ms() > 50.0, "rtt {}", r.browser_rtt_ms());
        }
    }

    #[test]
    fn capture_noise_is_applied_when_configured() {
        let cfg = TestbedConfig {
            capture_noise_ns: 300_000,
            ..TestbedConfig::default()
        };
        let profile = BrowserProfile::build(BrowserKind::Chrome, OsKind::Ubuntu1204).unwrap();
        let machine = MachineTimer::new(OsKind::Ubuntu1204, 7);
        let mut tb = Testbed::build(&cfg, xhr_plan(), profile, machine, 0, 7);
        tb.run();
        assert!(tb.session().result().completed);
    }

    #[test]
    fn identical_seeds_give_identical_traces() {
        let trace = |seed: u64| {
            let profile = BrowserProfile::build(BrowserKind::Firefox, OsKind::Windows7).unwrap();
            let machine = MachineTimer::new(OsKind::Windows7, seed);
            let mut tb = Testbed::build(
                &TestbedConfig::default(),
                xhr_plan(),
                profile,
                machine,
                3,
                seed,
            );
            tb.run();
            tb.engine
                .tap(tb.client_tap)
                .records()
                .iter()
                .map(|r| (r.ts, r.frame.len()))
                .collect::<Vec<_>>()
        };
        assert_eq!(trace(42), trace(42));
        assert_ne!(trace(42), trace(43));
    }
}
