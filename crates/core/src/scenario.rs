//! Multi-client scenarios: one engine, N concurrent measuring sessions.
//!
//! The paper's testbed (Figure 2) is one client machine measuring through
//! one switch. A [`Scenario`] generalizes it: N browser sessions, each
//! with its own TCP stack, machine timer and client-side capture tap,
//! share the switch and contend for the same web server. The
//! single-client [`crate::testbed::Testbed`] is the N = 1 special case —
//! it is *built through* this module, so a one-session scenario is
//! byte-identical to the legacy testbed by construction (asserted by
//! `tests/scenario_parity.rs`).
//!
//! Contention enters the measured Δd through exactly one door: time spent
//! *before* `tN_s` inside the browser-timed interval. Network queueing
//! between `tN_s` and `tN_r` cancels out of Eq. 1. So methods that open a
//! fresh TCP connection inside a timed round (Opera's Flash GET round 1,
//! Flash POST every round) absorb a handshake that must queue behind
//! other sessions' traffic — their Δd grows with the client count — while
//! connection-reusing methods (WebSocket) stay tight.

use std::net::Ipv4Addr;

use bnm_browser::session::SessionConfig;
use bnm_browser::{BrowserProfile, BrowserSession, ProbePlan};
use bnm_http::server::WebServer;
use bnm_obs::{Trace, TraceData};
use bnm_sim::capture::{CaptureBuffer, TimestampNoise};
use bnm_sim::engine::{Engine, NodeId, PortNo};
use bnm_sim::link::{LinkId, LinkSpec};
use bnm_sim::rng;
use bnm_sim::switch::Switch;
use bnm_sim::time::{SimDuration, SimTime};
use bnm_sim::wire::MacAddr;
use bnm_sim::TapId;
use bnm_tcp::{Host, HostConfig};
use bnm_time::MachineTimer;

use crate::error::RunError;
use crate::testbed::{NoiseSource, TestbedConfig, CLIENT_IP, CLIENT_MAC, SERVER_IP, SERVER_MAC};

/// One measuring session within a [`Scenario`].
#[derive(Debug)]
pub struct SessionSpec {
    /// Session id, embedded (via [`bnm_browser::session_token`]) in every
    /// probe marker the session puts on the wire. Ids must be unique
    /// within a scenario; id 0 reproduces the legacy testbed's tokens.
    pub id: u64,
    /// The measurement method this session executes.
    pub plan: ProbePlan,
    /// The session's runtime cost profile.
    pub profile: BrowserProfile,
    /// The session's machine timer (its own granularity regimes).
    pub machine: MachineTimer,
    /// Master seed for the session's noise streams.
    pub seed: u64,
}

/// Highest client position still using the original single-octet
/// addressing scheme. Keeping the original formula for these positions
/// preserves existing multi-client traces bit for bit.
const LEGACY_ADDR_POSITIONS: usize = 190;

/// Per-client addressing. Position 0 keeps the legacy testbed identity
/// (`"client"`, [`CLIENT_MAC`], [`CLIENT_IP`]); positions 1 through
/// `LEGACY_ADDR_POSITIONS` (190) get the original derived scheme —
/// locally-administered MACs from 5 upward and addresses from
/// `192.168.1.65` upward, disjoint from the server (`.10`) and the
/// cross-traffic noise source (`.3`). Positions beyond that exhaust the
/// `192.168.1.0/24` octet and move to a two-octet scheme: MACs
/// `02-42-4e-4d-HH-LL` and addresses `10.77.HH.LL` keyed by the
/// position's two low bytes. Neighbor tables are static, so the mixed
/// "subnets" are purely cosmetic — every host is one switch hop away.
pub fn client_addr(position: usize) -> (String, MacAddr, Ipv4Addr) {
    if position == 0 {
        ("client".to_string(), CLIENT_MAC, CLIENT_IP)
    } else if position <= LEGACY_ADDR_POSITIONS {
        (
            format!("client-{position}"),
            MacAddr::local(4 + position as u8),
            Ipv4Addr::new(192, 168, 1, 64 + position as u8),
        )
    } else {
        assert!(
            position < Scenario::ADDRESS_CAPACITY,
            "client position {position} exceeds the addressing capacity of {}",
            Scenario::ADDRESS_CAPACITY
        );
        let hi = (position >> 8) as u8;
        let lo = position as u8;
        (
            format!("client-{position}"),
            MacAddr([0x02, 0x42, 0x4E, 0x4D, hi, lo]),
            Ipv4Addr::new(10, 77, hi, lo),
        )
    }
}

/// N concurrent browser sessions attached through one switch to one web
/// server. Nodes, links and taps are created in a fixed order (clients by
/// ascending session id, then server, then switch extras), so a scenario
/// is deterministic and — at N = 1 with the default config — reproduces
/// the legacy [`crate::testbed::Testbed`] wiring byte for byte.
pub struct Scenario {
    /// The shared simulation engine.
    pub engine: Engine,
    /// Client host nodes, ascending session-id order.
    pub clients: Vec<NodeId>,
    /// The web-server host node.
    pub server: NodeId,
    /// The shared switch node.
    pub switch: NodeId,
    /// One capture tap per client NIC, same order as `clients`.
    pub client_taps: Vec<TapId>,
    /// The tap at the server's NIC.
    pub server_tap: TapId,
    /// The server's access link — the shared bottleneck. Queue-drop
    /// counters and queue-depth gauges are read off it after a run
    /// ([`bnm_sim::Engine::queue_drops`] /
    /// [`bnm_sim::Engine::queue_peak_bytes`]).
    pub server_link: LinkId,
    pub(crate) trace: Trace,
    pub(crate) session_ids: Vec<u64>,
}

impl Scenario {
    /// Default cap on concurrent sessions, enforced by
    /// [`ScenarioBuilder::build`] and the cell validation in
    /// [`crate::config`]. Raise it per scenario with
    /// [`ScenarioBuilder::session_limit`], up to
    /// [`Scenario::ADDRESS_CAPACITY`].
    pub const DEFAULT_SESSION_LIMIT: usize = 4096;

    /// Hard ceiling of the per-client MAC / IP allocation scheme of
    /// [`client_addr`] (two address octets).
    pub const ADDRESS_CAPACITY: usize = 65_536;

    /// Start building a scenario, mirroring
    /// [`crate::testbed::Testbed::builder`]. Validates at
    /// [`ScenarioBuilder::build`] time instead of panicking.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }

    /// Build a scenario without tracing.
    pub fn build(cfg: &TestbedConfig, specs: Vec<SessionSpec>, rep_token: u64) -> Scenario {
        Self::build_traced(cfg, specs, rep_token, Trace::disabled())
    }

    /// Build a scenario. The trace handle is wired to the engine and to
    /// the *lowest-id* session only (its stack and browser): attribution
    /// decomposes one session's Δd, and a second traced stack would
    /// interleave spans from an unrelated connection timeline.
    ///
    /// # Panics
    /// If `specs` is empty, exceeds
    /// [`Scenario::DEFAULT_SESSION_LIMIT`], or contains duplicate
    /// session ids. [`Scenario::builder`] reports the same conditions
    /// as errors instead, and can lift the session limit.
    pub fn build_traced(
        cfg: &TestbedConfig,
        mut specs: Vec<SessionSpec>,
        rep_token: u64,
        trace: Trace,
    ) -> Scenario {
        assert!(!specs.is_empty(), "a scenario needs at least one session");
        assert!(
            specs.len() <= Self::DEFAULT_SESSION_LIMIT,
            "a scenario holds at most {} sessions by default \
             (ScenarioBuilder::session_limit raises the cap), got {}",
            Self::DEFAULT_SESSION_LIMIT,
            specs.len()
        );
        // Results and wiring are keyed by session id, not insertion
        // order: sorting here is what makes per-session output invariant
        // to the order the caller pushed the specs.
        specs.sort_by_key(|s| s.id);
        for pair in specs.windows(2) {
            assert!(
                pair[0].id != pair[1].id,
                "duplicate session id {} in scenario",
                pair[0].id
            );
        }
        Self::build_inner(cfg, specs, rep_token, trace)
    }

    /// Shared construction path behind [`Scenario::build_traced`] and
    /// [`ScenarioBuilder::build`]. `specs` must be non-empty, sorted by
    /// id and free of duplicates.
    fn build_inner(
        cfg: &TestbedConfig,
        specs: Vec<SessionSpec>,
        rep_token: u64,
        trace: Trace,
    ) -> Scenario {
        let n = specs.len();
        let mut engine = Engine::new();
        engine.set_trace(trace.clone());

        let mut clients = Vec::with_capacity(n);
        let mut session_ids = Vec::with_capacity(n);
        for (i, spec) in specs.into_iter().enumerate() {
            let session_trace = if i == 0 {
                trace.clone()
            } else {
                Trace::disabled()
            };
            let (name, mac, ip) = client_addr(i);
            let session = BrowserSession::new(SessionConfig {
                server_ip: SERVER_IP,
                http_port: cfg.server.http_port,
                echo_port: cfg.server.tcp_echo_port,
                udp_port: cfg.server.udp_echo_port,
                webrtc_port: cfg.server.webrtc_port,
                plan: spec.plan,
                profile: spec.profile,
                machine: spec.machine,
                rep_token,
                session: spec.id,
                seed: spec.seed,
                trace: session_trace.clone(),
            });
            session_ids.push(spec.id);
            clients.push(
                engine.add_node(Box::new(
                    Host::new(
                        HostConfig::new(name, mac, ip).with_neighbor(SERVER_IP, SERVER_MAC),
                        session,
                    )
                    // Position 0's offset is the stack's power-on state, so
                    // the N = 1 scenario allocates the legacy ports/ISNs;
                    // later positions get disjoint ephemeral-port windows and
                    // well-separated ISNs.
                    .with_flow_offset(i as u64)
                    // Only the traced client's stack records spans: its
                    // handshakes are the ones inside the browser-measured
                    // interval (see `build_traced` docs).
                    .with_trace(session_trace),
                )),
            );
        }

        let mut server_cfg = HostConfig::new("server", SERVER_MAC, SERVER_IP);
        for i in 0..n {
            let (_, mac, ip) = client_addr(i);
            server_cfg = server_cfg.with_neighbor(ip, mac);
        }
        let server = engine.add_node(Box::new(Host::new(
            server_cfg,
            WebServer::new(cfg.server.clone()),
        )));

        let switch_ports = n + 1 + usize::from(cfg.cross_traffic.is_some());
        let switch = engine.add_node(Box::new(Switch::new(switch_ports)));

        let mut client_links = Vec::with_capacity(n);
        for (i, &client) in clients.iter().enumerate() {
            client_links.push(engine.connect(
                client,
                0,
                switch,
                i as PortNo,
                LinkSpec::fast_ethernet(),
            ));
        }
        // The server's access link is the shared bottleneck every session
        // contends for; its spec is a config knob so the `contend`
        // experiment can narrow it. The default is the same fast Ethernet
        // as always — the legacy clean path is untouched.
        let server_link = engine.connect(server, 0, switch, n as PortNo, cfg.server_link);
        // Per-direction spec overrides (asymmetric rates, per-direction
        // queue bounds) install *before* the netem delay below, so the
        // delay lands on the final spec. "Down" is the direction the
        // server transmits (server → clients), "up" the reverse.
        if let Some(spec) = cfg.server_shape.down_spec {
            engine.set_link_spec(server_link, server, spec);
        }
        if let Some(spec) = cfg.server_shape.up_spec {
            engine.set_link_spec(server_link, switch, spec);
        }
        engine.set_one_way_delay(server_link, server, cfg.server_delay);
        // Dynamics wiring is gated exactly like the impairments below: a
        // static shape installs nothing, keeping the clean build
        // bit-identical to the historical engine.
        if !cfg.server_shape.down.is_static() {
            engine.set_dynamics(server_link, server, cfg.server_shape.down.clone());
        }
        if !cfg.server_shape.up.is_static() {
            engine.set_dynamics(server_link, switch, cfg.server_shape.up.clone());
        }

        // Impairment wiring is fully gated, exactly as in the legacy
        // build: a clean Impairment installs nothing. Client 0 keeps the
        // legacy stream labels; later clients draw from their own
        // suffixed streams so adding a session never perturbs another's
        // fault pattern.
        let imp = cfg.impairment;
        if !imp.up.is_clean() {
            for (i, (&client, &link)) in clients.iter().zip(&client_links).enumerate() {
                let stream = if i == 0 {
                    "fault.up".to_string()
                } else {
                    format!("fault.up.{i}")
                };
                engine.set_fault(
                    link,
                    client,
                    imp.up,
                    rng::stream_indexed(cfg.seed, &stream, rep_token),
                );
            }
        }
        if !imp.down.is_clean() {
            engine.set_fault(
                server_link,
                server,
                imp.down,
                rng::stream_indexed(cfg.seed, "fault.down", rep_token),
            );
        }
        if imp.jitter > SimDuration::ZERO {
            engine.set_jitter(
                server_link,
                server,
                imp.jitter,
                rng::stream_indexed(cfg.seed, "jitter.down", rep_token),
            );
        }

        if let Some(ct) = cfg.cross_traffic {
            let interval = SimDuration::from_nanos((1_000_000_000u64 / ct.rate_pps.max(1)).max(1));
            let sends = ct.duration.as_nanos() / interval.as_nanos().max(1);
            let noise = engine.add_node(Box::new(Host::new(
                HostConfig::new("noise", MacAddr::local(3), Ipv4Addr::new(192, 168, 1, 3))
                    .with_neighbor(SERVER_IP, SERVER_MAC),
                NoiseSource::new(
                    (SERVER_IP, cfg.server.udp_echo_port),
                    interval,
                    sends,
                    ct.payload,
                ),
            )));
            engine.connect(noise, 0, switch, n + 1, LinkSpec::fast_ethernet());
        }

        let mk_tap = |name: &str, stream: &str| {
            let buf = CaptureBuffer::new(name);
            if cfg.capture_noise_ns > 0 {
                buf.with_noise(TimestampNoise::UniformLag {
                    bound_ns: cfg.capture_noise_ns,
                    rng: rng::stream_indexed(cfg.seed, stream, rep_token),
                })
            } else {
                buf
            }
        };
        let mut client_taps = Vec::with_capacity(n);
        for (i, (&client, &link)) in clients.iter().zip(&client_links).enumerate() {
            let (tap_name, stream) = if i == 0 {
                ("client-nic".to_string(), "cap.client".to_string())
            } else {
                (format!("client-nic-{i}"), format!("cap.client.{i}"))
            };
            client_taps.push(engine.add_tap(link, client, mk_tap(&tap_name, &stream)));
        }
        let server_tap = engine.add_tap(server_link, server, mk_tap("server-nic", "cap.server"));

        Scenario {
            engine,
            clients,
            server,
            switch,
            client_taps,
            server_tap,
            server_link,
            trace,
            session_ids,
        }
    }

    /// Number of sessions in the scenario.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether the scenario holds no sessions (never true for a built
    /// scenario; kept for API completeness next to [`Scenario::len`]).
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// The session id at client position `i` (ascending-id order).
    pub fn session_id(&self, i: usize) -> u64 {
        self.session_ids[i]
    }

    /// Run all sessions to completion (generous horizon as a hang
    /// backstop) and return the finishing time.
    pub fn run(&mut self) -> SimTime {
        self.engine.run_until(SimTime::from_secs(300))
    }

    /// The browser session at client position `i` (read results after
    /// [`Scenario::run`]).
    pub fn session(&self, i: usize) -> &BrowserSession {
        self.engine
            .node_ref::<Host<BrowserSession>>(self.clients[i])
            .app()
    }

    /// The shared server application (stats: `peak_concurrent` records
    /// the contention it actually saw).
    pub fn web_server(&self) -> &WebServer {
        self.engine.node_ref::<Host<WebServer>>(self.server).app()
    }

    /// Extract the recorded trace data, if tracing was enabled. Takes
    /// `&mut self`: the buffer is moved out.
    pub fn take_trace(&mut self) -> Option<TraceData> {
        self.trace.take()
    }
}

/// Builds a [`Scenario`], mirroring [`crate::testbed::TestbedBuilder`]:
/// every knob defaults to the single-client paper testbed, and
/// validation happens once in [`ScenarioBuilder::build`] — returning
/// [`RunError`] instead of panicking mid-construction.
///
/// ```
/// use bnm_core::scenario::Scenario;
/// # use bnm_browser::{BrowserKind, BrowserProfile, ProbePlan, ProbeTransport, Technology};
/// # use bnm_core::scenario::SessionSpec;
/// # use bnm_time::{MachineTimer, OsKind, TimingApiKind};
/// # let spec = |id: u64| SessionSpec {
/// #     id,
/// #     plan: ProbePlan::new("xhr_get", Technology::Native,
/// #         ProbeTransport::HttpGet, TimingApiKind::JsDateGetTime),
/// #     profile: BrowserProfile::build(BrowserKind::Chrome, OsKind::Ubuntu1204).unwrap(),
/// #     machine: MachineTimer::new(OsKind::Ubuntu1204, 7 + id),
/// #     seed: 100 + id,
/// # };
/// let mut sc = Scenario::builder()
///     .sessions([spec(0), spec(1)])
///     .build()
///     .unwrap();
/// sc.run();
/// assert!(sc.session(0).result().completed);
/// ```
pub struct ScenarioBuilder {
    cfg: TestbedConfig,
    specs: Vec<SessionSpec>,
    rep_token: u64,
    trace: Trace,
    session_limit: usize,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioBuilder {
    /// A builder with the paper-default testbed config, no sessions,
    /// repetition token 0, tracing disabled, and the default session
    /// limit.
    pub fn new() -> Self {
        ScenarioBuilder {
            cfg: TestbedConfig::default(),
            specs: Vec::new(),
            rep_token: 0,
            trace: Trace::disabled(),
            session_limit: Scenario::DEFAULT_SESSION_LIMIT,
        }
    }

    /// Replace the testbed configuration (server link, impairments,
    /// capture noise, cross traffic, …).
    pub fn config(mut self, cfg: TestbedConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Add one session.
    pub fn session(mut self, spec: SessionSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Add many sessions.
    pub fn sessions(mut self, specs: impl IntoIterator<Item = SessionSpec>) -> Self {
        self.specs.extend(specs);
        self
    }

    /// Repetition token mixed into every probe marker (distinguishes
    /// repetitions of the same cell on the wire).
    pub fn rep_token(mut self, token: u64) -> Self {
        self.rep_token = token;
        self
    }

    /// Install a trace handle (wired to the engine and the lowest-id
    /// session; see [`Scenario::build_traced`]).
    pub fn trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Raise (or lower) the validated session cap for this scenario.
    /// The limit itself is validated against
    /// [`Scenario::ADDRESS_CAPACITY`] at build time.
    pub fn session_limit(mut self, limit: usize) -> Self {
        self.session_limit = limit;
        self
    }

    /// Validate and build the scenario.
    pub fn build(mut self) -> Result<Scenario, RunError> {
        if self.specs.is_empty() {
            return Err(RunError::InvalidInput(
                "a scenario needs at least one session",
            ));
        }
        if self.session_limit == 0 {
            return Err(RunError::InvalidInput("session limit must be >= 1"));
        }
        if self.session_limit > Scenario::ADDRESS_CAPACITY {
            return Err(RunError::InvalidInput(
                "session limit exceeds the client addressing capacity",
            ));
        }
        if self.specs.len() > self.session_limit {
            return Err(RunError::InvalidInput(
                "scenario session count exceeds the configured session limit",
            ));
        }
        self.specs.sort_by_key(|s| s.id);
        if self.specs.windows(2).any(|w| w[0].id == w[1].id) {
            return Err(RunError::InvalidInput("duplicate session id in scenario"));
        }
        // Degenerate link parameters (zero rate, zero queue bound) would
        // panic or hang deep inside the engine; reject them here.
        self.cfg
            .server_link
            .validate()
            .map_err(RunError::InvalidInput)?;
        self.cfg
            .server_shape
            .validate()
            .map_err(RunError::InvalidInput)?;
        Ok(Scenario::build_inner(
            &self.cfg,
            self.specs,
            self.rep_token,
            self.trace,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnm_browser::{BrowserKind, ProbeTransport, Technology};
    use bnm_time::{OsKind, TimingApiKind};

    fn xhr_plan() -> ProbePlan {
        ProbePlan::new(
            "xhr_get",
            Technology::Native,
            ProbeTransport::HttpGet,
            TimingApiKind::JsDateGetTime,
        )
    }

    fn spec(id: u64) -> SessionSpec {
        SessionSpec {
            id,
            plan: xhr_plan(),
            profile: BrowserProfile::build(BrowserKind::Chrome, OsKind::Ubuntu1204).unwrap(),
            machine: MachineTimer::new(OsKind::Ubuntu1204, 7 + id),
            seed: 100 + id,
        }
    }

    #[test]
    fn every_session_completes_and_is_captured() {
        let mut sc = Scenario::build(
            &TestbedConfig::default(),
            vec![spec(0), spec(1), spec(2)],
            0,
        );
        sc.run();
        assert_eq!(sc.len(), 3);
        for i in 0..3 {
            assert!(sc.session(i).result().completed, "session {i}");
            assert!(!sc.engine.tap(sc.client_taps[i]).is_empty(), "tap {i}");
        }
        // The shared server served every session's page + 2 probes.
        assert_eq!(sc.web_server().stats.pages, 3);
        assert_eq!(sc.web_server().stats.gets, 6);
        assert!(sc.web_server().stats.peak_concurrent >= 2);
    }

    #[test]
    fn session_order_is_by_id_not_insertion() {
        let run = |ids: Vec<u64>| {
            let mut sc = Scenario::build(
                &TestbedConfig::default(),
                ids.into_iter().map(spec).collect(),
                0,
            );
            sc.run();
            (0..sc.len())
                .map(|i| (sc.session_id(i), sc.session(i).result().rounds.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(vec![2, 0, 1]), run(vec![0, 1, 2]));
    }

    #[test]
    #[should_panic(expected = "duplicate session id")]
    fn duplicate_ids_are_rejected() {
        Scenario::build(&TestbedConfig::default(), vec![spec(3), spec(3)], 0);
    }

    #[test]
    fn client_addressing_is_disjoint() {
        // Cover the whole legacy range, the scheme transition at
        // position 191, and a crowd well past 1,000 clients.
        let mut seen = std::collections::HashSet::new();
        for i in 0..2_000 {
            let (name, mac, ip) = client_addr(i);
            assert!(seen.insert((mac, ip)), "collision at position {i}");
            assert!(!name.is_empty());
            assert_ne!(ip, SERVER_IP);
            assert_ne!(ip, Ipv4Addr::new(192, 168, 1, 3)); // noise source
            assert!(!mac.is_multicast(), "unicast MAC required at {i}");
        }
        // The legacy formula is frozen: positions 1..=190 must keep
        // producing the addresses existing traces were recorded with.
        assert_eq!(
            client_addr(190).2,
            Ipv4Addr::new(192, 168, 1, 254),
            "legacy scheme must stay bit-identical"
        );
        assert_eq!(client_addr(191).2, Ipv4Addr::new(10, 77, 0, 191));
    }

    #[test]
    fn builder_mirrors_build() {
        // Same sessions, same knobs → the builder's scenario must be
        // observably identical to the legacy constructor's.
        let via_build = {
            let mut sc = Scenario::build(&TestbedConfig::default(), vec![spec(0), spec(1)], 3);
            sc.run();
            (0..sc.len())
                .map(|i| sc.session(i).result().rounds.clone())
                .collect::<Vec<_>>()
        };
        let via_builder = {
            let mut sc = Scenario::builder()
                .sessions([spec(1), spec(0)])
                .rep_token(3)
                .build()
                .unwrap();
            sc.run();
            (0..sc.len())
                .map(|i| sc.session(i).result().rounds.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(via_build, via_builder);
    }

    #[test]
    fn builder_validates_instead_of_panicking() {
        assert!(matches!(
            Scenario::builder().build(),
            Err(RunError::InvalidInput(_))
        ));
        assert!(matches!(
            Scenario::builder().sessions([spec(4), spec(4)]).build(),
            Err(RunError::InvalidInput(_))
        ));
        assert!(matches!(
            Scenario::builder()
                .sessions([spec(0), spec(1)])
                .session_limit(1)
                .build(),
            Err(RunError::InvalidInput(_))
        ));
        assert!(matches!(
            Scenario::builder()
                .session(spec(0))
                .session_limit(Scenario::ADDRESS_CAPACITY + 1)
                .build(),
            Err(RunError::InvalidInput(_))
        ));
        assert!(matches!(
            Scenario::builder()
                .session(spec(0))
                .session_limit(0)
                .build(),
            Err(RunError::InvalidInput(_))
        ));
    }

    #[test]
    fn builder_lifts_the_legacy_cap() {
        // More sessions than the old 64-session cap, validated through
        // the builder. Running them to completion is the contend
        // sweep's job; here we only need construction to succeed and
        // the addressing to hold up.
        let sc = Scenario::builder()
            .sessions((0..100).map(spec))
            .build()
            .unwrap();
        assert_eq!(sc.len(), 100);
    }
}
