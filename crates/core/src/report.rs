//! The single rendering surface for every bnm output path.
//!
//! Historically each subcommand and bench binary hand-rolled its own
//! text/JSON/CSV formatting. This module now owns all of it:
//!
//! * [`Render`] — the one trait every reportable artefact implements,
//!   with [`Render::to_text`] / [`Render::to_json`] / [`Render::to_csv`]
//!   backends selected by a [`ReportFormat`].
//! * [`Table`] — a titled column/row table; the workhorse behind the
//!   sweep subcommands (`impair`, `contend`, `tput`, `recommend`) and
//!   the bench binaries.
//! * [`ReportSnapshot`] — the pollable summary the continuous monitor
//!   ([`crate::monitor::Monitor`]) emits and that
//!   [`crate::runner::CellResult::summary`] produces for batch runs:
//!   per-window distribution digests ([`WindowReport`] /
//!   [`DistSummary`]) plus lifetime counters.
//! * [`TraceReport`] — adapter rendering attribution rows through the
//!   same trait.
//!
//! The figure-style helpers ([`panel_rows`], [`render_panel`],
//! [`render_cdf_block`], [`to_csv`]) predate the trait and remain for
//! the Figure 3/4 reproduction paths.

use std::fmt::Write as _;

use bnm_stats::{ascii, summary, BoxStats, Cdf, QuantileSketch};

use crate::appraisal::{Appraisal, Thresholds, Verdict};
use crate::attribution::{self, RoundAttribution};
use crate::config::ExperimentCell;
use crate::runner::CellResult;

// ---------------------------------------------------------------------------
// Format selection and the Render trait
// ---------------------------------------------------------------------------

/// Output format shared by every subcommand's `--format` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportFormat {
    /// Human-oriented aligned text (the default).
    #[default]
    Text,
    /// A single JSON document.
    Json,
    /// Comma-separated values with a header line.
    Csv,
}

impl std::str::FromStr for ReportFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<ReportFormat, String> {
        match s {
            "text" => Ok(ReportFormat::Text),
            "json" => Ok(ReportFormat::Json),
            "csv" => Ok(ReportFormat::Csv),
            other => Err(format!("unknown format '{other}' (text|json|csv)")),
        }
    }
}

/// Anything that can be rendered in all three report formats.
///
/// Every renderer returns a complete document ending in a newline.
pub trait Render {
    /// Aligned human-readable text.
    fn to_text(&self) -> String;
    /// One JSON document.
    fn to_json(&self) -> String;
    /// CSV with a header line.
    fn to_csv(&self) -> String;

    /// Dispatch on a [`ReportFormat`].
    fn render(&self, fmt: ReportFormat) -> String {
        match fmt {
            ReportFormat::Text => self.to_text(),
            ReportFormat::Json => self.to_json(),
            ReportFormat::Csv => self.to_csv(),
        }
    }
}

/// A single table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Free text (JSON-escaped / CSV-quoted as needed).
    Text(String),
    /// An integer count.
    Int(i64),
    /// A float; non-finite values render as JSON `null` / text `nan`.
    Num(f64),
}

impl Value {
    fn text(&self) -> String {
        match self {
            Value::Text(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::Num(v) => fmt_num(*v),
        }
    }

    fn csv(&self) -> String {
        match self {
            // RFC 4180 §2: fields containing commas, quotes or line
            // breaks are quoted, with internal quotes doubled. Line
            // breaks stay verbatim inside the quotes.
            Value::Text(s) if s.contains([',', '"', '\n', '\r']) => {
                format!("\"{}\"", s.replace('"', "\"\""))
            }
            // A NaN cell renders as an empty field, mirroring the JSON
            // `null` — "nan" is not a number any CSV consumer parses.
            Value::Num(v) if !v.is_finite() => String::new(),
            other => other.text(),
        }
    }

    fn json(&self) -> String {
        match self {
            Value::Text(s) => json_string(s),
            Value::Int(i) => i.to_string(),
            Value::Num(v) if v.is_finite() => fmt_num(*v),
            Value::Num(_) => "null".into(),
        }
    }
}

/// Render a float compactly: up to six decimals, trailing zeros
/// trimmed, so counts print as `3` and medians as `4.125`.
pub(crate) fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return "nan".into();
    }
    let s = format!("{v:.6}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".into()
    } else {
        s.to_string()
    }
}

/// Escape a string as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON rendering of a float field (non-finite becomes `null`).
pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        fmt_num(v)
    } else {
        "null".into()
    }
}

/// CSV rendering of a float field (non-finite becomes an empty field,
/// the CSV analogue of JSON `null`).
fn csv_num(v: f64) -> String {
    if v.is_finite() {
        fmt_num(v)
    } else {
        String::new()
    }
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

/// A titled table — the shared shape behind all sweep-style output.
///
/// Text mode prints the title, an aligned header and rows, then any
/// notes as trailing paragraphs; CSV mode emits only header + rows
/// (machine consumers don't want prose); JSON mode emits
/// `{"title": …, "rows": [{column: value, …}, …]}`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// Table heading (text mode) / `"title"` (JSON mode).
    pub title: String,
    /// Column names; every row must have exactly this many cells.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<Value>>,
    /// Explanatory paragraphs appended in text mode only.
    pub notes: Vec<String>,
}

impl Table {
    /// A table with the given title and column names.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row; panics if the cell count does not match the header.
    pub fn row(&mut self, cells: Vec<Value>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "table '{}': row width {} != {} columns",
            self.title,
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Append an explanatory paragraph (text mode only).
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }
}

impl Render for Table {
    fn to_text(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::text).collect())
            .collect();
        let widths: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                cells
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(c.chars().count()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut line = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            let _ = write!(line, "{:>w$}  ", c, w = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        for row in &cells {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:>w$}  ", cell, w = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        for note in &self.notes {
            let _ = writeln!(out, "\n{note}");
        }
        out
    }

    fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"title\": {}, \"rows\": [",
            json_string(&self.title)
        );
        for (ri, row) in self.rows.iter().enumerate() {
            if ri > 0 {
                out.push_str(", ");
            }
            out.push('{');
            for (ci, cell) in row.iter().enumerate() {
                if ci > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", json_string(&self.columns[ci]), cell.json());
            }
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }

    fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Value::csv).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Distribution digests, windows, snapshots
// ---------------------------------------------------------------------------

/// A fixed-size digest of one Δd distribution: count, extremes, mean
/// and the working set of quantiles. Quantiles are `NaN` when empty.
///
/// Built either exactly from retained samples (R-7 interpolation) or
/// from a [`QuantileSketch`], in which case each quantile carries the
/// sketch's documented relative-error bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistSummary {
    /// Samples digested.
    pub count: u64,
    /// Exact minimum (`NaN` when empty).
    pub min: f64,
    /// Exact maximum (`NaN` when empty).
    pub max: f64,
    /// Exact mean (`NaN` when empty).
    pub mean: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Lower quartile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// Upper quartile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

const PROBES: [f64; 6] = [0.10, 0.25, 0.50, 0.75, 0.90, 0.99];

impl DistSummary {
    /// The empty digest: count 0, everything else `NaN`.
    pub fn empty() -> DistSummary {
        DistSummary {
            count: 0,
            min: f64::NAN,
            max: f64::NAN,
            mean: f64::NAN,
            p10: f64::NAN,
            p25: f64::NAN,
            p50: f64::NAN,
            p75: f64::NAN,
            p90: f64::NAN,
            p99: f64::NAN,
        }
    }

    /// Exact digest of already-sorted samples (R-7 quantiles).
    pub fn of_sorted(sorted: &[f64]) -> DistSummary {
        if sorted.is_empty() {
            return DistSummary::empty();
        }
        let q: Vec<f64> = PROBES
            .iter()
            .map(|p| summary::quantile(sorted, *p))
            .collect();
        DistSummary {
            count: sorted.len() as u64,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p10: q[0],
            p25: q[1],
            p50: q[2],
            p75: q[3],
            p90: q[4],
            p99: q[5],
        }
    }

    /// Exact digest of unsorted samples.
    pub fn of_samples(xs: &[f64]) -> DistSummary {
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("Δd samples are finite"));
        DistSummary::of_sorted(&sorted)
    }

    /// Digest of a sketch: exact count/min/max/mean, quantiles within
    /// the sketch's relative-error bound.
    pub fn of_sketch(sk: &QuantileSketch) -> DistSummary {
        if sk.count() == 0 {
            return DistSummary::empty();
        }
        DistSummary {
            count: sk.count(),
            min: sk.min(),
            max: sk.max(),
            mean: sk.mean(),
            p10: sk.quantile(PROBES[0]),
            p25: sk.quantile(PROBES[1]),
            p50: sk.quantile(PROBES[2]),
            p75: sk.quantile(PROBES[3]),
            p90: sk.quantile(PROBES[4]),
            p99: sk.quantile(PROBES[5]),
        }
    }

    /// Inter-quartile range (`NaN` when empty).
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }

    fn json(&self) -> String {
        format!(
            "{{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \
             \"p10\": {}, \"p25\": {}, \"p50\": {}, \"p75\": {}, \
             \"p90\": {}, \"p99\": {}}}",
            self.count,
            json_num(self.min),
            json_num(self.max),
            json_num(self.mean),
            json_num(self.p10),
            json_num(self.p25),
            json_num(self.p50),
            json_num(self.p75),
            json_num(self.p90),
            json_num(self.p99),
        )
    }
}

/// One aggregation window of a [`ReportSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowReport {
    /// Human label: `"1s"`, `"10s"`, `"1m"`, or `"total"`.
    pub label: String,
    /// Window span in virtual seconds; `None` for the lifetime window.
    pub span_secs: Option<f64>,
    /// Rounds attempted inside the window.
    pub rounds: u64,
    /// Rounds excluded for retransmissions inside the window.
    pub excluded_rounds: u64,
    /// Repetitions that failed outright inside the window.
    pub failures: u64,
    /// Round-1 Δd digest.
    pub d1: DistSummary,
    /// Round-2 Δd digest.
    pub d2: DistSummary,
    /// Δd1 ∪ Δd2 digest (the appraisal operates on this pool).
    pub pooled: DistSummary,
}

impl WindowReport {
    fn json(&self) -> String {
        let span = match self.span_secs {
            Some(s) => fmt_num(s),
            None => "null".into(),
        };
        format!(
            "{{\"window\": {}, \"span_secs\": {}, \"rounds\": {}, \
             \"excluded_rounds\": {}, \"failures\": {}, \
             \"d1\": {}, \"d2\": {}, \"pooled\": {}}}",
            json_string(&self.label),
            span,
            self.rounds,
            self.excluded_rounds,
            self.failures,
            self.d1.json(),
            self.d2.json(),
            self.pooled.json(),
        )
    }
}

/// Per-probe datagram digest attached to a [`ReportSnapshot`] when the
/// cell ran an unreliable-transport method: delivery counters plus
/// one-way-delay and jitter distributions. Losses are measurements here
/// (nothing retransmits under the browser), so `sent - delivered` *is*
/// the loss statistic rather than an exclusion count.
#[derive(Debug, Clone, PartialEq)]
pub struct DatagramReport {
    /// Probes put on the wire.
    pub sent: u64,
    /// Probes whose echo reached the client NIC.
    pub delivered: u64,
    /// Probes lost before the server tap.
    pub lost_upstream: u64,
    /// Echoes lost after the server tap.
    pub lost_downstream: u64,
    /// Probes duplicated on the wire.
    pub duplicated: u64,
    /// Probes whose echo arrived after a higher sequence number's.
    pub reordered: u64,
    /// Upstream one-way delay digest (client Tx → server Rx), ms.
    pub owd_up: DistSummary,
    /// Downstream one-way delay digest (server Tx → client Rx), ms.
    pub owd_down: DistSummary,
    /// RFC 3550 jitter from wire transit pairs, one sample per rep.
    pub wire_jitter: DistSummary,
    /// The same estimator over browser stamps — the inflation the
    /// paper's §2.2 warns about is the gap to `wire_jitter`.
    pub browser_jitter: DistSummary,
}

impl DatagramReport {
    /// Digest a session's accumulated datagram samples.
    pub fn of(d: &crate::runner::DatagramSamples) -> DatagramReport {
        DatagramReport {
            sent: d.sent,
            delivered: d.delivered,
            lost_upstream: d.lost_upstream,
            lost_downstream: d.lost_downstream,
            duplicated: d.duplicated,
            reordered: d.reordered,
            owd_up: DistSummary::of_samples(&d.owd_up_ms),
            owd_down: DistSummary::of_samples(&d.owd_down_ms),
            wire_jitter: DistSummary::of_samples(&d.wire_jitter_ms),
            browser_jitter: DistSummary::of_samples(&d.browser_jitter_ms),
        }
    }

    /// Fraction of sent probes lost (`NaN` when nothing was sent).
    pub fn loss_rate(&self) -> f64 {
        (self.sent - self.delivered) as f64 / self.sent as f64
    }

    /// Fraction of sent probes reordered (`NaN` when nothing was sent).
    pub fn reorder_rate(&self) -> f64 {
        self.reordered as f64 / self.sent as f64
    }

    fn json(&self) -> String {
        format!(
            "{{\"sent\": {}, \"delivered\": {}, \"lost_upstream\": {}, \
             \"lost_downstream\": {}, \"duplicated\": {}, \"reordered\": {}, \
             \"loss_rate\": {}, \"reorder_rate\": {}, \
             \"owd_up\": {}, \"owd_down\": {}, \
             \"wire_jitter\": {}, \"browser_jitter\": {}}}",
            self.sent,
            self.delivered,
            self.lost_upstream,
            self.lost_downstream,
            self.duplicated,
            self.reordered,
            json_num(self.loss_rate()),
            json_num(self.reorder_rate()),
            self.owd_up.json(),
            self.owd_down.json(),
            self.wire_jitter.json(),
            self.browser_jitter.json(),
        )
    }
}

/// Queue telemetry of the server's access link, accumulated over a
/// cell's repetitions: drop counters (drop-tail overflow + AQM drops)
/// and queue-depth high-water marks, per direction. "Down" is the
/// direction the server transmits. This is what makes a bufferbloat run
/// explainable: a deep drop-tail queue shows a large
/// `down_queue_peak_bytes` with zero drops, while the CoDel variant
/// shows drops and a shallow peak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkReport {
    /// Frames dropped at the downstream queue (server → clients).
    pub down_queue_drops: u64,
    /// Frames dropped at the upstream queue (clients → server).
    pub up_queue_drops: u64,
    /// Downstream queue-depth high-water mark, bytes.
    pub down_queue_peak_bytes: u64,
    /// Upstream queue-depth high-water mark, bytes.
    pub up_queue_peak_bytes: u64,
}

impl LinkReport {
    /// Fold another repetition's telemetry in: drops sum, peaks max.
    pub fn merge(&mut self, other: &LinkReport) {
        self.down_queue_drops += other.down_queue_drops;
        self.up_queue_drops += other.up_queue_drops;
        self.down_queue_peak_bytes = self.down_queue_peak_bytes.max(other.down_queue_peak_bytes);
        self.up_queue_peak_bytes = self.up_queue_peak_bytes.max(other.up_queue_peak_bytes);
    }

    fn json(&self) -> String {
        format!(
            "{{\"down_queue_drops\": {}, \"up_queue_drops\": {}, \
             \"down_queue_peak_bytes\": {}, \"up_queue_peak_bytes\": {}}}",
            self.down_queue_drops,
            self.up_queue_drops,
            self.down_queue_peak_bytes,
            self.up_queue_peak_bytes,
        )
    }
}

/// The pollable summary shape shared by the continuous monitor and the
/// batch runner ([`CellResult::summary`]).
///
/// `windows` always ends with the lifetime `"total"` window, so a batch
/// summary is simply a snapshot with that single window. Snapshots are
/// plain data and compare bit-exactly — serial and parallel runs of the
/// same cell produce `==` snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSnapshot {
    /// The measured cell, e.g. `"XHR GET / C (U)"`.
    pub label: String,
    /// Virtual time of the snapshot, seconds since the monitor started
    /// (`0.0` for batch summaries).
    pub at_secs: f64,
    /// Lifetime rounds attempted.
    pub rounds: u64,
    /// Lifetime Δd samples folded.
    pub samples: u64,
    /// Lifetime excluded rounds.
    pub excluded_rounds: u64,
    /// Lifetime failed repetitions.
    pub failures: u64,
    /// Guaranteed relative error of the quantiles: `0.0` when they were
    /// computed exactly, else the sketch's `√γ − 1` bound.
    pub relative_error_bound: f64,
    /// Aggregation windows, lifetime `"total"` last. Never empty.
    pub windows: Vec<WindowReport>,
    /// Per-probe datagram digest — `Some` only for datagram methods
    /// (the reference session's view, like `windows`' Δd digests).
    pub datagram: Option<DatagramReport>,
    /// Server-access-link queue telemetry — `Some` for batch summaries
    /// (the runner reads the engine's gauges after every repetition),
    /// `None` for monitor polls, which do not own the engine.
    pub link: Option<LinkReport>,
}

impl ReportSnapshot {
    /// The lifetime window (always present, always last).
    pub fn total(&self) -> &WindowReport {
        self.windows.last().expect("snapshot has a total window")
    }

    /// Appraise the lifetime pooled distribution under the default
    /// thresholds; `None` when no samples have been folded yet.
    pub fn verdict(&self) -> Option<Verdict> {
        let pooled = &self.total().pooled;
        if pooled.count == 0 {
            return None;
        }
        Some(Appraisal::verdict_of_summary(
            pooled,
            &Thresholds::default(),
        ))
    }
}

impl Render for ReportSnapshot {
    fn to_text(&self) -> String {
        let mut out = String::new();
        let verdict = match self.verdict() {
            Some(v) => format!("{v:?}"),
            None => "-".into(),
        };
        let _ = writeln!(
            out,
            "{} @ {}s  rounds {}  samples {}  excluded {}  failures {}  verdict {}",
            self.label,
            fmt_num(self.at_secs),
            self.rounds,
            self.samples,
            self.excluded_rounds,
            self.failures,
            verdict,
        );
        if let Some(dg) = &self.datagram {
            let _ = writeln!(
                out,
                "datagram: sent {}  delivered {}  lost {}↑ {}↓  dup {}  reordered {}  \
                 owd p50 {}↑ {}↓ ms  jitter wire {} / browser {} ms",
                dg.sent,
                dg.delivered,
                dg.lost_upstream,
                dg.lost_downstream,
                dg.duplicated,
                dg.reordered,
                fmt_num(dg.owd_up.p50),
                fmt_num(dg.owd_down.p50),
                fmt_num(dg.wire_jitter.p50),
                fmt_num(dg.browser_jitter.p50),
            );
        }
        if let Some(link) = &self.link {
            let _ = writeln!(
                out,
                "link queue: drops {}↓ {}↑  peak {}↓ {}↑ bytes",
                link.down_queue_drops,
                link.up_queue_drops,
                link.down_queue_peak_bytes,
                link.up_queue_peak_bytes,
            );
        }
        let mut t = Table::new(
            "",
            &[
                "window", "rounds", "excl", "fail", "d1_p50", "d2_p50", "p10", "p50", "p90", "iqr",
            ],
        );
        for w in &self.windows {
            t.row(vec![
                Value::Text(w.label.clone()),
                Value::Int(w.rounds as i64),
                Value::Int(w.excluded_rounds as i64),
                Value::Int(w.failures as i64),
                Value::Num(w.d1.p50),
                Value::Num(w.d2.p50),
                Value::Num(w.pooled.p10),
                Value::Num(w.pooled.p50),
                Value::Num(w.pooled.p90),
                Value::Num(w.pooled.iqr()),
            ]);
        }
        out.push_str(&t.to_text());
        out
    }

    fn to_json(&self) -> String {
        let verdict = match self.verdict() {
            Some(v) => json_string(&format!("{v:?}")),
            None => "null".into(),
        };
        let windows: Vec<String> = self.windows.iter().map(WindowReport::json).collect();
        let datagram = match &self.datagram {
            Some(dg) => dg.json(),
            None => "null".into(),
        };
        let link = match &self.link {
            Some(l) => l.json(),
            None => "null".into(),
        };
        format!(
            "{{\"label\": {}, \"at_secs\": {}, \"rounds\": {}, \"samples\": {}, \
             \"excluded_rounds\": {}, \"failures\": {}, \
             \"relative_error_bound\": {}, \"verdict\": {}, \
             \"datagram\": {}, \"link\": {}, \"windows\": [{}]}}\n",
            json_string(&self.label),
            json_num(self.at_secs),
            self.rounds,
            self.samples,
            self.excluded_rounds,
            self.failures,
            json_num(self.relative_error_bound),
            verdict,
            datagram,
            link,
            windows.join(", "),
        )
    }

    fn to_csv(&self) -> String {
        let mut out = String::from(
            "label,at_secs,window,span_secs,rounds,excluded_rounds,failures,\
             series,count,min,p10,p25,p50,p75,p90,p99,max,mean,\
             link_down_drops,link_up_drops,link_down_peak_bytes,link_up_peak_bytes\n",
        );
        // Link telemetry repeats on every row (it is per-cell, not
        // per-window); empty fields when the snapshot carries none.
        let link_cols = match &self.link {
            Some(l) => format!(
                "{},{},{},{}",
                l.down_queue_drops,
                l.up_queue_drops,
                l.down_queue_peak_bytes,
                l.up_queue_peak_bytes
            ),
            None => ",,,".into(),
        };
        let mut series_row = |w: &WindowReport, series: &str, d: &DistSummary| {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                Value::Text(self.label.clone()).csv(),
                fmt_num(self.at_secs),
                w.label,
                w.span_secs.map(fmt_num).unwrap_or_default(),
                w.rounds,
                w.excluded_rounds,
                w.failures,
                series,
                d.count,
                csv_num(d.min),
                csv_num(d.p10),
                csv_num(d.p25),
                csv_num(d.p50),
                csv_num(d.p75),
                csv_num(d.p90),
                csv_num(d.p99),
                csv_num(d.max),
                csv_num(d.mean),
                link_cols,
            );
        };
        for w in &self.windows {
            for (series, d) in [("d1", &w.d1), ("d2", &w.d2), ("pooled", &w.pooled)] {
                series_row(w, series, d);
            }
        }
        // Datagram digests ride along as extra series of the lifetime
        // window, so one header serves the whole document.
        if let Some(dg) = &self.datagram {
            let total = self.total().clone();
            for (series, d) in [
                ("owd_up", &dg.owd_up),
                ("owd_down", &dg.owd_down),
                ("wire_jitter", &dg.wire_jitter),
                ("browser_jitter", &dg.browser_jitter),
            ] {
                series_row(&total, series, d);
            }
        }
        out
    }
}

/// [`Render`] adapter over attribution rows, so `bnm trace` shares the
/// one `--format` code path.
#[derive(Debug, Clone, Copy)]
pub struct TraceReport<'a> {
    /// The attributed rounds to render.
    pub attributions: &'a [RoundAttribution],
}

impl<'a> TraceReport<'a> {
    /// Wrap attribution rows for rendering.
    pub fn new(attributions: &'a [RoundAttribution]) -> Self {
        TraceReport { attributions }
    }
}

impl Render for TraceReport<'_> {
    fn to_text(&self) -> String {
        attribution::render_table(self.attributions)
    }

    fn to_json(&self) -> String {
        attribution::to_json(self.attributions)
    }

    fn to_csv(&self) -> String {
        attribution::to_csv(self.attributions)
    }
}

// ---------------------------------------------------------------------------
// Figure-style helpers (pre-trait, kept for the Figure 3/4 paths)
// ---------------------------------------------------------------------------

/// A labelled box-plot row of a Figure 3 panel.
#[derive(Debug, Clone)]
pub struct PanelRow {
    /// The paper's x-axis label, e.g. "C (U) Δd1".
    pub label: String,
    /// Box statistics.
    pub stats: BoxStats,
}

/// Build the two rows (Δd1, Δd2) a cell contributes to its panel.
pub fn panel_rows(cell: &ExperimentCell, result: &CellResult) -> Vec<PanelRow> {
    let base = cell.runtime.figure_label(cell.os);
    vec![
        PanelRow {
            label: format!("{base} Δd1"),
            stats: BoxStats::of(&result.d1),
        },
        PanelRow {
            label: format!("{base} Δd2"),
            stats: BoxStats::of(&result.d2),
        },
    ]
}

/// Render a Figure 3 panel: one ASCII box per row on a shared axis.
/// An empty panel renders as its title plus a note, not a panic.
pub fn render_panel(title: &str, rows: &[PanelRow], width: usize) -> String {
    if rows.is_empty() {
        return format!("{title}\n(no rows)\n");
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for r in rows {
        let (a, b) = r.stats.full_range();
        lo = lo.min(a);
        hi = hi.max(b);
    }
    if hi - lo < 1e-9 {
        hi = lo + 1.0;
    }
    let pad = (hi - lo) * 0.05;
    let (lo, hi) = (lo - pad, hi + pad);
    // Non-empty: the early return above guarantees a maximum exists.
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for r in rows {
        let _ = writeln!(
            out,
            "{:label_w$} |{}| med={:7.2}",
            r.label,
            ascii::render_box(&r.stats, lo, hi, width),
            r.stats.median,
        );
    }
    let _ = writeln!(
        out,
        "{:label_w$}  {:<10.1}{:>width$.1} (ms)",
        "",
        lo,
        hi,
        width = width - 10
    );
    out
}

/// Render a Figure 4 style CDF block.
pub fn render_cdf_block(title: &str, cdf: &Cdf, width: usize, height: usize) -> String {
    let (lo, hi) = cdf.range();
    let pad = ((hi - lo) * 0.05).max(0.5);
    format!(
        "{title}\n{}",
        ascii::render_cdf(cdf, lo - pad, hi + pad, width, height)
    )
}

/// One CSV line per Δd sample: `method,runtime,os,round,rep_index,delta_ms`.
pub fn to_csv(cell: &ExperimentCell, result: &CellResult) -> String {
    let mut out = String::from("method,runtime,os,round,index,delta_ms\n");
    let runtime = cell.runtime.figure_label(cell.os);
    for (round, data) in [(1u8, &result.d1), (2u8, &result.d2)] {
        for (i, d) in data.iter().enumerate() {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{:.6}",
                cell.method.label(),
                runtime,
                cell.os.initial(),
                round,
                i,
                d
            );
        }
    }
    out
}

/// A one-line summary of an appraisal, for harness stdout.
#[deprecated(
    since = "0.4.0",
    note = "build a ReportSnapshot (CellResult::summary) and use the Render trait"
)]
pub fn summary_line(cell: &ExperimentCell, a: &Appraisal) -> String {
    format!(
        "{:40} Δd1 med {:8.2}  Δd2 med {:8.2}  IQR {:6.2}  mean {}  verdict {:?}",
        cell.label(),
        a.d1.median,
        a.d2.median,
        a.pooled.iqr(),
        a.mean_ci.format_table4(),
        a.verdict
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeSel;
    use bnm_browser::BrowserKind;
    use bnm_methods::MethodId;
    use bnm_time::OsKind;

    fn cell() -> ExperimentCell {
        ExperimentCell::paper(
            MethodId::XhrGet,
            RuntimeSel::Browser(BrowserKind::Chrome),
            OsKind::Ubuntu1204,
        )
    }

    fn result() -> CellResult {
        CellResult {
            d1: (0..20).map(|i| 4.0 + (i % 5) as f64 * 0.3).collect(),
            d2: (0..20).map(|i| 3.0 + (i % 4) as f64 * 0.2).collect(),
            ..CellResult::default()
        }
    }

    #[test]
    fn panel_rows_carry_figure_labels() {
        let rows = panel_rows(&cell(), &result());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "C (U) Δd1");
        assert_eq!(rows[1].label, "C (U) Δd2");
    }

    #[test]
    fn rendered_panel_contains_all_rows_and_axis() {
        let rows = panel_rows(&cell(), &result());
        let s = render_panel("(a) XHR GET", &rows, 50);
        assert!(s.contains("(a) XHR GET"));
        assert!(s.contains("Δd1"));
        assert!(s.contains("Δd2"));
        assert!(s.contains("med="));
        assert!(s.contains("(ms)"));
    }

    #[test]
    fn csv_has_header_and_all_samples() {
        let csv = to_csv(&cell(), &result());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "method,runtime,os,round,index,delta_ms");
        assert_eq!(lines.len(), 1 + 40);
        assert!(lines[1].starts_with("xhr_get,C (U),U,1,0,"));
    }

    #[test]
    #[allow(deprecated)]
    fn summary_line_mentions_verdict() {
        let a = Appraisal::try_of(&result()).unwrap();
        let line = summary_line(&cell(), &a);
        assert!(line.contains("XHR GET"));
        assert!(line.contains("verdict"));
    }

    #[test]
    fn empty_panel_renders_a_note() {
        let s = render_panel("(z) empty", &[], 50);
        assert!(s.contains("(z) empty"));
        assert!(s.contains("(no rows)"));
    }

    #[test]
    fn cdf_block_renders() {
        let c = Cdf::of(&result().d1);
        let s = render_cdf_block("Δd1 CDF", &c, 40, 8);
        assert!(s.contains("Δd1 CDF"));
        assert!(s.contains('*'));
    }

    #[test]
    fn table_renders_all_three_formats() {
        let mut t = Table::new("sweep", &["method", "clients", "d1_median_ms"]);
        t.row(vec![
            Value::Text("xhr_get".into()),
            Value::Int(4),
            Value::Num(3.125),
        ]);
        t.row(vec![
            Value::Text("ws".into()),
            Value::Int(8),
            Value::Num(f64::NAN),
        ]);
        t.note("Reading: medians grow with contention.");

        let text = t.to_text();
        assert!(text.contains("sweep"));
        assert!(text.contains("xhr_get"));
        assert!(text.contains("3.125"));
        assert!(text.contains("Reading:"));

        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "method,clients,d1_median_ms");
        assert_eq!(lines[1], "xhr_get,4,3.125");
        assert!(!csv.contains("Reading:"), "notes are text-only");

        let json = t.to_json();
        assert!(json.contains("\"title\": \"sweep\""));
        assert!(json.contains("\"clients\": 4"));
        assert!(json.contains("\"d1_median_ms\": null"), "NaN -> null");
    }

    #[test]
    fn csv_cells_with_commas_are_quoted() {
        let mut t = Table::new("", &["label", "n"]);
        t.row(vec![
            Value::Text("XHR GET / C (U), impaired".into()),
            Value::Int(1),
        ]);
        let csv = t.to_csv();
        assert!(csv.contains("\"XHR GET / C (U), impaired\",1"));
    }

    #[test]
    fn csv_cells_with_quotes_and_newlines_follow_rfc4180() {
        let mut t = Table::new("", &["label", "n"]);
        t.row(vec![
            Value::Text("tricky \", \n cell".into()),
            Value::Int(1),
        ]);
        t.row(vec![Value::Text("cr\rcell".into()), Value::Int(2)]);
        let csv = t.to_csv();
        // Quotes doubled, the field quoted, the newline verbatim inside.
        assert!(
            csv.contains("\"tricky \"\", \n cell\",1"),
            "bad quoting: {csv:?}"
        );
        assert!(csv.contains("\"cr\rcell\",2"), "CR must quote: {csv:?}");
    }

    #[test]
    fn csv_nan_cell_is_an_empty_field() {
        let mut t = Table::new("", &["label", "v"]);
        t.row(vec![Value::Text("ws".into()), Value::Num(f64::NAN)]);
        let csv = t.to_csv();
        assert!(csv.contains("ws,\n"), "NaN cell must be empty: {csv:?}");
        // Text mode keeps the explicit marker.
        assert!(t.to_text().contains("nan"));
    }

    #[test]
    fn dist_summary_exact_matches_r7() {
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 0.5).collect();
        let d = DistSummary::of_samples(&xs);
        assert_eq!(d.count, 40);
        assert_eq!(d.min, 0.0);
        assert_eq!(d.max, 19.5);
        assert_eq!(d.p50, summary::quantile(&xs, 0.5));
        assert!((d.iqr() - (d.p75 - d.p25)).abs() < 1e-12);
        let e = DistSummary::empty();
        assert_eq!(e.count, 0);
        assert!(e.p50.is_nan());
    }

    #[test]
    fn dist_summary_of_sketch_within_bound() {
        let xs: Vec<f64> = (1..200).map(|i| i as f64 * 0.25).collect();
        let mut sk = QuantileSketch::new(0.01);
        for x in &xs {
            sk.insert(*x);
        }
        let d = DistSummary::of_sketch(&sk);
        let exact = DistSummary::of_samples(&xs);
        assert_eq!(d.count, exact.count);
        assert_eq!(d.min, exact.min);
        assert_eq!(d.max, exact.max);
        let eps = sk.relative_error_bound();
        for (a, b) in [(d.p10, exact.p10), (d.p50, exact.p50), (d.p90, exact.p90)] {
            assert!((a - b).abs() <= eps * b.abs() + 1e-9, "{a} vs {b}");
        }
    }

    fn snapshot() -> ReportSnapshot {
        ReportSnapshot {
            label: "XHR GET / C (U)".into(),
            at_secs: 2.0,
            rounds: 2,
            samples: 4,
            excluded_rounds: 0,
            failures: 0,
            relative_error_bound: 0.0,
            windows: vec![
                WindowReport {
                    label: "1s".into(),
                    span_secs: Some(1.0),
                    rounds: 1,
                    excluded_rounds: 0,
                    failures: 0,
                    d1: DistSummary::of_samples(&[4.0]),
                    d2: DistSummary::of_samples(&[3.0]),
                    pooled: DistSummary::of_samples(&[4.0, 3.0]),
                },
                WindowReport {
                    label: "total".into(),
                    span_secs: None,
                    rounds: 2,
                    excluded_rounds: 0,
                    failures: 0,
                    d1: DistSummary::of_samples(&[4.0, 4.5]),
                    d2: DistSummary::of_samples(&[3.0, 3.5]),
                    pooled: DistSummary::of_samples(&[4.0, 4.5, 3.0, 3.5]),
                },
            ],
            datagram: None,
            link: None,
        }
    }

    #[test]
    fn snapshot_renders_all_three_formats() {
        let s = snapshot();
        assert_eq!(s.total().label, "total");

        let text = s.to_text();
        assert!(text.contains("XHR GET / C (U)"));
        assert!(text.contains("total"));
        assert!(text.contains("verdict"));

        let json = s.to_json();
        for key in [
            "\"label\"",
            "\"windows\"",
            "\"p50\"",
            "\"rounds\"",
            "\"verdict\"",
        ] {
            assert!(json.contains(key), "json missing {key}: {json}");
        }
        assert!(json.contains("\"span_secs\": null"), "total window span");

        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // Header + 3 series per window.
        assert_eq!(lines.len(), 1 + 3 * 2);
        assert!(lines[0].starts_with("label,at_secs,window"));
    }

    #[test]
    fn snapshot_link_telemetry_renders_in_all_formats() {
        let mut s = snapshot();
        // No telemetry: JSON null, CSV fields empty.
        assert!(s.to_json().contains("\"link\": null"));
        assert!(s.to_csv().lines().nth(1).unwrap().ends_with(",,,"));
        s.link = Some(LinkReport {
            down_queue_drops: 7,
            up_queue_drops: 0,
            down_queue_peak_bytes: 65536,
            up_queue_peak_bytes: 1514,
        });
        let text = s.to_text();
        assert!(text.contains("link queue"), "{text}");
        let json = s.to_json();
        assert!(json.contains("\"down_queue_drops\": 7"), "{json}");
        assert!(json.contains("\"down_queue_peak_bytes\": 65536"), "{json}");
        let csv = s.to_csv();
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .ends_with("link_down_drops,link_up_drops,link_down_peak_bytes,link_up_peak_bytes"));
        assert!(csv.lines().nth(1).unwrap().ends_with("7,0,65536,1514"));
        // Merging sums drops and maxes peaks.
        let mut a = LinkReport {
            down_queue_drops: 2,
            up_queue_drops: 1,
            down_queue_peak_bytes: 100,
            up_queue_peak_bytes: 900,
        };
        a.merge(&LinkReport {
            down_queue_drops: 3,
            up_queue_drops: 0,
            down_queue_peak_bytes: 700,
            up_queue_peak_bytes: 10,
        });
        assert_eq!(
            a,
            LinkReport {
                down_queue_drops: 5,
                up_queue_drops: 1,
                down_queue_peak_bytes: 700,
                up_queue_peak_bytes: 900,
            }
        );
    }

    #[test]
    fn snapshot_verdict_uses_pooled_total() {
        let s = snapshot();
        // Medians well above 1 ms but IQR below 5 ms -> Calibratable.
        assert_eq!(s.verdict(), Some(Verdict::Calibratable));
        let mut empty = s.clone();
        for w in &mut empty.windows {
            w.pooled = DistSummary::empty();
        }
        assert_eq!(empty.verdict(), None);
    }

    #[test]
    fn report_format_parses() {
        use std::str::FromStr as _;
        assert_eq!(ReportFormat::from_str("text").unwrap(), ReportFormat::Text);
        assert_eq!(ReportFormat::from_str("json").unwrap(), ReportFormat::Json);
        assert_eq!(ReportFormat::from_str("csv").unwrap(), ReportFormat::Csv);
        assert!(ReportFormat::from_str("yaml").is_err());
    }
}
