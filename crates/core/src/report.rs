//! Report formatting: figure-style rows, CSV export.

use std::fmt::Write as _;

use bnm_stats::{ascii, BoxStats, Cdf};

use crate::appraisal::Appraisal;
use crate::config::ExperimentCell;
use crate::runner::CellResult;

/// A labelled box-plot row of a Figure 3 panel.
#[derive(Debug, Clone)]
pub struct PanelRow {
    /// The paper's x-axis label, e.g. "C (U) Δd1".
    pub label: String,
    /// Box statistics.
    pub stats: BoxStats,
}

/// Build the two rows (Δd1, Δd2) a cell contributes to its panel.
pub fn panel_rows(cell: &ExperimentCell, result: &CellResult) -> Vec<PanelRow> {
    let base = cell.runtime.figure_label(cell.os);
    vec![
        PanelRow {
            label: format!("{base} Δd1"),
            stats: BoxStats::of(&result.d1),
        },
        PanelRow {
            label: format!("{base} Δd2"),
            stats: BoxStats::of(&result.d2),
        },
    ]
}

/// Render a Figure 3 panel: one ASCII box per row on a shared axis.
/// An empty panel renders as its title plus a note, not a panic.
pub fn render_panel(title: &str, rows: &[PanelRow], width: usize) -> String {
    if rows.is_empty() {
        return format!("{title}\n(no rows)\n");
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for r in rows {
        let (a, b) = r.stats.full_range();
        lo = lo.min(a);
        hi = hi.max(b);
    }
    if hi - lo < 1e-9 {
        hi = lo + 1.0;
    }
    let pad = (hi - lo) * 0.05;
    let (lo, hi) = (lo - pad, hi + pad);
    // Non-empty: the early return above guarantees a maximum exists.
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for r in rows {
        let _ = writeln!(
            out,
            "{:label_w$} |{}| med={:7.2}",
            r.label,
            ascii::render_box(&r.stats, lo, hi, width),
            r.stats.median,
        );
    }
    let _ = writeln!(
        out,
        "{:label_w$}  {:<10.1}{:>width$.1} (ms)",
        "",
        lo,
        hi,
        width = width - 10
    );
    out
}

/// Render a Figure 4 style CDF block.
pub fn render_cdf_block(title: &str, cdf: &Cdf, width: usize, height: usize) -> String {
    let (lo, hi) = cdf.range();
    let pad = ((hi - lo) * 0.05).max(0.5);
    format!(
        "{title}\n{}",
        ascii::render_cdf(cdf, lo - pad, hi + pad, width, height)
    )
}

/// One CSV line per Δd sample: `method,runtime,os,round,rep_index,delta_ms`.
pub fn to_csv(cell: &ExperimentCell, result: &CellResult) -> String {
    let mut out = String::from("method,runtime,os,round,index,delta_ms\n");
    let runtime = cell.runtime.figure_label(cell.os);
    for (round, data) in [(1u8, &result.d1), (2u8, &result.d2)] {
        for (i, d) in data.iter().enumerate() {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{:.6}",
                cell.method.label(),
                runtime,
                cell.os.initial(),
                round,
                i,
                d
            );
        }
    }
    out
}

/// A one-line summary of an appraisal, for harness stdout.
pub fn summary_line(cell: &ExperimentCell, a: &Appraisal) -> String {
    format!(
        "{:40} Δd1 med {:8.2}  Δd2 med {:8.2}  IQR {:6.2}  mean {}  verdict {:?}",
        cell.label(),
        a.d1.median,
        a.d2.median,
        a.pooled.iqr(),
        a.mean_ci.format_table4(),
        a.verdict
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeSel;
    use bnm_browser::BrowserKind;
    use bnm_methods::MethodId;
    use bnm_time::OsKind;

    fn cell() -> ExperimentCell {
        ExperimentCell::paper(
            MethodId::XhrGet,
            RuntimeSel::Browser(BrowserKind::Chrome),
            OsKind::Ubuntu1204,
        )
    }

    fn result() -> CellResult {
        CellResult {
            d1: (0..20).map(|i| 4.0 + (i % 5) as f64 * 0.3).collect(),
            d2: (0..20).map(|i| 3.0 + (i % 4) as f64 * 0.2).collect(),
            ..CellResult::default()
        }
    }

    #[test]
    fn panel_rows_carry_figure_labels() {
        let rows = panel_rows(&cell(), &result());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "C (U) Δd1");
        assert_eq!(rows[1].label, "C (U) Δd2");
    }

    #[test]
    fn rendered_panel_contains_all_rows_and_axis() {
        let rows = panel_rows(&cell(), &result());
        let s = render_panel("(a) XHR GET", &rows, 50);
        assert!(s.contains("(a) XHR GET"));
        assert!(s.contains("Δd1"));
        assert!(s.contains("Δd2"));
        assert!(s.contains("med="));
        assert!(s.contains("(ms)"));
    }

    #[test]
    fn csv_has_header_and_all_samples() {
        let csv = to_csv(&cell(), &result());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "method,runtime,os,round,index,delta_ms");
        assert_eq!(lines.len(), 1 + 40);
        assert!(lines[1].starts_with("xhr_get,C (U),U,1,0,"));
    }

    #[test]
    fn summary_line_mentions_verdict() {
        let a = Appraisal::try_of(&result()).unwrap();
        let line = summary_line(&cell(), &a);
        assert!(line.contains("XHR GET"));
        assert!(line.contains("verdict"));
    }

    #[test]
    fn empty_panel_renders_a_note() {
        let s = render_panel("(z) empty", &[], 50);
        assert!(s.contains("(z) empty"));
        assert!(s.contains("(no rows)"));
    }

    #[test]
    fn cdf_block_renders() {
        let c = Cdf::of(&result().d1);
        let s = render_cdf_block("Δd1 CDF", &c, 40, 8);
        assert!(s.contains("Δd1 CDF"));
        assert!(s.contains('*'));
    }
}
