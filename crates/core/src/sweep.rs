//! Server-delay sweep — validating the paper's §3 remark that the
//! simulated delay "is a major factor determining the amount of RTT
//! inflation when a measurement method includes TCP handshaking in the
//! delay measurement".
//!
//! Sweeping the netem delay shows two regimes: for connection-reusing
//! methods Δd is *independent* of the base RTT (the overhead is pure
//! client-side path cost), while for handshake-including methods
//! (Opera's Flash) Δd1 grows by exactly one RTT per RTT — the line has
//! slope ≈ 1.

use bnm_sim::time::SimDuration;
use bnm_stats::Summary;

use crate::config::ExperimentCell;
use crate::runner::ExperimentRunner;

/// One point of a delay sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The configured one-way server delay, ms.
    pub delay_ms: f64,
    /// Median Δd1 at this delay, ms.
    pub d1_median: f64,
    /// Median Δd2 at this delay, ms.
    pub d2_median: f64,
}

/// Run `cell` at each server delay and collect the Δd medians.
pub fn delay_sweep(cell: &ExperimentCell, delays: &[SimDuration]) -> Vec<SweepPoint> {
    delays
        .iter()
        .map(|&d| {
            let mut c = cell.clone();
            c.server_delay = d;
            let r = ExperimentRunner::run(&c);
            SweepPoint {
                delay_ms: d.as_millis_f64(),
                d1_median: Summary::of(&r.d1).median,
                d2_median: Summary::of(&r.d2).median,
            }
        })
        .collect()
}

/// Least-squares slope of `y` against `x` (how much Δd grows per ms of
/// extra network delay; ≈ 0 for reuse methods, ≈ 1 for
/// handshake-including ones).
pub fn slope(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "need at least two points for a slope");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Slope of Δd1 over the sweep.
pub fn d1_slope(points: &[SweepPoint]) -> f64 {
    slope(
        &points
            .iter()
            .map(|p| (p.delay_ms, p.d1_median))
            .collect::<Vec<_>>(),
    )
}

/// Slope of Δd2 over the sweep.
pub fn d2_slope(points: &[SweepPoint]) -> f64 {
    slope(
        &points
            .iter()
            .map(|p| (p.delay_ms, p.d2_median))
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeSel;
    use bnm_browser::BrowserKind;
    use bnm_methods::MethodId;
    use bnm_time::OsKind;

    fn delays() -> Vec<SimDuration> {
        vec![
            SimDuration::from_millis(25),
            SimDuration::from_millis(50),
            SimDuration::from_millis(100),
        ]
    }

    #[test]
    fn slope_math() {
        assert!((slope(&[(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]) - 1.0).abs() < 1e-12);
        assert!(slope(&[(0.0, 5.0), (10.0, 5.0)]).abs() < 1e-12);
    }

    #[test]
    fn reuse_methods_have_flat_delta_d() {
        let cell = ExperimentCell::paper(
            MethodId::XhrGet,
            RuntimeSel::Browser(BrowserKind::Chrome),
            OsKind::Ubuntu1204,
        )
        .with_reps(10);
        let pts = delay_sweep(&cell, &delays());
        assert_eq!(pts.len(), 3);
        // Δd barely depends on the base RTT: slope ≈ 0.
        assert!(d1_slope(&pts).abs() < 0.1, "Δd1 slope {}", d1_slope(&pts));
        assert!(d2_slope(&pts).abs() < 0.1, "Δd2 slope {}", d2_slope(&pts));
    }

    #[test]
    fn handshake_methods_scale_with_rtt() {
        // Opera Flash: Δd1 includes one handshake ≈ one RTT → slope ≈ 1;
        // GET Δd2 reuses → slope ≈ 0; POST Δd2 re-handshakes → slope ≈ 1.
        let get = ExperimentCell::paper(
            MethodId::FlashGet,
            RuntimeSel::Browser(BrowserKind::Opera),
            OsKind::Windows7,
        )
        .with_reps(10);
        let pts = delay_sweep(&get, &delays());
        let s1 = d1_slope(&pts);
        let s2 = d2_slope(&pts);
        assert!((s1 - 1.0).abs() < 0.15, "GET Δd1 slope {s1}");
        assert!(s2.abs() < 0.15, "GET Δd2 slope {s2}");

        let post = ExperimentCell::paper(
            MethodId::FlashPost,
            RuntimeSel::Browser(BrowserKind::Opera),
            OsKind::Windows7,
        )
        .with_reps(10);
        let ppts = delay_sweep(&post, &delays());
        let ps2 = d2_slope(&ppts);
        assert!((ps2 - 1.0).abs() < 0.15, "POST Δd2 slope {ps2}");
    }
}
