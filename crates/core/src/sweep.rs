//! Server-delay sweep — validating the paper's §3 remark that the
//! simulated delay "is a major factor determining the amount of RTT
//! inflation when a measurement method includes TCP handshaking in the
//! delay measurement".
//!
//! Sweeping the netem delay shows two regimes: for connection-reusing
//! methods Δd is *independent* of the base RTT (the overhead is pure
//! client-side path cost), while for handshake-including methods
//! (Opera's Flash) Δd1 grows by exactly one RTT per RTT — the line has
//! slope ≈ 1.
//!
//! The sweep points are independent cells, so [`try_sweep`] hands the
//! whole ladder to [`crate::exec::Executor`] and runs the delays in
//! parallel; the per-point medians are identical to a serial sweep.

use bnm_sim::time::SimDuration;
use bnm_stats::Summary;

use crate::config::ExperimentCell;
use crate::error::RunError;
use crate::exec::Executor;

/// One point of a delay sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The configured one-way server delay, ms.
    pub delay_ms: f64,
    /// Median Δd1 at this delay, ms.
    pub d1_median: f64,
    /// Median Δd2 at this delay, ms.
    pub d2_median: f64,
}

/// Run `cell` at each server delay (in parallel) and collect the Δd
/// medians.
///
/// Fails with [`RunError::Unrunnable`] when the cell cannot run at all,
/// or [`RunError::NoSamples`] when a point yields no Δd samples (every
/// repetition failed) — a median of nothing is not a point.
pub fn try_sweep(
    cell: &ExperimentCell,
    delays: &[SimDuration],
) -> Result<Vec<SweepPoint>, RunError> {
    let cells: Vec<ExperimentCell> = delays
        .iter()
        .map(|&d| {
            let mut c = cell.clone();
            c.server_delay = d;
            c
        })
        .collect();
    let results = Executor::new().run(&cells);
    delays
        .iter()
        .zip(results)
        .map(|(&d, r)| {
            let r = r?;
            if r.d1.is_empty() || r.d2.is_empty() {
                return Err(RunError::NoSamples);
            }
            Ok(SweepPoint {
                delay_ms: d.as_millis_f64(),
                d1_median: Summary::of(&r.d1).median,
                d2_median: Summary::of(&r.d2).median,
            })
        })
        .collect()
}

/// Least-squares slope of `y` against `x` (how much Δd grows per ms of
/// extra network delay; ≈ 0 for reuse methods, ≈ 1 for
/// handshake-including ones). Needs at least two points.
pub fn slope(points: &[(f64, f64)]) -> Result<f64, RunError> {
    if points.len() < 2 {
        return Err(RunError::InsufficientData {
            needed: 2,
            got: points.len(),
        });
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    Ok((n * sxy - sx * sy) / (n * sxx - sx * sx))
}

/// Slope of Δd1 over the sweep.
pub fn d1_slope(points: &[SweepPoint]) -> Result<f64, RunError> {
    slope(
        &points
            .iter()
            .map(|p| (p.delay_ms, p.d1_median))
            .collect::<Vec<_>>(),
    )
}

/// Slope of Δd2 over the sweep.
pub fn d2_slope(points: &[SweepPoint]) -> Result<f64, RunError> {
    slope(
        &points
            .iter()
            .map(|p| (p.delay_ms, p.d2_median))
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeSel;
    use bnm_browser::BrowserKind;
    use bnm_methods::MethodId;
    use bnm_time::OsKind;

    fn delays() -> Vec<SimDuration> {
        vec![
            SimDuration::from_millis(25),
            SimDuration::from_millis(50),
            SimDuration::from_millis(100),
        ]
    }

    #[test]
    fn slope_math() {
        let s = |pts: &[(f64, f64)]| slope(pts).unwrap();
        assert!((s(&[(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]) - 1.0).abs() < 1e-12);
        assert!(s(&[(0.0, 5.0), (10.0, 5.0)]).abs() < 1e-12);
    }

    #[test]
    fn slope_needs_two_points() {
        assert_eq!(
            slope(&[(1.0, 1.0)]),
            Err(RunError::InsufficientData { needed: 2, got: 1 })
        );
        assert_eq!(
            slope(&[]),
            Err(RunError::InsufficientData { needed: 2, got: 0 })
        );
        assert!(d1_slope(&[]).is_err());
        assert!(d2_slope(&[]).is_err());
    }

    #[test]
    fn unrunnable_sweep_reports_instead_of_panicking() {
        let cell = ExperimentCell::paper(
            MethodId::WebSocket,
            RuntimeSel::Browser(BrowserKind::Ie9),
            OsKind::Windows7,
        );
        assert!(matches!(
            try_sweep(&cell, &delays()),
            Err(RunError::Unrunnable { .. })
        ));
    }

    #[test]
    fn reuse_methods_have_flat_delta_d() {
        let cell = ExperimentCell::paper(
            MethodId::XhrGet,
            RuntimeSel::Browser(BrowserKind::Chrome),
            OsKind::Ubuntu1204,
        )
        .with_reps(10);
        let pts = try_sweep(&cell, &delays()).unwrap();
        assert_eq!(pts.len(), 3);
        // Δd barely depends on the base RTT: slope ≈ 0.
        let s1 = d1_slope(&pts).unwrap();
        let s2 = d2_slope(&pts).unwrap();
        assert!(s1.abs() < 0.1, "Δd1 slope {s1}");
        assert!(s2.abs() < 0.1, "Δd2 slope {s2}");
    }

    #[test]
    fn handshake_methods_scale_with_rtt() {
        // Opera Flash: Δd1 includes one handshake ≈ one RTT → slope ≈ 1;
        // GET Δd2 reuses → slope ≈ 0; POST Δd2 re-handshakes → slope ≈ 1.
        let get = ExperimentCell::paper(
            MethodId::FlashGet,
            RuntimeSel::Browser(BrowserKind::Opera),
            OsKind::Windows7,
        )
        .with_reps(10);
        let pts = try_sweep(&get, &delays()).unwrap();
        let s1 = d1_slope(&pts).unwrap();
        let s2 = d2_slope(&pts).unwrap();
        assert!((s1 - 1.0).abs() < 0.15, "GET Δd1 slope {s1}");
        assert!(s2.abs() < 0.15, "GET Δd2 slope {s2}");

        let post = ExperimentCell::paper(
            MethodId::FlashPost,
            RuntimeSel::Browser(BrowserKind::Opera),
            OsKind::Windows7,
        )
        .with_reps(10);
        let ppts = try_sweep(&post, &delays()).unwrap();
        let ps2 = d2_slope(&ppts).unwrap();
        assert!((ps2 - 1.0).abs() < 0.15, "POST Δd2 slope {ps2}");
    }
}
