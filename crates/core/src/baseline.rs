//! ICMP ping baseline — the comparison the paper's related work runs
//! (§6, Yeboah et al.: "the results from Flash socket measurement were
//! close to ping, whereas JavaScript had an inflated delay").
//!
//! A [`PingClient`] sends `ping`-style echo requests through the host's
//! ICMP path; the same testbed, links and 50 ms server delay apply, so
//! its RTTs are directly comparable to the browser methods'.

use std::net::Ipv4Addr;

use bytes::Bytes;

use bnm_sim::engine::Engine;
use bnm_sim::link::LinkSpec;
use bnm_sim::rng;
use bnm_sim::switch::Switch;
use bnm_sim::time::{SimDuration, SimTime};
use bnm_sim::wire::IcmpEcho;
use bnm_tcp::stack::SockEvent;
use bnm_tcp::{Host, HostApp, HostConfig, HostCtx};

use crate::testbed::{CLIENT_IP, CLIENT_MAC, SERVER_IP, SERVER_MAC};

/// A `ping`-like application: one echo request per interval, RTTs
/// recorded from the reply arrivals.
pub struct PingClient {
    target: Ipv4Addr,
    count: u16,
    interval: SimDuration,
    payload_len: usize,
    sent_at: Vec<SimTime>,
    /// Completed (seq, rtt) samples.
    pub rtts: Vec<(u16, SimDuration)>,
}

impl PingClient {
    /// Ping `target` `count` times at `interval`.
    pub fn new(target: Ipv4Addr, count: u16, interval: SimDuration) -> Self {
        PingClient {
            target,
            count,
            interval,
            payload_len: 56, // classic `ping` default
            sent_at: Vec::new(),
            rtts: Vec::new(),
        }
    }

    fn send_one(&mut self, ctx: &mut HostCtx, seq: u16) {
        self.sent_at.push(ctx.now());
        ctx.send_ping(
            self.target,
            0xB32B,
            seq,
            Bytes::from(vec![0x50u8; self.payload_len]),
        );
    }
}

impl HostApp for PingClient {
    fn on_boot(&mut self, ctx: &mut HostCtx) {
        self.send_one(ctx, 0);
        for seq in 1..self.count {
            ctx.set_app_timer(self.interval.saturating_mul(u64::from(seq)), u64::from(seq));
        }
    }
    fn on_event(&mut self, _: &mut HostCtx, _: SockEvent) {}
    fn on_timer(&mut self, ctx: &mut HostCtx, token: u64) {
        self.send_one(ctx, token as u16);
    }
    fn on_ping_reply(&mut self, ctx: &mut HostCtx, _from: Ipv4Addr, echo: IcmpEcho) {
        let seq = echo.seq as usize;
        if let Some(&sent) = self.sent_at.get(seq) {
            self.rtts.push((echo.seq, ctx.now().saturating_since(sent)));
        }
    }
}

/// Run the ping baseline on the paper's testbed. Returns RTT samples in
/// fractional milliseconds.
pub fn ping_baseline(count: u16, server_delay: SimDuration, seed: u64) -> Vec<f64> {
    let mut e = Engine::new();
    let client = e.add_node(Box::new(Host::new(
        HostConfig::new("client", CLIENT_MAC, CLIENT_IP).with_neighbor(SERVER_IP, SERVER_MAC),
        PingClient::new(SERVER_IP, count, SimDuration::from_secs(1)),
    )));
    // A passive host standing in for the web server machine (the kernel
    // answers pings; no application is involved).
    struct Idle;
    impl HostApp for Idle {
        fn on_event(&mut self, _: &mut HostCtx, _: SockEvent) {}
    }
    let server = e.add_node(Box::new(Host::new(
        HostConfig::new("server", SERVER_MAC, SERVER_IP).with_neighbor(CLIENT_IP, CLIENT_MAC),
        Idle,
    )));
    let sw = e.add_node(Box::new(Switch::new(2)));
    e.connect(client, 0, sw, 0, LinkSpec::fast_ethernet());
    let server_link = e.connect(server, 0, sw, 1, LinkSpec::fast_ethernet());
    e.set_one_way_delay(server_link, server, server_delay);
    // Seed reserved for future noise models on the ICMP path.
    let _ = rng::derive_seed(seed, "ping");
    e.run();
    e.node_ref::<Host<PingClient>>(client)
        .app()
        .rtts
        .iter()
        .map(|(_, d)| d.as_millis_f64())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentCell, RuntimeSel};
    use crate::runner::ExperimentRunner;
    use bnm_browser::BrowserKind;
    use bnm_methods::MethodId;
    use bnm_stats::Summary;
    use bnm_time::{OsKind, TimingApiKind};

    #[test]
    fn ping_sees_the_true_rtt() {
        let rtts = ping_baseline(10, SimDuration::from_millis(50), 1);
        assert_eq!(rtts.len(), 10);
        for r in &rtts {
            assert!((50.0..50.5).contains(r), "ping rtt {r}");
        }
    }

    #[test]
    fn ping_without_delay_is_sub_millisecond() {
        let rtts = ping_baseline(5, SimDuration::ZERO, 1);
        assert!(rtts.iter().all(|r| *r < 1.0));
    }

    /// The Yeboah et al. comparison (§6): socket methods track ping;
    /// HTTP-based JavaScript is inflated.
    #[test]
    fn sockets_track_ping_http_inflates() {
        let ping_med = Summary::of(&ping_baseline(10, SimDuration::from_millis(50), 1)).median;
        let run = |m: MethodId| {
            let cell = ExperimentCell::paper(
                m,
                RuntimeSel::Browser(BrowserKind::Chrome),
                OsKind::Ubuntu1204,
            )
            .with_reps(10)
            .with_timing(match m {
                MethodId::JavaTcp => TimingApiKind::JavaNanoTime,
                _ => TimingApiKind::JsDateGetTime,
            });
            let r = ExperimentRunner::try_run(&cell).unwrap();
            let rtts: Vec<f64> = r.measurements.iter().map(|x| x.browser_rtt_ms()).collect();
            Summary::of(&rtts).median
        };
        let socket_rtt = run(MethodId::JavaTcp);
        let xhr_rtt = run(MethodId::XhrGet);
        assert!(
            (socket_rtt - ping_med).abs() < 1.0,
            "socket {socket_rtt} vs ping {ping_med}"
        );
        assert!(
            xhr_rtt - ping_med > 2.0,
            "XHR {xhr_rtt} must be inflated vs ping {ping_med}"
        );
    }
}
