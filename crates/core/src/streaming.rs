//! Streaming capture consumption — the incremental half of the
//! post-processing pipeline.
//!
//! The batch pipeline retains every delivered frame in its tap until the
//! run ends, then parses and greps the whole trace per session
//! ([`crate::matching::ParsedCapture`]). At crowd scale that retention
//! *is* the peak-memory story: 1,000 sessions' page loads and probes
//! pinned as refcounted frames defeats the frame pool entirely. The
//! sinks here hang off [`bnm_sim::capture::CaptureBuffer`]'s streaming
//! mode instead: each record is parsed and grepped **at capture time**,
//! the marker evidence (a timestamp and a count per marker × direction)
//! is folded into constant-size accumulators, and the frame drops
//! immediately — pooled buffers recycle mid-run.
//!
//! Bit-parity with the batch path is the design constraint, not an
//! afterthought:
//!
//! * the tap stamps records identically in both modes (same noise RNG
//!   stream, same monotonicity clamp) — the sink sees the exact records
//!   a retaining tap would store;
//! * [`SessionMarkerSink`] applies the *same* payload extraction
//!   ([`crate::frames::payload_of`]) and substring test
//!   ([`crate::frames::contains`]) as `ParsedCapture::hits`, and its
//!   [`SessionMarkerSink::match_round`] replays the exact decision
//!   order of `ParsedCapture::match_round`;
//! * [`ServerMarkerIndex`] replicates `contains`' semantics *exactly*,
//!   including the subtle one: an HTTP request marker
//!   (`m={label}&r={round}&t={token}`, no terminator) hits every record
//!   whose digit run has the token's decimal form as a **byte prefix**
//!   — token `1` matches a frame carrying token `10`. The index
//!   preserves that by structured prefix scanning rather than by
//!   assuming well-formed tokens, so the streaming retransmission check
//!   answers identically to a full second parse.

use std::any::Any;
use std::collections::HashMap;

use bnm_methods::MethodId;
use bnm_sim::capture::{CaptureDir, CaptureSink};
use bnm_sim::time::SimTime;
use bytes::Bytes;

use crate::frames::{contains, payload_of};
use crate::matching::{request_marker, response_marker, MatchError, WireTimes};

/// Constant-size accumulator for one marker × direction: everything
/// `ParsedCapture::hits` feeds into `match_round` — the first hit's
/// stamp and the hit count (a count above one is already a
/// retransmission regardless of how far above).
#[derive(Debug, Clone, Copy, Default)]
struct HitAcc {
    count: u32,
    first: Option<SimTime>,
}

impl HitAcc {
    fn note(&mut self, ts: SimTime) {
        self.count += 1;
        if self.first.is_none() {
            self.first = Some(ts);
        }
    }
}

/// Per-round marker evidence for one session's client-side tap.
#[derive(Debug, Clone)]
struct RoundHits {
    round: u8,
    /// Full request marker bytes (needle for `contains`).
    req: Vec<u8>,
    /// Full response marker bytes.
    resp: Vec<u8>,
    /// Tx records carrying the request marker.
    req_tx: HitAcc,
    /// Rx records carrying the response marker.
    resp_rx: HitAcc,
}

/// Streaming replacement for parsing a *client* tap after the run: greps
/// each record for the session's round markers as it is captured.
///
/// Matching semantics are identical to
/// `ParsedCapture::parse` + `match_round` — same payload extraction,
/// same substring test, same error precedence — asserted against the
/// batch matcher by the tests below and by `tests/streaming_parity.rs`
/// on full scenario runs.
#[derive(Debug)]
pub struct SessionMarkerSink {
    rounds: Vec<RoundHits>,
    /// Records seen (diagnostics only).
    records: u64,
}

impl SessionMarkerSink {
    /// A sink grepping for `rounds` rounds of `method` probes under
    /// `token` (the session's composite marker token).
    pub fn new(method: MethodId, rounds: u8, token: u64) -> SessionMarkerSink {
        SessionMarkerSink {
            rounds: (1..=rounds)
                .map(|r| RoundHits {
                    round: r,
                    req: request_marker(method, r, token),
                    resp: response_marker(method, r, token),
                    req_tx: HitAcc::default(),
                    resp_rx: HitAcc::default(),
                })
                .collect(),
            records: 0,
        }
    }

    /// `ParsedCapture::match_round`, answered from the accumulated
    /// evidence: same checks, same order.
    pub fn match_round(&self, round: u8) -> Result<WireTimes, MatchError> {
        let h = self
            .rounds
            .iter()
            .find(|h| h.round == round)
            .ok_or(MatchError::RequestNotFound)?;
        if h.req_tx.count > 1 || h.resp_rx.count > 1 {
            return Err(MatchError::Retransmitted);
        }
        match (h.req_tx.first, h.resp_rx.first) {
            (None, _) => Err(MatchError::RequestNotFound),
            (_, None) => Err(MatchError::ResponseNotFound),
            (Some(s), Some(r)) => {
                if r < s {
                    Err(MatchError::OutOfOrder)
                } else {
                    Ok(WireTimes { tn_s: s, tn_r: r })
                }
            }
        }
    }

    /// Records this sink observed.
    pub fn records_seen(&self) -> u64 {
        self.records
    }
}

impl CaptureSink for SessionMarkerSink {
    fn on_record(&mut self, ts: SimTime, dir: CaptureDir, frame: &Bytes) {
        self.records += 1;
        let Some(payload) = payload_of(frame) else {
            return;
        };
        for h in &mut self.rounds {
            match dir {
                CaptureDir::Tx => {
                    if contains(&payload, &h.req) {
                        h.req_tx.note(ts);
                    }
                }
                CaptureDir::Rx => {
                    if contains(&payload, &h.resp) {
                        h.resp_rx.note(ts);
                    }
                }
            }
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Marker kinds a server-side record can evidence. The order indexes
/// the per-slot counter array: `[req_tx, req_rx, resp_tx, resp_rx]`.
const KIND_DIRS: usize = 4;

fn kind_dir_index(is_resp: bool, dir: CaptureDir) -> usize {
    (usize::from(is_resp) << 1) | usize::from(dir == CaptureDir::Rx)
}

/// One round's scan patterns for the server index.
#[derive(Debug, Clone)]
struct RoundPatterns {
    round: u8,
    /// Request-marker prefix up to (excluding) the token digits.
    req_prefix: Vec<u8>,
    /// Whether the request marker ends at the token with **no**
    /// terminator (HTTP methods) — token matching is then by decimal
    /// byte prefix, `contains`' ambiguity preserved. Space-terminated
    /// markers match the whole digit run exactly, followed by a space.
    req_is_open_ended: bool,
    /// Response-marker prefix; `None` when the response marker equals
    /// the request marker (echo transports), in which case the request
    /// counters stand for both.
    resp_prefix: Option<Vec<u8>>,
}

/// Streaming replacement for the *second full parse* of the server tap
/// under impairment: an incremental per-direction marker index.
///
/// The batch path answers "was any marker of (round, token) seen more
/// than once in one direction of the server capture?" by re-grepping
/// the entire retained trace per session × round — O(sessions × rounds
/// × frames) over a capture that grows with the whole crowd's traffic.
/// This index instead scans each record once at capture time for the
/// per-round marker *prefixes* (session-count-independent work), decodes
/// the token digits that follow, and bumps a counter per
/// `(session, round, marker, direction)`. [`ServerMarkerIndex::round_retransmitted`]
/// is then an O(1) lookup.
#[derive(Debug)]
pub struct ServerMarkerIndex {
    patterns: Vec<RoundPatterns>,
    /// Registered token → slot base (`slot * rounds` indexes `counts`).
    tokens: HashMap<u64, u32>,
    /// Decimal forms of the registered tokens, for byte-prefix checks.
    token_digits: Vec<Vec<u8>>,
    /// `[req_tx, req_rx, resp_tx, resp_rx]` per (token slot × round).
    counts: Vec<[u32; KIND_DIRS]>,
    rounds: usize,
    /// Scratch for per-record dedup: `contains` is a per-record boolean,
    /// so two occurrences of one marker inside one payload count once.
    seen_scratch: Vec<(u32, usize)>,
}

impl ServerMarkerIndex {
    /// An index for `rounds` rounds of `method` probes from the sessions
    /// whose marker tokens are `tokens`.
    pub fn new(method: MethodId, rounds: u8, tokens: &[u64]) -> ServerMarkerIndex {
        let patterns = (1..=rounds)
            .map(|r| {
                if method.is_http_based() {
                    RoundPatterns {
                        round: r,
                        req_prefix: format!("m={}&r={}&t=", method.label(), r).into_bytes(),
                        req_is_open_ended: true,
                        resp_prefix: Some(format!("pong r={} t=", r).into_bytes()),
                    }
                } else {
                    RoundPatterns {
                        round: r,
                        req_prefix: format!("probe m={} r={} t=", method.label(), r).into_bytes(),
                        req_is_open_ended: false,
                        resp_prefix: None,
                    }
                }
            })
            .collect();
        let token_map: HashMap<u64, u32> = tokens
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u32))
            .collect();
        ServerMarkerIndex {
            patterns,
            token_digits: tokens.iter().map(|t| t.to_string().into_bytes()).collect(),
            counts: vec![[0; KIND_DIRS]; tokens.len() * rounds as usize],
            rounds: rounds as usize,
            tokens: token_map,
            seen_scratch: Vec::new(),
        }
    }

    /// `ParsedCapture::round_retransmitted`, answered from the index:
    /// whether either of the round's markers hit more than one record
    /// in any one direction.
    pub fn round_retransmitted(&self, round: u8, token: u64) -> bool {
        let Some(&slot) = self.tokens.get(&token) else {
            return false;
        };
        let Some(ri) = self.patterns.iter().position(|p| p.round == round) else {
            return false;
        };
        self.counts[slot as usize * self.rounds + ri]
            .iter()
            .any(|&c| c > 1)
    }
}

/// Note marker occurrences for the digit run following a prefix
/// occurrence at `digits_at` in `payload`.
///
/// A free function over the index's *disjoint* fields (token lookup
/// tables in, dedup scratch out) so [`ServerMarkerIndex::on_record`]
/// can call it from inside a [`find_all`] closure while iterating the
/// patterns by shared reference — no per-record needle clones or
/// occurrence-site buffers.
#[allow(clippy::too_many_arguments)] // disjoint-borrow split of &mut self
fn note_occurrence(
    tokens: &HashMap<u64, u32>,
    token_digits: &[Vec<u8>],
    seen_scratch: &mut Vec<(u32, usize)>,
    payload: &[u8],
    digits_at: usize,
    round_idx: usize,
    open_ended: bool,
    is_resp: bool,
) {
    let rest = &payload[digits_at.min(payload.len())..];
    let run_len = rest.iter().take_while(|b| b.is_ascii_digit()).count();
    if run_len == 0 {
        return;
    }
    if open_ended {
        // No terminator in the needle: token T hits iff T's decimal
        // form is a byte prefix of the digit run — exactly where
        // `contains(payload, prefix + digits(T))` succeeds. Walking
        // the run's prefixes and looking each up covers every
        // registered token that matches, without O(sessions) work.
        for k in 1..=run_len.min(20) {
            let sub = &rest[..k];
            // Registered tokens are canonical decimal (no leading
            // zeros except "0" itself), so a zero-led sub-run can
            // only be token 0 at k == 1.
            if k > 1 && sub[0] == b'0' {
                break;
            }
            let Some(tok) = parse_u64(sub) else { break };
            if let Some(&slot) = tokens.get(&tok) {
                seen_scratch.push((slot, round_idx * 2 + usize::from(is_resp)));
            }
        }
    } else {
        // The needle ends with a space: the whole digit run must be
        // the token's decimal form and the next byte a space.
        if rest.get(run_len) != Some(&b' ') {
            return;
        }
        let Some(tok) = parse_u64(&rest[..run_len]) else {
            return;
        };
        if let Some(&slot) = tokens.get(&tok) {
            // Exact-match needles can't hit a non-canonical run.
            if token_digits[slot as usize] == rest[..run_len] {
                seen_scratch.push((slot, round_idx * 2 + usize::from(is_resp)));
            }
        }
    }
}

/// Checked decimal parse of an ASCII digit slice.
fn parse_u64(digits: &[u8]) -> Option<u64> {
    let mut v: u64 = 0;
    for &d in digits {
        v = v.checked_mul(10)?.checked_add(u64::from(d - b'0'))?;
    }
    Some(v)
}

/// All start positions of `needle` in `haystack` (naive scan — payloads
/// are single frames and needles are short fixed prefixes).
fn find_all(haystack: &[u8], needle: &[u8], mut f: impl FnMut(usize)) {
    if needle.is_empty() || haystack.len() < needle.len() {
        return;
    }
    for (i, w) in haystack.windows(needle.len()).enumerate() {
        if w == needle {
            f(i);
        }
    }
}

impl CaptureSink for ServerMarkerIndex {
    fn on_record(&mut self, _ts: SimTime, dir: CaptureDir, frame: &Bytes) {
        let Some(payload) = payload_of(frame) else {
            return;
        };
        debug_assert!(self.seen_scratch.is_empty());
        // Split the borrow: patterns iterate shared while the dedup
        // scratch fills — no per-record needle clones or site buffers.
        let ServerMarkerIndex {
            patterns,
            tokens,
            token_digits,
            seen_scratch,
            ..
        } = self;
        for (ri, p) in patterns.iter().enumerate() {
            find_all(&payload, &p.req_prefix, |i| {
                note_occurrence(
                    tokens,
                    token_digits,
                    seen_scratch,
                    &payload,
                    i + p.req_prefix.len(),
                    ri,
                    p.req_is_open_ended,
                    false,
                );
            });
            if let Some(rp) = &p.resp_prefix {
                find_all(&payload, rp, |i| {
                    note_occurrence(
                        tokens,
                        token_digits,
                        seen_scratch,
                        &payload,
                        i + rp.len(),
                        ri,
                        false,
                        true,
                    );
                });
            }
        }
        // `contains` is per-record: dedup before counting so multiple
        // occurrences of one marker in one payload count as one hit.
        let mut seen = std::mem::take(&mut self.seen_scratch);
        seen.sort_unstable();
        seen.dedup();
        for (slot, round_resp) in seen.drain(..) {
            let (ri, is_resp) = (round_resp / 2, round_resp % 2 == 1);
            let idx = kind_dir_index(is_resp, dir);
            self.counts[slot as usize * self.rounds + ri][idx] += 1;
        }
        self.seen_scratch = seen;
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A sink that drops every record unexamined — for taps whose contents
/// the pipeline never reads (the server tap of a clean cell, whose
/// batch path never parses it either) while still recycling frames.
#[derive(Debug, Default)]
pub struct DiscardSink {
    records: u64,
}

impl DiscardSink {
    /// Records dropped.
    pub fn records_seen(&self) -> u64 {
        self.records
    }
}

impl CaptureSink for DiscardSink {
    fn on_record(&mut self, _ts: SimTime, _dir: CaptureDir, _frame: &Bytes) {
        self.records += 1;
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    use bnm_sim::capture::CaptureBuffer;
    use bnm_sim::wire::{
        EtherType, EthernetFrame, IpProtocol, Ipv4Packet, MacAddr, TcpFlags, TcpSegment,
    };

    use crate::matching::ParsedCapture;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn tcp_frame(payload: &[u8]) -> Bytes {
        let seg = TcpSegment {
            src_port: 5,
            dst_port: 80,
            seq: 1,
            ack: 1,
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 1000,
            mss: None,
            payload: Bytes::copy_from_slice(payload),
        };
        let ip = Ipv4Packet {
            src: A,
            dst: B,
            protocol: IpProtocol::Tcp,
            ttl: 64,
            ident: 1,
            payload: seg.emit(A, B),
        };
        EthernetFrame {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            ethertype: EtherType::Ipv4,
            payload: ip.emit(),
        }
        .emit()
    }

    /// Feed the same records to a retaining buffer (batch reference) and
    /// to the sinks; return the batch parse.
    fn batch_of(records: &[(u64, CaptureDir, &[u8])]) -> ParsedCapture {
        let mut buf = CaptureBuffer::new("ref");
        for (ms, dir, payload) in records {
            buf.record(SimTime::from_millis(*ms), *dir, tcp_frame(payload));
        }
        ParsedCapture::parse(&buf)
    }

    fn feed_sink(sink: &mut dyn CaptureSink, records: &[(u64, CaptureDir, &[u8])]) {
        for (ms, dir, payload) in records {
            sink.on_record(SimTime::from_millis(*ms), *dir, &tcp_frame(payload));
        }
    }

    #[test]
    fn session_sink_matches_like_parsed_capture() {
        let records: &[(u64, CaptureDir, &[u8])] = &[
            (
                10,
                CaptureDir::Tx,
                b"GET /probe?m=xhr_get&r=1&t=7 HTTP/1.1\r\n\r\n",
            ),
            (
                61,
                CaptureDir::Rx,
                b"HTTP/1.1 200 OK\r\n\r\npong r=1 t=7 .....",
            ),
            (
                80,
                CaptureDir::Tx,
                b"GET /probe?m=xhr_get&r=2&t=7 HTTP/1.1\r\n\r\n",
            ),
            (
                131,
                CaptureDir::Rx,
                b"HTTP/1.1 200 OK\r\n\r\npong r=2 t=7 .....",
            ),
        ];
        let batch = batch_of(records);
        let mut sink = SessionMarkerSink::new(MethodId::XhrGet, 2, 7);
        feed_sink(&mut sink, records);
        for r in 1..=2 {
            assert_eq!(
                sink.match_round(r),
                batch.match_round(MethodId::XhrGet, r, 7),
                "round {r}"
            );
        }
        assert_eq!(sink.records_seen(), 4);
    }

    #[test]
    fn session_sink_reports_every_error_like_batch() {
        // Retransmitted request, then a round with no response, then an
        // out-of-order round.
        let records: &[(u64, CaptureDir, &[u8])] = &[
            (10, CaptureDir::Tx, b"m=xhr_get&r=1&t=9 "),
            (210, CaptureDir::Tx, b"m=xhr_get&r=1&t=9 "),
            (261, CaptureDir::Rx, b"pong r=1 t=9 "),
            (300, CaptureDir::Tx, b"m=xhr_get&r=2&t=9 "),
        ];
        let batch = batch_of(records);
        let mut sink = SessionMarkerSink::new(MethodId::XhrGet, 3, 9);
        feed_sink(&mut sink, records);
        for r in 1..=3 {
            assert_eq!(
                sink.match_round(r),
                batch.match_round(MethodId::XhrGet, r, 9),
                "round {r}"
            );
        }
    }

    #[test]
    fn session_sink_handles_echo_transports() {
        let marker: &[u8] = b"probe m=java_tcp r=1 t=3 .......";
        let records: &[(u64, CaptureDir, &[u8])] =
            &[(5, CaptureDir::Tx, marker), (55, CaptureDir::Rx, marker)];
        let batch = batch_of(records);
        let mut sink = SessionMarkerSink::new(MethodId::JavaTcp, 1, 3);
        feed_sink(&mut sink, records);
        assert_eq!(
            sink.match_round(1),
            batch.match_round(MethodId::JavaTcp, 1, 3)
        );
    }

    /// The decisive semantic test: tokens whose decimal forms prefix
    /// each other. `contains` makes token 1 hit a frame carrying token
    /// 10 for open-ended HTTP request markers (and only for those);
    /// the index must reproduce that bit-exactly.
    #[test]
    fn server_index_preserves_decimal_prefix_ambiguity() {
        let t_short = 1u64;
        let t_long = 10u64;
        let records: &[(u64, CaptureDir, &[u8])] = &[
            // One "real" occurrence for token 1...
            (10, CaptureDir::Rx, b"m=xhr_get&r=1&t=1 HTTP/1.1"),
            // ...and token 10's request, which ALSO hits token 1's
            // open-ended needle "m=xhr_get&r=1&t=1".
            (11, CaptureDir::Rx, b"m=xhr_get&r=1&t=10 HTTP/1.1"),
            // Responses are space-terminated: no cross-hit.
            (12, CaptureDir::Tx, b"pong r=1 t=1 "),
            (13, CaptureDir::Tx, b"pong r=1 t=10 "),
        ];
        let batch = batch_of(records);
        let mut idx = ServerMarkerIndex::new(MethodId::XhrGet, 2, &[t_short, t_long]);
        feed_sink(&mut idx, records);
        for &tok in &[t_short, t_long] {
            for r in 1..=2 {
                assert_eq!(
                    idx.round_retransmitted(r, tok),
                    batch.round_retransmitted(MethodId::XhrGet, r, tok),
                    "token {tok} round {r}"
                );
            }
        }
        // Token 1's request marker was hit twice (once by its own frame,
        // once inside token 10's) — the batch rule calls that
        // retransmitted, and so must the index.
        assert!(idx.round_retransmitted(1, t_short));
        assert!(!idx.round_retransmitted(1, t_long));
    }

    #[test]
    fn server_index_detects_downstream_duplicates() {
        let records: &[(u64, CaptureDir, &[u8])] = &[
            (35, CaptureDir::Rx, b"m=xhr_get&r=1&t=7 "),
            (36, CaptureDir::Tx, b"pong r=1 t=7 "),
            (236, CaptureDir::Tx, b"pong r=1 t=7 "),
        ];
        let batch = batch_of(records);
        let mut idx = ServerMarkerIndex::new(MethodId::XhrGet, 2, &[7]);
        feed_sink(&mut idx, records);
        assert!(idx.round_retransmitted(1, 7));
        assert_eq!(
            idx.round_retransmitted(1, 7),
            batch.round_retransmitted(MethodId::XhrGet, 1, 7)
        );
        assert!(!idx.round_retransmitted(2, 7));
    }

    /// Edge cases: digit runs cut off by the frame end (no terminator),
    /// non-digit continuations, duplicate occurrences within one
    /// payload, and echo markers — all against the batch oracle.
    #[test]
    fn server_index_edge_cases_agree_with_batch() {
        let tokens = &[0u64, 7, 70, 4294967296 /* 1<<32: session 1 rep 0 */];
        let records: &[(u64, CaptureDir, &[u8])] = &[
            // Truncated digit run at end of payload: space-terminated
            // needles must NOT hit.
            (1, CaptureDir::Tx, b"pong r=1 t=7"),
            // Non-digit after the run: "t=7x" — open-ended token 7 hits
            // ("m=...&t=7" is a substring), exact "pong r=1 t=7 " would
            // not.
            (2, CaptureDir::Rx, b"m=xhr_get&r=1&t=7x"),
            // Two occurrences of the same marker in one payload: one hit
            // (contains is per-record).
            (
                3,
                CaptureDir::Rx,
                b"m=xhr_get&r=1&t=70 ... m=xhr_get&r=1&t=70",
            ),
            // Token 0 and the 1<<32 composite.
            (4, CaptureDir::Rx, b"m=xhr_get&r=2&t=0 "),
            (5, CaptureDir::Rx, b"m=xhr_get&r=2&t=4294967296 "),
            (6, CaptureDir::Tx, b"pong r=2 t=4294967296 "),
            (7, CaptureDir::Tx, b"pong r=2 t=4294967296 "),
        ];
        let batch = batch_of(records);
        let mut idx = ServerMarkerIndex::new(MethodId::XhrGet, 2, tokens);
        feed_sink(&mut idx, records);
        for &tok in tokens {
            for r in 1..=2 {
                assert_eq!(
                    idx.round_retransmitted(r, tok),
                    batch.round_retransmitted(MethodId::XhrGet, r, tok),
                    "token {tok} round {r}"
                );
            }
        }
        // The duplicated pong makes (round 2, 1<<32) retransmitted.
        assert!(idx.round_retransmitted(2, 4294967296));
    }

    #[test]
    fn server_index_echo_methods_agree_with_batch() {
        let records: &[(u64, CaptureDir, &[u8])] = &[
            (5, CaptureDir::Rx, b"probe m=java_tcp r=1 t=3 ......."),
            (6, CaptureDir::Tx, b"probe m=java_tcp r=1 t=3 ......."),
            (206, CaptureDir::Tx, b"probe m=java_tcp r=1 t=3 ......."),
            (300, CaptureDir::Rx, b"probe m=java_tcp r=2 t=3 ......."),
            (301, CaptureDir::Tx, b"probe m=java_tcp r=2 t=3 ......."),
        ];
        let batch = batch_of(records);
        let mut idx = ServerMarkerIndex::new(MethodId::JavaTcp, 2, &[3]);
        feed_sink(&mut idx, records);
        for r in 1..=2 {
            assert_eq!(
                idx.round_retransmitted(r, 3),
                batch.round_retransmitted(MethodId::JavaTcp, r, 3),
                "round {r}"
            );
        }
        assert!(idx.round_retransmitted(1, 3));
        assert!(!idx.round_retransmitted(2, 3));
    }

    #[test]
    fn discard_sink_only_counts() {
        let mut s = DiscardSink::default();
        s.on_record(SimTime::ZERO, CaptureDir::Tx, &tcp_frame(b"anything"));
        s.on_record(SimTime::ZERO, CaptureDir::Rx, &Bytes::from_static(b"junk"));
        assert_eq!(s.records_seen(), 2);
    }
}
