//! Throughput-measurement accuracy — the "Tput" column of Table 1.
//!
//! Speedtest-style tools estimate round-trip throughput as
//! `bytes / (tB_r − tB_s)` for a bulk download. Section 2.2 of the paper
//! warns that "the actual round-trip throughput could be seriously
//! under-estimated by an inflated RTT"; this module measures exactly how
//! much, per method, by comparing the browser-level estimate against the
//! wire-level one recovered from the capture.

use bnm_methods::MethodId;
use bnm_sim::capture::{CaptureBuffer, CaptureDir};
use bnm_sim::rng;
use bnm_sim::time::SimTime;
use bnm_sim::wire::{ParsedPacket, Transport};
use bnm_time::MachineTimer;

use crate::config::ExperimentCell;
use crate::error::RunError;
use crate::matching::MatchError;
use crate::runner::ExperimentRunner;
use crate::testbed::{Testbed, TestbedConfig};

/// One bulk-download measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BulkMeasurement {
    /// Round number.
    pub round: u8,
    /// Download size (body bytes).
    pub bytes: usize,
    /// Browser-level transfer time, ms.
    pub browser_ms: f64,
    /// Wire-level transfer time (request out → last data packet in), ms.
    pub wire_ms: f64,
}

impl BulkMeasurement {
    /// Browser-estimated throughput, bits/s.
    pub fn browser_bps(&self) -> f64 {
        self.bytes as f64 * 8.0 / (self.browser_ms / 1e3)
    }

    /// Wire throughput, bits/s.
    pub fn wire_bps(&self) -> f64 {
        self.bytes as f64 * 8.0 / (self.wire_ms / 1e3)
    }

    /// Fraction of throughput the browser under-reports.
    pub fn underestimation(&self) -> f64 {
        1.0 - self.browser_bps() / self.wire_bps()
    }
}

/// Find the wire-level bulk transfer window for one round: the request
/// packet's departure and the arrival of the packet that completes `n`
/// response-payload bytes on the same connection.
pub fn match_bulk_round(
    capture: &CaptureBuffer,
    method: MethodId,
    round: u8,
    token: u64,
    n: usize,
) -> Result<(SimTime, SimTime), MatchError> {
    let req_needle: Vec<u8> = if method.is_http_based() {
        format!("m={}&r={}&t={}", method.label(), round, token).into_bytes()
    } else {
        format!("bulk n={n} r={round} t={token}").into_bytes()
    };
    let resp_needle = format!("bulk r={round} t={token} ").into_bytes();
    let contains = |hay: &[u8], needle: &[u8]| hay.windows(needle.len()).any(|w| w == needle);

    let mut tn_s = None;
    let mut resp_ports: Option<(u16, u16)> = None;
    let mut body_seen = 0usize;
    for rec in capture.records() {
        let Ok(p) = ParsedPacket::parse(&rec.frame) else {
            continue;
        };
        let Transport::Tcp(seg) = &p.transport else {
            continue;
        };
        match rec.dir {
            CaptureDir::Tx => {
                if tn_s.is_none() && contains(&seg.payload, &req_needle) {
                    tn_s = Some(rec.ts);
                }
            }
            CaptureDir::Rx => {
                // No response accounting before the request left.
                let Some(sent_at) = tn_s else {
                    continue;
                };
                match resp_ports {
                    None => {
                        if contains(&seg.payload, &resp_needle) {
                            resp_ports = Some((seg.src_port, seg.dst_port));
                            body_seen += seg.payload.len();
                        }
                    }
                    Some(ports) => {
                        if (seg.src_port, seg.dst_port) == ports {
                            body_seen += seg.payload.len();
                        }
                    }
                }
                if resp_ports.is_some() && body_seen >= n {
                    if rec.ts < sent_at {
                        return Err(MatchError::OutOfOrder);
                    }
                    return Ok((sent_at, rec.ts));
                }
            }
        }
    }
    if tn_s.is_none() {
        Err(MatchError::RequestNotFound)
    } else {
        Err(MatchError::ResponseNotFound)
    }
}

/// Run one throughput repetition: download `n` bytes per round through
/// the cell's method.
pub fn run_bulk_rep(
    cell: &ExperimentCell,
    rep: u32,
    n: usize,
) -> Result<Vec<BulkMeasurement>, RunError> {
    let profile = ExperimentRunner::try_profile(cell)?;
    if !cell.method.available_in(&profile) {
        return Err(RunError::unrunnable(cell));
    }
    let machine_seed = rng::derive_seed(cell.seed, &format!("machine.{}", cell.label()));
    let machine = MachineTimer::new(cell.os, machine_seed)
        .at_offset(bnm_sim::time::SimDuration::from_secs(4).saturating_mul(u64::from(rep)));
    let tb_cfg = TestbedConfig {
        server_delay: cell.server_delay,
        capture_noise_ns: cell.capture_noise_ns,
        seed: rng::derive_seed(cell.seed, "capture"),
        ..TestbedConfig::default()
    };
    let plan = cell.method.plan(cell.timing_override).with_bulk(n);
    let mut tb = Testbed::build(
        &tb_cfg,
        plan,
        profile,
        machine,
        u64::from(rep),
        rng::derive_seed(cell.seed, &format!("session.{}", cell.label())) ^ u64::from(rep),
    );
    tb.run();
    if !tb.session().result().completed {
        return Err(RunError::Match(MatchError::ResponseNotFound));
    }
    let rounds = tb.session().result().rounds.clone();
    let capture = tb.engine.tap(tb.client_tap);
    let mut out = Vec::new();
    for r in rounds {
        let (tn_s, tn_last) = match_bulk_round(capture, cell.method, r.round, u64::from(rep), n)?;
        out.push(BulkMeasurement {
            round: r.round,
            bytes: n,
            browser_ms: r.browser_rtt_ms(),
            wire_ms: tn_last.signed_millis_since(tn_s),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeSel;
    use bnm_browser::BrowserKind;
    use bnm_time::OsKind;

    fn cell(method: MethodId) -> ExperimentCell {
        ExperimentCell::paper(
            method,
            RuntimeSel::Browser(BrowserKind::Chrome),
            OsKind::Ubuntu1204,
        )
    }

    #[test]
    fn bulk_download_completes_and_wire_time_is_sane() {
        let n = 256 * 1024;
        let ms = run_bulk_rep(&cell(MethodId::XhrGet), 0, n).unwrap();
        assert_eq!(ms.len(), 2);
        for m in &ms {
            // 256 KB through a 50 ms RTT is window-limited: ~4 RTTs of
            // slow-start/steady 64 KB windows ≈ 200–300 ms.
            assert!(m.wire_ms > 60.0, "wire {}", m.wire_ms);
            assert!(m.wire_ms < 450.0, "wire {}", m.wire_ms);
            assert!(m.browser_ms >= m.wire_ms, "browser ≥ wire");
            // Wire throughput is bounded by the line rate.
            assert!(m.wire_bps() < 100_000_000.0);
            assert!(m.wire_bps() > 5_000_000.0);
        }
    }

    #[test]
    fn websocket_bulk_works_and_underestimates_less_than_xhr() {
        let n = 128 * 1024;
        let ws = run_bulk_rep(&cell(MethodId::WebSocket), 0, n).unwrap();
        let xhr = run_bulk_rep(&cell(MethodId::XhrGet), 0, n).unwrap();
        // Round 2 (no first-use cost) comparison.
        let ws_u = ws[1].underestimation();
        let xhr_u = xhr[1].underestimation();
        assert!(ws_u >= -0.05, "ws underestimation {ws_u}");
        assert!(ws_u < xhr_u + 0.05, "ws {ws_u} ≤ xhr {xhr_u}");
    }

    #[test]
    fn larger_transfers_dilute_the_overhead() {
        let small = run_bulk_rep(&cell(MethodId::XhrGet), 0, 16 * 1024).unwrap();
        let large = run_bulk_rep(&cell(MethodId::XhrGet), 0, 1024 * 1024).unwrap();
        assert!(
            large[1].underestimation() < small[1].underestimation(),
            "large {} < small {}",
            large[1].underestimation(),
            small[1].underestimation()
        );
    }

    #[test]
    fn flash_bulk_underestimates_badly() {
        let n = 64 * 1024;
        let flash = run_bulk_rep(&cell(MethodId::FlashGet), 0, n).unwrap();
        assert!(
            flash[0].underestimation() > 0.2,
            "flash underestimation {}",
            flash[0].underestimation()
        );
    }
}
