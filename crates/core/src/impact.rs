//! Downstream impact of the delay overhead (§2.2 of the paper):
//! unstable Δd corrupts jitter estimates, and an inflated RTT
//! under-estimates round-trip throughput.

use bnm_stats::jitter;

use crate::error::RunError;

/// Jitter distortion: measured-jitter vs true-jitter for an RTT series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterImpact {
    /// Jitter of the true (wire) RTT series, ms.
    pub true_jitter_ms: f64,
    /// Jitter of the browser-level RTT series, ms.
    pub measured_jitter_ms: f64,
}

impl JitterImpact {
    /// Compare wire and browser RTT series (consecutive-difference
    /// jitter).
    pub fn of(wire_rtts_ms: &[f64], browser_rtts_ms: &[f64]) -> JitterImpact {
        JitterImpact {
            true_jitter_ms: jitter::consecutive_jitter(wire_rtts_ms),
            measured_jitter_ms: jitter::consecutive_jitter(browser_rtts_ms),
        }
    }

    /// Jitter added by the browser, ms.
    pub fn inflation_ms(&self) -> f64 {
        self.measured_jitter_ms - self.true_jitter_ms
    }
}

/// Round-trip throughput distortion from an inflated RTT.
///
/// A speedtest that transfers `bytes` in one window estimates
/// `Tput = bytes·8 / RTT`; an RTT inflated by Δd under-reports it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputImpact {
    /// Throughput computed from the wire RTT, bits/s.
    pub true_bps: f64,
    /// Throughput computed from the browser RTT, bits/s.
    pub measured_bps: f64,
}

impl ThroughputImpact {
    /// Compute for a transfer of `bytes` against the two RTTs (ms).
    /// Both RTTs must be positive — a zero or negative RTT makes the
    /// throughput quotient meaningless.
    pub fn try_of(
        bytes: usize,
        wire_rtt_ms: f64,
        browser_rtt_ms: f64,
    ) -> Result<ThroughputImpact, RunError> {
        if !(wire_rtt_ms > 0.0 && browser_rtt_ms > 0.0) {
            return Err(RunError::InvalidInput("RTTs must be positive"));
        }
        let bits = bytes as f64 * 8.0;
        Ok(ThroughputImpact {
            true_bps: bits / (wire_rtt_ms / 1e3),
            measured_bps: bits / (browser_rtt_ms / 1e3),
        })
    }

    /// Compute for a transfer of `bytes` against the two RTTs (ms).
    ///
    /// # Panics
    /// If either RTT is non-positive; prefer
    /// [`ThroughputImpact::try_of`].
    pub fn of(bytes: usize, wire_rtt_ms: f64, browser_rtt_ms: f64) -> ThroughputImpact {
        match Self::try_of(bytes, wire_rtt_ms, browser_rtt_ms) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fraction of throughput lost to the overhead (0 = exact,
    /// 0.5 = halved).
    pub fn underestimation(&self) -> f64 {
        1.0 - self.measured_bps / self.true_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_overhead_adds_no_jitter() {
        let wire = [50.0, 50.0, 50.0, 50.0];
        let browser: Vec<f64> = wire.iter().map(|r| r + 4.0).collect();
        let j = JitterImpact::of(&wire, &browser);
        assert_eq!(j.inflation_ms(), 0.0);
    }

    #[test]
    fn unstable_overhead_fabricates_jitter() {
        let wire = [50.0; 6];
        let browser = [54.0, 66.0, 53.0, 70.0, 55.0, 61.0];
        let j = JitterImpact::of(&wire, &browser);
        assert_eq!(j.true_jitter_ms, 0.0);
        assert!(j.measured_jitter_ms > 8.0);
        assert!(j.inflation_ms() > 8.0);
    }

    #[test]
    fn throughput_underestimation_scales_with_overhead() {
        // 100 KB over a 50 ms RTT = 16 Mbit/s true.
        let t = ThroughputImpact::of(100_000, 50.0, 100.0);
        assert!((t.true_bps - 16e6).abs() < 1.0);
        assert!((t.measured_bps - 8e6).abs() < 1.0);
        assert!((t.underestimation() - 0.5).abs() < 1e-9);
        // Small overhead barely matters.
        let small = ThroughputImpact::of(100_000, 50.0, 50.5);
        assert!(small.underestimation() < 0.011);
    }

    #[test]
    fn nonpositive_rtt_reports_invalid_input() {
        assert_eq!(
            ThroughputImpact::try_of(1000, 0.0, 50.0).unwrap_err(),
            RunError::InvalidInput("RTTs must be positive")
        );
        assert!(ThroughputImpact::try_of(1000, 50.0, -1.0).is_err());
    }

    /// The panicking façade keeps its historical contract.
    #[test]
    #[should_panic]
    fn nonpositive_rtt_panics() {
        ThroughputImpact::of(1000, 0.0, 50.0);
    }
}
