//! Continuous monitoring: repeated measurement rounds folded into
//! bounded-memory windows over virtual time.
//!
//! Batch runs ([`ExperimentRunner::try_run`]) execute N repetitions,
//! retain everything and report once. The ROADMAP's north star is a
//! long-running service, and that inverts the shape: rounds arrive
//! forever, nothing can be retained per-round, and the summary must be
//! pollable *mid-run*. [`Monitor`] is that loop:
//!
//! * it drives the cell's scenario one repetition at a time over a
//!   virtual clock ([`MonitorConfig::round_period`] apart), reusing the
//!   exact batch repetition machinery — a monitored round is
//!   bit-identical to the same `(cell, rep)` of a batch run;
//! * each round's Δd samples (every session of the crowd), exclusions
//!   and failures fold incrementally into tumbling + sliding windows
//!   (1 s / 10 s / 1 min of virtual time by default) backed by
//!   [`bnm_stats::WindowedSketch`] and [`bnm_obs::WindowedCounter`],
//!   plus lifetime sketches — memory is bounded by the window spans and
//!   the sketch resolution, never by the round count;
//! * [`Monitor::snapshot`] can be called at any point and yields a
//!   [`ReportSnapshot`] — the same summary shape
//!   [`CellResult::summary`](crate::runner::CellResult::summary)
//!   produces for batch runs — whose quantiles carry the sketch's
//!   documented relative-error bound.
//!
//! Note one deliberate difference from the batch flat `d1`/`d2`
//! vectors: the monitor folds *all* sessions' measurements into its
//! windows (a crowd-wide view), while batch summaries digest the
//! reference session. Parity tests therefore compare the monitor
//! against exact quantiles over all sessions of the equivalent batch
//! repetitions.

use bnm_obs::WindowedCounter;
use bnm_sim::time::{SimDuration, SimTime};
use bnm_stats::sketch::DEFAULT_ALPHA;
use bnm_stats::{QuantileSketch, WindowedSketch};

use crate::config::ExperimentCell;
use crate::error::RunError;
use crate::report::{DistSummary, ReportSnapshot, WindowReport};
use crate::runner::ExperimentRunner;

/// Shape of the monitoring loop: how often rounds fire and how the
/// aggregation windows tile virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Virtual time between consecutive measurement rounds.
    pub round_period: SimDuration,
    /// The tumbling base interval windows are built from.
    pub pan: SimDuration,
    /// Window spans, in pans. A `1` is a tumbling window of one pan;
    /// larger values slide. The default (with 1 s pans) is
    /// `[1, 10, 60]` — last second, last ten seconds, last minute.
    pub window_pans: Vec<u32>,
    /// Sketch accuracy (DDSketch α) for every window and the lifetime
    /// digests.
    pub alpha: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            round_period: SimDuration::from_secs(1),
            pan: SimDuration::from_secs(1),
            window_pans: vec![1, 10, 60],
            alpha: DEFAULT_ALPHA,
        }
    }
}

impl MonitorConfig {
    fn validate(&self) -> Result<(), RunError> {
        if self.round_period == SimDuration::ZERO {
            return Err(RunError::InvalidInput("round_period must be positive"));
        }
        if self.pan == SimDuration::ZERO {
            return Err(RunError::InvalidInput("pan must be positive"));
        }
        if self.window_pans.is_empty() {
            return Err(RunError::InvalidInput("at least one window is required"));
        }
        if self.window_pans.contains(&0) {
            return Err(RunError::InvalidInput("window spans must be positive"));
        }
        Ok(())
    }
}

/// Human label for a window span: `"1s"`, `"10s"`, `"1m"`, `"500ms"`.
fn span_label(span: SimDuration) -> String {
    let ns = span.as_nanos();
    const SEC: u64 = 1_000_000_000;
    if ns >= 60 * SEC && ns.is_multiple_of(60 * SEC) {
        format!("{}m", ns / (60 * SEC))
    } else if ns >= SEC && ns.is_multiple_of(SEC) {
        format!("{}s", ns / SEC)
    } else {
        format!("{}ms", ns / 1_000_000)
    }
}

/// One aggregation window's live state.
#[derive(Debug, Clone)]
struct MonitorWindow {
    label: String,
    span: SimDuration,
    d1: WindowedSketch,
    d2: WindowedSketch,
    rounds: WindowedCounter,
    excluded: WindowedCounter,
    failures: WindowedCounter,
}

impl MonitorWindow {
    fn new(pan: SimDuration, span_pans: u32, alpha: f64) -> MonitorWindow {
        let pan_ns = pan.as_nanos();
        let span = SimDuration::from_nanos(pan_ns.saturating_mul(span_pans as u64));
        MonitorWindow {
            label: span_label(span),
            span,
            d1: WindowedSketch::new(alpha, pan_ns, span_pans as usize),
            d2: WindowedSketch::new(alpha, pan_ns, span_pans as usize),
            rounds: WindowedCounter::new(pan_ns, span_pans as usize),
            excluded: WindowedCounter::new(pan_ns, span_pans as usize),
            failures: WindowedCounter::new(pan_ns, span_pans as usize),
        }
    }

    fn report(&self) -> WindowReport {
        let d1 = self.d1.merged();
        let d2 = self.d2.merged();
        let mut pooled = d1.clone();
        pooled.merge(&d2);
        WindowReport {
            label: self.label.clone(),
            span_secs: Some(self.span.as_secs_f64()),
            rounds: self.rounds.total(),
            excluded_rounds: self.excluded.total(),
            failures: self.failures.total(),
            d1: DistSummary::of_sketch(&d1),
            d2: DistSummary::of_sketch(&d2),
            pooled: DistSummary::of_sketch(&pooled),
        }
    }
}

/// Memory gauges of a running monitor. Each is bounded by the window
/// spans and sketch resolution — a parity test asserts they stay flat
/// between round 100 and round 1,000 of the same run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MonitorFootprint {
    /// Live sketch pans summed over all windows (d1 + d2).
    pub sketch_pans: usize,
    /// Occupied sketch buckets summed over all windows and the two
    /// lifetime sketches.
    pub sketch_buckets: usize,
    /// Live counter pans summed over all windows.
    pub counter_pans: usize,
}

/// The continuous measurement loop. See the module docs.
///
/// A `Monitor` is deterministic: two monitors built from the same cell
/// and config, stepped the same number of times, produce `==`
/// [`ReportSnapshot`]s — each round derives entirely from
/// `(cell.seed, rep)`.
#[derive(Debug, Clone)]
pub struct Monitor {
    cell: ExperimentCell,
    cfg: MonitorConfig,
    windows: Vec<MonitorWindow>,
    lifetime_d1: QuantileSketch,
    lifetime_d2: QuantileSketch,
    rounds_run: u64,
    excluded: u64,
    failures: u64,
    attributed: u64,
    next_rep: u32,
    now: SimTime,
}

impl Monitor {
    /// A monitor over `cell` with the default window layout
    /// (1 s rounds; 1 s / 10 s / 1 min windows).
    pub fn new(cell: ExperimentCell) -> Result<Monitor, RunError> {
        Monitor::with_config(cell, MonitorConfig::default())
    }

    /// A monitor with an explicit [`MonitorConfig`].
    ///
    /// Fails up-front with [`RunError::Unrunnable`] for a cell the
    /// runtime cannot execute (so the loop cannot spin failures
    /// forever) or [`RunError::InvalidInput`] for a bad config.
    pub fn with_config(cell: ExperimentCell, cfg: MonitorConfig) -> Result<Monitor, RunError> {
        cfg.validate()?;
        if !cell.is_runnable() {
            return Err(RunError::unrunnable(&cell));
        }
        let windows = cfg
            .window_pans
            .iter()
            .map(|span| MonitorWindow::new(cfg.pan, *span, cfg.alpha))
            .collect();
        let lifetime = QuantileSketch::new(cfg.alpha);
        Ok(Monitor {
            cell,
            cfg,
            windows,
            lifetime_d1: lifetime.clone(),
            lifetime_d2: lifetime,
            rounds_run: 0,
            excluded: 0,
            failures: 0,
            attributed: 0,
            next_rep: 0,
            now: SimTime::ZERO,
        })
    }

    /// The monitored cell.
    pub fn cell(&self) -> &ExperimentCell {
        &self.cell
    }

    /// Current virtual time (seconds the monitor has covered so far).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Rounds attempted so far.
    pub fn rounds_run(&self) -> u64 {
        self.rounds_run
    }

    /// Rounds for which component attribution was folded (traced cells
    /// only).
    pub fn attributed_rounds(&self) -> u64 {
        self.attributed
    }

    /// Run one measurement round at the current virtual time and fold
    /// it into every window, then advance the clock by
    /// [`MonitorConfig::round_period`].
    ///
    /// The round is the batch repetition `next_rep` of the same cell —
    /// bit-identical to what `ExperimentRunner::try_run` would have
    /// produced for that rep — so a monitor replaying N rounds sees
    /// exactly the samples of an N-rep batch run.
    pub fn step(&mut self) {
        let t = self.now.as_nanos();
        for w in &mut self.windows {
            w.d1.advance(t);
            w.d2.advance(t);
            w.rounds.advance(t);
            w.excluded.advance(t);
            w.failures.advance(t);
        }
        match ExperimentRunner::run_rep_traced(&self.cell, self.next_rep) {
            Ok(rep) => {
                for w in &mut self.windows {
                    w.rounds.add(t, 1);
                    w.excluded.add(t, rep.excluded as u64);
                }
                self.excluded += rep.excluded as u64;
                self.attributed += rep.attribution.len() as u64;
                for m in &rep.measurements {
                    let v = m.delta_d_ms();
                    match m.round {
                        1 => {
                            self.lifetime_d1.insert(v);
                            for w in &mut self.windows {
                                w.d1.record(t, v);
                            }
                        }
                        _ => {
                            self.lifetime_d2.insert(v);
                            for w in &mut self.windows {
                                w.d2.record(t, v);
                            }
                        }
                    }
                }
            }
            Err(_) => {
                for w in &mut self.windows {
                    w.rounds.add(t, 1);
                    w.failures.add(t, 1);
                }
                self.failures += 1;
            }
        }
        self.rounds_run += 1;
        self.next_rep += 1;
        self.now += self.cfg.round_period;
    }

    /// Step until `duration` of virtual time has elapsed.
    pub fn run_for(&mut self, duration: SimDuration) {
        let end = self.now + duration;
        while self.now < end {
            self.step();
        }
    }

    /// Poll the current state: per-window digests plus the lifetime
    /// `"total"` window, in bounded time and memory. Callable mid-run
    /// as often as desired; it never perturbs the measurement loop.
    pub fn snapshot(&self) -> ReportSnapshot {
        let mut windows: Vec<WindowReport> =
            self.windows.iter().map(MonitorWindow::report).collect();
        let mut pooled = self.lifetime_d1.clone();
        pooled.merge(&self.lifetime_d2);
        windows.push(WindowReport {
            label: "total".into(),
            span_secs: None,
            rounds: self.rounds_run,
            excluded_rounds: self.excluded,
            failures: self.failures,
            d1: DistSummary::of_sketch(&self.lifetime_d1),
            d2: DistSummary::of_sketch(&self.lifetime_d2),
            pooled: DistSummary::of_sketch(&pooled),
        });
        ReportSnapshot {
            label: self.cell.label(),
            at_secs: self.now.as_secs_f64(),
            rounds: self.rounds_run,
            samples: self.lifetime_d1.count() + self.lifetime_d2.count(),
            excluded_rounds: self.excluded,
            failures: self.failures,
            relative_error_bound: self.lifetime_d1.relative_error_bound(),
            windows,
            datagram: None,
            link: None,
        }
    }

    /// Current memory gauges (see [`MonitorFootprint`]).
    pub fn footprint(&self) -> MonitorFootprint {
        let mut f = MonitorFootprint {
            sketch_buckets: self.lifetime_d1.bucket_count() + self.lifetime_d2.bucket_count(),
            ..MonitorFootprint::default()
        };
        for w in &self.windows {
            f.sketch_pans += w.d1.live_pans() + w.d2.live_pans();
            f.sketch_buckets += w.d1.bucket_count() + w.d2.bucket_count();
            f.counter_pans +=
                w.rounds.live_pans() + w.excluded.live_pans() + w.failures.live_pans();
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ContentionSpec, RuntimeSel, StreamingSpec};
    use bnm_browser::BrowserKind;
    use bnm_methods::MethodId;
    use bnm_time::OsKind;

    fn cell(reps: u32) -> ExperimentCell {
        ExperimentCell::builder(
            MethodId::XhrGet,
            RuntimeSel::Browser(BrowserKind::Chrome),
            OsKind::Ubuntu1204,
        )
        .reps(reps)
        .seed(0x5E17_0001)
        .build()
        .unwrap()
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = MonitorConfig {
            window_pans: vec![],
            ..MonitorConfig::default()
        };
        assert!(matches!(
            Monitor::with_config(cell(1), bad),
            Err(RunError::InvalidInput(_))
        ));
        let zero_pan = MonitorConfig {
            pan: SimDuration::ZERO,
            ..MonitorConfig::default()
        };
        assert!(Monitor::with_config(cell(1), zero_pan).is_err());
    }

    #[test]
    fn unrunnable_cells_are_rejected_up_front() {
        // IE9 has no WebSocket support in the paper's matrix (Table 2).
        let c = ExperimentCell::builder(
            MethodId::WebSocket,
            RuntimeSel::Browser(BrowserKind::Ie9),
            OsKind::Windows7,
        )
        .build_unchecked();
        assert!(matches!(Monitor::new(c), Err(RunError::Unrunnable { .. })));
    }

    #[test]
    fn monitored_rounds_match_batch_reps() {
        let c = cell(3);
        let batch = ExperimentRunner::try_run(&c).unwrap();
        let mut m = Monitor::new(c).unwrap();
        for _ in 0..3 {
            m.step();
        }
        let snap = m.snapshot();
        assert_eq!(snap.rounds, 3);
        assert_eq!(snap.total().d1.count as usize, batch.d1.len());
        // Same reps, same samples: lifetime min/max are exact in the
        // sketch, so they must equal the batch extremes.
        let exact = DistSummary::of_samples(&batch.d1);
        assert_eq!(snap.total().d1.min, exact.min);
        assert_eq!(snap.total().d1.max, exact.max);
    }

    #[test]
    fn windows_rotate_with_virtual_time() {
        let cfg = MonitorConfig {
            window_pans: vec![1, 2],
            ..MonitorConfig::default()
        };
        let mut m = Monitor::with_config(cell(8), cfg).unwrap();
        for _ in 0..5 {
            m.step();
        }
        let snap = m.snapshot();
        assert_eq!(snap.windows.len(), 3, "two windows + total");
        assert_eq!(snap.windows[0].label, "1s");
        assert_eq!(snap.windows[1].label, "2s");
        assert_eq!(snap.total().label, "total");
        assert_eq!(snap.windows[0].rounds, 1, "tumbling window: last round");
        assert_eq!(snap.windows[1].rounds, 2, "sliding window: last two");
        assert_eq!(snap.total().rounds, 5);
        // Each clean single-client round contributes one d1 + one d2.
        assert_eq!(snap.windows[0].d1.count, 1);
        assert_eq!(snap.windows[1].d1.count, 2);
    }

    #[test]
    fn snapshots_are_deterministic() {
        let c = cell(4)
            .clone()
            .with_streaming(StreamingSpec::serve())
            .with_contention(ContentionSpec::clients(3).with_server_link_rate(2_000_000));
        let run = |c: &ExperimentCell| {
            let mut m = Monitor::new(c.clone()).unwrap();
            m.run_for(SimDuration::from_secs(4));
            m.snapshot()
        };
        let a = run(&c);
        let b = run(&c);
        assert_eq!(a, b, "same cell, same steps, same snapshot bits");
        assert_eq!(a.at_secs, 4.0);
    }

    #[test]
    fn footprint_gauges_track_pans_and_buckets() {
        let mut m = Monitor::new(cell(20)).unwrap();
        assert_eq!(m.footprint(), MonitorFootprint::default());
        m.run_for(SimDuration::from_secs(20));
        let f = m.footprint();
        // 1+10+60-pan windows, 20 rounds: the 1s window holds 1 pan,
        // the 10s window 10, the 1m window all 20 — per series.
        assert_eq!(f.sketch_pans, 2 * (1 + 10 + 20));
        assert!(f.sketch_buckets > 0);
        assert_eq!(
            f.counter_pans,
            1 + 10 + 20,
            "rounds counters only (no exclusions)"
        );
    }

    #[test]
    fn span_labels_humanize() {
        assert_eq!(span_label(SimDuration::from_secs(1)), "1s");
        assert_eq!(span_label(SimDuration::from_secs(10)), "10s");
        assert_eq!(span_label(SimDuration::from_secs(60)), "1m");
        assert_eq!(span_label(SimDuration::from_secs(120)), "2m");
        assert_eq!(span_label(SimDuration::from_millis(500)), "500ms");
    }
}
