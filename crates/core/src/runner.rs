//! The experiment runner: executes one cell (method × runtime × OS) for
//! N repetitions and assembles the Δd1/Δd2 sample sets.
//!
//! Each repetition is an independent simulation with its own derived
//! seeds: browser noise, capture noise and — crucially — the Windows
//! timer-regime process all re-draw, so a 50-rep cell samples the
//! machine's granularity regimes the way the paper's wall-clock runs did.
//! Because every stream derives from `(cell.seed, rep)` alone, the
//! repetitions are order-independent — [`crate::exec::Executor`] runs
//! them on as many threads as the machine has and still reproduces the
//! serial numbers bit-for-bit.

use bnm_browser::BrowserProfile;
use bnm_obs::{Trace, TraceData};
use bnm_sim::capture::CaptureSink;
use bnm_sim::{rng, CaptureRecord};
use bnm_stats::QuantileSketch;
use bnm_time::MachineTimer;

use crate::attribution::{self, RoundAttribution};
use crate::config::{ExperimentCell, RuntimeSel};
use crate::delta::RoundMeasurement;
use crate::error::RunError;
use crate::exec::Executor;
use crate::matching::{match_datagram_train, MatchError, ParsedCapture, ProbeStatus};
use crate::report::{DatagramReport, DistSummary, LinkReport, ReportSnapshot, WindowReport};
use crate::scenario::{Scenario, SessionSpec};
use crate::streaming::{DiscardSink, ServerMarkerIndex, SessionMarkerSink};
use crate::testbed::{Testbed, TestbedConfig};

/// Sketch-backed Δd distributions for one session — the bounded-memory
/// companion to the raw vectors when the cell runs with
/// [`crate::config::StreamingSpec::session_retention`] set. The sketches
/// see *every* sample (including the ones retained raw), so their
/// quantiles describe the full repetition set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionSketches {
    /// Streaming distribution of first-round Δd, ms.
    pub d1: QuantileSketch,
    /// Streaming distribution of second-round Δd, ms.
    pub d2: QuantileSketch,
}

/// Per-probe datagram statistics for one session, accumulated over a
/// cell's repetitions — the wire-truth appraisal of an unreliable
/// transport ([`bnm_methods::MethodId::is_datagram`]). Losses here are
/// *measurements*, not exclusions: there is no transport retransmitting
/// under the browser, so every probe's fate is scored individually.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DatagramSamples {
    /// Probes the session put on the wire.
    pub sent: u64,
    /// Probes whose echo reached the client NIC.
    pub delivered: u64,
    /// Probes that never reached the server tap.
    pub lost_upstream: u64,
    /// Probes whose echo left the server but never arrived.
    pub lost_downstream: u64,
    /// Probes seen more than once in one direction of either tap.
    pub duplicated: u64,
    /// Probes whose echo arrived after a higher sequence number's.
    pub reordered: u64,
    /// Per-probe upstream one-way delay (client Tx → server Rx), ms.
    pub owd_up_ms: Vec<f64>,
    /// Per-probe downstream one-way delay (server Tx → client Rx), ms.
    pub owd_down_ms: Vec<f64>,
    /// One RFC 3550 §6.4.1 jitter estimate per repetition, computed from
    /// wire transit pairs of the downstream leg in arrival order.
    pub wire_jitter_ms: Vec<f64>,
    /// The same estimator over the *browser's* per-probe stamps — what a
    /// script using this method would report. The gap to
    /// [`DatagramSamples::wire_jitter_ms`] is the paper's §2.2 point:
    /// unstable delay overhead inflates jitter measurements.
    pub browser_jitter_ms: Vec<f64>,
}

impl DatagramSamples {
    /// Fraction of sent probes that did not complete the echo, 0..=1
    /// (`NaN` when nothing was sent).
    pub fn loss_rate(&self) -> f64 {
        (self.sent - self.delivered) as f64 / self.sent as f64
    }

    /// Fraction of sent probes flagged reordered (`NaN` when nothing
    /// was sent).
    pub fn reorder_rate(&self) -> f64 {
        self.reordered as f64 / self.sent as f64
    }

    /// Fold another repetition's statistics into this accumulator.
    pub fn merge(&mut self, other: &DatagramSamples) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.lost_upstream += other.lost_upstream;
        self.lost_downstream += other.lost_downstream;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.owd_up_ms.extend_from_slice(&other.owd_up_ms);
        self.owd_down_ms.extend_from_slice(&other.owd_down_ms);
        self.wire_jitter_ms.extend_from_slice(&other.wire_jitter_ms);
        self.browser_jitter_ms
            .extend_from_slice(&other.browser_jitter_ms);
    }
}

/// One session's Δd sample sets within a cell (ascending session-id
/// order inside [`CellResult::sessions`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionSamples {
    /// The session id the samples belong to.
    pub session: u64,
    /// Δd of the first round per repetition, ms. In bounded-retention
    /// mode this keeps only the first `session_retention` samples; the
    /// full distribution lives in [`SessionSamples::sketches`].
    pub d1: Vec<f64>,
    /// Δd of rounds two and up per repetition, ms (same retention
    /// rule). Two-round methods put exactly round 2 here; datagram
    /// trains pool every later probe.
    pub d2: Vec<f64>,
    /// Rounds of this session excluded for wire retransmissions.
    pub excluded_rounds: u32,
    /// Streaming sketches over *all* samples — `Some` only when the
    /// cell ran with a retention threshold.
    pub sketches: Option<SessionSketches>,
    /// Per-probe datagram statistics — `Some` only for datagram
    /// methods, accumulated over all repetitions.
    pub datagram: Option<DatagramSamples>,
}

impl SessionSamples {
    /// Both rounds' Δd pooled (raw retained samples).
    pub fn pooled(&self) -> Vec<f64> {
        let mut all = self.d1.clone();
        all.extend_from_slice(&self.d2);
        all
    }

    /// Record one round's Δd, honouring the cell's retention threshold:
    /// `None` keeps every raw sample (and builds no sketch); `Some(n)`
    /// keeps at most `n` raw samples per round and folds every sample
    /// into the round's sketch.
    pub(crate) fn push_round(&mut self, round: u8, v: f64, retention: Option<u32>) {
        let raw = match round {
            1 => &mut self.d1,
            _ => &mut self.d2,
        };
        match retention {
            None => raw.push(v),
            Some(limit) => {
                if raw.len() < limit as usize {
                    raw.push(v);
                }
                let sk = self.sketches.get_or_insert_with(SessionSketches::default);
                match round {
                    1 => sk.d1.insert(v),
                    _ => sk.d2.insert(v),
                }
            }
        }
    }

    /// Samples recorded for one round (1 or 2) — the sketch count when
    /// sketching, else the raw vector length.
    pub fn count(&self, round: u8) -> u64 {
        match &self.sketches {
            Some(sk) => match round {
                1 => sk.d1.count(),
                _ => sk.d2.count(),
            },
            None => match round {
                1 => self.d1.len() as u64,
                _ => self.d2.len() as u64,
            },
        }
    }

    /// The `p`-quantile of one round's Δd over **all** recorded samples:
    /// exact R-7 on the raw vector whenever it retained every sample —
    /// including bounded-retention runs that never hit their threshold
    /// (`count <= k`) — and the sketch's bounded-error estimate only
    /// when samples were actually truncated away.
    ///
    /// Returns `NaN` when the round has no samples (e.g. every probe of
    /// a datagram cell was lost); it never panics. Report renderers map
    /// the `NaN` to JSON `null` / an empty CSV field.
    pub fn quantile(&self, round: u8, p: f64) -> f64 {
        let raw = match round {
            1 => &self.d1,
            _ => &self.d2,
        };
        if let Some(sk) = &self.sketches {
            let sketch = match round {
                1 => &sk.d1,
                _ => &sk.d2,
            };
            if sketch.count() > raw.len() as u64 {
                return sketch.quantile(p);
            }
        }
        if raw.is_empty() {
            return f64::NAN;
        }
        let mut sorted = raw.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        bnm_stats::summary::quantile(&sorted, p)
    }

    /// Median Δd of one round over all recorded samples.
    pub fn median(&self, round: u8) -> f64 {
        self.quantile(round, 0.5)
    }
}

/// The outcome of one cell.
#[derive(Debug, Clone, Default)]
pub struct CellResult {
    /// Δd of the first round per repetition, ms — **session 0 only** (the
    /// traced/reference client), which in the single-client testbed is
    /// everything. Per-session sets live in [`CellResult::sessions`].
    pub d1: Vec<f64>,
    /// Δd of the second round per repetition, ms (session 0 only).
    pub d2: Vec<f64>,
    /// Full per-round measurements (every session, rep order, ascending
    /// session id within a rep).
    pub measurements: Vec<RoundMeasurement>,
    /// Repetitions that failed (incomplete session or match error).
    pub failures: u32,
    /// Rounds excluded because a probe marker was retransmitted or
    /// duplicated on the wire (the paper's §3 exclusion rule). These
    /// rounds contribute to neither `d1`/`d2` nor `measurements`.
    pub excluded_rounds: u32,
    /// Per-repetition traces, rep order. Empty unless the cell was run
    /// with [`ExperimentCell::trace`] set.
    pub traces: Vec<TraceData>,
    /// Per-round Δd attributions, rep order. Empty unless traced.
    pub attributions: Vec<RoundAttribution>,
    /// Per-session sample sets, ascending session id. A single-client
    /// cell has exactly one entry (session 0) mirroring `d1`/`d2`.
    pub sessions: Vec<SessionSamples>,
    /// Server-access-link queue telemetry over all repetitions: drops
    /// sum, queue-depth peaks max.
    pub link: LinkReport,
}

/// One repetition's full outcome: the measurements plus — when the cell
/// asked for tracing — the recorded trace and its Δd attribution.
#[derive(Debug, Clone)]
pub struct RepOutcome {
    /// Both rounds' measurements, every session.
    pub measurements: Vec<RoundMeasurement>,
    /// The repetition's trace (`None` when tracing was off).
    pub trace: Option<TraceData>,
    /// One attribution row per measured round (empty when untraced).
    pub attribution: Vec<RoundAttribution>,
    /// Rounds of this repetition excluded for wire retransmissions,
    /// summed over sessions.
    pub excluded: u32,
    /// The exclusion count broken down by session id (ascending).
    pub excluded_by_session: Vec<(u64, u32)>,
    /// Per-session datagram statistics (ascending session id). Empty
    /// for reliable-transport methods.
    pub datagram: Vec<(u64, DatagramSamples)>,
    /// Queue telemetry of the server's access link for this repetition.
    pub link: LinkReport,
}

impl CellResult {
    /// Both rounds' Δd pooled (session 0 only, like `d1`/`d2`).
    pub fn pooled(&self) -> Vec<f64> {
        let mut all = self.d1.clone();
        all.extend_from_slice(&self.d2);
        all
    }

    /// Δd samples for one round (1 or 2), session 0 only.
    pub fn round(&self, round: u8) -> Result<&[f64], RunError> {
        match round {
            1 => Ok(&self.d1),
            2 => Ok(&self.d2),
            other => Err(RunError::InvalidRound(other)),
        }
    }

    /// The sample set of one session, if that session ran in this cell.
    pub fn session(&self, id: u64) -> Option<&SessionSamples> {
        self.sessions
            .binary_search_by_key(&id, |s| s.session)
            .ok()
            .map(|i| &self.sessions[i])
    }

    /// The sample set of one session, created empty (in id order) on
    /// first touch — the merge path in [`crate::exec`].
    pub(crate) fn session_mut(&mut self, id: u64) -> &mut SessionSamples {
        match self.sessions.binary_search_by_key(&id, |s| s.session) {
            Ok(i) => &mut self.sessions[i],
            Err(i) => {
                self.sessions.insert(
                    i,
                    SessionSamples {
                        session: id,
                        ..SessionSamples::default()
                    },
                );
                &mut self.sessions[i]
            }
        }
    }

    /// Fold one repetition's outcome into this result — the incremental
    /// aggregation step shared by the executor's merge and anything
    /// replaying [`RepOutcome`]s (repetitions fold in ascending
    /// `(cell, rep)` order for bit-identical parallel/serial output).
    ///
    /// `retention` is the cell's
    /// [`crate::config::StreamingSpec::session_retention`]: `None`
    /// keeps every raw sample, `Some(k)` truncates raw vectors at `k`
    /// and sketches the full distribution instead.
    pub fn fold_outcome(&mut self, outcome: Result<RepOutcome, RunError>, retention: Option<u32>) {
        match outcome {
            Ok(rep) => {
                self.excluded_rounds += rep.excluded;
                self.link.merge(&rep.link);
                for (sid, excluded) in rep.excluded_by_session {
                    self.session_mut(sid).excluded_rounds += excluded;
                }
                for (sid, d) in rep.datagram {
                    self.session_mut(sid)
                        .datagram
                        .get_or_insert_with(DatagramSamples::default)
                        .merge(&d);
                }
                for m in rep.measurements {
                    let v = m.delta_d_ms();
                    // The flat d1/d2 sets stay session-0 only: they
                    // are the single-client API, and in a scenario
                    // session 0 is the reference client. Every
                    // session's samples land in `sessions`. Under a
                    // retention threshold they truncate like session
                    // 0's raw vectors (the full distribution is in
                    // its sketches).
                    if m.session == 0 {
                        let raw = match m.round {
                            1 => &mut self.d1,
                            _ => &mut self.d2,
                        };
                        let keep = match retention {
                            None => true,
                            Some(limit) => raw.len() < limit as usize,
                        };
                        if keep {
                            raw.push(v);
                        }
                    }
                    self.session_mut(m.session)
                        .push_round(m.round, v, retention);
                    // Bounded mode keeps the full per-round
                    // measurement rows only for the reference
                    // session; a crowd's worth of rows is exactly
                    // the O(sessions × reps) growth the mode bounds.
                    if retention.is_none() || m.session == 0 {
                        self.measurements.push(m);
                    }
                }
                if let Some(t) = rep.trace {
                    self.traces.push(t);
                }
                self.attributions.extend(rep.attribution);
            }
            Err(_) => self.failures += 1,
        }
    }

    /// Digest this batch result into the same [`ReportSnapshot`] shape
    /// the continuous monitor emits, as a single lifetime `"total"`
    /// window.
    ///
    /// The Δd digests cover the reference session (the flat
    /// `d1`/`d2` view, exact R-7 quantiles whenever the raw samples
    /// were fully retained, sketch-backed otherwise), while `samples`
    /// counts every session's folded samples. Serial and parallel runs
    /// of the same cell produce `==` snapshots.
    pub fn summary(&self, cell: &ExperimentCell) -> ReportSnapshot {
        let s0_sketches = self.session(0).and_then(|s| s.sketches.as_ref());
        let digest = |raw: &[f64], sketch: Option<&QuantileSketch>| -> (DistSummary, bool) {
            match sketch {
                // Sketch only when raw truncated samples away.
                Some(sk) if sk.count() > raw.len() as u64 => (DistSummary::of_sketch(sk), true),
                _ => (DistSummary::of_samples(raw), false),
            }
        };
        let (d1, d1_sketched) = digest(&self.d1, s0_sketches.map(|s| &s.d1));
        let (d2, d2_sketched) = digest(&self.d2, s0_sketches.map(|s| &s.d2));
        let sketched = d1_sketched || d2_sketched;
        let pooled = match (sketched, s0_sketches) {
            (true, Some(sk)) => {
                let mut both = sk.d1.clone();
                both.merge(&sk.d2);
                DistSummary::of_sketch(&both)
            }
            _ => DistSummary::of_samples(&self.pooled()),
        };
        let samples = if self.sessions.is_empty() {
            (self.d1.len() + self.d2.len()) as u64
        } else {
            self.sessions.iter().map(|s| s.count(1) + s.count(2)).sum()
        };
        let relative_error_bound = match (sketched, s0_sketches) {
            (true, Some(sk)) => sk.d1.relative_error_bound(),
            _ => 0.0,
        };
        ReportSnapshot {
            label: cell.label(),
            at_secs: 0.0,
            rounds: cell.reps as u64,
            samples,
            excluded_rounds: self.excluded_rounds as u64,
            failures: self.failures as u64,
            relative_error_bound,
            windows: vec![WindowReport {
                label: "total".into(),
                span_secs: None,
                rounds: cell.reps as u64,
                excluded_rounds: self.excluded_rounds as u64,
                failures: self.failures as u64,
                d1,
                d2,
                pooled,
            }],
            datagram: self
                .session(0)
                .and_then(|s| s.datagram.as_ref())
                .map(DatagramReport::of),
            link: Some(self.link),
        }
    }
}

/// Sessions below this threshold match serially in the batch path:
/// thread spin-up costs more than the matching itself for small
/// scenarios (and the single-client path never fans out at all).
const PARALLEL_MATCH_MIN_SESSIONS: usize = 16;

/// One session's matching work, drained out of its tap so worker
/// threads can own it.
struct SessionMatchItem {
    sid: u64,
    token: u64,
    rounds: Vec<bnm_browser::RoundResult>,
    records: Vec<CaptureRecord>,
}

/// Runs experiment cells.
pub struct ExperimentRunner;

impl ExperimentRunner {
    /// Execute one cell on all available cores.
    ///
    /// Returns [`RunError::Unrunnable`] when the runtime cannot execute
    /// the method (Table 2); per-repetition failures are *not* errors —
    /// they are counted in [`CellResult::failures`], as in the paper's
    /// wall-clock runs. Output is bit-identical to a serial loop over
    /// [`ExperimentRunner::run_rep`] regardless of core count.
    pub fn try_run(cell: &ExperimentCell) -> Result<CellResult, RunError> {
        Executor::new()
            .run(std::slice::from_ref(cell))
            .pop()
            // One input cell always yields exactly one result slot.
            .expect("executor returns one result per cell")
    }

    /// One repetition: fresh testbed, run, capture-match both rounds.
    ///
    /// Honours [`ExperimentCell::trace`] but discards the trace; use
    /// [`ExperimentRunner::run_rep_traced`] to keep it.
    pub fn run_rep(cell: &ExperimentCell, rep: u32) -> Result<Vec<RoundMeasurement>, RunError> {
        Self::run_rep_traced(cell, rep).map(|o| o.measurements)
    }

    /// One repetition, returning measurements *and* — when the cell has
    /// tracing on — the trace and its per-round Δd attribution.
    ///
    /// Tracing does not perturb the measurement: the session draws its
    /// random delays in the same order either way, so a traced rep
    /// reports bit-identical Δd to an untraced one.
    pub fn run_rep_traced(cell: &ExperimentCell, rep: u32) -> Result<RepOutcome, RunError> {
        let profile = Self::try_profile(cell)?;
        if !cell.method.available_in(&profile) {
            return Err(RunError::unrunnable(cell));
        }
        if cell.clients > 1 {
            return Self::run_rep_scenario(cell, rep, profile);
        }
        // All repetitions of a cell run on the *same machine*, a few
        // seconds apart: one timer-regime timeline, sampled at increasing
        // offsets. This is what makes a 50-rep Windows cell sit inside
        // one granularity regime (two discrete Δd levels, Figure 4) or
        // straddle a regime change — exactly like the paper's wall-clock
        // sessions. The timeline itself differs per cell (seed mixes in
        // the cell label), the way different experiment sessions landed
        // on different afternoons.
        let machine_seed = rng::derive_seed(cell.seed, &format!("machine.{}", cell.label()));
        let machine = MachineTimer::new(cell.os, machine_seed)
            .at_offset(bnm_sim::time::SimDuration::from_secs(4).saturating_mul(u64::from(rep)));
        let session_seed = rng::derive_seed(cell.seed, &format!("session.{}", cell.label()));
        let tb_cfg = TestbedConfig {
            server_delay: cell.server_delay,
            capture_noise_ns: cell.capture_noise_ns,
            seed: rng::derive_seed(cell.seed, "capture"),
            impairment: cell.impairment,
            server_shape: cell.link_shape.clone(),
            ..TestbedConfig::default()
        };
        let plan = cell.method.plan(cell.timing_override);
        let plan_rounds = plan.rounds;
        let trace = if cell.trace {
            Trace::enabled()
        } else {
            Trace::disabled()
        };
        let mut tb = Testbed::build_traced(
            &tb_cfg,
            plan,
            profile,
            machine,
            u64::from(rep),
            session_seed ^ u64::from(rep),
            trace,
        );
        let token = u64::from(rep);
        let is_datagram = cell.method.is_datagram();
        // Datagram appraisal needs full stamps from *both* taps (one-way
        // delays come from the mid-path view), which the marker sinks do
        // not retain — datagram cells always parse batch-style.
        let streaming = cell.streaming.stream_captures && !is_datagram;
        if streaming {
            // Streaming mode: marker sinks consume every record at
            // capture time (identically stamped and truncated to what a
            // retaining tap would store), so frames recycle through the
            // pool mid-run instead of pinning until the parse below.
            Self::install_sinks(
                &mut tb.engine,
                std::slice::from_ref(&tb.client_tap),
                tb.server_tap,
                cell,
                plan_rounds,
                &[token],
            );
        }
        tb.run();
        let link = Self::read_link_report(&tb.engine, tb.server_link, tb.server, tb.switch);
        let session = tb.session();
        if !session.result().completed {
            return Err(RunError::Match(MatchError::ResponseNotFound));
        }
        let rounds = session.result().rounds.clone();
        let mut out = Vec::with_capacity(rounds.len());
        let mut excluded = 0u32;
        let mut datagram = Vec::new();
        if streaming {
            let client_sink = Self::take_session_sink(&mut tb.engine, tb.client_tap);
            let server_index = Self::take_server_index(&mut tb.engine, tb.server_tap);
            Self::fold_streamed_session(
                0,
                token,
                &rounds,
                &*client_sink,
                server_index.as_deref(),
                &mut out,
                &mut excluded,
            )?;
        } else if is_datagram {
            // Per-probe appraisal from both taps: the server view is
            // mandatory even on a clean network — it carries the
            // mid-path stamps the one-way delays are computed from.
            let parsed = ParsedCapture::parse(tb.engine.tap(tb.client_tap));
            let server_parsed = ParsedCapture::parse(tb.engine.tap(tb.server_tap));
            let d = Self::fold_datagram_session(
                cell.method,
                plan_rounds,
                token,
                0,
                &rounds,
                &parsed,
                &server_parsed,
                &mut out,
            );
            datagram.push((0, d));
        } else {
            // Parse each capture once; every round then matches against
            // the pre-parsed records instead of re-decoding the whole
            // trace.
            let parsed = ParsedCapture::parse(tb.engine.tap(tb.client_tap));
            // The server-side capture only matters when the network can
            // lose frames: a response dropped downstream leaves the
            // client-side trace looking clean (one Tx, one Rx) while the
            // server's NIC saw the response leave twice. Clean cells
            // skip the parse.
            let server_parsed = (!cell.impairment.is_clean())
                .then(|| ParsedCapture::parse(tb.engine.tap(tb.server_tap)));
            for r in rounds {
                let wire = match parsed.match_round(cell.method, r.round, token) {
                    Err(MatchError::Retransmitted) => {
                        excluded += 1;
                        continue;
                    }
                    other => other?,
                };
                if server_parsed
                    .as_ref()
                    .is_some_and(|sp| sp.round_retransmitted(cell.method, r.round, token))
                {
                    excluded += 1;
                    continue;
                }
                out.push(RoundMeasurement {
                    session: 0,
                    round: r.round,
                    browser: r,
                    wire,
                });
            }
        }
        let trace = tb.take_trace();
        let attribution = match &trace {
            Some(t) => attribution::attribute(t, &out, rep)?,
            None => Vec::new(),
        };
        Ok(RepOutcome {
            measurements: out,
            trace,
            attribution,
            excluded,
            excluded_by_session: vec![(0, excluded)],
            datagram,
            link,
        })
    }

    /// One repetition of a multi-client cell: one [`Scenario`] of
    /// `cell.clients` sessions, every session running the cell's method
    /// concurrently against the shared server; each session's capture is
    /// matched independently through its composite marker token.
    ///
    /// Session 0's seed streams derive from exactly the labels the
    /// single-client path uses, so the reference client is the *same
    /// client* across client counts — only its competition changes.
    /// Sessions 1.. derive from `".s{id}"`-suffixed labels.
    fn run_rep_scenario(
        cell: &ExperimentCell,
        rep: u32,
        profile: BrowserProfile,
    ) -> Result<RepOutcome, RunError> {
        let label = cell.label();
        let mut tb_cfg = TestbedConfig {
            server_delay: cell.server_delay,
            capture_noise_ns: cell.capture_noise_ns,
            seed: rng::derive_seed(cell.seed, "capture"),
            impairment: cell.impairment,
            server_shape: cell.link_shape.clone(),
            ..TestbedConfig::default()
        };
        if let Some(rate) = cell.server_link_rate_bps {
            tb_cfg.server_link = bnm_sim::link::LinkSpec {
                rate_bps: rate,
                ..bnm_sim::link::LinkSpec::fast_ethernet()
            };
        }
        let plan = cell.method.plan(cell.timing_override);
        let plan_rounds = plan.rounds;
        let specs = (0..u64::from(cell.clients))
            .map(|sid| {
                let suffix = if sid == 0 {
                    String::new()
                } else {
                    format!(".s{sid}")
                };
                let machine_seed = rng::derive_seed(cell.seed, &format!("machine.{label}{suffix}"));
                let machine = MachineTimer::new(cell.os, machine_seed).at_offset(
                    bnm_sim::time::SimDuration::from_secs(4).saturating_mul(u64::from(rep)),
                );
                let session_seed = rng::derive_seed(cell.seed, &format!("session.{label}{suffix}"));
                SessionSpec {
                    id: sid,
                    plan: plan.clone(),
                    profile: profile.clone(),
                    machine,
                    seed: session_seed ^ u64::from(rep),
                }
            })
            .collect();
        let trace = if cell.trace {
            Trace::enabled()
        } else {
            Trace::disabled()
        };
        let mut sc = Scenario::build_traced(&tb_cfg, specs, u64::from(rep), trace);
        let is_datagram = cell.method.is_datagram();
        let streaming = cell.streaming.stream_captures && !is_datagram;
        if streaming {
            let tokens: Vec<u64> = (0..sc.len())
                .map(|i| bnm_browser::session_token(sc.session_id(i), u64::from(rep)))
                .collect();
            Self::install_sinks(
                &mut sc.engine,
                &sc.client_taps,
                sc.server_tap,
                cell,
                plan_rounds,
                &tokens,
            );
        }
        sc.run();
        let link = Self::read_link_report(&sc.engine, sc.server_link, sc.server, sc.switch);
        for i in 0..sc.len() {
            if !sc.session(i).result().completed {
                return Err(RunError::Match(MatchError::ResponseNotFound));
            }
        }
        let mut out = Vec::new();
        let mut excluded_total = 0u32;
        let mut excluded_by_session = Vec::with_capacity(sc.len());
        let mut datagram = Vec::new();
        if streaming {
            let server_index = Self::take_server_index(&mut sc.engine, sc.server_tap);
            for i in 0..sc.len() {
                let sid = sc.session_id(i);
                let token = bnm_browser::session_token(sid, u64::from(rep));
                let rounds = sc.session(i).result().rounds.clone();
                let client_sink = Self::take_session_sink(&mut sc.engine, sc.client_taps[i]);
                let mut excluded = 0u32;
                Self::fold_streamed_session(
                    sid,
                    token,
                    &rounds,
                    &*client_sink,
                    server_index.as_deref(),
                    &mut out,
                    &mut excluded,
                )?;
                excluded_total += excluded;
                excluded_by_session.push((sid, excluded));
            }
        } else {
            // Batch path: drain every session's records out of its tap
            // (owned records are `Send`; a whole engine is not) and
            // match sessions independently — in parallel when the crowd
            // is big enough to pay for the threads. Results fold in
            // ascending session order, and a session's first match error
            // is reported exactly where the serial loop would have
            // stopped, so output is bit-identical to serial matching.
            let server_parsed = (is_datagram || !cell.impairment.is_clean())
                .then(|| ParsedCapture::parse(sc.engine.tap(sc.server_tap)));
            let mut items: Vec<SessionMatchItem> = (0..sc.len())
                .map(|i| {
                    let sid = sc.session_id(i);
                    SessionMatchItem {
                        sid,
                        token: bnm_browser::session_token(sid, u64::from(rep)),
                        rounds: sc.session(i).result().rounds.clone(),
                        records: Vec::new(),
                    }
                })
                .collect();
            for (i, item) in items.iter_mut().enumerate() {
                item.records = sc.engine.tap_mut(sc.client_taps[i]).drain();
            }
            let workers = Self::match_worker_count(cell, items.len());
            let matched = crate::exec::fan_out(items, workers, |_, item| {
                Self::match_session(cell, plan_rounds, item, server_parsed.as_ref())
            });
            for res in matched {
                let (sid, measurements, excluded, dgram) = res?;
                excluded_total += excluded;
                excluded_by_session.push((sid, excluded));
                if let Some(d) = dgram {
                    datagram.push((sid, d));
                }
                out.extend(measurements);
            }
        }
        let trace = sc.take_trace();
        let attribution = match &trace {
            Some(t) => {
                // Only session 0 is traced (see `Scenario::build_traced`):
                // its rounds are the only ones the spans can explain.
                let session0: Vec<RoundMeasurement> =
                    out.iter().copied().filter(|m| m.session == 0).collect();
                attribution::attribute(t, &session0, rep)?
            }
            None => Vec::new(),
        };
        Ok(RepOutcome {
            measurements: out,
            trace,
            attribution,
            excluded: excluded_total,
            excluded_by_session,
            datagram,
            link,
        })
    }

    /// Read the server access link's queue gauges off a finished engine:
    /// downstream is the direction the server transmits, upstream the
    /// switch's side of the same link.
    fn read_link_report(
        engine: &bnm_sim::Engine,
        link: bnm_sim::LinkId,
        server: bnm_sim::NodeId,
        switch: bnm_sim::NodeId,
    ) -> LinkReport {
        LinkReport {
            down_queue_drops: engine.queue_drops(link, server),
            up_queue_drops: engine.queue_drops(link, switch),
            down_queue_peak_bytes: engine.queue_peak_bytes(link, server) as u64,
            up_queue_peak_bytes: engine.queue_peak_bytes(link, switch) as u64,
        }
    }

    /// Install streaming marker sinks on a run's taps before it starts:
    /// one [`SessionMarkerSink`] per client tap (paired with that
    /// session's marker token) and, on the server tap, a
    /// [`ServerMarkerIndex`] when the network can retransmit or a
    /// [`DiscardSink`] on a clean network (whose server capture the
    /// batch path never parses either).
    fn install_sinks(
        engine: &mut bnm_sim::Engine,
        client_taps: &[bnm_sim::TapId],
        server_tap: bnm_sim::TapId,
        cell: &ExperimentCell,
        rounds: u8,
        tokens: &[u64],
    ) {
        for (&tap, &token) in client_taps.iter().zip(tokens) {
            engine
                .tap_mut(tap)
                .set_sink(Box::new(SessionMarkerSink::new(cell.method, rounds, token)));
        }
        let server_sink: Box<dyn CaptureSink> = if cell.impairment.is_clean() {
            Box::new(DiscardSink::default())
        } else {
            Box::new(ServerMarkerIndex::new(cell.method, rounds, tokens))
        };
        engine.tap_mut(server_tap).set_sink(server_sink);
    }

    /// Remove the streaming sink from a client tap after the run.
    fn take_session_sink(
        engine: &mut bnm_sim::Engine,
        tap: bnm_sim::TapId,
    ) -> Box<dyn CaptureSink> {
        engine
            .tap_mut(tap)
            .take_sink()
            .expect("streaming client tap carries a sink")
    }

    /// Remove the server tap's sink; `Some` when it is the impaired-run
    /// marker index, `None` for the clean-run discard sink.
    fn take_server_index(
        engine: &mut bnm_sim::Engine,
        tap: bnm_sim::TapId,
    ) -> Option<Box<dyn CaptureSink>> {
        let sink = engine
            .tap_mut(tap)
            .take_sink()
            .expect("streaming server tap carries a sink");
        sink.as_any()
            .downcast_ref::<ServerMarkerIndex>()
            .is_some()
            .then_some(sink)
    }

    /// Replay one streamed session's rounds from its sink's accumulated
    /// marker evidence — the same checks in the same order as
    /// [`ParsedCapture::match_round`] plus the server-side
    /// retransmission rule, appending measurements and counting
    /// exclusions exactly like the batch loop.
    fn fold_streamed_session(
        sid: u64,
        token: u64,
        rounds: &[bnm_browser::RoundResult],
        client_sink: &dyn CaptureSink,
        server_index: Option<&dyn CaptureSink>,
        out: &mut Vec<RoundMeasurement>,
        excluded: &mut u32,
    ) -> Result<(), RunError> {
        let sink = client_sink
            .as_any()
            .downcast_ref::<SessionMarkerSink>()
            .expect("client tap sink is a SessionMarkerSink");
        let index = server_index.map(|s| {
            s.as_any()
                .downcast_ref::<ServerMarkerIndex>()
                .expect("server tap sink is a ServerMarkerIndex")
        });
        for r in rounds {
            let wire = match sink.match_round(r.round) {
                Err(MatchError::Retransmitted) => {
                    *excluded += 1;
                    continue;
                }
                other => other?,
            };
            if index.is_some_and(|ix| ix.round_retransmitted(r.round, token)) {
                *excluded += 1;
                continue;
            }
            out.push(RoundMeasurement {
                session: sid,
                round: r.round,
                browser: *r,
                wire,
            });
        }
        Ok(())
    }

    /// Worker threads for batch-path session matching: the explicit
    /// override when set, else parallel only once a repetition has
    /// enough sessions for thread spin-up to pay for itself.
    fn match_worker_count(cell: &ExperimentCell, sessions: usize) -> usize {
        match cell.streaming.match_workers {
            Some(n) => n,
            None => {
                if sessions >= PARALLEL_MATCH_MIN_SESSIONS {
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1)
                } else {
                    1
                }
            }
        }
    }

    /// Match one session's drained records: parse once, match every
    /// round, apply the server-side retransmission rule. Stops at the
    /// session's first hard error, exactly like the serial loop.
    /// Datagram methods take the per-probe path instead and never
    /// exclude rounds.
    fn match_session(
        cell: &ExperimentCell,
        plan_rounds: u8,
        item: SessionMatchItem,
        server_parsed: Option<&ParsedCapture>,
    ) -> Result<(u64, Vec<RoundMeasurement>, u32, Option<DatagramSamples>), RunError> {
        let parsed = ParsedCapture::parse_records(&item.records);
        if cell.method.is_datagram() {
            let server = server_parsed.expect("datagram matching always parses the server tap");
            let mut out = Vec::new();
            let d = Self::fold_datagram_session(
                cell.method,
                plan_rounds,
                item.token,
                item.sid,
                &item.rounds,
                &parsed,
                server,
                &mut out,
            );
            return Ok((item.sid, out, 0, Some(d)));
        }
        let mut out = Vec::with_capacity(item.rounds.len());
        let mut excluded = 0u32;
        for r in item.rounds {
            let wire = match parsed.match_round(cell.method, r.round, item.token) {
                Err(MatchError::Retransmitted) => {
                    excluded += 1;
                    continue;
                }
                other => other?,
            };
            if server_parsed
                .is_some_and(|sp| sp.round_retransmitted(cell.method, r.round, item.token))
            {
                excluded += 1;
                continue;
            }
            out.push(RoundMeasurement {
                session: item.sid,
                round: r.round,
                browser: r,
                wire,
            });
        }
        Ok((item.sid, out, excluded, None))
    }

    /// Appraise one session's datagram train from both taps: score
    /// every probe's fate, emit a [`RoundMeasurement`] per delivered
    /// probe the browser saw (arrival order, so reordering stays
    /// visible downstream), and compute the repetition's RFC 3550
    /// jitter twice — from wire transit pairs and from the browser's
    /// own stamps.
    #[allow(clippy::too_many_arguments)]
    fn fold_datagram_session(
        method: bnm_methods::MethodId,
        train_len: u8,
        token: u64,
        sid: u64,
        rounds: &[bnm_browser::RoundResult],
        client: &ParsedCapture,
        server: &ParsedCapture,
        out: &mut Vec<RoundMeasurement>,
    ) -> DatagramSamples {
        let verdicts = match_datagram_train(client, server, method, train_len, token);
        let mut d = DatagramSamples {
            sent: u64::from(train_len),
            ..DatagramSamples::default()
        };
        for v in &verdicts {
            match v.status {
                ProbeStatus::Delivered => d.delivered += 1,
                ProbeStatus::LostUpstream => d.lost_upstream += 1,
                ProbeStatus::LostDownstream => d.lost_downstream += 1,
            }
            if v.duplicated {
                d.duplicated += 1;
            }
            if v.reordered {
                d.reordered += 1;
            }
            if let Some(owd) = v.owd_up_ms {
                d.owd_up_ms.push(owd);
            }
            if let Some(owd) = v.owd_down_ms {
                d.owd_down_ms.push(owd);
            }
        }
        // Δd rows: each delivered probe whose echo the browser stamped.
        // `rounds` is already in the order the script saw the echoes.
        for r in rounds {
            let verdict = r
                .round
                .checked_sub(1)
                .and_then(|i| verdicts.get(usize::from(i)));
            if let Some(wire) = verdict.and_then(|v| v.wire) {
                out.push(RoundMeasurement {
                    session: sid,
                    round: r.round,
                    browser: *r,
                    wire,
                });
            }
        }
        // Wire jitter: downstream transit pairs (echo leaves server,
        // echo reaches client) ordered by client arrival.
        let mut transit: Vec<(f64, f64)> = verdicts
            .iter()
            .filter_map(|v| {
                let arrive = v.wire?.tn_r.as_millis_f64();
                Some((arrive - v.owd_down_ms?, arrive))
            })
            .collect();
        transit.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("capture stamps are finite"));
        d.wire_jitter_ms
            .push(bnm_stats::jitter::rfc3550_transit_jitter(&transit));
        let browser_pairs: Vec<(f64, f64)> =
            rounds.iter().map(|r| (r.tb_s_ms, r.tb_r_ms)).collect();
        d.browser_jitter_ms
            .push(bnm_stats::jitter::rfc3550_transit_jitter(&browser_pairs));
        d
    }

    /// Resolve the runtime profile for a cell, or report why it cannot
    /// exist (browser absent on the OS).
    pub fn try_profile(cell: &ExperimentCell) -> Result<BrowserProfile, RunError> {
        let p = match cell.runtime {
            RuntimeSel::Browser(b) => {
                BrowserProfile::build(b, cell.os).ok_or_else(|| RunError::unrunnable(cell))?
            }
            RuntimeSel::AppletViewer => BrowserProfile::appletviewer(cell.os),
            RuntimeSel::MobileWebKit => BrowserProfile::mobile_webkit(),
        };
        Ok(if cell.fixed_safari_java {
            p.with_fixed_safari_java()
        } else {
            p
        })
    }

    /// Resolve the runtime profile for a cell.
    ///
    /// # Panics
    /// If the browser does not exist on the cell's OS; callers that have
    /// not checked [`ExperimentCell::is_runnable`] should prefer
    /// [`ExperimentRunner::try_profile`].
    pub fn profile(cell: &ExperimentCell) -> BrowserProfile {
        match Self::try_profile(cell) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnm_browser::BrowserKind;
    use bnm_methods::MethodId;
    use bnm_time::{OsKind, TimingApiKind};

    use crate::config::ContentionSpec;
    use crate::report::Render as _;

    fn small_cell(method: MethodId, browser: BrowserKind, os: OsKind) -> ExperimentCell {
        ExperimentCell::paper(method, RuntimeSel::Browser(browser), os).with_reps(10)
    }

    fn run(cell: &ExperimentCell) -> CellResult {
        ExperimentRunner::try_run(cell).unwrap()
    }

    #[test]
    fn xhr_cell_produces_full_samples() {
        let cell = small_cell(MethodId::XhrGet, BrowserKind::Chrome, OsKind::Ubuntu1204);
        let r = run(&cell);
        assert_eq!(r.failures, 0);
        assert_eq!(r.d1.len(), 10);
        assert_eq!(r.d2.len(), 10);
        assert_eq!(r.measurements.len(), 20);
        // HTTP overhead is positive and non-trivial but far below the
        // handshake regime.
        for &d in r.pooled().iter() {
            assert!(d > 0.0, "Δd {d}");
            assert!(d < 60.0, "Δd {d}");
        }
    }

    #[test]
    fn round_selects_or_reports() {
        let r = CellResult {
            d1: vec![1.0],
            d2: vec![2.0],
            ..CellResult::default()
        };
        assert_eq!(r.round(1).unwrap(), &[1.0]);
        assert_eq!(r.round(2).unwrap(), &[2.0]);
        assert_eq!(r.round(3), Err(RunError::InvalidRound(3)));
    }

    #[test]
    fn websocket_overhead_below_http() {
        let ws = run(&small_cell(
            MethodId::WebSocket,
            BrowserKind::Chrome,
            OsKind::Ubuntu1204,
        ));
        let xhr = run(&small_cell(
            MethodId::XhrGet,
            BrowserKind::Chrome,
            OsKind::Ubuntu1204,
        ));
        let med = |mut v: Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let ws_med = med(ws.pooled());
        let xhr_med = med(xhr.pooled());
        assert!(ws_med < xhr_med, "ws {ws_med} !< xhr {xhr_med}");
        assert!(ws_med < 2.0, "ws median {ws_med}");
    }

    #[test]
    fn opera_flash_d1_includes_handshake() {
        let cell = small_cell(MethodId::FlashGet, BrowserKind::Opera, OsKind::Windows7);
        let r = run(&cell);
        assert_eq!(r.failures, 0);
        let med = |v: &[f64]| {
            let mut s = v.to_vec();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        let d1 = med(&r.d1);
        let d2 = med(&r.d2);
        assert!(d1 > 85.0, "Δd1 median {d1}");
        assert!(d2 < 50.0, "Δd2 median {d2}");
        // Table 3's arithmetic: Δd1 − Δd2 ≈ the 50 ms handshake + init.
        assert!(d1 - d2 > 45.0);
    }

    #[test]
    fn network_rtt_is_close_to_fifty_ms() {
        let cell = small_cell(MethodId::JavaTcp, BrowserKind::Chrome, OsKind::Ubuntu1204);
        let r = run(&cell);
        for m in &r.measurements {
            let rtt = m.network_rtt_ms();
            assert!(rtt > 50.0 && rtt < 51.0, "wire rtt {rtt}");
        }
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let cell = small_cell(MethodId::Dom, BrowserKind::Firefox, OsKind::Ubuntu1204)
            .with_reps(5)
            .with_seed(77);
        let a = run(&cell);
        let b = run(&cell);
        assert_eq!(a.d1, b.d1);
        assert_eq!(a.d2, b.d2);
        let c = run(&cell.clone().with_seed(78));
        assert_ne!(a.d1, c.d1);
    }

    #[test]
    fn nanotime_removes_java_underestimation() {
        let base =
            small_cell(MethodId::JavaTcp, BrowserKind::Firefox, OsKind::Windows7).with_reps(16);
        let gettime = run(&base);
        let nano = run(&base.clone().with_timing(TimingApiKind::JavaNanoTime));
        let neg_gettime = gettime.pooled().iter().filter(|&&d| d < 0.0).count();
        let neg_nano = nano.pooled().iter().filter(|&&d| d < 0.0).count();
        assert!(
            neg_gettime > 0,
            "Date.getTime must under-estimate sometimes"
        );
        assert_eq!(neg_nano, 0, "nanoTime must never under-estimate");
        // And the nanoTime overhead is tiny.
        assert!(nano.pooled().iter().all(|&d| d < 1.0));
    }

    #[test]
    fn unrunnable_cell_reports_typed_error() {
        let cell = small_cell(MethodId::WebSocket, BrowserKind::Ie9, OsKind::Windows7);
        let err = ExperimentRunner::try_run(&cell).unwrap_err();
        assert_eq!(err, RunError::unrunnable(&cell));
        // run_rep refuses too — the executor is not the only guard.
        assert_eq!(
            ExperimentRunner::run_rep(&cell, 0).unwrap_err(),
            RunError::unrunnable(&cell)
        );
    }

    /// Tracing must be a pure observer: same Δd bit-for-bit, and the
    /// attribution must explain each round's Δd down to f64 rounding.
    #[test]
    fn traced_rep_matches_untraced_and_attributes_delta() {
        let plain =
            small_cell(MethodId::XhrGet, BrowserKind::Chrome, OsKind::Ubuntu1204).with_reps(3);
        let traced = plain.clone().with_trace();
        let a = run(&plain);
        let b = run(&traced);
        assert_eq!(a.d1, b.d1);
        assert_eq!(a.d2, b.d2);
        assert!(a.traces.is_empty() && a.attributions.is_empty());
        assert_eq!(b.traces.len(), 3);
        assert_eq!(b.attributions.len(), 6);
        for att in &b.attributions {
            assert!(
                att.residual_ms.abs() < 1e-3,
                "round {} residual {} ms",
                att.round,
                att.residual_ms
            );
        }
    }

    /// A multi-client cell keys every session's samples into
    /// `sessions`, keeps the flat `d1`/`d2` as session 0's view, and
    /// matches each session's probes from its own tap.
    #[test]
    fn contended_cell_keys_results_by_session() {
        let cell = small_cell(MethodId::XhrGet, BrowserKind::Chrome, OsKind::Ubuntu1204)
            .with_reps(3)
            .with_contention(ContentionSpec::clients(3));
        let r = run(&cell);
        assert_eq!(r.failures, 0);
        assert_eq!(r.sessions.len(), 3);
        for (i, s) in r.sessions.iter().enumerate() {
            assert_eq!(s.session, i as u64);
            assert_eq!(s.d1.len(), 3, "session {i} d1");
            assert_eq!(s.d2.len(), 3, "session {i} d2");
            assert!(s.pooled().iter().all(|&d| d > 0.0 && d < 60.0));
        }
        assert_eq!(r.d1, r.sessions[0].d1);
        assert_eq!(r.d2, r.sessions[0].d2);
        // 3 reps × 3 sessions × 2 rounds.
        assert_eq!(r.measurements.len(), 18);
    }

    /// The single-client path reports exactly one session entry that
    /// mirrors the flat sample sets.
    #[test]
    fn single_client_cell_has_one_session_entry() {
        let cell =
            small_cell(MethodId::XhrGet, BrowserKind::Chrome, OsKind::Ubuntu1204).with_reps(4);
        let r = run(&cell);
        assert_eq!(r.sessions.len(), 1);
        assert_eq!(r.sessions[0].session, 0);
        assert_eq!(r.sessions[0].d1, r.d1);
        assert_eq!(r.sessions[0].d2, r.d2);
        assert_eq!(r.sessions[0].excluded_rounds, r.excluded_rounds);
    }

    /// A traced multi-client rep still attributes the reference
    /// session's Δd down to rounding: the other sessions' frames cross
    /// the same switch but must not leak into session 0's components.
    #[test]
    fn traced_contended_rep_attributes_session_zero() {
        let cell = small_cell(MethodId::XhrGet, BrowserKind::Chrome, OsKind::Ubuntu1204)
            .with_reps(2)
            .with_contention(ContentionSpec::clients(4))
            .with_trace();
        let r = run(&cell);
        assert_eq!(r.failures, 0);
        assert_eq!(r.traces.len(), 2);
        assert_eq!(r.attributions.len(), 4, "2 reps × 2 rounds, session 0");
        for att in &r.attributions {
            assert_eq!(att.session, 0);
            assert!(
                att.residual_ms.abs() < 1e-3,
                "round {} residual {} ms",
                att.round,
                att.residual_ms
            );
        }
    }

    /// A clean-network WebRTC cell delivers the whole train, appraises
    /// every probe individually, and its per-probe metrics match the
    /// wire-truth capture counts exactly.
    #[test]
    fn webrtc_cell_appraises_every_probe() {
        let cell =
            small_cell(MethodId::WebRtc, BrowserKind::Chrome, OsKind::Ubuntu1204).with_reps(4);
        let r = run(&cell);
        assert_eq!(r.failures, 0);
        assert_eq!(r.excluded_rounds, 0, "datagram cells never exclude");
        // 16 probes per rep: probe 1 lands in d1, probes 2..=16 in d2.
        assert_eq!(r.d1.len(), 4);
        assert_eq!(r.d2.len(), 4 * 15);
        assert_eq!(r.measurements.len(), 4 * 16);
        let d = r.sessions[0].datagram.as_ref().unwrap();
        assert_eq!(d.sent, 64);
        assert_eq!(d.delivered, 64);
        assert_eq!(
            d.lost_upstream + d.lost_downstream + d.duplicated + d.reordered,
            0
        );
        assert_eq!(d.owd_up_ms.len(), 64);
        assert_eq!(d.owd_down_ms.len(), 64);
        // One-way legs sum to the ~50 ms wire RTT per probe.
        for (up, down) in d.owd_up_ms.iter().zip(&d.owd_down_ms) {
            assert!(*up > 0.0 && *down > 0.0, "owd {up}/{down}");
            let rtt = up + down;
            assert!(rtt > 50.0 && rtt < 51.0, "owd sum {rtt}");
        }
        // One jitter sample per rep, from each estimator.
        assert_eq!(d.wire_jitter_ms.len(), 4);
        assert_eq!(d.browser_jitter_ms.len(), 4);
        for &j in &d.wire_jitter_ms {
            assert!((0.0..2.0).contains(&j), "wire jitter {j}");
        }
        // Date.getTime quantization can shave a fraction of a ms off the
        // browser RTT, so Δd may dip slightly negative — but overhead
        // stays far below the handshake regime.
        for &dd in &r.pooled() {
            assert!(dd > -1.5 && dd < 60.0, "Δd {dd}");
        }
        // The snapshot carries the datagram digest through Render.
        let snap = r.summary(&cell);
        let dg = snap.datagram.as_ref().unwrap();
        assert_eq!(dg.sent, 64);
        assert!((dg.loss_rate()).abs() < 1e-12);
        assert!(snap.to_json().contains("\"datagram\": {"));
        assert!(snap.to_csv().contains("owd_up"));
    }

    /// Under loss, WebRTC probes that vanish become the loss statistic —
    /// failures stay zero (the DCEP handshake retransmits) and the Δd
    /// sample count equals the wire-truth delivered count.
    #[test]
    fn webrtc_loss_is_measured_not_excluded() {
        let cell = small_cell(MethodId::WebRtc, BrowserKind::Chrome, OsKind::Ubuntu1204)
            .with_reps(6)
            .with_seed(11)
            .with_impairment(crate::Impairment::loss(0.15));
        let r = run(&cell);
        assert_eq!(r.failures, 0, "handshake must survive loss");
        assert_eq!(r.excluded_rounds, 0);
        let d = r.sessions[0].datagram.as_ref().unwrap();
        assert_eq!(d.sent, 6 * 16);
        assert_eq!(
            d.delivered + d.lost_upstream + d.lost_downstream,
            d.sent,
            "every probe is accounted for"
        );
        assert!(d.delivered < d.sent, "15% loss must bite at this seed");
        // Wire-truth count exactness: one Δd row per delivered probe.
        assert_eq!(r.measurements.len() as u64, d.delivered);
        assert_eq!(d.owd_down_ms.len() as u64, d.delivered);
    }

    /// Determinism holds for the datagram path too.
    #[test]
    fn webrtc_same_seed_same_result() {
        let cell = small_cell(MethodId::WebRtc, BrowserKind::Chrome, OsKind::Ubuntu1204)
            .with_reps(3)
            .with_seed(5)
            .with_impairment(crate::Impairment::loss(0.05));
        let a = run(&cell);
        let b = run(&cell);
        assert_eq!(a.d1, b.d1);
        assert_eq!(a.d2, b.d2);
        assert_eq!(a.sessions[0].datagram, b.sessions[0].datagram);
    }

    /// Traced WebRTC reps attribute every delivered probe's Δd down to
    /// rounding — the <1 µs closure criterion, per probe.
    #[test]
    fn traced_webrtc_rep_attributes_per_probe() {
        let cell = small_cell(MethodId::WebRtc, BrowserKind::Chrome, OsKind::Ubuntu1204)
            .with_reps(2)
            .with_trace();
        let r = run(&cell);
        assert_eq!(r.failures, 0);
        assert_eq!(r.traces.len(), 2);
        assert_eq!(r.attributions.len(), 2 * 16);
        for att in &r.attributions {
            assert!(
                att.residual_ms.abs() < 1e-3,
                "probe {} residual {} ms",
                att.round,
                att.residual_ms
            );
        }
    }

    /// Empty sample sets answer quantile queries with NaN, never a
    /// panic — the zero-delivered-probe cell must render cleanly.
    #[test]
    fn empty_session_quantiles_are_nan_not_panic() {
        let s = SessionSamples::default();
        assert!(s.quantile(1, 0.5).is_nan());
        assert!(s.median(2).is_nan());
        assert_eq!(s.count(1), 0);
        // A cell whose every rep failed still summarises and renders.
        let r = CellResult {
            failures: 4,
            ..CellResult::default()
        };
        let cell = small_cell(MethodId::WebRtc, BrowserKind::Chrome, OsKind::Ubuntu1204);
        let snap = r.summary(&cell);
        assert_eq!(snap.total().pooled.count, 0);
        assert!(snap.verdict().is_none());
        let csv = r.summary(&cell).to_csv();
        assert!(!csv.contains("nan"), "NaN must not leak into CSV: {csv}");
    }

    /// An unrunnable Table 2 hole reports `Unrunnable` rather than
    /// producing an empty result.
    #[test]
    fn unrunnable_cell_reports_error() {
        let cell = small_cell(MethodId::WebSocket, BrowserKind::Ie9, OsKind::Windows7);
        assert!(matches!(
            ExperimentRunner::try_run(&cell),
            Err(crate::error::RunError::Unrunnable { .. })
        ));
    }
}
