//! # bnm-core — the delay-accuracy appraisal library
//!
//! This crate is the paper's primary contribution, made executable: a
//! methodology for **quantifying the delay overhead** browser-based RTT
//! measurement adds, and for judging which methods are calibratable.
//!
//! The pipeline mirrors Section 3 of the paper exactly:
//!
//! 1. [`testbed`] builds the two-machine testbed of Figure 2 (hosts,
//!    switch, 100 Mbps links, the 50 ms netem delay on the server side,
//!    and a WinDump-style capture tap at the client's NIC).
//! 2. [`runner`] executes one experiment *cell* — (method × runtime × OS,
//!    repeated 50 times, two rounds each) — each repetition in a fresh
//!    simulation with its own seeded noise streams.
//! 3. [`matching`] recovers the ground-truth timestamps `tN_s`/`tN_r` by
//!    **parsing the captured packets** (Ethernet/IPv4/TCP/UDP) and
//!    locating the probe markers, never by asking the simulator.
//! 4. [`delta`] computes `Δd = (tB_r − tB_s) − (tN_r − tN_s)` (Eq. 1).
//! 5. [`appraisal`] turns the 50-sample sets into the paper's statistics
//!    (Tukey boxes, CDFs, mean ± 95% CI) and into trueness/precision
//!    verdicts; [`calibration`] derives per-cell calibration offsets;
//!    [`impact`] quantifies the jitter/throughput distortion of §2.2;
//!    [`recommend`] codifies the practical considerations of §5.
//! 6. [`server_side`] is the §7 extension: the same appraisal applied to
//!    the server's own processing overhead.
//!
//! Execution is fallible and parallel by default: [`exec::Executor`]
//! schedules `(cell × rep)` work units over `available_parallelism()`
//! work-stealing threads and merges deterministically, so results are
//! bit-identical to a serial run; [`error::RunError`] is the typed
//! error every `try_*` entry point reports instead of panicking.

pub mod appraisal;
pub mod attribution;
pub mod baseline;
pub mod battery;
pub mod calibration;
pub mod config;
pub mod delta;
pub mod error;
pub mod exec;
pub mod frames;
pub mod impact;
pub mod matching;
pub mod monitor;
pub mod recommend;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod server_side;
pub mod streaming;
pub mod sweep;
pub mod testbed;
pub mod throughput;

pub use appraisal::{Appraisal, Verdict};
pub use attribution::RoundAttribution;
pub use battery::{
    run_battery, BatteryConfig, BatteryEntry, BatteryReport, BatteryScenario, ScenarioOutcome,
};
pub use bnm_sim::{FaultSpec, Impairment, LinkDynamics, LinkShape, QueueDiscipline, RateSchedule};
pub use config::{CellBuilder, ContentionSpec, ExperimentCell, RuntimeSel, StreamingSpec};
pub use delta::RoundMeasurement;
pub use error::RunError;
pub use exec::{ExecStats, Executor, Progress};
pub use matching::{MatchError, ParsedCapture, ProbeStatus, ProbeVerdict};
pub use monitor::{Monitor, MonitorConfig, MonitorFootprint};
pub use report::{
    DistSummary, LinkReport, Render, ReportFormat, ReportSnapshot, Table, TraceReport, Value,
    WindowReport,
};
pub use runner::{CellResult, ExperimentRunner, RepOutcome, SessionSamples};
pub use scenario::{Scenario, ScenarioBuilder, SessionSpec};
pub use streaming::{DiscardSink, ServerMarkerIndex, SessionMarkerSink};
pub use testbed::{Testbed, TestbedBuilder, TestbedConfig};
