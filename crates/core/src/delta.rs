//! Eq. 1 of the paper: `Δd = (tB_r − tB_s) − (tN_r − tN_s)`.

use bnm_browser::RoundResult;

use crate::matching::WireTimes;

/// One round's browser-level and network-level timestamps combined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundMeasurement {
    /// Session id within the scenario that measured this round (0 in the
    /// single-client testbed).
    pub session: u64,
    /// Round number (1 or 2).
    pub round: u8,
    /// Browser-level timestamps (through the timing API, ms).
    pub browser: RoundResult,
    /// Ground-truth wire timestamps from the capture.
    pub wire: WireTimes,
}

impl RoundMeasurement {
    /// The browser-level RTT, ms.
    pub fn browser_rtt_ms(&self) -> f64 {
        self.browser.browser_rtt_ms()
    }

    /// The network RTT from the capture, ms.
    pub fn network_rtt_ms(&self) -> f64 {
        self.wire.tn_r.signed_millis_since(self.wire.tn_s)
    }

    /// The paper's Eq. 1: the delay overhead, ms. Negative values mean
    /// the browser *under-estimated* the RTT (§4.2's artifact).
    pub fn delta_d_ms(&self) -> f64 {
        self.browser_rtt_ms() - self.network_rtt_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnm_sim::time::SimTime;

    fn meas(tb_s: f64, tb_r: f64, tn_s_ms: u64, tn_r_us: u64) -> RoundMeasurement {
        RoundMeasurement {
            session: 0,
            round: 1,
            browser: RoundResult {
                round: 1,
                tb_s_ms: tb_s,
                tb_r_ms: tb_r,
                opened_new_connection: false,
            },
            wire: WireTimes {
                tn_s: SimTime::from_millis(tn_s_ms),
                tn_r: SimTime::from_micros(tn_r_us),
            },
        }
    }

    #[test]
    fn positive_overhead() {
        // Browser saw 55 ms; wire saw 50.2 ms → Δd = 4.8.
        let m = meas(1000.0, 1055.0, 10, 60_200);
        assert!((m.delta_d_ms() - 4.8).abs() < 1e-9);
        assert!((m.network_rtt_ms() - 50.2).abs() < 1e-9);
    }

    #[test]
    fn negative_overhead_possible() {
        // Quantized browser clock read 47 ms for a 50.2 ms wire RTT.
        let m = meas(1000.0, 1047.0, 10, 60_200);
        assert!(m.delta_d_ms() < 0.0);
        assert!((m.delta_d_ms() + 3.2).abs() < 1e-9);
    }

    #[test]
    fn zero_overhead_when_equal() {
        let m = meas(0.0, 50.0, 0, 50_000);
        assert_eq!(m.delta_d_ms(), 0.0);
    }
}
