//! Δd attribution: decompose Eq. 1's overhead into named components.
//!
//! For one measured round, `Δd = (tB_r − tB_s) − (tN_r − tN_s)`. The
//! browser interval `[T_s, T_r]` (in virtual time) is fully covered by
//! the component-tagged spans the session, TCP stack and profile paths
//! emit, plus the wire interval `[tN_s, tN_r]` itself — the host stack
//! is instantaneous in virtual time, the request leaves the instant the
//! send path ends, and the probe response completes the instant its
//! single segment arrives. So, exactly in integer nanoseconds:
//!
//! ```text
//! (T_r − T_s) = Σ attributed spans + (tN_r − tN_s)
//! ```
//!
//! and therefore `Δd = Σ components + quantization + residual`, where
//! quantization is the browser-clock reading error
//! `(tB_r − tB_s) − (T_r − T_s)` and the residual is limited to f64
//! rounding (≪ 1 µs) for probe rounds on a noise-free capture.
//! Capture-timestamp noise and multi-segment (bulk) responses land in
//! the residual by design — they are measurement artefacts, not
//! browser overhead.

use std::fmt::Write as _;

use bnm_obs::{Component, TraceData};

use crate::delta::RoundMeasurement;
use crate::error::RunError;

/// One round's Δd decomposition, ms.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RoundAttribution {
    /// Repetition index within the cell.
    pub rep: u32,
    /// Session id within the scenario (0 in the single-client testbed —
    /// and in multi-client scenarios too: only the lowest-id session is
    /// traced, so it is the only one attribution rows exist for).
    pub session: u64,
    /// Round number (1 = Δd1, 2 = Δd2).
    pub round: u8,
    /// Measured Δd (Eq. 1), ms.
    pub delta_d_ms: f64,
    /// Event-loop dispatch, JS/DOM work, timing-API call cost.
    pub dispatch_ms: f64,
    /// Plugin bridge crossings.
    pub bridge_ms: f64,
    /// Measurement-object payload handling (XHR/URLLoader/Java/WS).
    pub parse_ms: f64,
    /// OS socket stack costs.
    pub stack_ms: f64,
    /// TCP handshakes awaited inside the round.
    pub handshake_ms: f64,
    /// Round-1 first-use (instantiation) costs.
    pub init_ms: f64,
    /// TCP data-retransmission waits inside the round. Rounds whose
    /// probes were retransmitted on the wire are excluded before
    /// attribution (the paper's §3 rule), so this is 0 on every reported
    /// round — it exists to make the exclusion auditable: a non-zero
    /// value means a retransmitted round leaked past the matcher.
    pub retrans_ms: f64,
    /// Browser timestamp quantization.
    pub quantization_ms: f64,
    /// Δd minus everything above.
    pub residual_ms: f64,
}

impl RoundAttribution {
    /// The span-attributed components in report order.
    pub fn components(&self) -> [(Component, f64); 7] {
        [
            (Component::Dispatch, self.dispatch_ms),
            (Component::Bridge, self.bridge_ms),
            (Component::Parse, self.parse_ms),
            (Component::Stack, self.stack_ms),
            (Component::Handshake, self.handshake_ms),
            (Component::Init, self.init_ms),
            (Component::Retrans, self.retrans_ms),
        ]
    }

    /// Sum of the span-attributed components, ms.
    pub fn attributed_sum_ms(&self) -> f64 {
        self.components().iter().map(|(_, v)| v).sum()
    }

    /// Everything except the residual: what the report explains.
    pub fn explained_ms(&self) -> f64 {
        self.attributed_sum_ms() + self.quantization_ms
    }
}

/// Attribute every measured round of one repetition from its trace.
///
/// Reports [`RunError::InvalidInput`] if the trace lacks the round
/// markers the session emits (i.e. it was not recorded by a traced
/// session).
pub fn attribute(
    trace: &TraceData,
    measurements: &[RoundMeasurement],
    rep: u32,
) -> Result<Vec<RoundAttribution>, RunError> {
    let mut out = Vec::with_capacity(measurements.len());
    for m in measurements {
        let marker = |label: &str| {
            trace
                .events
                .iter()
                .find(|e| e.scope == "session" && e.label == label && e.round == Some(m.round))
                .map(|e| e.start_ns)
        };
        let (Some(t_s), Some(t_r)) = (marker("round.start"), marker("round.end")) else {
            return Err(RunError::InvalidInput("trace lacks session round markers"));
        };
        let virtual_ms = (t_r - t_s) as f64 / 1e6;
        let delta_d_ms = m.delta_d_ms();
        let total = |c| trace.component_total_ns(c, Some(m.round)) as f64 / 1e6;
        let mut a = RoundAttribution {
            rep,
            session: m.session,
            round: m.round,
            delta_d_ms,
            dispatch_ms: total(Component::Dispatch),
            bridge_ms: total(Component::Bridge),
            parse_ms: total(Component::Parse),
            stack_ms: total(Component::Stack),
            handshake_ms: total(Component::Handshake),
            init_ms: total(Component::Init),
            retrans_ms: total(Component::Retrans),
            quantization_ms: m.browser.browser_rtt_ms() - virtual_ms,
            residual_ms: 0.0,
        };
        a.residual_ms = delta_d_ms - a.explained_ms();
        out.push(a);
    }
    Ok(out)
}

/// CSV export (header + one row per round).
pub fn to_csv(rows: &[RoundAttribution]) -> String {
    let mut s = String::from(
        "rep,session,round,delta_d_ms,dispatch_ms,bridge_ms,parse_ms,stack_ms,\
         handshake_ms,init_ms,retrans_ms,quantization_ms,residual_ms\n",
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{},{},{},{:?},{:?},{:?},{:?},{:?},{:?},{:?},{:?},{:?},{:?}",
            r.rep,
            r.session,
            r.round,
            r.delta_d_ms,
            r.dispatch_ms,
            r.bridge_ms,
            r.parse_ms,
            r.stack_ms,
            r.handshake_ms,
            r.init_ms,
            r.retrans_ms,
            r.quantization_ms,
            r.residual_ms
        );
    }
    s
}

/// Deterministic JSON export (array of objects, stable key order).
pub fn to_json(rows: &[RoundAttribution]) -> String {
    let mut s = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"rep\":{},\"session\":{},\"round\":{},\"delta_d_ms\":{:?},\
             \"dispatch_ms\":{:?},\
             \"bridge_ms\":{:?},\"parse_ms\":{:?},\"stack_ms\":{:?},\
             \"handshake_ms\":{:?},\"init_ms\":{:?},\"retrans_ms\":{:?},\
             \"quantization_ms\":{:?},\"residual_ms\":{:?}}}",
            r.rep,
            r.session,
            r.round,
            r.delta_d_ms,
            r.dispatch_ms,
            r.bridge_ms,
            r.parse_ms,
            r.stack_ms,
            r.handshake_ms,
            r.init_ms,
            r.retrans_ms,
            r.quantization_ms,
            r.residual_ms
        );
    }
    s.push(']');
    s
}

/// Fixed-width text table for terminal output.
pub fn render_table(rows: &[RoundAttribution]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>4} {:>4} {:>6} {:>9} {:>9} {:>8} {:>8} {:>8} {:>10} {:>8} {:>8} {:>10} {:>9}",
        "rep",
        "sess",
        "round",
        "Δd",
        "dispatch",
        "bridge",
        "parse",
        "stack",
        "handshake",
        "init",
        "retrans",
        "quantiz.",
        "residual"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:>4} {:>4} {:>6} {:>9.3} {:>9.3} {:>8.3} {:>8.3} {:>8.3} {:>10.3} {:>8.3} {:>8.3} \
             {:>10.3} {:>9.4}",
            r.rep,
            r.session,
            r.round,
            r.delta_d_ms,
            r.dispatch_ms,
            r.bridge_ms,
            r.parse_ms,
            r.stack_ms,
            r.handshake_ms,
            r.init_ms,
            r.retrans_ms,
            r.quantization_ms,
            r.residual_ms
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> RoundAttribution {
        RoundAttribution {
            rep: 0,
            session: 0,
            round: 1,
            delta_d_ms: 10.0,
            dispatch_ms: 3.0,
            bridge_ms: 0.0,
            parse_ms: 2.0,
            stack_ms: 1.0,
            handshake_ms: 0.0,
            init_ms: 3.5,
            retrans_ms: 0.0,
            quantization_ms: 0.4,
            residual_ms: 0.1,
        }
    }

    #[test]
    fn sums_and_components_are_consistent() {
        let r = row();
        assert!((r.attributed_sum_ms() - 9.5).abs() < 1e-12);
        assert!((r.explained_ms() - 9.9).abs() < 1e-12);
        assert_eq!(r.components().len(), 7);
    }

    #[test]
    fn exports_are_deterministic_and_well_formed() {
        let rows = vec![row(), RoundAttribution { round: 2, ..row() }];
        let csv = to_csv(&rows);
        assert!(csv.starts_with("rep,session,round,delta_d_ms"));
        assert_eq!(csv.lines().count(), 3);
        let json = to_json(&rows);
        assert!(json.starts_with("[{\"rep\":0,\"session\":0,\"round\":1"));
        assert_eq!(json, to_json(&rows));
        assert!(render_table(&rows).contains("handshake"));
        assert!(csv.contains("retrans_ms"));
        assert!(json.contains("\"retrans_ms\""));
        assert!(render_table(&rows).contains("retrans"));
    }

    #[test]
    fn attribute_rejects_markerless_traces() {
        use crate::delta::RoundMeasurement;
        use crate::matching::WireTimes;
        use bnm_browser::RoundResult;
        use bnm_sim::time::SimTime;
        let m = RoundMeasurement {
            session: 0,
            round: 1,
            browser: RoundResult {
                round: 1,
                tb_s_ms: 0.0,
                tb_r_ms: 51.0,
                opened_new_connection: false,
            },
            wire: WireTimes {
                tn_s: SimTime::ZERO,
                tn_r: SimTime::from_millis(50),
            },
        };
        let err = attribute(&TraceData::default(), &[m], 0).unwrap_err();
        assert_eq!(
            err,
            RunError::InvalidInput("trace lacks session round markers")
        );
    }
}
