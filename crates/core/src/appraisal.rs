//! Turning Δd samples into the paper's verdicts.
//!
//! ISO 5725 (cited in the paper's introduction) splits accuracy into
//! **trueness** (closeness of the central tendency to the true value —
//! here, |median Δd|) and **precision** (repeatability — here, the IQR
//! and whisker spread of Δd). A method is *calibratable* when its
//! overhead is stable enough that subtracting a constant fixes it.

use bnm_stats::{BoxStats, Cdf, MeanCi, Summary};

use crate::error::RunError;
use crate::report::DistSummary;
use crate::runner::CellResult;

/// Accuracy verdict for one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Sub-millisecond median overhead and tight spread: usable as-is
    /// (the paper's socket methods with a sound clock).
    Accurate,
    /// Biased but stable: subtract the median and it is usable.
    Calibratable,
    /// Overhead too erratic to correct (the paper's Flash HTTP methods).
    Unreliable,
    /// Negative overheads present: the clock under-estimates RTT
    /// (the paper's Java-on-Windows artifact).
    UnderEstimates,
}

/// Full appraisal of one cell's Δd samples.
#[derive(Debug, Clone)]
pub struct Appraisal {
    /// Box statistics of Δd1.
    pub d1: BoxStats,
    /// Box statistics of Δd2.
    pub d2: BoxStats,
    /// Pooled summary.
    pub pooled: Summary,
    /// Pooled mean ± 95% CI (Table 4's statistic).
    pub mean_ci: MeanCi,
    /// The verdict.
    pub verdict: Verdict,
}

/// Thresholds (ms) used by the verdict logic. Derived from the paper's
/// qualitative bands: sockets ≲ 1 ms are "accurate"; DOM at ≲ 5 ms with
/// small IQR is calibratable; Flash's tens-of-ms with cross-browser
/// variability is not.
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// |median| below this ⇒ accurate (given tight IQR).
    pub accurate_median_ms: f64,
    /// IQR below this counts as "stable".
    pub stable_iqr_ms: f64,
    /// Fraction of *materially* negative samples above which the cell
    /// under-estimates.
    pub negative_fraction: f64,
    /// Samples below this count as materially negative. A 1 ms-resolution
    /// clock legitimately produces Δd down to about −1.2 ms from
    /// quantization plus wire time alone; only losses beyond the nominal
    /// resolution indicate the §4.2 pathology.
    pub negative_cutoff_ms: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            accurate_median_ms: 1.0,
            stable_iqr_ms: 5.0,
            negative_fraction: 0.1,
            negative_cutoff_ms: -1.5,
        }
    }
}

impl Appraisal {
    /// Appraise a cell result with default thresholds.
    ///
    /// Fails with [`RunError::NoSamples`] when the result holds no Δd
    /// samples (all repetitions failed).
    pub fn try_of(result: &CellResult) -> Result<Appraisal, RunError> {
        Self::try_with_thresholds(result, Thresholds::default())
    }

    /// Appraise with custom thresholds, reporting an empty cell as
    /// [`RunError::NoSamples`].
    pub fn try_with_thresholds(result: &CellResult, th: Thresholds) -> Result<Appraisal, RunError> {
        let pooled_samples = result.pooled();
        if pooled_samples.is_empty() {
            return Err(RunError::NoSamples);
        }
        let d1 = BoxStats::of(&result.d1);
        let d2 = BoxStats::of(&result.d2);
        let pooled = Summary::of(&pooled_samples);
        let mean_ci = MeanCi::of(&pooled_samples);
        let neg = pooled_samples
            .iter()
            .filter(|&&d| d < th.negative_cutoff_ms)
            .count() as f64
            / pooled_samples.len() as f64;
        let verdict = if neg > th.negative_fraction {
            Verdict::UnderEstimates
        } else if pooled.median.abs() <= th.accurate_median_ms && pooled.iqr() <= th.stable_iqr_ms {
            Verdict::Accurate
        } else if pooled.iqr() <= th.stable_iqr_ms {
            Verdict::Calibratable
        } else {
            Verdict::Unreliable
        };
        Ok(Appraisal {
            d1,
            d2,
            pooled,
            mean_ci,
            verdict,
        })
    }

    /// Empirical CDFs of Δd1/Δd2 — the paper's Figure 4 view.
    pub fn cdfs(result: &CellResult) -> (Cdf, Cdf) {
        (Cdf::of(&result.d1), Cdf::of(&result.d2))
    }

    /// Verdict for a pooled [`DistSummary`] — the digest form used by
    /// [`crate::report::ReportSnapshot`], where raw samples may no
    /// longer exist.
    ///
    /// The negative-fraction test is probed through the 10th
    /// percentile: "more than `negative_fraction` of samples below the
    /// cutoff" is exactly "p10 below the cutoff" when
    /// `negative_fraction == 0.1` (the default), and a close
    /// approximation otherwise. The median/IQR rules are applied to the
    /// digest's `p50`/`iqr()` directly.
    ///
    /// The caller is responsible for `summary.count > 0`; an empty
    /// digest has `NaN` quantiles, which fail every comparison and fall
    /// through to [`Verdict::Unreliable`].
    pub fn verdict_of_summary(summary: &DistSummary, th: &Thresholds) -> Verdict {
        if summary.p10 < th.negative_cutoff_ms {
            Verdict::UnderEstimates
        } else if summary.p50.abs() <= th.accurate_median_ms && summary.iqr() <= th.stable_iqr_ms {
            Verdict::Accurate
        } else if summary.iqr() <= th.stable_iqr_ms {
            Verdict::Calibratable
        } else {
            Verdict::Unreliable
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell_with(d1: Vec<f64>, d2: Vec<f64>) -> CellResult {
        CellResult {
            d1,
            d2,
            ..CellResult::default()
        }
    }

    fn appraise(r: &CellResult) -> Appraisal {
        Appraisal::try_of(r).unwrap()
    }

    fn repeat(base: &[f64], n: usize) -> Vec<f64> {
        base.iter().cycle().take(n).copied().collect()
    }

    #[test]
    fn socket_like_samples_are_accurate() {
        let r = cell_with(
            repeat(&[0.05, 0.08, 0.06, 0.09], 25),
            repeat(&[0.10, 0.12, 0.11, 0.14], 25),
        );
        let a = appraise(&r);
        assert_eq!(a.verdict, Verdict::Accurate);
        assert!(a.pooled.median < 0.2);
    }

    #[test]
    fn stable_biased_samples_are_calibratable() {
        let r = cell_with(
            repeat(&[3.9, 4.0, 4.1, 4.2], 25),
            repeat(&[3.8, 4.0, 4.3], 25),
        );
        let a = appraise(&r);
        assert_eq!(a.verdict, Verdict::Calibratable);
    }

    #[test]
    fn erratic_samples_are_unreliable() {
        // Flash-like: large spread across repetitions.
        let r = cell_with(
            repeat(&[20.0, 45.0, 80.0, 110.0, 30.0], 25),
            repeat(&[25.0, 60.0, 95.0], 25),
        );
        let a = appraise(&r);
        assert_eq!(a.verdict, Verdict::Unreliable);
    }

    #[test]
    fn negative_samples_flag_underestimation() {
        let r = cell_with(
            repeat(&[-4.3, -4.1, 11.5, -4.0], 25),
            repeat(&[-4.2, 11.4, -3.9], 25),
        );
        let a = appraise(&r);
        assert_eq!(a.verdict, Verdict::UnderEstimates);
    }

    #[test]
    fn cdfs_cover_both_rounds() {
        let r = cell_with(vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]);
        let (c1, c2) = Appraisal::cdfs(&r);
        assert_eq!(c1.n(), 3);
        assert_eq!(c2.range(), (4.0, 6.0));
    }

    #[test]
    fn summary_verdicts_agree_with_sample_verdicts() {
        let cells = [
            cell_with(
                repeat(&[0.05, 0.08, 0.06, 0.09], 25),
                repeat(&[0.10, 0.12, 0.11, 0.14], 25),
            ),
            cell_with(
                repeat(&[3.9, 4.0, 4.1, 4.2], 25),
                repeat(&[3.8, 4.0, 4.3], 25),
            ),
            cell_with(
                repeat(&[20.0, 45.0, 80.0, 110.0, 30.0], 25),
                repeat(&[25.0, 60.0, 95.0], 25),
            ),
            cell_with(
                repeat(&[-4.3, -4.1, 11.5, -4.0], 25),
                repeat(&[-4.2, 11.4, -3.9], 25),
            ),
        ];
        for r in &cells {
            let batch = appraise(r).verdict;
            let digest = DistSummary::of_samples(&r.pooled());
            let snap = Appraisal::verdict_of_summary(&digest, &Thresholds::default());
            assert_eq!(snap, batch, "digest verdict diverged for {digest:?}");
        }
    }

    #[test]
    fn empty_cell_reports_no_samples() {
        assert_eq!(
            Appraisal::try_of(&cell_with(vec![], vec![])).unwrap_err(),
            crate::error::RunError::NoSamples
        );
    }
}
