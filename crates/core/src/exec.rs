//! The parallel experiment executor.
//!
//! Experiment grids are embarrassingly parallel at the `(cell × rep)`
//! grain: every repetition derives its seeds from `(cell.seed, rep)`
//! alone (see [`crate::runner`]), so repetitions can run on any thread in
//! any order and still produce the exact numbers a serial loop would.
//! The executor exploits that:
//!
//! 1. every runnable cell is flattened into `(cell index, rep)` work
//!    units, dealt round-robin onto one deque per worker;
//! 2. `available_parallelism()` scoped threads drain their own deque
//!    from the front and **steal from the back** of a victim's deque
//!    when it runs dry, so an expensive cell cannot strand the grid on
//!    one core;
//! 3. finished units are merged by sorting on `(cell, rep)` and folding
//!    in repetition order — the merge is the serial loop replayed, so
//!    parallel output is **bit-identical** to serial output for a fixed
//!    seed (asserted by `parity_with_serial_reference` below).
//!
//! Progress is reported through an optional callback; it fires once per
//! completed unit, from whichever worker finished it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use crate::config::ExperimentCell;
use crate::error::RunError;
use crate::runner::{CellResult, ExperimentRunner, RepOutcome};

/// A progress tick: one `(cell × rep)` unit finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Units finished so far (including this one).
    pub completed: usize,
    /// Total units scheduled for the batch.
    pub total: usize,
    /// Index into the submitted cell slice of the finished unit.
    pub cell: usize,
    /// Repetition index of the finished unit.
    pub rep: u32,
}

/// Wall-clock accounting for one batch. Purely observational — the
/// timings never feed back into scheduling or results, so parallel
/// output stays bit-identical to serial.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Worker threads the batch actually used.
    pub workers: usize,
    /// `(cell × rep)` units executed.
    pub units: usize,
    /// Wall time for the whole batch (queue to merge).
    pub wall: Duration,
    /// Units each worker completed (steals included).
    pub worker_units: Vec<usize>,
    /// Time each worker spent inside repetitions (excludes idle/steal
    /// spinning).
    pub worker_busy: Vec<Duration>,
    /// Frame-pool counters aggregated over the batch's workers.
    /// Parallel batches run on fresh scoped threads, so each worker's
    /// thread-local counters are exactly its batch contribution; the
    /// aggregate's `live_peak` sums per-worker peaks and is therefore an
    /// upper bound on the true simultaneous peak. A serial batch resets
    /// the calling thread's counters when it starts draining, so the
    /// numbers are the batch's own there too.
    pub pool: bytes::pool::PoolStats,
}

impl ExecStats {
    /// Mean per-unit execution time, if any units ran.
    pub fn mean_unit(&self) -> Option<Duration> {
        let busy: Duration = self.worker_busy.iter().sum();
        (self.units > 0).then(|| busy / self.units as u32)
    }

    /// One-line human summary for benches and CLI `--verbose` output.
    pub fn summary(&self) -> String {
        let mean = self
            .mean_unit()
            .map_or_else(|| "n/a".to_string(), |d| format!("{:.2?}", d));
        format!(
            "{} units on {} workers in {:.2?} (mean {mean}/unit, spread {:?})",
            self.units, self.workers, self.wall, self.worker_units
        )
    }
}

/// One finished work unit, tagged for the deterministic merge.
struct Outcome {
    cell: usize,
    rep: u32,
    outcome: Result<RepOutcome, RunError>,
}

/// Per-worker tallies gathered while draining (units, busy time, the
/// worker thread's frame-pool counters).
type WorkerTally = (usize, Duration, bytes::pool::PoolStats);

/// Lock a mutex, recovering from poisoning: all executor-internal state
/// stays consistent under any interleaving, so a panicked peer cannot
/// leave a guard-protected value half-updated in a way that matters.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Generic work-stealing fan-out over indexed items — the same dealt
/// deque + steal-from-the-back discipline [`Executor`] uses for
/// `(cell × rep)` units, reused by the runner's per-session capture
/// matching. Results come back in item order regardless of which worker
/// computed what, so callers can fold them ascending and stay
/// bit-identical to a serial loop.
pub(crate) fn fan_out<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.min(n.max(1));
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let mut queues: Vec<VecDeque<(usize, T)>> = (0..workers).map(|_| VecDeque::new()).collect();
    for (i, t) in items.into_iter().enumerate() {
        queues[i % workers].push_back((i, t));
    }
    let queues: Vec<Mutex<VecDeque<(usize, T)>>> = queues.into_iter().map(Mutex::new).collect();
    let sink: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        let queues = &queues;
        let sink = &sink;
        let f = &f;
        for wid in 0..workers {
            scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let mut next = lock(&queues[wid]).pop_front();
                    if next.is_none() {
                        for off in 1..workers {
                            next = lock(&queues[(wid + off) % workers]).pop_back();
                            if next.is_some() {
                                break;
                            }
                        }
                    }
                    let Some((i, t)) = next else { break };
                    local.push((i, f(i, t)));
                }
                lock(sink).extend(local);
            });
        }
    });
    let mut tagged = sink.into_inner().unwrap_or_else(PoisonError::into_inner);
    tagged.sort_unstable_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Work-stealing scheduler for experiment cells.
///
/// ```
/// use bnm_core::exec::Executor;
/// use bnm_core::{ExperimentCell, RuntimeSel};
/// use bnm_browser::BrowserKind;
/// use bnm_methods::MethodId;
/// use bnm_time::OsKind;
///
/// let cell = ExperimentCell::builder(
///     MethodId::XhrGet,
///     RuntimeSel::Browser(BrowserKind::Chrome),
///     OsKind::Ubuntu1204,
/// )
/// .reps(4)
/// .build()
/// .unwrap();
/// let results = Executor::new().run(std::slice::from_ref(&cell));
/// assert_eq!(results[0].as_ref().unwrap().d1.len(), 4);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    workers: usize,
}

impl Executor {
    /// An executor sized to the machine (`available_parallelism`).
    pub fn new() -> Executor {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Executor { workers }
    }

    /// An executor with an explicit worker count (clamped to ≥ 1).
    pub fn with_workers(workers: usize) -> Executor {
        Executor {
            workers: workers.max(1),
        }
    }

    /// A single-worker executor: runs units in submission order on the
    /// calling thread, no threads spawned.
    pub fn serial() -> Executor {
        Executor { workers: 1 }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run a batch of cells; one `Result` per input cell, in input order.
    ///
    /// Unrunnable cells (Table 2) yield `Err(RunError::Unrunnable)`
    /// without scheduling any work; every other cell in the batch still
    /// completes.
    pub fn run(&self, cells: &[ExperimentCell]) -> Vec<Result<CellResult, RunError>> {
        self.run_with_progress(cells, |_| {})
    }

    /// [`run`](Executor::run) with a progress callback.
    ///
    /// The callback fires once per finished `(cell × rep)` unit and may
    /// be called concurrently from worker threads; `completed` is
    /// monotone per observer but ticks for different cells interleave
    /// arbitrarily.
    pub fn run_with_progress<F>(
        &self,
        cells: &[ExperimentCell],
        on_progress: F,
    ) -> Vec<Result<CellResult, RunError>>
    where
        F: Fn(Progress) + Sync,
    {
        self.run_with_stats(cells, on_progress).0
    }

    /// [`run_with_progress`](Executor::run_with_progress), additionally
    /// reporting wall-clock [`ExecStats`] for the batch. The stats are
    /// observational only; results are unaffected.
    pub fn run_with_stats<F>(
        &self,
        cells: &[ExperimentCell],
        on_progress: F,
    ) -> (Vec<Result<CellResult, RunError>>, ExecStats)
    where
        F: Fn(Progress) + Sync,
    {
        let batch_start = std::time::Instant::now();
        let mut slots: Vec<Result<CellResult, RunError>> = Vec::with_capacity(cells.len());
        let mut units: Vec<(usize, u32)> = Vec::new();
        for (idx, cell) in cells.iter().enumerate() {
            if cell.is_runnable() {
                slots.push(Ok(CellResult::default()));
                units.extend((0..cell.reps).map(|rep| (idx, rep)));
            } else {
                slots.push(Err(RunError::unrunnable(cell)));
            }
        }

        let total = units.len();
        let workers = self.workers.min(total.max(1));
        let (outcomes, tallies) = if workers <= 1 {
            Self::drain_serial(cells, &units, total, &on_progress)
        } else {
            Self::drain_parallel(cells, units, total, workers, &on_progress)
        };
        Self::merge(cells, outcomes, &mut slots);
        let mut pool = bytes::pool::PoolStats::default();
        for t in &tallies {
            pool.absorb(&t.2);
        }
        let stats = ExecStats {
            workers,
            units: total,
            wall: batch_start.elapsed(),
            worker_units: tallies.iter().map(|t| t.0).collect(),
            worker_busy: tallies.iter().map(|t| t.1).collect(),
            pool,
        };
        (slots, stats)
    }

    /// Single-worker path: the plain loop, on the calling thread.
    fn drain_serial<F: Fn(Progress) + Sync>(
        cells: &[ExperimentCell],
        units: &[(usize, u32)],
        total: usize,
        on_progress: &F,
    ) -> (Vec<Outcome>, Vec<WorkerTally>) {
        // The batch's pool contribution is the counter delta from here
        // to the end of the drain; resetting makes the end snapshot that
        // delta directly (documented on [`ExecStats::pool`]).
        bytes::pool::reset_stats();
        let mut outcomes = Vec::with_capacity(total);
        let mut busy = Duration::ZERO;
        for (completed, &(cell, rep)) in units.iter().enumerate() {
            let unit_start = std::time::Instant::now();
            outcomes.push(Outcome {
                cell,
                rep,
                outcome: ExperimentRunner::run_rep_traced(&cells[cell], rep),
            });
            busy += unit_start.elapsed();
            on_progress(Progress {
                completed: completed + 1,
                total,
                cell,
                rep,
            });
        }
        (outcomes, vec![(total, busy, bytes::pool::stats())])
    }

    /// Multi-worker path: per-worker deques plus back-of-queue stealing.
    fn drain_parallel<F: Fn(Progress) + Sync>(
        cells: &[ExperimentCell],
        units: Vec<(usize, u32)>,
        total: usize,
        workers: usize,
        on_progress: &F,
    ) -> (Vec<Outcome>, Vec<WorkerTally>) {
        // Units are dealt round-robin so expensive cells (more reps, or
        // costlier methods) spread across workers from the start; the
        // steal path only has to correct the imbalance that remains.
        let mut queues: Vec<VecDeque<(usize, u32)>> =
            (0..workers).map(|_| VecDeque::new()).collect();
        for (i, unit) in units.into_iter().enumerate() {
            queues[i % workers].push_back(unit);
        }
        let queues: Vec<Mutex<VecDeque<(usize, u32)>>> =
            queues.into_iter().map(Mutex::new).collect();
        let sink: Mutex<Vec<Outcome>> = Mutex::new(Vec::with_capacity(total));
        let tallies: Vec<Mutex<WorkerTally>> = (0..workers)
            .map(|_| Mutex::new((0, Duration::ZERO, bytes::pool::PoolStats::default())))
            .collect();
        let completed = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            let queues = &queues;
            let sink = &sink;
            let tallies = &tallies;
            let completed = &completed;
            for wid in 0..workers {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    let mut done_units = 0usize;
                    let mut busy = Duration::ZERO;
                    loop {
                        // Own queue first (front), then steal from the
                        // back of the first non-empty victim. Nothing is
                        // ever re-enqueued, so an empty sweep means the
                        // batch is drained.
                        let mut next = lock(&queues[wid]).pop_front();
                        if next.is_none() {
                            for off in 1..workers {
                                next = lock(&queues[(wid + off) % workers]).pop_back();
                                if next.is_some() {
                                    break;
                                }
                            }
                        }
                        let Some((cell, rep)) = next else { break };
                        let unit_start = std::time::Instant::now();
                        local.push(Outcome {
                            cell,
                            rep,
                            outcome: ExperimentRunner::run_rep_traced(&cells[cell], rep),
                        });
                        busy += unit_start.elapsed();
                        done_units += 1;
                        let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                        on_progress(Progress {
                            completed: done,
                            total,
                            cell,
                            rep,
                        });
                    }
                    lock(sink).extend(local);
                    // A scoped worker is a fresh thread: its thread-local
                    // pool counters are exactly this batch's contribution.
                    *lock(&tallies[wid]) = (done_units, busy, bytes::pool::stats());
                });
            }
        });
        let tallies = tallies
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect();
        let outcomes = sink.into_inner().unwrap_or_else(PoisonError::into_inner);
        (outcomes, tallies)
    }

    /// Fold outcomes into the per-cell slots in `(cell, rep)` order —
    /// exactly the order the serial loop consumes them, which is what
    /// makes parallel output bit-identical to serial.
    fn merge(
        cells: &[ExperimentCell],
        mut outcomes: Vec<Outcome>,
        slots: &mut [Result<CellResult, RunError>],
    ) {
        outcomes.sort_by_key(|o| (o.cell, o.rep));
        for o in outcomes {
            let retention = cells[o.cell].streaming.session_retention;
            let Ok(result) = &mut slots[o.cell] else {
                // Units are only scheduled for runnable cells.
                unreachable!("outcome for a cell that was never scheduled");
            };
            // The incremental fold itself lives on CellResult so the
            // monitor and any other replay path aggregate identically.
            result.fold_outcome(o.outcome, retention);
        }
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeSel;
    use bnm_browser::BrowserKind;
    use bnm_methods::MethodId;
    use bnm_time::OsKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn grid() -> Vec<ExperimentCell> {
        [
            (MethodId::XhrGet, BrowserKind::Chrome, OsKind::Ubuntu1204),
            (
                MethodId::WebSocket,
                BrowserKind::Firefox,
                OsKind::Ubuntu1204,
            ),
            (MethodId::Dom, BrowserKind::Opera, OsKind::Windows7),
        ]
        .into_iter()
        .map(|(m, b, os)| ExperimentCell::paper(m, RuntimeSel::Browser(b), os).with_reps(6))
        .collect()
    }

    /// The tentpole guarantee: parallel output is bit-identical to the
    /// serial reference, for every cell, at a fixed seed.
    #[test]
    fn parity_with_serial_reference() {
        let cells = grid();
        let serial = Executor::serial().run(&cells);
        let parallel = Executor::with_workers(4).run(&cells);
        for (s, p) in serial.iter().zip(&parallel) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(s.d1, p.d1);
            assert_eq!(s.d2, p.d2);
            assert_eq!(s.failures, p.failures);
            assert_eq!(s.excluded_rounds, p.excluded_rounds);
            assert_eq!(s.measurements.len(), p.measurements.len());
        }
    }

    #[test]
    fn unrunnable_cell_fails_without_sinking_the_batch() {
        let mut cells = grid();
        cells.insert(
            1,
            ExperimentCell::paper(
                MethodId::WebSocket,
                RuntimeSel::Browser(BrowserKind::Ie9),
                OsKind::Windows7,
            )
            .with_reps(6),
        );
        let results = Executor::with_workers(3).run(&cells);
        assert!(matches!(results[1], Err(RunError::Unrunnable { .. })));
        for (i, r) in results.iter().enumerate() {
            if i != 1 {
                let r = r.as_ref().unwrap();
                assert_eq!(r.d1.len(), 6, "cell {i} completed despite the bad cell");
            }
        }
    }

    #[test]
    fn progress_ticks_once_per_unit() {
        let cells = grid();
        let total_units: usize = cells.iter().map(|c| c.reps as usize).sum();
        let ticks = AtomicUsize::new(0);
        let max_completed = AtomicUsize::new(0);
        Executor::with_workers(4).run_with_progress(&cells, |p| {
            ticks.fetch_add(1, Ordering::Relaxed);
            max_completed.fetch_max(p.completed, Ordering::Relaxed);
            assert_eq!(p.total, total_units);
            assert!(p.cell < 3);
        });
        assert_eq!(ticks.load(Ordering::Relaxed), total_units);
        assert_eq!(max_completed.load(Ordering::Relaxed), total_units);
    }

    #[test]
    fn zero_reps_yields_an_empty_ok_result() {
        let cells = vec![ExperimentCell::paper(
            MethodId::XhrGet,
            RuntimeSel::Browser(BrowserKind::Chrome),
            OsKind::Ubuntu1204,
        )
        .with_reps(0)];
        let r = Executor::new().run(&cells);
        let r = r[0].as_ref().unwrap();
        assert!(r.d1.is_empty() && r.d2.is_empty() && r.failures == 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(Executor::new().run(&[]).is_empty());
    }

    #[test]
    fn stats_account_for_every_unit() {
        let cells = grid();
        let total: usize = cells.iter().map(|c| c.reps as usize).sum();
        let (results, stats) = Executor::with_workers(4).run_with_stats(&cells, |_| {});
        assert_eq!(results.len(), cells.len());
        assert_eq!(stats.units, total);
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.worker_units.len(), stats.workers);
        assert_eq!(stats.worker_units.iter().sum::<usize>(), total);
        assert!(stats.mean_unit().is_some());
        assert!(stats.summary().contains("workers"));
        let (_, empty) = Executor::new().run_with_stats(&[], |_| {});
        assert_eq!(empty.mean_unit(), None);
    }

    #[test]
    fn worker_counts_are_clamped() {
        assert_eq!(Executor::with_workers(0).workers(), 1);
        assert!(Executor::new().workers() >= 1);
    }
}
