//! The paper's §5 "Practical Considerations", codified.
//!
//! Given deployment constraints (mobile platform? plug-ins allowed?
//! cross-origin needed?), rank the measurement methods and emit the
//! paper's concrete advice: Java socket + `System.nanoTime()` where
//! plug-ins run; WebSocket as the universal native choice; never Flash
//! GET/POST; Firefox on Windows, Chrome on Ubuntu; avoid Safari's default
//! Java interface.

use bnm_browser::BrowserKind;
use bnm_methods::MethodId;
use bnm_time::{OsKind, TimingApiKind};

/// Deployment constraints for method selection.
#[derive(Debug, Clone, Copy)]
pub struct Constraints {
    /// Target includes mobile platforms (no Flash/Java plug-ins — §2.1).
    pub mobile: bool,
    /// Measurement server is a different origin than the page, with no
    /// ability to install cross-domain policies or sign applets.
    pub strict_cross_origin: bool,
    /// Plug-ins acceptable on desktop.
    pub plugins_allowed: bool,
    /// Server can open extra service ports for sockets.
    pub can_open_ports: bool,
}

impl Default for Constraints {
    fn default() -> Self {
        Constraints {
            mobile: false,
            strict_cross_origin: false,
            plugins_allowed: true,
            can_open_ports: true,
        }
    }
}

/// A recommendation with its rationale.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The method, best first.
    pub method: MethodId,
    /// The timing API to use with it.
    pub timing: TimingApiKind,
    /// Why (with the paper-section provenance).
    pub rationale: &'static str,
}

/// Rank methods under the constraints, best first.
pub fn recommend_methods(c: &Constraints) -> Vec<Recommendation> {
    let mut out = Vec::new();
    let plugins = c.plugins_allowed && !c.mobile;
    if plugins && c.can_open_ports {
        out.push(Recommendation {
            method: MethodId::JavaTcp,
            timing: TimingApiKind::JavaNanoTime,
            rationale: "§5: the Java applet socket method with System.nanoTime() is \
                        comparable to tcpdump/WinDump",
        });
    }
    if c.can_open_ports {
        out.push(Recommendation {
            method: MethodId::WebSocket,
            timing: TimingApiKind::JsDateGetTime,
            rationale: "§4: WebSocket gives the most accurate and consistent RTT among \
                        native methods, and works on mobile (§2.1)",
        });
    }
    if plugins && c.can_open_ports {
        out.push(Recommendation {
            method: MethodId::FlashTcp,
            timing: TimingApiKind::FlashGetTime,
            rationale: "§4: Flash TCP socket overhead is small, though the plug-in is \
                        unavailable on mobile",
        });
    }
    // HTTP fallbacks.
    out.push(Recommendation {
        method: MethodId::Dom,
        timing: TimingApiKind::JsDateGetTime,
        rationale: "§4: DOM is the most consistent HTTP-based method and evades the \
                    same-origin policy",
    });
    if !c.strict_cross_origin {
        out.push(Recommendation {
            method: MethodId::XhrGet,
            timing: TimingApiKind::JsDateGetTime,
            rationale: "§4: XHR overhead is a few to tens of ms — usable when sockets \
                        and DOM tricks are unavailable",
        });
    }
    out
}

/// Methods the paper explicitly advises against.
pub fn discouraged() -> Vec<(MethodId, &'static str)> {
    vec![
        (
            MethodId::FlashGet,
            "§4: the highest and most browser-dependent overheads; Opera opens a new \
             TCP connection whose handshake silently lands in the RTT (Table 3)",
        ),
        (
            MethodId::FlashPost,
            "§4/Table 3: every POST opens a fresh connection in Opera — the \
             handshake cannot be avoided even on round 2",
        ),
    ]
}

/// The preferred browser per OS (§5).
pub fn preferred_browser(os: OsKind) -> BrowserKind {
    match os {
        OsKind::Windows7 => BrowserKind::Firefox,
        OsKind::Ubuntu1204 => BrowserKind::Chrome,
    }
}

/// Timing-API advice for a method (§4.2/§5).
pub fn timing_advice(method: MethodId) -> (TimingApiKind, &'static str) {
    use bnm_browser::Technology;
    match method.technology() {
        Technology::JavaApplet => (
            TimingApiKind::JavaNanoTime,
            "Date.getTime()/System.currentTimeMillis() tick at the OS timer \
             granularity (1 or ~15.6 ms on Windows 7); switch to System.nanoTime()",
        ),
        Technology::Native => (
            TimingApiKind::JsDateGetTime,
            "browser Date.getTime() holds 1 ms granularity on both OSes",
        ),
        Technology::Flash => (
            TimingApiKind::FlashGetTime,
            "ActionScript getTime() holds 1 ms granularity; the method's problem is \
             its path cost, not its clock",
        ),
    }
}

/// Browser-specific warnings (§5).
pub fn browser_warnings(browser: BrowserKind) -> Vec<&'static str> {
    let mut w = Vec::new();
    if browser == BrowserKind::Safari {
        w.push(
            "Safari's default Java interface (JavaPlugin.jar/npJavaPlugin.dll) is \
             unreliable; delete it so the Oracle JRE is used directly (§5)",
        );
    }
    if browser == BrowserKind::Opera {
        w.push(
            "Opera's Flash stack opens new TCP connections for measurement requests; \
             Flash HTTP RTTs include handshakes (Table 3)",
        );
    }
    if !browser.supports_websocket() {
        w.push("this browser version has no WebSocket support (Table 2)");
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desktop_defaults_put_java_socket_first() {
        let recs = recommend_methods(&Constraints::default());
        assert_eq!(recs[0].method, MethodId::JavaTcp);
        assert_eq!(recs[0].timing, TimingApiKind::JavaNanoTime);
        assert_eq!(recs[1].method, MethodId::WebSocket);
    }

    #[test]
    fn mobile_excludes_plugins() {
        let recs = recommend_methods(&Constraints {
            mobile: true,
            ..Constraints::default()
        });
        assert!(recs.iter().all(|r| {
            !matches!(
                r.method,
                MethodId::JavaTcp | MethodId::FlashTcp | MethodId::FlashGet
            )
        }));
        assert_eq!(recs[0].method, MethodId::WebSocket);
    }

    #[test]
    fn no_ports_falls_back_to_http() {
        let recs = recommend_methods(&Constraints {
            can_open_ports: false,
            ..Constraints::default()
        });
        assert_eq!(recs[0].method, MethodId::Dom);
    }

    #[test]
    fn strict_cross_origin_drops_xhr() {
        let recs = recommend_methods(&Constraints {
            strict_cross_origin: true,
            ..Constraints::default()
        });
        assert!(recs.iter().all(|r| r.method != MethodId::XhrGet));
        assert!(recs.iter().any(|r| r.method == MethodId::Dom));
    }

    #[test]
    fn flash_http_is_discouraged() {
        let d = discouraged();
        assert!(d.iter().any(|(m, _)| *m == MethodId::FlashGet));
        assert!(d.iter().any(|(m, _)| *m == MethodId::FlashPost));
    }

    #[test]
    fn preferred_browsers_match_section5() {
        assert_eq!(preferred_browser(OsKind::Windows7), BrowserKind::Firefox);
        assert_eq!(preferred_browser(OsKind::Ubuntu1204), BrowserKind::Chrome);
    }

    #[test]
    fn java_timing_advice_is_nanotime() {
        let (api, why) = timing_advice(MethodId::JavaTcp);
        assert_eq!(api, TimingApiKind::JavaNanoTime);
        assert!(why.contains("nanoTime"));
    }

    #[test]
    fn safari_and_opera_carry_warnings() {
        assert!(!browser_warnings(BrowserKind::Safari).is_empty());
        assert!(!browser_warnings(BrowserKind::Opera).is_empty());
        assert!(browser_warnings(BrowserKind::Chrome).is_empty());
        assert_eq!(browser_warnings(BrowserKind::Ie9).len(), 1); // no WS
    }
}
