//! The paper's §5 "Practical Considerations", codified.
//!
//! Given deployment constraints (mobile platform? plug-ins allowed?
//! cross-origin needed?), rank the measurement methods and emit the
//! paper's concrete advice: Java socket + `System.nanoTime()` where
//! plug-ins run; WebSocket as the universal native choice; never Flash
//! GET/POST; Firefox on Windows, Chrome on Ubuntu; avoid Safari's default
//! Java interface.

use bnm_browser::BrowserKind;
use bnm_methods::MethodId;
use bnm_time::{OsKind, TimingApiKind};

use crate::appraisal::Verdict;
use crate::report::ReportSnapshot;

/// Deployment constraints for method selection.
#[derive(Debug, Clone, Copy)]
pub struct Constraints {
    /// Target includes mobile platforms (no Flash/Java plug-ins — §2.1).
    pub mobile: bool,
    /// Measurement server is a different origin than the page, with no
    /// ability to install cross-domain policies or sign applets.
    pub strict_cross_origin: bool,
    /// Plug-ins acceptable on desktop.
    pub plugins_allowed: bool,
    /// Server can open extra service ports for sockets.
    pub can_open_ports: bool,
}

impl Default for Constraints {
    fn default() -> Self {
        Constraints {
            mobile: false,
            strict_cross_origin: false,
            plugins_allowed: true,
            can_open_ports: true,
        }
    }
}

/// A recommendation with its rationale.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The method, best first.
    pub method: MethodId,
    /// The timing API to use with it.
    pub timing: TimingApiKind,
    /// Why (with the paper-section provenance).
    pub rationale: &'static str,
}

/// Rank methods under the constraints, best first.
pub fn recommend_methods(c: &Constraints) -> Vec<Recommendation> {
    let mut out = Vec::new();
    let plugins = c.plugins_allowed && !c.mobile;
    if plugins && c.can_open_ports {
        out.push(Recommendation {
            method: MethodId::JavaTcp,
            timing: TimingApiKind::JavaNanoTime,
            rationale: "§5: the Java applet socket method with System.nanoTime() is \
                        comparable to tcpdump/WinDump",
        });
    }
    if c.can_open_ports {
        out.push(Recommendation {
            method: MethodId::WebSocket,
            timing: TimingApiKind::JsDateGetTime,
            rationale: "§4: WebSocket gives the most accurate and consistent RTT among \
                        native methods, and works on mobile (§2.1)",
        });
    }
    if plugins && c.can_open_ports {
        out.push(Recommendation {
            method: MethodId::FlashTcp,
            timing: TimingApiKind::FlashGetTime,
            rationale: "§4: Flash TCP socket overhead is small, though the plug-in is \
                        unavailable on mobile",
        });
    }
    // HTTP fallbacks.
    out.push(Recommendation {
        method: MethodId::Dom,
        timing: TimingApiKind::JsDateGetTime,
        rationale: "§4: DOM is the most consistent HTTP-based method and evades the \
                    same-origin policy",
    });
    if !c.strict_cross_origin {
        out.push(Recommendation {
            method: MethodId::XhrGet,
            timing: TimingApiKind::JsDateGetTime,
            rationale: "§4: XHR overhead is a few to tens of ms — usable when sockets \
                        and DOM tricks are unavailable",
        });
    }
    out
}

/// Methods the paper explicitly advises against.
pub fn discouraged() -> Vec<(MethodId, &'static str)> {
    vec![
        (
            MethodId::FlashGet,
            "§4: the highest and most browser-dependent overheads; Opera opens a new \
             TCP connection whose handshake silently lands in the RTT (Table 3)",
        ),
        (
            MethodId::FlashPost,
            "§4/Table 3: every POST opens a fresh connection in Opera — the \
             handshake cannot be avoided even on round 2",
        ),
    ]
}

/// The preferred browser per OS (§5).
pub fn preferred_browser(os: OsKind) -> BrowserKind {
    match os {
        OsKind::Windows7 => BrowserKind::Firefox,
        OsKind::Ubuntu1204 => BrowserKind::Chrome,
    }
}

/// Timing-API advice for a method (§4.2/§5).
pub fn timing_advice(method: MethodId) -> (TimingApiKind, &'static str) {
    use bnm_browser::Technology;
    match method.technology() {
        Technology::JavaApplet => (
            TimingApiKind::JavaNanoTime,
            "Date.getTime()/System.currentTimeMillis() tick at the OS timer \
             granularity (1 or ~15.6 ms on Windows 7); switch to System.nanoTime()",
        ),
        Technology::Native => (
            TimingApiKind::JsDateGetTime,
            "browser Date.getTime() holds 1 ms granularity on both OSes",
        ),
        Technology::Flash => (
            TimingApiKind::FlashGetTime,
            "ActionScript getTime() holds 1 ms granularity; the method's problem is \
             its path cost, not its clock",
        ),
    }
}

/// A measurement-backed verdict for one cell, digested from the
/// [`ReportSnapshot`] summary shape — the *same* shape whether the
/// samples came from a batch run
/// ([`crate::runner::CellResult::summary`]) or a live `bnm serve`
/// monitor poll, so ranking logic never touches raw result fields.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredVerdict {
    /// The cell label, e.g. `"WebSocket / C (U)"`.
    pub label: String,
    /// The appraisal verdict of the pooled lifetime distribution.
    pub verdict: Verdict,
    /// Pooled median Δd, ms.
    pub median_ms: f64,
    /// Pooled inter-quartile range, ms.
    pub iqr_ms: f64,
    /// Samples behind the verdict.
    pub samples: u64,
    /// Repetitions that failed outright (incomplete session).
    pub failures: u64,
    /// Measured probe loss for datagram methods, 0..=1 (`0.0` for
    /// reliable transports — their losses surface as retransmissions,
    /// i.e. excluded rounds, not missing samples).
    pub loss_rate: f64,
}

impl MeasuredVerdict {
    /// A 0–100 deployment score for ranking methods within one network
    /// scenario. The verdict class sets the base (the paper's §4/§5
    /// taxonomy), then measured evidence subtracts: bias (|median Δd|)
    /// and spread (IQR) each cost up to 15 points at 2 ms per point,
    /// any outright failure costs 10, and datagram loss costs a point
    /// per percent up to 15. Deterministic in the snapshot, so serial
    /// and parallel runs score identically.
    pub fn score(&self) -> f64 {
        let base = match self.verdict {
            Verdict::Accurate => 100.0,
            Verdict::Calibratable => 75.0,
            Verdict::UnderEstimates => 50.0,
            Verdict::Unreliable => 25.0,
        };
        let bias = (self.median_ms.abs() / 2.0).min(15.0);
        let spread = (self.iqr_ms / 2.0).min(15.0);
        let fail = if self.failures > 0 { 10.0 } else { 0.0 };
        let loss = (self.loss_rate * 100.0).min(15.0);
        (base - bias - spread - fail - loss).max(0.0)
    }
}

/// Appraise one snapshot; `None` when it holds no samples yet.
pub fn appraise_snapshot(snap: &ReportSnapshot) -> Option<MeasuredVerdict> {
    let verdict = snap.verdict()?;
    let pooled = &snap.total().pooled;
    let loss_rate = snap
        .datagram
        .as_ref()
        .filter(|d| d.sent > 0)
        .map(|d| d.loss_rate())
        .unwrap_or(0.0);
    Some(MeasuredVerdict {
        label: snap.label.clone(),
        verdict,
        median_ms: pooled.p50,
        iqr_ms: pooled.iqr(),
        samples: pooled.count,
        failures: snap.failures,
        loss_rate,
    })
}

/// Rank measured verdicts best-first: Accurate, then Calibratable,
/// then UnderEstimates, then Unreliable; ties break on |median|.
pub fn rank_measured(mut verdicts: Vec<MeasuredVerdict>) -> Vec<MeasuredVerdict> {
    fn class(v: Verdict) -> u8 {
        match v {
            Verdict::Accurate => 0,
            Verdict::Calibratable => 1,
            Verdict::UnderEstimates => 2,
            Verdict::Unreliable => 3,
        }
    }
    verdicts.sort_by(|a, b| {
        class(a.verdict).cmp(&class(b.verdict)).then(
            a.median_ms
                .abs()
                .partial_cmp(&b.median_ms.abs())
                .unwrap_or(std::cmp::Ordering::Equal),
        )
    });
    verdicts
}

/// Browser-specific warnings (§5).
pub fn browser_warnings(browser: BrowserKind) -> Vec<&'static str> {
    let mut w = Vec::new();
    if browser == BrowserKind::Safari {
        w.push(
            "Safari's default Java interface (JavaPlugin.jar/npJavaPlugin.dll) is \
             unreliable; delete it so the Oracle JRE is used directly (§5)",
        );
    }
    if browser == BrowserKind::Opera {
        w.push(
            "Opera's Flash stack opens new TCP connections for measurement requests; \
             Flash HTTP RTTs include handshakes (Table 3)",
        );
    }
    if !browser.supports_websocket() {
        w.push("this browser version has no WebSocket support (Table 2)");
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desktop_defaults_put_java_socket_first() {
        let recs = recommend_methods(&Constraints::default());
        assert_eq!(recs[0].method, MethodId::JavaTcp);
        assert_eq!(recs[0].timing, TimingApiKind::JavaNanoTime);
        assert_eq!(recs[1].method, MethodId::WebSocket);
    }

    #[test]
    fn mobile_excludes_plugins() {
        let recs = recommend_methods(&Constraints {
            mobile: true,
            ..Constraints::default()
        });
        assert!(recs.iter().all(|r| {
            !matches!(
                r.method,
                MethodId::JavaTcp | MethodId::FlashTcp | MethodId::FlashGet
            )
        }));
        assert_eq!(recs[0].method, MethodId::WebSocket);
    }

    #[test]
    fn no_ports_falls_back_to_http() {
        let recs = recommend_methods(&Constraints {
            can_open_ports: false,
            ..Constraints::default()
        });
        assert_eq!(recs[0].method, MethodId::Dom);
    }

    #[test]
    fn strict_cross_origin_drops_xhr() {
        let recs = recommend_methods(&Constraints {
            strict_cross_origin: true,
            ..Constraints::default()
        });
        assert!(recs.iter().all(|r| r.method != MethodId::XhrGet));
        assert!(recs.iter().any(|r| r.method == MethodId::Dom));
    }

    #[test]
    fn flash_http_is_discouraged() {
        let d = discouraged();
        assert!(d.iter().any(|(m, _)| *m == MethodId::FlashGet));
        assert!(d.iter().any(|(m, _)| *m == MethodId::FlashPost));
    }

    #[test]
    fn preferred_browsers_match_section5() {
        assert_eq!(preferred_browser(OsKind::Windows7), BrowserKind::Firefox);
        assert_eq!(preferred_browser(OsKind::Ubuntu1204), BrowserKind::Chrome);
    }

    #[test]
    fn java_timing_advice_is_nanotime() {
        let (api, why) = timing_advice(MethodId::JavaTcp);
        assert_eq!(api, TimingApiKind::JavaNanoTime);
        assert!(why.contains("nanoTime"));
    }

    #[test]
    fn measured_verdicts_rank_by_class_then_bias() {
        use crate::config::RuntimeSel;
        use crate::runner::CellResult;
        let snap = |label: &str, d: f64, spread: f64| {
            let cell = crate::config::ExperimentCell::paper(
                MethodId::XhrGet,
                RuntimeSel::Browser(BrowserKind::Chrome),
                bnm_time::OsKind::Ubuntu1204,
            );
            let r = CellResult {
                d1: (0..20).map(|i| d + (i % 4) as f64 * spread).collect(),
                d2: (0..20).map(|i| d + (i % 4) as f64 * spread).collect(),
                ..CellResult::default()
            };
            let mut s = r.summary(&cell);
            s.label = label.to_string();
            s
        };
        let verdicts: Vec<MeasuredVerdict> = [
            snap("erratic", 20.0, 30.0), // Unreliable
            snap("biased", 8.0, 0.5),    // Calibratable
            snap("good", 0.1, 0.1),      // Accurate
        ]
        .iter()
        .filter_map(appraise_snapshot)
        .collect();
        let ranked = rank_measured(verdicts);
        assert_eq!(ranked[0].label, "good");
        assert_eq!(ranked[0].verdict, Verdict::Accurate);
        assert_eq!(ranked[1].label, "biased");
        assert_eq!(ranked[2].label, "erratic");
        assert_eq!(ranked[2].verdict, Verdict::Unreliable);
        assert_eq!(ranked[0].samples, 40);
    }

    #[test]
    fn scores_order_by_class_and_penalties() {
        let v = |verdict, median_ms: f64, iqr_ms: f64, failures, loss_rate| MeasuredVerdict {
            label: "x".into(),
            verdict,
            median_ms,
            iqr_ms,
            samples: 100,
            failures,
            loss_rate,
        };
        let clean = v(Verdict::Accurate, 0.2, 0.1, 0, 0.0);
        assert!(clean.score() > 99.0, "{}", clean.score());
        // Bias and spread bite at 2 ms per point, capped at 15 each.
        let bloated = v(Verdict::Calibratable, 40.0, 60.0, 0, 0.0);
        assert_eq!(bloated.score(), 75.0 - 15.0 - 15.0);
        // Failures and loss subtract too, and the floor is zero.
        assert!(v(Verdict::Accurate, 0.0, 0.0, 1, 0.0).score() == 90.0);
        assert!(v(Verdict::Accurate, 0.0, 0.0, 0, 0.07).score() == 93.0);
        assert_eq!(v(Verdict::Unreliable, 99.0, 99.0, 9, 1.0).score(), 0.0);
        // Class dominates: a tight Unreliable never beats a clean
        // Accurate.
        assert!(clean.score() > v(Verdict::Unreliable, 0.0, 0.0, 0, 0.0).score());
    }

    #[test]
    fn empty_snapshot_yields_no_measured_verdict() {
        let cell = crate::config::ExperimentCell::paper(
            MethodId::XhrGet,
            crate::config::RuntimeSel::Browser(BrowserKind::Chrome),
            bnm_time::OsKind::Ubuntu1204,
        );
        let snap = crate::runner::CellResult::default().summary(&cell);
        assert_eq!(appraise_snapshot(&snap), None);
    }

    #[test]
    fn safari_and_opera_carry_warnings() {
        assert!(!browser_warnings(BrowserKind::Safari).is_empty());
        assert!(!browser_warnings(BrowserKind::Opera).is_empty());
        assert!(browser_warnings(BrowserKind::Chrome).is_empty());
        assert_eq!(browser_warnings(BrowserKind::Ie9).len(), 1); // no WS
    }
}
