//! The full appraisal battery — `bnm battery`.
//!
//! One entry point that runs a representative method roster across the
//! canonical network scenarios — the clean paper testbed, an impaired
//! path, a contended access link, a deep drop-tail "bufferbloat" queue,
//! the same queue under a CoDel AQM, and a time-varying service rate —
//! then folds every cell's [`ReportSnapshot`] through
//! [`appraise_snapshot`] and ranks the methods per scenario by their
//! [`MeasuredVerdict::score`].
//!
//! The battery is scheduled through the ordinary [`Executor`], so the
//! scored report is bit-identical between serial and parallel runs at
//! the same seed: scoring is a pure function of each cell's snapshot,
//! and snapshots merge deterministically.

use std::fmt::Write as _;

use bnm_browser::BrowserKind;
use bnm_methods::MethodId;
use bnm_sim::link::LinkSpec;
use bnm_sim::time::SimDuration;
use bnm_sim::{FaultSpec, Impairment, LinkDynamics, LinkShape, RateSchedule};
use bnm_time::OsKind;

use crate::config::{CellBuilder, ContentionSpec, ExperimentCell, RuntimeSel};
use crate::error::RunError;
use crate::exec::Executor;
use crate::recommend::{appraise_snapshot, MeasuredVerdict};
use crate::report::{fmt_num, json_num, json_string, LinkReport, Render, ReportSnapshot};

/// The method roster every scenario is run against: one representative
/// per transport family, each on the browser/OS pairing the paper (or
/// the extension) exercised it on. Combinations a scenario cannot run
/// (Table 2 feature matrix) are skipped, not errors.
const ROSTER: [(MethodId, BrowserKind, OsKind); 4] = [
    (MethodId::XhrGet, BrowserKind::Chrome, OsKind::Ubuntu1204),
    (MethodId::WebSocket, BrowserKind::Chrome, OsKind::Ubuntu1204),
    (MethodId::FlashGet, BrowserKind::Opera, OsKind::Windows7),
    (MethodId::WebRtc, BrowserKind::Chrome, OsKind::Ubuntu1204),
];

/// How many reps each cell gets in the two run modes.
const FULL_REPS: u32 = 25;
const QUICK_REPS: u32 = 5;

/// Battery parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatteryConfig {
    /// Repetitions per cell.
    pub reps: u32,
    /// Base seed shared by every cell (per-cell streams are derived).
    pub seed: u64,
}

impl Default for BatteryConfig {
    fn default() -> BatteryConfig {
        BatteryConfig {
            reps: FULL_REPS,
            seed: 0xB32B_2013,
        }
    }
}

impl BatteryConfig {
    /// The smoke-test configuration: few reps, same scenario coverage.
    pub fn quick() -> BatteryConfig {
        BatteryConfig {
            reps: QUICK_REPS,
            ..BatteryConfig::default()
        }
    }
}

/// The network scenarios the battery sweeps. Each is a deterministic
/// transformation of the paper's baseline cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatteryScenario {
    /// The unmodified Figure 2 testbed.
    Clean,
    /// 2 % symmetric loss plus 5 ms of path jitter.
    Impaired,
    /// Eight clients sharing a 2 Mbps server access link.
    Contended,
    /// Eight clients on a 0.4 Mbps link with the stock 256 KiB
    /// drop-tail queue — seconds of standing queue, the bufferbloat
    /// regime.
    Bufferbloat,
    /// The same bloated link under an RFC 8289 CoDel on both directions.
    BufferbloatAqm,
    /// A 2 Mbps downstream whose service rate collapses to 256 kbps for
    /// the first quarter of every 200 ms cycle (periodic cross-traffic).
    TimeVarying,
}

impl BatteryScenario {
    /// Every scenario, in report order.
    pub const ALL: [BatteryScenario; 6] = [
        BatteryScenario::Clean,
        BatteryScenario::Impaired,
        BatteryScenario::Contended,
        BatteryScenario::Bufferbloat,
        BatteryScenario::BufferbloatAqm,
        BatteryScenario::TimeVarying,
    ];

    /// Short machine-friendly name (CSV/JSON key).
    pub fn name(self) -> &'static str {
        match self {
            BatteryScenario::Clean => "clean",
            BatteryScenario::Impaired => "impaired",
            BatteryScenario::Contended => "contended",
            BatteryScenario::Bufferbloat => "bufferbloat",
            BatteryScenario::BufferbloatAqm => "bufferbloat-aqm",
            BatteryScenario::TimeVarying => "time-varying",
        }
    }

    /// One-line description for the text report.
    pub fn describe(self) -> &'static str {
        match self {
            BatteryScenario::Clean => "unimpaired paper testbed (Figure 2)",
            BatteryScenario::Impaired => "2% symmetric loss, 5 ms path jitter",
            BatteryScenario::Contended => "8 clients sharing a 2 Mbps server link",
            BatteryScenario::Bufferbloat => {
                "8 clients, 0.4 Mbps link, deep drop-tail queue (bufferbloat)"
            }
            BatteryScenario::BufferbloatAqm => "the bloated link under a CoDel AQM",
            BatteryScenario::TimeVarying => {
                "2 Mbps downstream dropping to 256 kbps a quarter of each 200 ms cycle"
            }
        }
    }

    /// Apply the scenario's network conditions to a cell builder.
    fn apply(self, b: CellBuilder) -> CellBuilder {
        match self {
            BatteryScenario::Clean => b,
            BatteryScenario::Impaired => {
                let spec = FaultSpec {
                    drop_chance: 0.02,
                    ..FaultSpec::CLEAN
                };
                b.impairment(Impairment {
                    up: spec,
                    down: spec,
                    jitter: SimDuration::from_millis(5),
                })
            }
            BatteryScenario::Contended => {
                b.contention(ContentionSpec::clients(8).with_server_link_rate(2_000_000))
            }
            BatteryScenario::Bufferbloat => {
                b.contention(ContentionSpec::clients(8).with_server_link_rate(400_000))
            }
            BatteryScenario::BufferbloatAqm => b
                .contention(ContentionSpec::clients(8).with_server_link_rate(400_000))
                .link_shape(LinkShape::symmetric(LinkDynamics::codel())),
            BatteryScenario::TimeVarying => b.link_shape(LinkShape {
                down_spec: Some(LinkSpec {
                    rate_bps: 2_000_000,
                    ..LinkSpec::fast_ethernet()
                }),
                down: LinkDynamics::scheduled(RateSchedule::OnOff {
                    period: SimDuration::from_millis(200),
                    on: SimDuration::from_millis(50),
                    on_bps: 256_000,
                }),
                ..LinkShape::default()
            }),
        }
    }
}

/// One method's scored appraisal within one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryEntry {
    /// The measurement-backed verdict ([`appraise_snapshot`]).
    pub verdict: MeasuredVerdict,
    /// [`MeasuredVerdict::score`], cached at fold time.
    pub score: f64,
    /// Server-link queue telemetry for the cell (drops + peak depth).
    pub link: Option<LinkReport>,
}

/// All methods' entries for one scenario, best score first.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Which scenario this is.
    pub scenario: BatteryScenario,
    /// Scored entries, descending score (ties break on label).
    pub entries: Vec<BatteryEntry>,
    /// Cell labels that ran but produced no appraisable samples.
    pub no_data: Vec<String>,
}

impl ScenarioOutcome {
    /// The winning entry, if any method produced samples.
    pub fn best(&self) -> Option<&BatteryEntry> {
        self.entries.first()
    }
}

/// The scored battery report — one [`Render`]able covering every
/// scenario family with per-method verdicts and ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryReport {
    /// The configuration the battery ran under.
    pub config: BatteryConfig,
    /// Per-scenario ranked outcomes, in [`BatteryScenario::ALL`] order.
    pub scenarios: Vec<ScenarioOutcome>,
}

/// Run the full battery on the given executor.
///
/// Builds every runnable `(scenario × roster)` cell, schedules them all
/// through `exec` in one batch (so the work parallelises across cells
/// *and* reps), then appraises and ranks each scenario's snapshots.
/// Table 2 `Unrunnable` combinations are skipped; any other build or
/// run error aborts the battery.
pub fn run_battery(cfg: &BatteryConfig, exec: &Executor) -> Result<BatteryReport, RunError> {
    let mut cells: Vec<ExperimentCell> = Vec::new();
    let mut owner: Vec<usize> = Vec::new();
    for (si, scenario) in BatteryScenario::ALL.iter().enumerate() {
        for (method, browser, os) in ROSTER {
            let b = ExperimentCell::builder(method, RuntimeSel::Browser(browser), os)
                .reps(cfg.reps)
                .seed(cfg.seed);
            match scenario.apply(b).build() {
                Ok(cell) => {
                    cells.push(cell);
                    owner.push(si);
                }
                Err(RunError::Unrunnable { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    let results = exec.run(&cells);
    let mut scenarios: Vec<ScenarioOutcome> = BatteryScenario::ALL
        .iter()
        .map(|s| ScenarioOutcome {
            scenario: *s,
            entries: Vec::new(),
            no_data: Vec::new(),
        })
        .collect();
    for ((cell, si), result) in cells.iter().zip(owner).zip(results) {
        let snap: ReportSnapshot = result?.summary(cell);
        match appraise_snapshot(&snap) {
            Some(verdict) => {
                let score = verdict.score();
                scenarios[si].entries.push(BatteryEntry {
                    verdict,
                    score,
                    link: snap.link,
                });
            }
            None => scenarios[si].no_data.push(snap.label),
        }
    }
    for s in &mut scenarios {
        s.entries.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.verdict.label.cmp(&b.verdict.label))
        });
    }
    Ok(BatteryReport {
        config: *cfg,
        scenarios,
    })
}

impl BatteryEntry {
    fn queue_drops(&self) -> u64 {
        self.link
            .map(|l| l.down_queue_drops + l.up_queue_drops)
            .unwrap_or(0)
    }

    fn queue_peak(&self) -> u64 {
        self.link
            .map(|l| l.down_queue_peak_bytes.max(l.up_queue_peak_bytes))
            .unwrap_or(0)
    }
}

impl Render for BatteryReport {
    fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bnm battery — scored method appraisal ({} reps/cell, seed {:#x})",
            self.config.reps, self.config.seed
        );
        for s in &self.scenarios {
            let _ = writeln!(out, "\n== {}: {}", s.scenario.name(), s.scenario.describe());
            let _ = writeln!(
                out,
                "{:<4} {:<28} {:<14} {:>6} {:>9} {:>8} {:>5} {:>5} {:>6} {:>8}",
                "rank",
                "method",
                "verdict",
                "score",
                "medΔd_ms",
                "iqr_ms",
                "n",
                "fail",
                "loss%",
                "qdrops"
            );
            for (i, e) in s.entries.iter().enumerate() {
                let v = &e.verdict;
                let _ = writeln!(
                    out,
                    "{:<4} {:<28} {:<14} {:>6.1} {:>9.3} {:>8.3} {:>5} {:>5} {:>6.2} {:>8}",
                    i + 1,
                    v.label,
                    format!("{:?}", v.verdict),
                    e.score,
                    v.median_ms,
                    v.iqr_ms,
                    v.samples,
                    v.failures,
                    v.loss_rate * 100.0,
                    e.queue_drops()
                );
            }
            for label in &s.no_data {
                let _ = writeln!(out, "-    {label:<22} (no appraisable samples)");
            }
        }
        out
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\"battery\":{");
        let _ = write!(
            out,
            "\"reps\":{},\"seed\":{},\"scenarios\":[",
            self.config.reps, self.config.seed
        );
        for (si, s) in self.scenarios.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"scenario\":{},\"description\":{},\"methods\":[",
                json_string(s.scenario.name()),
                json_string(s.scenario.describe())
            );
            for (i, e) in s.entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let v = &e.verdict;
                let _ = write!(
                    out,
                    "{{\"rank\":{},\"method\":{},\"verdict\":{},\"score\":{},\
                     \"median_ms\":{},\"iqr_ms\":{},\"samples\":{},\"failures\":{},\
                     \"loss_rate\":{},\"queue_drops\":{},\"queue_peak_bytes\":{}}}",
                    i + 1,
                    json_string(&v.label),
                    json_string(&format!("{:?}", v.verdict)),
                    json_num(e.score),
                    json_num(v.median_ms),
                    json_num(v.iqr_ms),
                    v.samples,
                    v.failures,
                    json_num(v.loss_rate),
                    e.queue_drops(),
                    e.queue_peak()
                );
            }
            out.push(']');
            if !s.no_data.is_empty() {
                let names: Vec<String> = s.no_data.iter().map(|l| json_string(l)).collect();
                let _ = write!(out, ",\"no_data\":[{}]", names.join(","));
            }
            out.push('}');
        }
        out.push_str("]}}");
        out.push('\n');
        out
    }

    fn to_csv(&self) -> String {
        let mut out = String::from(
            "scenario,rank,method,verdict,score,median_ms,iqr_ms,samples,failures,\
             loss_rate,queue_drops,queue_peak_bytes\n",
        );
        for s in &self.scenarios {
            for (i, e) in s.entries.iter().enumerate() {
                let v = &e.verdict;
                let label = if v.label.contains(',') {
                    format!("\"{}\"", v.label.replace('"', "\"\""))
                } else {
                    v.label.clone()
                };
                let _ = writeln!(
                    out,
                    "{},{},{},{:?},{},{},{},{},{},{},{},{}",
                    s.scenario.name(),
                    i + 1,
                    label,
                    v.verdict,
                    fmt_num(e.score),
                    fmt_num(v.median_ms),
                    fmt_num(v.iqr_ms),
                    v.samples,
                    v.failures,
                    fmt_num(v.loss_rate),
                    e.queue_drops(),
                    e.queue_peak()
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appraisal::Verdict;

    fn entry(label: &str, verdict: Verdict, median: f64) -> BatteryEntry {
        let v = MeasuredVerdict {
            label: label.to_string(),
            verdict,
            median_ms: median,
            iqr_ms: 1.0,
            samples: 10,
            failures: 0,
            loss_rate: 0.0,
        };
        let score = v.score();
        BatteryEntry {
            verdict: v,
            score,
            link: Some(LinkReport {
                down_queue_drops: 3,
                up_queue_drops: 1,
                down_queue_peak_bytes: 4096,
                up_queue_peak_bytes: 512,
            }),
        }
    }

    fn report() -> BatteryReport {
        BatteryReport {
            config: BatteryConfig::quick(),
            scenarios: vec![ScenarioOutcome {
                scenario: BatteryScenario::Clean,
                entries: vec![
                    entry("WebSocket / C (U)", Verdict::Accurate, 0.4),
                    entry("Flash GET / O (W)", Verdict::Calibratable, 80.0),
                ],
                no_data: vec!["Broken / C (U)".to_string()],
            }],
        }
    }

    #[test]
    fn scenarios_cover_five_distinct_families() {
        // The acceptance bar: clean, impaired, contended, bufferbloat
        // and time-varying must all be present (AQM rides along).
        let names: Vec<&str> = BatteryScenario::ALL.iter().map(|s| s.name()).collect();
        for required in [
            "clean",
            "impaired",
            "contended",
            "bufferbloat",
            "bufferbloat-aqm",
            "time-varying",
        ] {
            assert!(names.contains(&required), "missing scenario {required}");
        }
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn scenario_transforms_build_valid_cells() {
        for scenario in BatteryScenario::ALL {
            let b = ExperimentCell::builder(
                MethodId::WebSocket,
                RuntimeSel::Browser(BrowserKind::Chrome),
                OsKind::Ubuntu1204,
            )
            .reps(1)
            .seed(7);
            let cell = scenario
                .apply(b)
                .build()
                .unwrap_or_else(|e| panic!("{scenario:?} must build: {e}"));
            match scenario {
                BatteryScenario::Clean => assert!(cell.link_shape.is_static()),
                BatteryScenario::BufferbloatAqm | BatteryScenario::TimeVarying => {
                    assert!(!cell.link_shape.is_static())
                }
                _ => {}
            }
        }
    }

    #[test]
    fn report_renders_ranked_rows_in_all_formats() {
        let r = report();
        let text = r.to_text();
        assert!(text.contains("== clean:"));
        assert!(text.contains("WebSocket / C (U)"));
        assert!(text.contains("no appraisable samples"));
        // WebSocket outranks Flash in the fixture.
        let ws = text.find("WebSocket").unwrap();
        let flash = text.find("Flash GET").unwrap();
        assert!(ws < flash);

        let json = r.to_json();
        assert!(json.starts_with("{\"battery\":{"));
        assert!(json.contains("\"scenario\":\"clean\""));
        assert!(json.contains("\"rank\":1,\"method\":\"WebSocket / C (U)\""));
        assert!(json.contains("\"no_data\":[\"Broken / C (U)\"]"));
        assert!(json.contains("\"queue_drops\":4"));
        assert!(json.contains("\"queue_peak_bytes\":4096"));

        let csv = r.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "scenario,rank,method,verdict,score,median_ms,iqr_ms,samples,failures,\
             loss_rate,queue_drops,queue_peak_bytes"
        );
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("clean,1,"));
    }

    #[test]
    fn quick_battery_runs_and_ranks_deterministically() {
        // Tiny end-to-end run: every scenario family appears, scores are
        // finite, and the same config reproduces the identical report.
        let cfg = BatteryConfig {
            reps: 1,
            seed: 0xBA77_0001,
        };
        let exec = Executor::serial();
        let a = run_battery(&cfg, &exec).expect("battery runs");
        assert_eq!(a.scenarios.len(), BatteryScenario::ALL.len());
        for s in &a.scenarios {
            assert!(
                !s.entries.is_empty() || !s.no_data.is_empty(),
                "{:?} produced nothing",
                s.scenario
            );
            for e in &s.entries {
                assert!(e.score.is_finite() && (0.0..=100.0).contains(&e.score));
                assert!(e.link.is_some(), "batch snapshots carry link telemetry");
            }
            for pair in s.entries.windows(2) {
                assert!(pair[0].score >= pair[1].score, "entries must be ranked");
            }
        }
        let b = run_battery(&cfg, &exec).expect("battery reruns");
        assert_eq!(a.to_json(), b.to_json(), "same seed, same report");
    }
}
