//! Shared frame-parsing helpers for capture analysis.
//!
//! Both the client-side matcher ([`crate::matching`]) and the
//! server-side overhead appraisal ([`crate::server_side`]) grep
//! transport payloads out of raw captured frames. The two modules used
//! to carry verbatim copies of these helpers; they live here once.

use bnm_sim::wire::{ParsedPacket, Transport};
use bytes::Bytes;

/// Transport payload of a captured frame, if it parses.
///
/// Returns the parser's own refcounted payload view — no extra copy is
/// made for the caller. Frames that fail to parse, and transports
/// without a greppable payload (ICMP, unknown), yield `None`, exactly
/// as a checksum-filtering analyst would drop them.
pub fn payload_of(frame: &[u8]) -> Option<Bytes> {
    let parsed = ParsedPacket::parse(frame).ok()?;
    match parsed.transport {
        Transport::Tcp(seg) => Some(seg.payload),
        Transport::Udp(d) => Some(d.payload),
        Transport::Icmp(_) | Transport::Other(_) => None,
    }
}

/// Substring search (the capture analyst's `grep`).
pub fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    !needle.is_empty() && haystack.windows(needle.len()).any(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnm_sim::wire::{
        EtherType, EthernetFrame, IpProtocol, Ipv4Packet, MacAddr, TcpFlags, TcpSegment,
        UdpDatagram,
    };
    use std::net::Ipv4Addr;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn wrap(protocol: IpProtocol, payload: Bytes) -> Bytes {
        let ip = Ipv4Packet {
            src: A,
            dst: B,
            protocol,
            ttl: 64,
            ident: 1,
            payload,
        };
        EthernetFrame {
            dst: MacAddr([2; 6]),
            src: MacAddr([1; 6]),
            ethertype: EtherType::Ipv4,
            payload: ip.emit(),
        }
        .emit()
    }

    #[test]
    fn tcp_payload_extracted() {
        let seg = TcpSegment {
            src_port: 5,
            dst_port: 80,
            seq: 1,
            ack: 1,
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 1000,
            mss: None,
            payload: Bytes::from_static(b"m=xhr_get&r=1&t=7"),
        };
        let frame = wrap(IpProtocol::Tcp, seg.emit(A, B));
        let p = payload_of(&frame).expect("parses");
        assert_eq!(&p[..], b"m=xhr_get&r=1&t=7");
    }

    #[test]
    fn udp_payload_extracted() {
        let dgram = UdpDatagram {
            src_port: 5,
            dst_port: 53,
            payload: Bytes::from_static(b"probe"),
        };
        let frame = wrap(IpProtocol::Udp, dgram.emit(A, B));
        assert_eq!(&payload_of(&frame).unwrap()[..], b"probe");
    }

    #[test]
    fn garbage_yields_none() {
        assert!(payload_of(b"not a frame").is_none());
        assert!(payload_of(&[]).is_none());
    }

    #[test]
    fn contains_finds_substrings() {
        assert!(contains(b"xx pong r=1 t=0 yy", b"pong r=1 t=0 "));
        assert!(!contains(b"pong r=1", b"pong r=10"));
        assert!(!contains(b"anything", b""), "empty needle never matches");
        assert!(contains(b"abc", b"abc"));
    }
}
