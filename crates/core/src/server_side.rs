//! Server-side overhead appraisal — the paper's §7 future-work item
//! ("another extension is to investigate the delay overhead incurred on
//! the server side"), implemented.
//!
//! The same capture-based methodology, mirrored: at the **server's** NIC,
//! a probe request is an `Rx` record and its response a `Tx` record. The
//! time between them, minus the configured handler delay, is the server
//! stack's own processing overhead — the bias the client-side RTT
//! subtraction silently absorbs.

use bnm_methods::MethodId;
use bnm_sim::capture::{CaptureBuffer, CaptureDir};
use bnm_sim::time::SimTime;

use crate::frames::{contains, payload_of};
use crate::matching::{request_marker, response_marker, MatchError};

/// Server-side timestamps of one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerTimes {
    /// Request arrival at the server NIC.
    pub request_rx: SimTime,
    /// Response departure from the server NIC.
    pub response_tx: SimTime,
}

impl ServerTimes {
    /// Total server turnaround, ms.
    pub fn turnaround_ms(&self) -> f64 {
        self.response_tx.signed_millis_since(self.request_rx)
    }

    /// Turnaround minus the configured application handler delay: the
    /// server stack's own overhead, ms.
    pub fn overhead_ms(&self, handler_delay_ms: f64) -> f64 {
        self.turnaround_ms() - handler_delay_ms
    }
}

/// Match one round in a **server-side** capture.
pub fn match_server_round(
    capture: &CaptureBuffer,
    method: MethodId,
    round: u8,
    token: u64,
) -> Result<ServerTimes, MatchError> {
    let req = request_marker(method, round, token);
    let resp = response_marker(method, round, token);
    let mut rx = None;
    let mut tx = None;
    for rec in capture.records() {
        let Some(payload) = payload_of(&rec.frame) else {
            continue;
        };
        match rec.dir {
            CaptureDir::Rx => {
                if rx.is_none() && contains(&payload, &req) {
                    rx = Some(rec.ts);
                }
            }
            CaptureDir::Tx => {
                // Only accept a response after the request was seen —
                // echo transports reuse the same bytes in both directions.
                if rx.is_some() && tx.is_none() && contains(&payload, &resp) {
                    tx = Some(rec.ts);
                }
            }
        }
        if rx.is_some() && tx.is_some() {
            break;
        }
    }
    match (rx, tx) {
        (None, _) => Err(MatchError::RequestNotFound),
        (_, None) => Err(MatchError::ResponseNotFound),
        (Some(r), Some(t)) => {
            if t < r {
                Err(MatchError::OutOfOrder)
            } else {
                Ok(ServerTimes {
                    request_rx: r,
                    response_tx: t,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentCell, RuntimeSel};
    use crate::runner::ExperimentRunner;
    use crate::testbed::{Testbed, TestbedConfig};
    use bnm_browser::{BrowserKind, BrowserProfile};
    use bnm_time::{MachineTimer, OsKind};

    #[test]
    fn server_turnaround_is_small_without_handler_delay() {
        let cell = ExperimentCell::paper(
            MethodId::XhrGet,
            RuntimeSel::Browser(BrowserKind::Chrome),
            OsKind::Ubuntu1204,
        );
        let profile = ExperimentRunner::try_profile(&cell).unwrap();
        let machine = MachineTimer::new(cell.os, 5);
        let mut tb = Testbed::build(
            &TestbedConfig::default(),
            cell.method.plan(None),
            profile,
            machine,
            0,
            5,
        );
        tb.run();
        let cap = tb.engine.tap(tb.server_tap);
        for round in [1u8, 2] {
            let st = match_server_round(cap, MethodId::XhrGet, round, 0).unwrap();
            let t = st.turnaround_ms();
            // No handler delay configured: the server's stack answers in
            // well under a millisecond of virtual time.
            assert!((0.0..1.0).contains(&t), "round {round} turnaround {t}");
            assert!(st.overhead_ms(0.0) < 1.0);
        }
    }

    #[test]
    fn handler_delay_is_visible_and_subtractable() {
        let profile = BrowserProfile::build(BrowserKind::Chrome, OsKind::Ubuntu1204).unwrap();
        let machine = MachineTimer::new(OsKind::Ubuntu1204, 5);
        let mut cfg = TestbedConfig::default();
        cfg.server.handler_delay = bnm_sim::time::SimDuration::from_millis(8);
        let mut tb = Testbed::build(&cfg, MethodId::XhrGet.plan(None), profile, machine, 0, 5);
        tb.run();
        let cap = tb.engine.tap(tb.server_tap);
        let st = match_server_round(cap, MethodId::XhrGet, 1, 0).unwrap();
        assert!(st.turnaround_ms() >= 8.0);
        let overhead = st.overhead_ms(8.0);
        assert!((0.0..1.0).contains(&overhead), "overhead {overhead}");
    }

    #[test]
    fn echo_rounds_match_on_server_side_too() {
        let cell = ExperimentCell::paper(
            MethodId::JavaTcp,
            RuntimeSel::Browser(BrowserKind::Firefox),
            OsKind::Ubuntu1204,
        );
        let profile = ExperimentRunner::try_profile(&cell).unwrap();
        let machine = MachineTimer::new(cell.os, 6);
        let mut tb = Testbed::build(
            &TestbedConfig::default(),
            cell.method.plan(None),
            profile,
            machine,
            3,
            6,
        );
        tb.run();
        let cap = tb.engine.tap(tb.server_tap);
        let st = match_server_round(cap, MethodId::JavaTcp, 2, 3).unwrap();
        assert!(st.turnaround_ms() < 1.0);
    }
}
