//! Ground-truth recovery from capture traces.
//!
//! This is the WinDump half of the paper's methodology: `tN_s` is the
//! capture timestamp of the packet carrying the round's request, `tN_r`
//! that of the packet carrying its response. The matcher **parses raw
//! frames** with `bnm-sim`'s wire parsers and greps transport payloads for
//! the probe markers the session embeds — exactly what one does with a
//! real pcap, and deliberately ignorant of simulator internals.

use bnm_methods::MethodId;
use bnm_sim::capture::{CaptureBuffer, CaptureDir};
use bnm_sim::time::SimTime;
use bytes::Bytes;

use crate::frames::{contains, payload_of};

/// Network-level timestamps of one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTimes {
    /// Capture stamp of the request packet leaving the client.
    pub tn_s: SimTime,
    /// Capture stamp of the response packet arriving at the client.
    pub tn_r: SimTime,
}

/// Why matching failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchError {
    /// No transmitted packet carried the round's request marker.
    RequestNotFound,
    /// No received packet carried the round's response marker.
    ResponseNotFound,
    /// A response was captured before the request (trace corruption).
    OutOfOrder,
    /// A marker of the round appeared in more than one packet of the
    /// same direction: the probe (or its response) was retransmitted or
    /// duplicated on the wire. The paper excludes such rounds — a
    /// retransmission inflates the network RTT estimate without the
    /// browser seeing anything unusual, so Δd would absorb the whole
    /// retransmission timeout.
    Retransmitted,
}

impl std::fmt::Display for MatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MatchError::RequestNotFound => "no captured packet carried the request marker",
            MatchError::ResponseNotFound => "no captured packet carried the response marker",
            MatchError::OutOfOrder => "response captured before its request",
            MatchError::Retransmitted => "a probe marker was retransmitted on the wire",
        })
    }
}

impl std::error::Error for MatchError {}

/// The request marker the session embeds for (method, round, token).
pub fn request_marker(method: MethodId, round: u8, token: u64) -> Vec<u8> {
    if method.is_http_based() {
        format!("m={}&r={}&t={}", method.label(), round, token).into_bytes()
    } else {
        format!("probe m={} r={} t={} ", method.label(), round, token).into_bytes()
    }
}

/// The response marker.
pub fn response_marker(method: MethodId, round: u8, token: u64) -> Vec<u8> {
    if method.is_http_based() {
        format!("pong r={} t={} ", round, token).into_bytes()
    } else {
        // Echo transports return the request payload verbatim.
        request_marker(method, round, token)
    }
}

/// A capture whose frames have been parsed once, ready for repeated
/// round matching.
///
/// [`match_round`] used to re-parse every frame for every round —
/// O(rounds × frames) wire decoding per repetition. Parsing up front
/// makes matching all of a session's rounds a single pass over the
/// trace, and is what the retransmission check needs anyway: it must
/// scan *every* record (no early exit) to count duplicate marker hits.
#[derive(Debug, Clone)]
pub struct ParsedCapture {
    /// `(stamp, direction, transport payload)` of every frame that
    /// parsed; corrupted or non-TCP/UDP frames are dropped, exactly as a
    /// checksum-filtering analyst would drop them. Payloads are
    /// refcounted views into the parser's buffers, not copies.
    records: Vec<(SimTime, CaptureDir, Bytes)>,
}

impl ParsedCapture {
    /// Parse every frame of a capture once.
    pub fn parse(capture: &CaptureBuffer) -> ParsedCapture {
        ParsedCapture {
            records: capture
                .records()
                .iter()
                .filter_map(|rec| payload_of(&rec.frame).map(|p| (rec.ts, rec.dir, p)))
                .collect(),
        }
    }

    /// Parse records that were [`CaptureBuffer::drain`]ed out of their
    /// tap — the owned-record path the parallel matcher hands worker
    /// threads, since a drained `Vec<CaptureRecord>` is `Send` while a
    /// whole engine is not. Identical filtering to [`Self::parse`].
    pub fn parse_records(records: &[bnm_sim::CaptureRecord]) -> ParsedCapture {
        ParsedCapture {
            records: records
                .iter()
                .filter_map(|rec| payload_of(&rec.frame).map(|p| (rec.ts, rec.dir, p)))
                .collect(),
        }
    }

    /// Capture stamps of all records in `dir` whose payload carries
    /// `marker`, in capture order.
    pub fn hits(&self, dir: CaptureDir, marker: &[u8]) -> Vec<SimTime> {
        self.records
            .iter()
            .filter(|(_, d, p)| *d == dir && contains(p, marker))
            .map(|(ts, _, _)| *ts)
            .collect()
    }

    /// Find `tN_s`/`tN_r` for one round in a client-side capture.
    ///
    /// The whole trace is scanned: a marker seen in more than one packet
    /// of the same direction means the probe was retransmitted (lost or
    /// corrupted upstream) or duplicated (downstream), and the round is
    /// reported as [`MatchError::Retransmitted`].
    pub fn match_round(
        &self,
        method: MethodId,
        round: u8,
        token: u64,
    ) -> Result<WireTimes, MatchError> {
        let tx = self.hits(CaptureDir::Tx, &request_marker(method, round, token));
        let rx = self.hits(CaptureDir::Rx, &response_marker(method, round, token));
        if tx.len() > 1 || rx.len() > 1 {
            return Err(MatchError::Retransmitted);
        }
        match (tx.first(), rx.first()) {
            (None, _) => Err(MatchError::RequestNotFound),
            (_, None) => Err(MatchError::ResponseNotFound),
            (Some(&s), Some(&r)) => {
                if r < s {
                    Err(MatchError::OutOfOrder)
                } else {
                    Ok(WireTimes { tn_s: s, tn_r: r })
                }
            }
        }
    }

    /// Whether either of the round's markers appears more than once in
    /// any one direction of this capture.
    ///
    /// This is the *server-side* half of the exclusion rule: when the
    /// response is dropped downstream, the client sees each marker
    /// exactly once (only the retransmission arrives) — but the server's
    /// capture records the response leaving twice. The paper ran
    /// WinDump on both machines for exactly this reason.
    pub fn round_retransmitted(&self, method: MethodId, round: u8, token: u64) -> bool {
        let req = request_marker(method, round, token);
        let resp = response_marker(method, round, token);
        [CaptureDir::Tx, CaptureDir::Rx]
            .iter()
            .any(|&d| self.hits(d, &req).len() > 1 || self.hits(d, &resp).len() > 1)
    }
}

/// Delivery status of one datagram probe, judged from both taps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeStatus {
    /// Probe reached the server and its echo reached the client.
    Delivered,
    /// Probe left the client but never appeared at the server tap.
    LostUpstream,
    /// Echo left the server but never appeared at the client tap.
    LostDownstream,
}

/// Wire-truth verdict for one sequence-numbered datagram probe.
///
/// Unlike the TCP matcher, a duplicated or reordered datagram is *not* an
/// exclusion: there is no transport retransmitting underneath the
/// browser, so every on-wire event is the probe itself. Datagram rounds
/// are therefore appraised per probe — delivered probes yield one-way
/// delays, the rest become the loss statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeVerdict {
    /// Sequence number (1-based, mirrors the session's round numbers).
    pub seq: u8,
    /// Delivery outcome.
    pub status: ProbeStatus,
    /// A copy of the probe or its echo appeared more than once in one
    /// direction of either tap.
    pub duplicated: bool,
    /// The echo arrived at the client after the echo of a higher
    /// sequence number (RFC 4737-style reordering, judged at arrival).
    pub reordered: bool,
    /// Client-tap stamps, for the Δd pipeline. `Some` iff delivered.
    pub wire: Option<WireTimes>,
    /// Client Tx → server Rx, ms. `Some` when the probe reached the
    /// server, even if its echo was later lost downstream.
    pub owd_up_ms: Option<f64>,
    /// Server Tx → client Rx, ms. `Some` iff delivered.
    pub owd_down_ms: Option<f64>,
}

/// Match every probe of a datagram train against both taps.
///
/// `client` and `server` are the two WinDump views. For each sequence
/// number `1..=train_len` the probe marker is searched in all four
/// (tap, direction) quadrants: client-Tx is the probe leaving, server-Rx
/// the probe arriving, server-Tx the echo leaving, client-Rx the echo
/// arriving. Echo transports reuse the request bytes, so direction is
/// the only disambiguator — same trick as [`match_round`], applied
/// across two captures.
///
/// Verdicts are returned in sequence order; reordering is judged from
/// client-Rx arrival stamps across the whole train.
pub fn match_datagram_train(
    client: &ParsedCapture,
    server: &ParsedCapture,
    method: MethodId,
    train_len: u8,
    token: u64,
) -> Vec<ProbeVerdict> {
    let mut verdicts: Vec<ProbeVerdict> = (1..=train_len)
        .map(|seq| {
            let marker = request_marker(method, seq, token);
            let probe_tx = client.hits(CaptureDir::Tx, &marker);
            let probe_at_server = server.hits(CaptureDir::Rx, &marker);
            let echo_tx = server.hits(CaptureDir::Tx, &marker);
            let echo_rx = client.hits(CaptureDir::Rx, &marker);
            let duplicated = [&probe_tx, &probe_at_server, &echo_tx, &echo_rx]
                .iter()
                .any(|h| h.len() > 1);
            let status = if probe_at_server.is_empty() {
                ProbeStatus::LostUpstream
            } else if echo_rx.is_empty() {
                ProbeStatus::LostDownstream
            } else {
                ProbeStatus::Delivered
            };
            let owd_up_ms = match (probe_tx.first(), probe_at_server.first()) {
                (Some(&s), Some(&r)) => Some(r.signed_millis_since(s)),
                _ => None,
            };
            let owd_down_ms = match (echo_tx.first(), echo_rx.first()) {
                (Some(&s), Some(&r)) => Some(r.signed_millis_since(s)),
                _ => None,
            };
            let wire = match (probe_tx.first(), echo_rx.first()) {
                (Some(&s), Some(&r)) if status == ProbeStatus::Delivered => {
                    Some(WireTimes { tn_s: s, tn_r: r })
                }
                _ => None,
            };
            ProbeVerdict {
                seq,
                status,
                duplicated,
                reordered: false,
                wire,
                owd_up_ms,
                owd_down_ms,
            }
        })
        .collect();

    // Reordering: walk delivered echoes in client-arrival order; a probe
    // arriving after one with a higher sequence number is reordered.
    let mut arrivals: Vec<(SimTime, u8)> = verdicts
        .iter()
        .filter_map(|v| v.wire.map(|w| (w.tn_r, v.seq)))
        .collect();
    arrivals.sort();
    let mut max_seq = 0u8;
    for (_, seq) in arrivals {
        if seq < max_seq {
            verdicts[seq as usize - 1].reordered = true;
        } else {
            max_seq = seq;
        }
    }
    verdicts
}

/// Find `tN_s`/`tN_r` for one round in a client-side capture.
///
/// One-shot convenience over [`ParsedCapture`]; callers matching many
/// rounds of the same capture should parse once and reuse it.
pub fn match_round(
    capture: &CaptureBuffer,
    method: MethodId,
    round: u8,
    token: u64,
) -> Result<WireTimes, MatchError> {
    ParsedCapture::parse(capture).match_round(method, round, token)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::net::Ipv4Addr;

    use bnm_sim::wire::{
        EtherType, EthernetFrame, IpProtocol, Ipv4Packet, MacAddr, TcpFlags, TcpSegment,
    };

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn tcp_frame(payload: &[u8], src_port: u16, dst_port: u16) -> Bytes {
        let seg = TcpSegment {
            src_port,
            dst_port,
            seq: 1,
            ack: 1,
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 1000,
            mss: None,
            payload: Bytes::copy_from_slice(payload),
        };
        let ip = Ipv4Packet {
            src: A,
            dst: B,
            protocol: IpProtocol::Tcp,
            ttl: 64,
            ident: 1,
            payload: seg.emit(A, B),
        };
        EthernetFrame {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            ethertype: EtherType::Ipv4,
            payload: ip.emit(),
        }
        .emit()
    }

    fn capture_with(records: &[(u64, CaptureDir, &[u8])]) -> CaptureBuffer {
        let mut buf = CaptureBuffer::new("test");
        for (ms, dir, payload) in records {
            buf.record(SimTime::from_millis(*ms), *dir, tcp_frame(payload, 5, 80));
        }
        buf
    }

    fn udp_frame(payload: &[u8]) -> Bytes {
        let dgram = bnm_sim::wire::UdpDatagram {
            src_port: 40000,
            dst_port: 3478,
            payload: Bytes::copy_from_slice(payload),
        };
        let ip = Ipv4Packet {
            src: A,
            dst: B,
            protocol: IpProtocol::Udp,
            ttl: 64,
            ident: 1,
            payload: dgram.emit(A, B),
        };
        EthernetFrame {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            ethertype: EtherType::Ipv4,
            payload: ip.emit(),
        }
        .emit()
    }

    /// Build a parsed capture of datagram probes, each record a DATA
    /// chunk wrapping the probe marker — the shape the webrtc session
    /// puts on the wire.
    fn datagram_capture(records: &[(u64, CaptureDir, u8)], token: u64) -> ParsedCapture {
        let mut buf = CaptureBuffer::new("dgram");
        for (us, dir, seq) in records {
            let marker = request_marker(MethodId::WebRtc, *seq, token);
            let chunk = bnm_sim::wire::DataChunk::data(1, *seq as u32, Bytes::from(marker));
            buf.record(
                SimTime::from_micros(*us),
                *dir,
                udp_frame(chunk.emit().as_ref()),
            );
        }
        ParsedCapture::parse(&buf)
    }

    #[test]
    fn datagram_train_all_delivered() {
        let token = 9;
        // Probes 1..=3, 20 ms apart, 25 ms each way.
        let client = datagram_capture(
            &[
                (0, CaptureDir::Tx, 1),
                (20_000, CaptureDir::Tx, 2),
                (40_000, CaptureDir::Tx, 3),
                (50_000, CaptureDir::Rx, 1),
                (70_000, CaptureDir::Rx, 2),
                (90_000, CaptureDir::Rx, 3),
            ],
            token,
        );
        let server = datagram_capture(
            &[
                (25_000, CaptureDir::Rx, 1),
                (25_100, CaptureDir::Tx, 1),
                (45_000, CaptureDir::Rx, 2),
                (45_100, CaptureDir::Tx, 2),
                (65_000, CaptureDir::Rx, 3),
                (65_100, CaptureDir::Tx, 3),
            ],
            token,
        );
        let v = match_datagram_train(&client, &server, MethodId::WebRtc, 3, token);
        assert_eq!(v.len(), 3);
        for (i, p) in v.iter().enumerate() {
            assert_eq!(p.seq as usize, i + 1);
            assert_eq!(p.status, ProbeStatus::Delivered);
            assert!(!p.duplicated && !p.reordered);
            assert!((p.owd_up_ms.unwrap() - 25.0).abs() < 1e-9);
            assert!((p.owd_down_ms.unwrap() - 24.9).abs() < 1e-9);
        }
        let w = v[1].wire.unwrap();
        assert_eq!(w.tn_s, SimTime::from_micros(20_000));
        assert_eq!(w.tn_r, SimTime::from_micros(70_000));
    }

    #[test]
    fn datagram_losses_are_attributed_to_a_direction() {
        let token = 4;
        // Probe 1 lost upstream (never reaches the server); probe 2's
        // echo lost downstream; probe 3 delivered.
        let client = datagram_capture(
            &[
                (0, CaptureDir::Tx, 1),
                (20_000, CaptureDir::Tx, 2),
                (40_000, CaptureDir::Tx, 3),
                (90_000, CaptureDir::Rx, 3),
            ],
            token,
        );
        let server = datagram_capture(
            &[
                (45_000, CaptureDir::Rx, 2),
                (45_100, CaptureDir::Tx, 2),
                (65_000, CaptureDir::Rx, 3),
                (65_100, CaptureDir::Tx, 3),
            ],
            token,
        );
        let v = match_datagram_train(&client, &server, MethodId::WebRtc, 3, token);
        assert_eq!(v[0].status, ProbeStatus::LostUpstream);
        assert!(v[0].wire.is_none() && v[0].owd_up_ms.is_none());
        assert_eq!(v[1].status, ProbeStatus::LostDownstream);
        // The upstream leg still yields a one-way delay.
        assert!((v[1].owd_up_ms.unwrap() - 25.0).abs() < 1e-9);
        assert!(v[1].owd_down_ms.is_none() && v[1].wire.is_none());
        assert_eq!(v[2].status, ProbeStatus::Delivered);
    }

    #[test]
    fn datagram_reordering_judged_at_client_arrival() {
        let token = 2;
        // Echo of probe 2 overtakes echo of probe 3? No — probe 2's echo
        // arrives AFTER probe 3's: probe 2 is the reordered one.
        let client = datagram_capture(
            &[
                (0, CaptureDir::Tx, 1),
                (20_000, CaptureDir::Tx, 2),
                (40_000, CaptureDir::Tx, 3),
                (50_000, CaptureDir::Rx, 1),
                (90_000, CaptureDir::Rx, 3),
                (95_000, CaptureDir::Rx, 2),
            ],
            token,
        );
        let server = datagram_capture(
            &[
                (25_000, CaptureDir::Rx, 1),
                (25_100, CaptureDir::Tx, 1),
                (45_000, CaptureDir::Rx, 2),
                (45_100, CaptureDir::Tx, 2),
                (65_000, CaptureDir::Rx, 3),
                (65_100, CaptureDir::Tx, 3),
            ],
            token,
        );
        let v = match_datagram_train(&client, &server, MethodId::WebRtc, 3, token);
        assert!(!v[0].reordered);
        assert!(v[1].reordered, "late probe 2 must be flagged");
        assert!(!v[2].reordered);
        assert_eq!(v[1].status, ProbeStatus::Delivered);
    }

    #[test]
    fn datagram_duplicate_is_flagged_not_excluded() {
        let token = 6;
        let client = datagram_capture(
            &[
                (0, CaptureDir::Tx, 1),
                (50_000, CaptureDir::Rx, 1),
                (51_000, CaptureDir::Rx, 1), // duplicated echo
            ],
            token,
        );
        let server = datagram_capture(
            &[(25_000, CaptureDir::Rx, 1), (25_100, CaptureDir::Tx, 1)],
            token,
        );
        let v = match_datagram_train(&client, &server, MethodId::WebRtc, 1, token);
        assert_eq!(v[0].status, ProbeStatus::Delivered);
        assert!(v[0].duplicated);
        // First arrival is the one that counts.
        assert_eq!(v[0].wire.unwrap().tn_r, SimTime::from_micros(50_000));
    }

    #[test]
    fn http_round_matches() {
        let cap = capture_with(&[
            (
                10,
                CaptureDir::Tx,
                b"GET /probe?m=xhr_get&r=1&t=7 HTTP/1.1\r\n\r\n",
            ),
            (
                61,
                CaptureDir::Rx,
                b"HTTP/1.1 200 OK\r\n\r\npong r=1 t=7 .....",
            ),
        ]);
        let wt = match_round(&cap, MethodId::XhrGet, 1, 7).unwrap();
        assert_eq!(wt.tn_s, SimTime::from_millis(10));
        assert_eq!(wt.tn_r, SimTime::from_millis(61));
    }

    #[test]
    fn rounds_do_not_cross_match() {
        let cap = capture_with(&[
            (
                10,
                CaptureDir::Tx,
                b"GET /probe?m=xhr_get&r=1&t=7 HTTP/1.1\r\n\r\n",
            ),
            (
                61,
                CaptureDir::Rx,
                b"HTTP/1.1 200 OK\r\n\r\npong r=1 t=7 .....",
            ),
            (
                80,
                CaptureDir::Tx,
                b"GET /probe?m=xhr_get&r=2&t=7 HTTP/1.1\r\n\r\n",
            ),
            (
                131,
                CaptureDir::Rx,
                b"HTTP/1.1 200 OK\r\n\r\npong r=2 t=7 .....",
            ),
        ]);
        let r2 = match_round(&cap, MethodId::XhrGet, 2, 7).unwrap();
        assert_eq!(r2.tn_s, SimTime::from_millis(80));
        assert_eq!(r2.tn_r, SimTime::from_millis(131));
    }

    #[test]
    fn echo_transport_distinguishes_by_direction() {
        let marker = b"probe m=java_tcp r=1 t=3 .......";
        let cap = capture_with(&[
            (5, CaptureDir::Tx, marker),
            (55, CaptureDir::Rx, marker), // identical bytes echoed back
        ]);
        let wt = match_round(&cap, MethodId::JavaTcp, 1, 3).unwrap();
        assert_eq!(wt.tn_s, SimTime::from_millis(5));
        assert_eq!(wt.tn_r, SimTime::from_millis(55));
    }

    #[test]
    fn missing_response_reported() {
        let cap = capture_with(&[(5, CaptureDir::Tx, b"m=xhr_get&r=1&t=0")]);
        assert_eq!(
            match_round(&cap, MethodId::XhrGet, 1, 0).unwrap_err(),
            MatchError::ResponseNotFound
        );
    }

    #[test]
    fn missing_request_reported() {
        let cap = capture_with(&[(5, CaptureDir::Rx, b"pong r=1 t=0 ")]);
        assert_eq!(
            match_round(&cap, MethodId::XhrGet, 1, 0).unwrap_err(),
            MatchError::RequestNotFound
        );
    }

    #[test]
    fn out_of_order_reported() {
        let cap = capture_with(&[
            (60, CaptureDir::Tx, b"m=xhr_get&r=1&t=0"),
            (5, CaptureDir::Rx, b"pong r=1 t=0 "),
        ]);
        assert_eq!(
            match_round(&cap, MethodId::XhrGet, 1, 0).unwrap_err(),
            MatchError::OutOfOrder
        );
    }

    #[test]
    fn tokens_disambiguate_repetitions() {
        let cap = capture_with(&[
            (10, CaptureDir::Tx, b"m=xhr_get&r=1&t=1 "),
            (20, CaptureDir::Rx, b"pong r=1 t=1 "),
            (30, CaptureDir::Tx, b"m=xhr_get&r=1&t=2 "),
            (40, CaptureDir::Rx, b"pong r=1 t=2 "),
        ]);
        let wt = match_round(&cap, MethodId::XhrGet, 1, 2).unwrap();
        assert_eq!(wt.tn_s, SimTime::from_millis(30));
    }

    #[test]
    fn retransmitted_request_is_reported() {
        // The client's first copy was lost upstream; its TCP layer sent
        // the marker again 200 ms later. Both show in the Tx capture.
        let cap = capture_with(&[
            (10, CaptureDir::Tx, b"m=xhr_get&r=1&t=7 "),
            (210, CaptureDir::Tx, b"m=xhr_get&r=1&t=7 "),
            (261, CaptureDir::Rx, b"pong r=1 t=7 "),
        ]);
        assert_eq!(
            match_round(&cap, MethodId::XhrGet, 1, 7).unwrap_err(),
            MatchError::Retransmitted
        );
    }

    #[test]
    fn duplicated_response_is_reported() {
        let cap = capture_with(&[
            (10, CaptureDir::Tx, b"m=xhr_get&r=1&t=7 "),
            (61, CaptureDir::Rx, b"pong r=1 t=7 "),
            (62, CaptureDir::Rx, b"pong r=1 t=7 "),
        ]);
        assert_eq!(
            match_round(&cap, MethodId::XhrGet, 1, 7).unwrap_err(),
            MatchError::Retransmitted
        );
    }

    #[test]
    fn retransmission_in_one_round_leaves_others_matchable() {
        let cap = capture_with(&[
            (10, CaptureDir::Tx, b"m=xhr_get&r=1&t=7 "),
            (210, CaptureDir::Tx, b"m=xhr_get&r=1&t=7 "),
            (261, CaptureDir::Rx, b"pong r=1 t=7 "),
            (300, CaptureDir::Tx, b"m=xhr_get&r=2&t=7 "),
            (351, CaptureDir::Rx, b"pong r=2 t=7 "),
        ]);
        let parsed = ParsedCapture::parse(&cap);
        assert_eq!(
            parsed.match_round(MethodId::XhrGet, 1, 7).unwrap_err(),
            MatchError::Retransmitted
        );
        let r2 = parsed.match_round(MethodId::XhrGet, 2, 7).unwrap();
        assert_eq!(r2.tn_s, SimTime::from_millis(300));
        assert!(parsed.round_retransmitted(MethodId::XhrGet, 1, 7));
        assert!(!parsed.round_retransmitted(MethodId::XhrGet, 2, 7));
    }

    #[test]
    fn server_side_view_detects_downstream_retransmission() {
        // Server capture: request arrives once (Rx), the response leaves
        // twice (Tx) because the first copy was dropped downstream. The
        // client capture would look clean; the server view catches it.
        let cap = capture_with(&[
            (35, CaptureDir::Rx, b"m=xhr_get&r=1&t=7 "),
            (36, CaptureDir::Tx, b"pong r=1 t=7 "),
            (236, CaptureDir::Tx, b"pong r=1 t=7 "),
        ]);
        let parsed = ParsedCapture::parse(&cap);
        assert!(parsed.round_retransmitted(MethodId::XhrGet, 1, 7));
    }

    #[test]
    fn parsed_capture_matches_like_the_one_shot_helper() {
        let cap = capture_with(&[
            (
                10,
                CaptureDir::Tx,
                b"GET /probe?m=xhr_get&r=1&t=7 HTTP/1.1\r\n\r\n",
            ),
            (
                61,
                CaptureDir::Rx,
                b"HTTP/1.1 200 OK\r\n\r\npong r=1 t=7 .....",
            ),
        ]);
        let parsed = ParsedCapture::parse(&cap);
        assert_eq!(
            parsed.match_round(MethodId::XhrGet, 1, 7).unwrap(),
            match_round(&cap, MethodId::XhrGet, 1, 7).unwrap()
        );
    }

    #[test]
    fn garbage_frames_are_skipped() {
        let mut cap = capture_with(&[
            (10, CaptureDir::Tx, b"m=xhr_get&r=1&t=0"),
            (20, CaptureDir::Rx, b"pong r=1 t=0 "),
        ]);
        cap.record(
            SimTime::from_millis(1),
            CaptureDir::Rx,
            Bytes::from_static(b"not a frame"),
        );
        assert!(match_round(&cap, MethodId::XhrGet, 1, 0).is_ok());
    }
}
