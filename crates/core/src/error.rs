//! The typed error taxonomy of the fallible (`try_*`) API surface.
//!
//! Every failure a caller can provoke through the public API maps to a
//! [`RunError`] variant; panics remain only for internal invariants.

use std::error::Error;
use std::fmt;

use bnm_methods::MethodId;
use bnm_time::OsKind;

use crate::config::{ExperimentCell, RuntimeSel};
use crate::matching::MatchError;

/// Why running, sweeping or appraising a cell failed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunError {
    /// The runtime cannot execute the method (Table 2 feature matrix),
    /// or the browser does not exist on the OS at all.
    Unrunnable {
        /// The requested method.
        method: MethodId,
        /// The runtime that cannot execute it.
        runtime: RuntimeSel,
        /// The client OS.
        os: OsKind,
    },
    /// Measurement rounds are numbered 1 and 2; anything else is out of
    /// range.
    InvalidRound(u8),
    /// A statistic needs more data points than were supplied.
    InsufficientData {
        /// Minimum points the statistic needs.
        needed: usize,
        /// Points actually supplied.
        got: usize,
    },
    /// The cell produced no Δd samples (every repetition failed, or
    /// zero repetitions were configured).
    NoSamples,
    /// An input value violated a documented precondition.
    InvalidInput(&'static str),
    /// Capture matching failed for a repetition.
    Match(MatchError),
}

impl RunError {
    /// The `Unrunnable` error for a concrete cell.
    pub fn unrunnable(cell: &ExperimentCell) -> RunError {
        RunError::Unrunnable {
            method: cell.method,
            runtime: cell.runtime,
            os: cell.os,
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Phrasing kept from the historical assert message so panics
            // raised by the deprecated façades read the same.
            RunError::Unrunnable {
                method,
                runtime,
                os,
            } => write!(
                f,
                "{} cannot run {}",
                runtime.figure_label(*os),
                method.display_name()
            ),
            RunError::InvalidRound(r) => write!(f, "rounds are 1 and 2, got {r}"),
            RunError::InsufficientData { needed, got } => {
                write!(f, "need at least {needed} data points, got {got}")
            }
            RunError::NoSamples => write!(f, "cell produced no Δd samples"),
            RunError::InvalidInput(what) => write!(f, "invalid input: {what}"),
            RunError::Match(e) => write!(f, "capture matching failed: {e}"),
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Match(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MatchError> for RunError {
    fn from(e: MatchError) -> Self {
        RunError::Match(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnm_browser::BrowserKind;

    #[test]
    fn display_matches_historical_phrasing() {
        let cell = ExperimentCell::paper(
            MethodId::WebSocket,
            RuntimeSel::Browser(BrowserKind::Ie9),
            OsKind::Windows7,
        );
        let e = RunError::unrunnable(&cell);
        assert_eq!(e.to_string(), "IE (W) cannot run WebSocket");
    }

    #[test]
    fn match_errors_convert_and_chain() {
        let e: RunError = MatchError::OutOfOrder.into();
        assert_eq!(e, RunError::Match(MatchError::OutOfOrder));
        assert!(e.to_string().contains("capture matching failed"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn variants_format_their_payload() {
        assert_eq!(
            RunError::InvalidRound(3).to_string(),
            "rounds are 1 and 2, got 3"
        );
        assert_eq!(
            RunError::InsufficientData { needed: 2, got: 1 }.to_string(),
            "need at least 2 data points, got 1"
        );
        assert!(RunError::NoSamples.to_string().contains("no Δd samples"));
        assert!(RunError::InvalidInput("reps must be >= 1")
            .to_string()
            .contains("reps"));
    }
}
