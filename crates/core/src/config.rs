//! Experiment-cell configuration.

use bnm_browser::BrowserKind;
use bnm_methods::MethodId;
use bnm_sim::time::SimDuration;
use bnm_time::{OsKind, TimingApiKind};

/// Which runtime executes the measurement code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeSel {
    /// A browser from Table 2.
    Browser(BrowserKind),
    /// The JDK `appletviewer` (Figure 4(b)).
    AppletViewer,
    /// A mobile WebKit browser (§7 extension; native methods only).
    MobileWebKit,
}

impl RuntimeSel {
    /// Figure label ("C (U)", "appletviewer (W)", …).
    pub fn figure_label(&self, os: OsKind) -> String {
        match self {
            RuntimeSel::Browser(b) => format!("{} ({})", b.initial(), os.initial()),
            RuntimeSel::AppletViewer => format!("appletviewer ({})", os.initial()),
            RuntimeSel::MobileWebKit => "M (mobile)".to_string(),
        }
    }
}

/// One cell of the experiment grid: a method on a runtime on an OS,
/// repeated.
#[derive(Debug, Clone)]
pub struct ExperimentCell {
    /// The measurement method.
    pub method: MethodId,
    /// The runtime executing it.
    pub runtime: RuntimeSel,
    /// The client machine's OS.
    pub os: OsKind,
    /// Timing-API override (`None` = the method's era-accurate default;
    /// Table 4 passes `Some(JavaNanoTime)`).
    pub timing_override: Option<TimingApiKind>,
    /// Repetitions ("we run it for 50 times").
    pub reps: u32,
    /// The artificial one-way delay on the server side (§3: 50 ms).
    pub server_delay: SimDuration,
    /// Capture timestamping noise bound (0 = exact stamps; the paper
    /// cites > 0.3 ms accuracy for software capturers).
    pub capture_noise_ns: u64,
    /// Master seed; every repetition derives independent streams from it.
    pub seed: u64,
    /// §5's Safari fix (force the Oracle JRE) — used by the Table 4 runs.
    pub fixed_safari_java: bool,
}

impl ExperimentCell {
    /// The paper's standard cell: 50 reps, 50 ms server delay, exact
    /// capture stamps.
    pub fn paper(method: MethodId, runtime: RuntimeSel, os: OsKind) -> ExperimentCell {
        ExperimentCell {
            method,
            runtime,
            os,
            timing_override: None,
            reps: 50,
            server_delay: SimDuration::from_millis(50),
            capture_noise_ns: 0,
            seed: 0xB32B_0001,
            fixed_safari_java: false,
        }
    }

    /// Override the timing API.
    pub fn with_timing(mut self, t: TimingApiKind) -> Self {
        self.timing_override = Some(t);
        self
    }

    /// Override the repetition count.
    pub fn with_reps(mut self, reps: u32) -> Self {
        self.reps = reps;
        self
    }

    /// Override the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Apply §5's Safari Java fix.
    pub fn with_fixed_safari_java(mut self) -> Self {
        self.fixed_safari_java = true;
        self
    }

    /// Cell label for reports: "XHR GET / C (U) / Δd".
    pub fn label(&self) -> String {
        format!(
            "{} / {}",
            self.method.display_name(),
            self.runtime.figure_label(self.os)
        )
    }

    /// Whether the runtime can execute the method (Table 2 feature
    /// matrix).
    pub fn is_runnable(&self) -> bool {
        let profile = match self.runtime {
            RuntimeSel::Browser(b) => bnm_browser::BrowserProfile::build(b, self.os),
            RuntimeSel::AppletViewer => Some(bnm_browser::BrowserProfile::appletviewer(self.os)),
            RuntimeSel::MobileWebKit => Some(bnm_browser::BrowserProfile::mobile_webkit()),
        };
        match profile {
            Some(p) => self.method.available_in(&p),
            None => false,
        }
    }
}

/// All (runtime, OS) combinations of the paper's Figure 3, in figure
/// order: Ubuntu browsers first, then Windows.
pub fn figure3_combos() -> Vec<(RuntimeSel, OsKind)> {
    let mut combos = Vec::new();
    for os in [OsKind::Ubuntu1204, OsKind::Windows7] {
        for b in BrowserKind::ALL {
            if b.available_on(os) {
                combos.push((RuntimeSel::Browser(b), os));
            }
        }
    }
    combos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_figure3_combos() {
        let combos = figure3_combos();
        assert_eq!(combos.len(), 8);
        assert_eq!(combos[0].1, OsKind::Ubuntu1204);
        assert_eq!(
            combos
                .iter()
                .filter(|(_, os)| *os == OsKind::Windows7)
                .count(),
            5
        );
    }

    #[test]
    fn websocket_cells_runnable_only_where_supported() {
        let runnable = figure3_combos()
            .into_iter()
            .filter(|(r, os)| {
                ExperimentCell::paper(MethodId::WebSocket, *r, *os).is_runnable()
            })
            .count();
        // 3 Ubuntu + Chrome/Firefox/Opera on Windows = 6 (no IE, Safari).
        assert_eq!(runnable, 6);
    }

    #[test]
    fn labels() {
        let cell = ExperimentCell::paper(
            MethodId::FlashGet,
            RuntimeSel::Browser(BrowserKind::Opera),
            OsKind::Windows7,
        );
        assert_eq!(cell.label(), "Flash GET / O (W)");
        assert_eq!(
            RuntimeSel::AppletViewer.figure_label(OsKind::Windows7),
            "appletviewer (W)"
        );
    }

    #[test]
    fn paper_defaults() {
        let cell = ExperimentCell::paper(
            MethodId::XhrGet,
            RuntimeSel::Browser(BrowserKind::Chrome),
            OsKind::Ubuntu1204,
        );
        assert_eq!(cell.reps, 50);
        assert_eq!(cell.server_delay.as_millis(), 50);
        assert_eq!(cell.timing_override, None);
        assert!(cell.is_runnable());
    }
}

#[cfg(test)]
mod mobile_tests {
    use super::*;
    use bnm_methods::MethodId;

    #[test]
    fn mobile_runs_native_methods_only() {
        for m in MethodId::ALL {
            let cell = ExperimentCell::paper(m, RuntimeSel::MobileWebKit, OsKind::Ubuntu1204);
            let native = matches!(
                m,
                MethodId::XhrGet | MethodId::XhrPost | MethodId::Dom | MethodId::WebSocket
            );
            assert_eq!(cell.is_runnable(), native, "{m}");
        }
    }

    #[test]
    fn mobile_label() {
        let cell = ExperimentCell::paper(
            MethodId::WebSocket,
            RuntimeSel::MobileWebKit,
            OsKind::Ubuntu1204,
        );
        assert_eq!(cell.label(), "WebSocket / M (mobile)");
    }
}
