//! Experiment-cell configuration.

use bnm_browser::BrowserKind;
use bnm_methods::MethodId;
use bnm_sim::time::SimDuration;
use bnm_sim::{Impairment, LinkShape};
use bnm_time::{OsKind, TimingApiKind};

use crate::error::RunError;

/// Which runtime executes the measurement code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeSel {
    /// A browser from Table 2.
    Browser(BrowserKind),
    /// The JDK `appletviewer` (Figure 4(b)).
    AppletViewer,
    /// A mobile WebKit browser (§7 extension; native methods only).
    MobileWebKit,
}

impl RuntimeSel {
    /// Figure label ("C (U)", "appletviewer (W)", …).
    pub fn figure_label(&self, os: OsKind) -> String {
        match self {
            RuntimeSel::Browser(b) => format!("{} ({})", b.initial(), os.initial()),
            RuntimeSel::AppletViewer => format!("appletviewer ({})", os.initial()),
            RuntimeSel::MobileWebKit => "M (mobile)".to_string(),
        }
    }
}

/// How many sessions share the testbed, and how narrow the shared
/// bottleneck is — the scale knobs of the `contend` extension as one
/// typed value.
///
/// Replaces the loose `.clients(n)` / `.server_link_rate(bps)` builder
/// pair (removed in 0.3.0): the two knobs only mean something together,
/// since narrowing the server link without contention measures nothing
/// and contention over full fast Ethernet barely queues.
///
/// ```
/// use bnm_core::config::ContentionSpec;
///
/// let spec = ContentionSpec::clients(64).with_server_link_rate(400_000);
/// assert_eq!(spec.clients, 64);
/// assert_eq!(spec.server_link_rate_bps, Some(400_000));
/// assert_eq!(ContentionSpec::solo(), ContentionSpec::default());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentionSpec {
    /// Concurrent measuring sessions sharing the testbed. 1 reproduces
    /// the paper's single-client testbed byte for byte.
    pub clients: u32,
    /// Server access link rate override, bits/s (`None` = the paper's
    /// 100 Mbps fast Ethernet).
    pub server_link_rate_bps: Option<u64>,
}

impl Default for ContentionSpec {
    fn default() -> Self {
        Self::solo()
    }
}

impl ContentionSpec {
    /// The paper's setup: one client, full-rate server link.
    pub const fn solo() -> ContentionSpec {
        ContentionSpec {
            clients: 1,
            server_link_rate_bps: None,
        }
    }

    /// `n` concurrent sessions over the default server link.
    pub const fn clients(n: u32) -> ContentionSpec {
        ContentionSpec {
            clients: n,
            server_link_rate_bps: None,
        }
    }

    /// Narrow the shared server access link to `rate_bps` bits/s.
    pub const fn with_server_link_rate(mut self, rate_bps: u64) -> ContentionSpec {
        self.server_link_rate_bps = Some(rate_bps);
        self
    }

    pub(crate) fn validate(&self) -> Result<(), RunError> {
        if self.clients == 0 {
            return Err(RunError::InvalidInput("clients must be >= 1"));
        }
        if self.clients as usize > crate::scenario::Scenario::DEFAULT_SESSION_LIMIT {
            return Err(RunError::InvalidInput(
                "clients exceeds the scenario session limit",
            ));
        }
        if self.server_link_rate_bps == Some(0) {
            return Err(RunError::InvalidInput("server link rate must be > 0"));
        }
        Ok(())
    }
}

/// How the post-processing pipeline consumes captures and stores
/// per-session samples — the streaming knobs of the crowd-scale
/// extension as one typed value.
///
/// The default reproduces the batch pipeline byte for byte: taps retain
/// every frame until the repetition ends, matching parses the full
/// trace, and every session keeps its raw Δd sample vectors. The
/// streaming knobs trade retention for bounded memory without changing
/// a single output bit (asserted by `tests/streaming_parity.rs`):
///
/// ```
/// use bnm_core::config::StreamingSpec;
///
/// let spec = StreamingSpec::bounded(64);
/// assert!(spec.stream_captures);
/// assert_eq!(spec.session_retention, Some(64));
/// assert_eq!(StreamingSpec::batch(), StreamingSpec::default());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamingSpec {
    /// Consume capture records at capture time through marker sinks
    /// ([`crate::streaming`]) instead of retaining frames until the run
    /// ends. Frames recycle through the pool mid-run, so peak memory no
    /// longer scales with the crowd's total traffic. Incompatible with
    /// `trace` output only in the sense that traces still retain what
    /// they always did; capture retention is what this switches off.
    pub stream_captures: bool,
    /// Per-session raw-sample retention threshold. `None` keeps every
    /// raw Δd sample (the paper's 50-rep cells need them for exact
    /// boxplots). `Some(n)` keeps at most `n` raw samples per session
    /// and folds **all** samples into a [`bnm_stats::QuantileSketch`],
    /// so crowd sweeps get quantiles in O(log-buckets) memory per
    /// session instead of O(reps).
    pub session_retention: Option<u32>,
    /// Worker threads for per-session capture matching in the batch
    /// path. `None` picks automatically (parallel when a repetition has
    /// enough sessions to pay for it); `Some(1)` forces serial;
    /// `Some(n)` forces `n` workers. Output is bit-identical either
    /// way — matching is per-session-independent and folded in
    /// ascending session order.
    pub match_workers: Option<usize>,
}

impl StreamingSpec {
    /// The batch pipeline: full retention, raw samples, auto matching.
    pub const fn batch() -> StreamingSpec {
        StreamingSpec {
            stream_captures: false,
            session_retention: None,
            match_workers: None,
        }
    }

    /// Stream captures through marker sinks (full raw-sample retention).
    pub const fn streaming() -> StreamingSpec {
        StreamingSpec {
            stream_captures: true,
            session_retention: None,
            match_workers: None,
        }
    }

    /// The crowd-scale preset: stream captures *and* cap raw samples at
    /// `retention` per session, sketching the rest.
    pub const fn bounded(retention: u32) -> StreamingSpec {
        StreamingSpec {
            stream_captures: true,
            session_retention: Some(retention),
            match_workers: None,
        }
    }

    /// The continuous-monitoring preset (`bnm serve` /
    /// [`crate::monitor::Monitor`]): stream captures so the frame pool
    /// stays flat, and keep only a small exact-sample prefix per
    /// session — the monitor's own windows carry the statistics, so
    /// per-round retention inside the rep is pure overhead.
    pub const fn serve() -> StreamingSpec {
        StreamingSpec {
            stream_captures: true,
            session_retention: Some(64),
            match_workers: None,
        }
    }

    /// Override the matching worker count.
    pub const fn with_match_workers(mut self, workers: usize) -> StreamingSpec {
        self.match_workers = Some(workers);
        self
    }

    pub(crate) fn validate(&self) -> Result<(), RunError> {
        if self.match_workers == Some(0) {
            return Err(RunError::InvalidInput("match workers must be >= 1"));
        }
        Ok(())
    }
}

/// One cell of the experiment grid: a method on a runtime on an OS,
/// repeated.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentCell {
    /// The measurement method.
    pub method: MethodId,
    /// The runtime executing it.
    pub runtime: RuntimeSel,
    /// The client machine's OS.
    pub os: OsKind,
    /// Timing-API override (`None` = the method's era-accurate default;
    /// Table 4 passes `Some(JavaNanoTime)`).
    pub timing_override: Option<TimingApiKind>,
    /// Repetitions ("we run it for 50 times").
    pub reps: u32,
    /// The artificial one-way delay on the server side (§3: 50 ms).
    pub server_delay: SimDuration,
    /// Capture timestamping noise bound (0 = exact stamps; the paper
    /// cites > 0.3 ms accuracy for software capturers).
    pub capture_noise_ns: u64,
    /// Master seed; every repetition derives independent streams from it.
    pub seed: u64,
    /// §5's Safari fix (force the Oracle JRE) — used by the Table 4 runs.
    pub fixed_safari_java: bool,
    /// Network impairment on the testbed links (loss / corruption /
    /// duplication plus delay jitter). The paper's headline runs were
    /// loss-free ([`Impairment::NONE`], the default); non-clean values
    /// exercise the retransmission-exclusion rule of §3.
    pub impairment: Impairment,
    /// Record per-repetition traces and Δd attribution reports. Off by
    /// default: tracing allocates per-event and the paper's headline
    /// numbers don't need it.
    pub trace: bool,
    /// Concurrent measuring sessions sharing the testbed (the `contend`
    /// extension). 1 — the paper's setup and the default — runs the
    /// legacy single-client testbed byte-for-byte; N > 1 builds a
    /// [`crate::scenario::Scenario`] of N clients behind one switch, all
    /// probing the same server, with per-session results keyed in
    /// [`crate::runner::CellResult::sessions`].
    pub clients: u32,
    /// Override the server access link's line rate, bits/s (`None` = the
    /// paper's 100 Mbps fast Ethernet). The `contend` experiment narrows
    /// this shared bottleneck so handshakes queue behind concurrent
    /// sessions' traffic.
    pub server_link_rate_bps: Option<u64>,
    /// Dynamic shaping of the server's access link: per-direction spec
    /// overrides, time-varying rate schedules and the queue discipline
    /// ([`LinkShape`]). The default installs nothing, keeping the
    /// paper's static link bit-for-bit; the battery's `bloat` and
    /// `varying` scenarios plug deep drop-tail queues, CoDel and rate
    /// schedules in here.
    pub link_shape: LinkShape,
    /// How the pipeline consumes captures and stores samples (the
    /// streaming extension; [`StreamingSpec::batch`] — the default —
    /// reproduces the retained-capture pipeline byte for byte).
    pub streaming: StreamingSpec,
}

impl ExperimentCell {
    /// Start building a cell from the paper's defaults. Unlike the
    /// `with_*` modifiers, the builder covers *every* knob and validates
    /// at [`CellBuilder::build`] time.
    pub fn builder(method: MethodId, runtime: RuntimeSel, os: OsKind) -> CellBuilder {
        CellBuilder {
            cell: ExperimentCell::paper(method, runtime, os),
        }
    }

    /// The paper's standard cell: 50 reps, 50 ms server delay, exact
    /// capture stamps.
    pub fn paper(method: MethodId, runtime: RuntimeSel, os: OsKind) -> ExperimentCell {
        ExperimentCell {
            method,
            runtime,
            os,
            timing_override: None,
            reps: 50,
            server_delay: SimDuration::from_millis(50),
            capture_noise_ns: 0,
            seed: 0xB32B_0001,
            fixed_safari_java: false,
            impairment: Impairment::NONE,
            trace: false,
            clients: 1,
            server_link_rate_bps: None,
            link_shape: LinkShape::default(),
            streaming: StreamingSpec::batch(),
        }
    }

    /// Enable per-repetition tracing and Δd attribution.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Override the timing API.
    pub fn with_timing(mut self, t: TimingApiKind) -> Self {
        self.timing_override = Some(t);
        self
    }

    /// Override the repetition count.
    pub fn with_reps(mut self, reps: u32) -> Self {
        self.reps = reps;
        self
    }

    /// Override the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Apply §5's Safari Java fix.
    pub fn with_fixed_safari_java(mut self) -> Self {
        self.fixed_safari_java = true;
        self
    }

    /// Impair the testbed network (loss, corruption, duplication,
    /// jitter).
    pub fn with_impairment(mut self, imp: Impairment) -> Self {
        self.impairment = imp;
        self
    }

    /// Apply a typed contention specification (client count + shared
    /// bottleneck rate together).
    pub fn with_contention(mut self, spec: ContentionSpec) -> Self {
        self.clients = spec.clients;
        self.server_link_rate_bps = spec.server_link_rate_bps;
        self
    }

    /// Apply a typed streaming specification (capture consumption +
    /// sample retention + matching parallelism together).
    pub fn with_streaming(mut self, spec: StreamingSpec) -> Self {
        self.streaming = spec;
        self
    }

    /// Shape the server's access link (asymmetric specs, rate schedules,
    /// queue discipline).
    pub fn with_link_shape(mut self, shape: LinkShape) -> Self {
        self.link_shape = shape;
        self
    }

    /// The cell's contention configuration as one typed value.
    pub fn contention(&self) -> ContentionSpec {
        ContentionSpec {
            clients: self.clients,
            server_link_rate_bps: self.server_link_rate_bps,
        }
    }

    /// Cell label for reports: "XHR GET / C (U) / Δd".
    pub fn label(&self) -> String {
        format!(
            "{} / {}",
            self.method.display_name(),
            self.runtime.figure_label(self.os)
        )
    }

    /// Whether the runtime can execute the method (Table 2 feature
    /// matrix).
    pub fn is_runnable(&self) -> bool {
        let profile = match self.runtime {
            RuntimeSel::Browser(b) => bnm_browser::BrowserProfile::build(b, self.os),
            RuntimeSel::AppletViewer => Some(bnm_browser::BrowserProfile::appletviewer(self.os)),
            RuntimeSel::MobileWebKit => Some(bnm_browser::BrowserProfile::mobile_webkit()),
        };
        match profile {
            Some(p) => self.method.available_in(&p),
            None => false,
        }
    }
}

/// Builds an [`ExperimentCell`], validating the configuration once at
/// the end instead of panicking later inside the runner.
///
/// ```
/// use bnm_core::{ExperimentCell, RuntimeSel};
/// use bnm_browser::BrowserKind;
/// use bnm_methods::MethodId;
/// use bnm_time::OsKind;
///
/// let cell = ExperimentCell::builder(
///     MethodId::XhrGet,
///     RuntimeSel::Browser(BrowserKind::Chrome),
///     OsKind::Ubuntu1204,
/// )
/// .reps(10)
/// .seed(42)
/// .server_delay_ms(25)
/// .build()
/// .unwrap();
/// assert_eq!(cell.reps, 10);
/// ```
#[derive(Debug, Clone)]
pub struct CellBuilder {
    cell: ExperimentCell,
}

impl CellBuilder {
    /// Override the timing API (Table 4 passes `JavaNanoTime`).
    pub fn timing(mut self, t: TimingApiKind) -> Self {
        self.cell.timing_override = Some(t);
        self
    }

    /// Use the method's era-accurate default timing API (the default).
    pub fn default_timing(mut self) -> Self {
        self.cell.timing_override = None;
        self
    }

    /// Repetition count (the paper runs 50).
    pub fn reps(mut self, reps: u32) -> Self {
        self.cell.reps = reps;
        self
    }

    /// Artificial one-way server delay.
    pub fn server_delay(mut self, d: SimDuration) -> Self {
        self.cell.server_delay = d;
        self
    }

    /// Artificial one-way server delay in whole milliseconds.
    pub fn server_delay_ms(self, ms: u64) -> Self {
        self.server_delay(SimDuration::from_millis(ms))
    }

    /// Capture timestamping noise bound (0 = exact stamps).
    pub fn capture_noise_ns(mut self, ns: u64) -> Self {
        self.cell.capture_noise_ns = ns;
        self
    }

    /// Master seed for all derived streams.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cell.seed = seed;
        self
    }

    /// Apply (or clear) §5's Safari fix — force the Oracle JRE.
    pub fn fixed_safari_java(mut self, on: bool) -> Self {
        self.cell.fixed_safari_java = on;
        self
    }

    /// Impair the testbed network (the default is the paper's clean
    /// network, [`Impairment::NONE`]).
    pub fn impairment(mut self, imp: Impairment) -> Self {
        self.cell.impairment = imp;
        self
    }

    /// Record per-repetition traces and Δd attribution reports.
    pub fn trace(mut self, on: bool) -> Self {
        self.cell.trace = on;
        self
    }

    /// Concurrent sessions and shared-bottleneck rate as one typed
    /// value (see [`ContentionSpec`]).
    pub fn contention(mut self, spec: ContentionSpec) -> Self {
        self.cell.clients = spec.clients;
        self.cell.server_link_rate_bps = spec.server_link_rate_bps;
        self
    }

    /// Capture consumption and sample storage (see [`StreamingSpec`]).
    pub fn streaming(mut self, spec: StreamingSpec) -> Self {
        self.cell.streaming = spec;
        self
    }

    /// Shape the server's access link (see [`LinkShape`]).
    pub fn link_shape(mut self, shape: LinkShape) -> Self {
        self.cell.link_shape = shape;
        self
    }

    /// Validate and produce the cell.
    ///
    /// Fails with [`RunError::Unrunnable`] when the runtime cannot
    /// execute the method (Table 2), and
    /// [`RunError::InvalidInput`] when `reps` is zero, the contention
    /// spec is out of range (zero clients, more clients than the
    /// scenario session limit), or a link-rate override is zero.
    pub fn build(self) -> Result<ExperimentCell, RunError> {
        if self.cell.reps == 0 {
            return Err(RunError::InvalidInput("reps must be >= 1"));
        }
        self.cell.contention().validate()?;
        self.cell.streaming.validate()?;
        self.cell
            .link_shape
            .validate()
            .map_err(RunError::InvalidInput)?;
        if !self.cell.is_runnable() {
            return Err(RunError::unrunnable(&self.cell));
        }
        Ok(self.cell)
    }

    /// Produce the cell without validation — for deliberately
    /// constructing unrunnable or degenerate cells (tests, grid
    /// enumeration that filters later).
    pub fn build_unchecked(self) -> ExperimentCell {
        self.cell
    }
}

/// All (runtime, OS) combinations of the paper's Figure 3, in figure
/// order: Ubuntu browsers first, then Windows.
pub fn figure3_combos() -> Vec<(RuntimeSel, OsKind)> {
    let mut combos = Vec::new();
    for os in [OsKind::Ubuntu1204, OsKind::Windows7] {
        for b in BrowserKind::ALL {
            if b.available_on(os) {
                combos.push((RuntimeSel::Browser(b), os));
            }
        }
    }
    combos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_figure3_combos() {
        let combos = figure3_combos();
        assert_eq!(combos.len(), 8);
        assert_eq!(combos[0].1, OsKind::Ubuntu1204);
        assert_eq!(
            combos
                .iter()
                .filter(|(_, os)| *os == OsKind::Windows7)
                .count(),
            5
        );
    }

    #[test]
    fn websocket_cells_runnable_only_where_supported() {
        let runnable = figure3_combos()
            .into_iter()
            .filter(|(r, os)| ExperimentCell::paper(MethodId::WebSocket, *r, *os).is_runnable())
            .count();
        // 3 Ubuntu + Chrome/Firefox/Opera on Windows = 6 (no IE, Safari).
        assert_eq!(runnable, 6);
    }

    #[test]
    fn labels() {
        let cell = ExperimentCell::paper(
            MethodId::FlashGet,
            RuntimeSel::Browser(BrowserKind::Opera),
            OsKind::Windows7,
        );
        assert_eq!(cell.label(), "Flash GET / O (W)");
        assert_eq!(
            RuntimeSel::AppletViewer.figure_label(OsKind::Windows7),
            "appletviewer (W)"
        );
    }

    #[test]
    fn builder_covers_every_knob() {
        let cell = ExperimentCell::builder(
            MethodId::JavaTcp,
            RuntimeSel::Browser(BrowserKind::Firefox),
            OsKind::Windows7,
        )
        .timing(TimingApiKind::JavaNanoTime)
        .reps(12)
        .server_delay_ms(25)
        .capture_noise_ns(300_000)
        .seed(7)
        .fixed_safari_java(true)
        .impairment(Impairment::loss(0.02))
        .trace(true)
        .contention(ContentionSpec::clients(4).with_server_link_rate(10_000_000))
        .build()
        .unwrap();
        assert_eq!(cell.timing_override, Some(TimingApiKind::JavaNanoTime));
        assert_eq!(cell.reps, 12);
        assert_eq!(cell.server_delay.as_millis(), 25);
        assert_eq!(cell.capture_noise_ns, 300_000);
        assert_eq!(cell.seed, 7);
        assert!(cell.fixed_safari_java);
        assert_eq!(cell.impairment, Impairment::loss(0.02));
        assert!(!cell.impairment.is_clean());
        assert!(cell.trace);
        assert_eq!(cell.clients, 4);
        assert_eq!(cell.server_link_rate_bps, Some(10_000_000));
        let cleared = ExperimentCell::builder(
            MethodId::JavaTcp,
            RuntimeSel::Browser(BrowserKind::Firefox),
            OsKind::Windows7,
        )
        .timing(TimingApiKind::JavaNanoTime)
        .default_timing()
        .build()
        .unwrap();
        assert_eq!(cleared.timing_override, None);
    }

    #[test]
    fn builder_rejects_bad_configurations() {
        let unrunnable = ExperimentCell::builder(
            MethodId::WebSocket,
            RuntimeSel::Browser(BrowserKind::Ie9),
            OsKind::Windows7,
        )
        .build();
        assert!(matches!(unrunnable, Err(RunError::Unrunnable { .. })));

        let zero_reps = ExperimentCell::builder(
            MethodId::XhrGet,
            RuntimeSel::Browser(BrowserKind::Chrome),
            OsKind::Ubuntu1204,
        )
        .reps(0)
        .build();
        assert_eq!(zero_reps, Err(RunError::InvalidInput("reps must be >= 1")));

        let chrome = || {
            ExperimentCell::builder(
                MethodId::XhrGet,
                RuntimeSel::Browser(BrowserKind::Chrome),
                OsKind::Ubuntu1204,
            )
        };
        assert_eq!(
            chrome().contention(ContentionSpec::clients(0)).build(),
            Err(RunError::InvalidInput("clients must be >= 1"))
        );
        assert_eq!(
            chrome().contention(ContentionSpec::clients(4097)).build(),
            Err(RunError::InvalidInput(
                "clients exceeds the scenario session limit"
            ))
        );
        // The old 64-client ceiling is gone: a crowd-scale cell builds.
        let crowd = chrome()
            .contention(ContentionSpec::clients(1000).with_server_link_rate(6_250_000))
            .build()
            .unwrap();
        assert_eq!(crowd.contention().clients, 1000);
        assert_eq!(
            chrome()
                .contention(ContentionSpec::solo().with_server_link_rate(0))
                .build(),
            Err(RunError::InvalidInput("server link rate must be > 0"))
        );
        assert_eq!(
            chrome()
                .streaming(StreamingSpec::batch().with_match_workers(0))
                .build(),
            Err(RunError::InvalidInput("match workers must be >= 1"))
        );
        let bounded = chrome()
            .streaming(StreamingSpec::bounded(32))
            .build()
            .unwrap();
        assert_eq!(bounded.streaming, StreamingSpec::bounded(32));

        // A degenerate link shape (zero-rate override) is rejected with
        // the spec's own message; a valid CoDel shape passes.
        assert_eq!(
            chrome()
                .link_shape(LinkShape {
                    down_spec: Some(bnm_sim::LinkSpec {
                        rate_bps: 0,
                        ..bnm_sim::LinkSpec::fast_ethernet()
                    }),
                    ..LinkShape::default()
                })
                .build(),
            Err(RunError::InvalidInput("link rate_bps must be positive"))
        );
        let shaped = chrome()
            .link_shape(LinkShape::symmetric(bnm_sim::LinkDynamics::codel()))
            .build()
            .unwrap();
        assert!(!shaped.link_shape.is_static());

        // build_unchecked lets both through for later filtering.
        let cell = ExperimentCell::builder(
            MethodId::WebSocket,
            RuntimeSel::Browser(BrowserKind::Ie9),
            OsKind::Windows7,
        )
        .build_unchecked();
        assert!(!cell.is_runnable());
    }

    #[test]
    fn paper_defaults() {
        let cell = ExperimentCell::paper(
            MethodId::XhrGet,
            RuntimeSel::Browser(BrowserKind::Chrome),
            OsKind::Ubuntu1204,
        );
        assert_eq!(cell.reps, 50);
        assert_eq!(cell.server_delay.as_millis(), 50);
        assert_eq!(cell.timing_override, None);
        assert!(cell.impairment.is_clean());
        assert!(cell.is_runnable());
    }
}

#[cfg(test)]
mod mobile_tests {
    use super::*;
    use bnm_methods::MethodId;

    #[test]
    fn mobile_runs_native_methods_only() {
        for m in MethodId::ALL {
            let cell = ExperimentCell::paper(m, RuntimeSel::MobileWebKit, OsKind::Ubuntu1204);
            let native = matches!(
                m,
                MethodId::XhrGet | MethodId::XhrPost | MethodId::Dom | MethodId::WebSocket
            );
            assert_eq!(cell.is_runnable(), native, "{m}");
        }
    }

    #[test]
    fn mobile_label() {
        let cell = ExperimentCell::paper(
            MethodId::WebSocket,
            RuntimeSel::MobileWebKit,
            OsKind::Ubuntu1204,
        );
        assert_eq!(cell.label(), "WebSocket / M (mobile)");
    }
}
