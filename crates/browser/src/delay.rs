//! Latency primitives for browser code paths.
//!
//! Each segment of a code path (an event-loop dispatch, one plugin-bridge
//! crossing, the XHR receive internals, …) is a [`DelayModel`]: a hard
//! floor plus a lognormal body, with an optional low-probability "jank"
//! spike standing in for garbage collection and rendering interference.
//! The spike component is what produces the outlier dots in the paper's
//! box plots.

use rand::rngs::SmallRng;
use rand::Rng;

use bnm_sim::time::SimDuration;

/// A stochastic delay: `floor + median·exp(σ·Z)` microseconds, plus an
/// optional uniform spike with small probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayModel {
    /// Hard floor, µs.
    pub floor_us: f64,
    /// Median of the lognormal body, µs (0 disables the body).
    pub median_us: f64,
    /// Lognormal σ (log-space spread of the body).
    pub sigma: f64,
    /// Probability of adding a spike to one sample.
    pub spike_p: f64,
    /// Spike magnitude range, µs (uniform).
    pub spike_us: (f64, f64),
}

impl DelayModel {
    /// A deterministic delay.
    pub const fn fixed(us: f64) -> DelayModel {
        DelayModel {
            floor_us: us,
            median_us: 0.0,
            sigma: 0.0,
            spike_p: 0.0,
            spike_us: (0.0, 0.0),
        }
    }

    /// Zero delay.
    pub const ZERO: DelayModel = DelayModel::fixed(0.0);

    /// Floor + lognormal body.
    pub const fn lognorm(floor_us: f64, median_us: f64, sigma: f64) -> DelayModel {
        DelayModel {
            floor_us,
            median_us,
            sigma,
            spike_p: 0.0,
            spike_us: (0.0, 0.0),
        }
    }

    /// Add a jank spike: probability `p`, magnitude `lo..hi` µs.
    pub const fn with_spike(mut self, p: f64, lo_us: f64, hi_us: f64) -> DelayModel {
        self.spike_p = p;
        self.spike_us = (lo_us, hi_us);
        self
    }

    /// Scale every magnitude component by `k` (per-browser multipliers).
    pub fn scaled(&self, k: f64) -> DelayModel {
        DelayModel {
            floor_us: self.floor_us * k,
            median_us: self.median_us * k,
            sigma: self.sigma,
            spike_p: self.spike_p,
            spike_us: (self.spike_us.0 * k, self.spike_us.1 * k),
        }
    }

    /// The distribution median, µs (floor + body median; spikes excluded).
    pub fn median_us(&self) -> f64 {
        self.floor_us + self.median_us
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut SmallRng) -> SimDuration {
        let mut us = self.floor_us;
        if self.median_us > 0.0 {
            us += self.median_us * (self.sigma * standard_normal(rng)).exp();
        }
        if self.spike_p > 0.0 && rng.gen_bool(self.spike_p.min(1.0)) {
            us += if self.spike_us.1 > self.spike_us.0 {
                rng.gen_range(self.spike_us.0..self.spike_us.1)
            } else {
                self.spike_us.0
            };
        }
        SimDuration::from_nanos((us.max(0.0) * 1e3).round() as u64)
    }
}

/// Standard normal via Box–Muller (the `rand` crate alone has no normal
/// distribution; `rand_distr` is avoided to keep dependencies minimal).
pub fn standard_normal(rng: &mut SmallRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnm_sim::rng;

    #[test]
    fn fixed_is_deterministic() {
        let m = DelayModel::fixed(150.0);
        let mut r = rng::stream(1, "d");
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), SimDuration::from_nanos(150_000));
        }
    }

    #[test]
    fn lognorm_median_is_close_to_spec() {
        let m = DelayModel::lognorm(100.0, 900.0, 0.6);
        let mut r = rng::stream(2, "d");
        let mut samples: Vec<f64> = (0..4001)
            .map(|_| m.sample(&mut r).as_nanos() as f64 / 1e3)
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = samples[2000];
        assert!(
            (med - 1000.0).abs() < 60.0,
            "median {med} expected ~1000 µs"
        );
        // All samples respect the floor.
        assert!(samples[0] >= 100.0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng::stream(3, "n");
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn spikes_appear_at_roughly_the_configured_rate() {
        let m = DelayModel::fixed(0.0).with_spike(0.1, 50_000.0, 50_000.0);
        let mut r = rng::stream(4, "s");
        let n = 5_000;
        let spikes = (0..n)
            .filter(|_| m.sample(&mut r) >= SimDuration::from_millis(50))
            .count();
        let rate = spikes as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn scaling_scales_magnitudes_not_shape() {
        let m = DelayModel::lognorm(100.0, 500.0, 0.7).with_spike(0.05, 1000.0, 2000.0);
        let s = m.scaled(2.0);
        assert_eq!(s.floor_us, 200.0);
        assert_eq!(s.median_us, 1000.0);
        assert_eq!(s.sigma, 0.7);
        assert_eq!(s.spike_p, 0.05);
        assert_eq!(s.spike_us, (2000.0, 4000.0));
        assert_eq!(m.median_us(), 600.0);
        assert_eq!(s.median_us(), 1200.0);
    }

    #[test]
    fn zero_model_is_zero() {
        let mut r = rng::stream(5, "z");
        assert_eq!(DelayModel::ZERO.sample(&mut r), SimDuration::ZERO);
    }
}
