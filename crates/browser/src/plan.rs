//! Declarative description of one measurement method.
//!
//! A [`ProbePlan`] says *what* a method does (technology, transport,
//! timing API, message sizes); the per-browser [`crate::BrowserProfile`]
//! says *how much it costs*; [`crate::BrowserSession`] executes the two
//! together. The ten concrete plans of the paper's Table 1 are built by
//! the `bnm-methods` crate.

use bnm_time::TimingApiKind;

/// The implementation technology of a method (Table 1's "Technology"
/// column: Native / Flash plug-in / Java applet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technology {
    /// JavaScript + DOM, no plug-in.
    Native,
    /// Adobe Flash (ActionScript).
    Flash,
    /// Java applet (runs in the JRE, not the browser).
    JavaApplet,
}

impl Technology {
    /// Display name matching Table 1.
    pub fn name(self) -> &'static str {
        match self {
            Technology::Native => "Native",
            Technology::Flash => "Flash",
            Technology::JavaApplet => "Java applet",
        }
    }
}

/// How the probe travels (Table 1's "Methods" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeTransport {
    /// HTTP GET to `/probe`.
    HttpGet,
    /// HTTP POST to `/probe`.
    HttpPost,
    /// Binary echo over a raw TCP connection.
    TcpEcho,
    /// Binary echo over UDP.
    UdpEcho,
    /// Message echo over a WebSocket connection.
    WebSocketEcho,
    /// Unreliable/unordered datagram echo over a WebRTC data channel
    /// (`maxRetransmits: 0`): probes can be lost, reordered or
    /// duplicated in flight — never retransmitted.
    WebRtcData,
}

impl ProbeTransport {
    /// Whether the transport is HTTP-based (vs socket-based) — the
    /// paper's primary taxonomy.
    pub fn is_http(self) -> bool {
        matches!(self, ProbeTransport::HttpGet | ProbeTransport::HttpPost)
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ProbeTransport::HttpGet => "GET",
            ProbeTransport::HttpPost => "POST",
            ProbeTransport::TcpEcho => "TCP",
            ProbeTransport::UdpEcho => "UDP",
            ProbeTransport::WebSocketEcho => "WebSocket",
            ProbeTransport::WebRtcData => "WebRTC data channel",
        }
    }
}

/// One measurement method, ready to execute.
#[derive(Debug, Clone)]
pub struct ProbePlan {
    /// Short label used in probe markers and reports (e.g. `"xhr_get"`).
    pub label: String,
    /// Implementation technology.
    pub technology: Technology,
    /// Probe transport.
    pub transport: ProbeTransport,
    /// The clock `tB` timestamps are read from.
    pub timing: TimingApiKind,
    /// Socket-probe payload size, bytes (single-packet per §3; HTTP
    /// requests are sized by their headers instead).
    pub request_size: usize,
    /// Measurement rounds (the paper uses 2: Δd1 and Δd2).
    pub rounds: u8,
    /// Throughput mode: request a bulk response of this many bytes
    /// instead of the single-packet pong. `None` = the paper's RTT
    /// probes. Supported for HTTP and WebSocket transports (what
    /// speedtest-style tools download through).
    pub bulk: Option<usize>,
    /// Embed unique query parameters per round (cache busting). All real
    /// tools do this; disabling it demonstrates *why*: the browser cache
    /// serves repeated GET URLs without touching the network, destroying
    /// the measurement (§5's "reusing existing … web objects" concern).
    pub cache_buster: bool,
}

impl ProbePlan {
    /// A plan with the defaults the paper's testbed uses (32-byte socket
    /// probes, 2 rounds).
    pub fn new(
        label: impl Into<String>,
        technology: Technology,
        transport: ProbeTransport,
        timing: TimingApiKind,
    ) -> ProbePlan {
        ProbePlan {
            label: label.into(),
            technology,
            transport,
            timing,
            request_size: 32,
            rounds: 2,
            bulk: None,
            cache_buster: true,
        }
    }

    /// Disable cache busting (for the caching-pitfall demonstration).
    pub fn without_cache_buster(mut self) -> ProbePlan {
        self.cache_buster = false;
        self
    }

    /// Switch the plan into throughput mode: each round downloads a
    /// `bytes`-sized response. Panics for transports that have no bulk
    /// path (raw TCP/UDP echo).
    pub fn with_bulk(mut self, bytes: usize) -> ProbePlan {
        assert!(
            matches!(
                self.transport,
                ProbeTransport::HttpGet | ProbeTransport::WebSocketEcho
            ),
            "bulk mode needs an HTTP GET or WebSocket transport"
        );
        self.bulk = Some(bytes);
        self
    }

    /// Sanity-check technology/transport combinations that exist in the
    /// paper's Table 1.
    pub fn is_table1_combination(&self) -> bool {
        use ProbeTransport::*;
        use Technology::*;
        matches!(
            (self.technology, self.transport),
            (Native, HttpGet)            // XHR GET, DOM
                | (Native, HttpPost)     // XHR POST
                | (Native, WebSocketEcho)
                | (Flash, HttpGet)
                | (Flash, HttpPost)
                | (Flash, TcpEcho)
                | (JavaApplet, HttpGet)
                | (JavaApplet, HttpPost)
                | (JavaApplet, TcpEcho)
                | (JavaApplet, UdpEcho)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn http_vs_socket_taxonomy() {
        assert!(ProbeTransport::HttpGet.is_http());
        assert!(ProbeTransport::HttpPost.is_http());
        assert!(!ProbeTransport::TcpEcho.is_http());
        assert!(!ProbeTransport::UdpEcho.is_http());
        assert!(!ProbeTransport::WebSocketEcho.is_http());
    }

    #[test]
    fn table1_combinations() {
        let ok = ProbePlan::new(
            "xhr_get",
            Technology::Native,
            ProbeTransport::HttpGet,
            TimingApiKind::JsDateGetTime,
        );
        assert!(ok.is_table1_combination());
        let bad = ProbePlan::new(
            "flash_udp",
            Technology::Flash,
            ProbeTransport::UdpEcho,
            TimingApiKind::FlashGetTime,
        );
        assert!(!bad.is_table1_combination());
    }

    #[test]
    fn defaults() {
        let p = ProbePlan::new(
            "ws",
            Technology::Native,
            ProbeTransport::WebSocketEcho,
            TimingApiKind::JsDateGetTime,
        );
        assert_eq!(p.rounds, 2);
        assert_eq!(p.request_size, 32);
    }
}
