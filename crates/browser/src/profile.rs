//! Per-(browser, OS) cost profiles and feature matrix.
//!
//! A profile is a set of code-path **primitives** ([`DelayModel`]s) plus
//! per-browser scaling factors. Methods compose these primitives into
//! send/receive paths ([`BrowserProfile::send_path`] /
//! [`BrowserProfile::recv_path`]); the session samples and schedules them.
//! Nothing here is a "target Δd": the measured overheads emerge from the
//! composition, the connection policy, timestamp quantization and the TCP
//! behaviour on the wire.
//!
//! Calibration note: the absolute magnitudes below are synthetic (we have
//! no 2013 hardware), chosen so that the *relative* structure matches the
//! paper — Flash URLLoader ≫ XHR > DOM ≫ sockets; Windows paths dearer
//! than Ubuntu; IE/Safari the slowest; Opera's Flash connection policy the
//! odd one out; Java paths independent of the host browser (they run in
//! the JVM).

use bnm_obs::Component;
use bnm_time::OsKind;

use crate::delay::DelayModel;
use crate::plan::{ProbeTransport, Technology};

/// One delay segment of a send/receive path: a primitive tagged with
/// the Δd component it is attributed to and a stable trace label.
#[derive(Debug, Clone, Copy)]
pub struct PathSeg {
    /// Primitive name, used as the trace event label.
    pub label: &'static str,
    /// Δd attribution component (Figure 3 decomposition).
    pub component: Component,
    /// The delay distribution to sample.
    pub model: DelayModel,
}

/// Shorthand constructor for a [`PathSeg`].
fn seg(label: &'static str, component: Component, model: DelayModel) -> PathSeg {
    PathSeg {
        label,
        component,
        model,
    }
}

/// The five browsers of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BrowserKind {
    /// Google Chrome 23.
    Chrome,
    /// Mozilla Firefox 17.
    Firefox,
    /// Internet Explorer 9 (Windows only).
    Ie9,
    /// Opera 12.11.
    Opera,
    /// Safari 5.1.7 (Windows only in the testbed).
    Safari,
}

impl BrowserKind {
    /// All five, in the paper's ordering.
    pub const ALL: [BrowserKind; 5] = [
        BrowserKind::Chrome,
        BrowserKind::Firefox,
        BrowserKind::Ie9,
        BrowserKind::Opera,
        BrowserKind::Safari,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BrowserKind::Chrome => "Chrome",
            BrowserKind::Firefox => "Firefox",
            BrowserKind::Ie9 => "IE",
            BrowserKind::Opera => "Opera",
            BrowserKind::Safari => "Safari",
        }
    }

    /// The initial used in the paper's figure labels ("C (U) Δd1" …).
    pub fn initial(self) -> &'static str {
        match self {
            BrowserKind::Chrome => "C",
            BrowserKind::Firefox => "F",
            BrowserKind::Ie9 => "IE",
            BrowserKind::Opera => "O",
            BrowserKind::Safari => "S",
        }
    }

    /// Whether the browser exists on this OS in the testbed (Table 2).
    pub fn available_on(self, os: OsKind) -> bool {
        match os {
            OsKind::Windows7 => true,
            OsKind::Ubuntu1204 => matches!(
                self,
                BrowserKind::Chrome | BrowserKind::Firefox | BrowserKind::Opera
            ),
        }
    }

    /// Browser version string (Table 2).
    pub fn version(self) -> &'static str {
        match self {
            BrowserKind::Chrome => "23.0",
            BrowserKind::Firefox => "17.0",
            BrowserKind::Ie9 => "9.0.8",
            BrowserKind::Opera => "12.11",
            BrowserKind::Safari => "5.1.7",
        }
    }

    /// Flash plug-in version on the given OS (Table 2).
    pub fn flash_version(self, os: OsKind) -> &'static str {
        match (self, os) {
            (BrowserKind::Chrome, OsKind::Windows7) => "11.7.700",
            (_, OsKind::Windows7) => "11.5.502",
            (BrowserKind::Chrome, OsKind::Ubuntu1204) => "11.5.31",
            (_, OsKind::Ubuntu1204) => "11.2.202",
        }
    }

    /// Java plug-in version on the given OS (Table 2).
    pub fn java_version(self, os: OsKind) -> &'static str {
        match os {
            OsKind::Windows7 => "1.7.0",
            OsKind::Ubuntu1204 => "1.6.0",
        }
    }

    /// WebSocket support in the tested versions (Table 2: IE 9 and
    /// Safari 5 lack it).
    pub fn supports_websocket(self) -> bool {
        !matches!(self, BrowserKind::Ie9 | BrowserKind::Safari)
    }
}

/// What executes the measurement code: a browser, or the JDK's
/// `appletviewer` (the paper's Figure 4(b) control experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Runtime {
    /// A browser from Table 2.
    Browser(BrowserKind),
    /// `appletviewer` — Java applets without any browser or Java Plug-in.
    AppletViewer,
    /// A mobile WebKit browser — the paper's §7 "extended to the mobile
    /// environment": no Flash, no Java plug-in (§2.1), WebSocket present.
    MobileWebKit,
}

impl Runtime {
    /// Display label ("C", "F", …, "appletviewer").
    pub fn label(self) -> &'static str {
        match self {
            Runtime::Browser(b) => b.initial(),
            Runtime::AppletViewer => "appletviewer",
            Runtime::MobileWebKit => "M",
        }
    }
}

/// Connection-management behaviour of one technology in one browser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnPolicy {
    /// Open a *new* TCP connection for the first measurement request
    /// instead of reusing the container page's (Opera's Flash behaviour —
    /// the mechanism behind Table 3's inflated Δd1).
    pub fresh_conn_round1: bool,
    /// Open a new connection for *every* POST (Opera's Flash POST
    /// behaviour — Table 3's inflated Δd2 for POST).
    pub fresh_conn_per_post: bool,
}

impl ConnPolicy {
    /// Reuse connections wherever possible (every browser except Opera's
    /// Flash stack).
    pub const REUSE: ConnPolicy = ConnPolicy {
        fresh_conn_round1: false,
        fresh_conn_per_post: false,
    };

    /// Opera's Flash behaviour.
    pub const OPERA_FLASH: ConnPolicy = ConnPolicy {
        fresh_conn_round1: true,
        fresh_conn_per_post: true,
    };
}

/// Code-path primitive latencies (all [`DelayModel`]s, µs scale).
#[derive(Debug, Clone)]
pub struct PathPrimitives {
    /// send(2) syscall → frame visible at the capture point.
    pub os_send: DelayModel,
    /// Frame at the capture point → bytes readable by the app.
    pub os_recv: DelayModel,
    /// One trip through the browser event loop (task dispatch), including
    /// the occasional GC/render jank spike.
    pub event_dispatch: DelayModel,
    /// Executing a small JS callback.
    pub js_exec: DelayModel,
    /// XHR `send()` internals.
    pub xhr_send: DelayModel,
    /// XHR response internals (header parse, readyState bookkeeping).
    pub xhr_recv: DelayModel,
    /// Inserting a `<script>`/`<img>` element.
    pub dom_insert: DelayModel,
    /// Firing `onload` for a DOM element.
    pub dom_onload: DelayModel,
    /// One browser ↔ Flash player crossing (NPAPI marshalling).
    pub flash_bridge: DelayModel,
    /// `URLLoader` request internals (the expensive part of Flash HTTP).
    pub flash_url_send: DelayModel,
    /// `URLLoader` response internals.
    pub flash_url_recv: DelayModel,
    /// Flash `Socket` write path.
    pub flash_socket_send: DelayModel,
    /// Flash `Socket` data-event path.
    pub flash_socket_recv: DelayModel,
    /// Java `URL` request path (in the JVM).
    pub java_http_send: DelayModel,
    /// Java `URL` response path.
    pub java_http_recv: DelayModel,
    /// Extra cost of a round-2 Java GET (connection-cache revalidation;
    /// the paper's Table 4 shows Δd2 > Δd1 for Java GET).
    pub java_get_round2_extra: DelayModel,
    /// Round-2 Java POST path scale (< 1: Table 4 shows POST Δd2 < Δd1).
    pub java_post_round2_scale: f64,
    /// Java `Socket` write path.
    pub java_socket_send: DelayModel,
    /// Java `Socket` read path.
    pub java_socket_recv: DelayModel,
    /// Extra continuous noise on round-2 Java paths — Safari/Windows'
    /// broken default Java interface (`JavaPlugin.jar`; paper §5).
    pub java_round2_noise: Option<DelayModel>,
    /// WebSocket `send()` path.
    pub ws_send: DelayModel,
    /// WebSocket `onmessage` path (its own fast dispatch lane).
    pub ws_recv: DelayModel,
    /// Parsing + first render of the container page (preparation phase).
    pub page_render: DelayModel,
}

/// First-use costs added to round 1 only (object instantiation).
#[derive(Debug, Clone)]
pub struct FirstUse {
    /// Creating the XHR object.
    pub xhr: DelayModel,
    /// First DOM-element insertion machinery.
    pub dom: DelayModel,
    /// First `URLLoader` use inside a fresh Flash object.
    pub flash_http: DelayModel,
    /// First Flash `Socket` send.
    pub flash_socket: DelayModel,
    /// First Java `URL` use (class loading beyond applet warm-up).
    pub java_http: DelayModel,
    /// First Java `Socket` send.
    pub java_socket: DelayModel,
    /// First WebSocket `send()`.
    pub ws: DelayModel,
}

/// A complete per-(runtime, OS) cost profile.
#[derive(Debug, Clone)]
pub struct BrowserProfile {
    /// Which runtime this profiles.
    pub runtime: Runtime,
    /// Which OS it runs on.
    pub os: OsKind,
    /// Code-path primitives (already scaled for this browser).
    pub prims: PathPrimitives,
    /// Round-1 instantiation costs.
    pub first_use: FirstUse,
    /// Connection policy for HTTP via the browser stack (XHR, DOM).
    pub native_policy: ConnPolicy,
    /// Connection policy for Flash's `URLLoader`.
    pub flash_policy: ConnPolicy,
    /// Connection policy for the JVM's HTTP stack.
    pub java_policy: ConnPolicy,
    /// WebSocket availability.
    pub supports_websocket: bool,
}

/// Per-browser scaling factors applied to the baseline primitives.
struct Factors {
    /// Browser-stack paths (XHR, DOM, WS, dispatch).
    general: f64,
    /// Flash paths.
    flash: f64,
    /// Java paths (≈1: the JVM is the same everywhere; Safari's broken
    /// plug-in is handled separately).
    java: f64,
}

fn factors(kind: BrowserKind, os: OsKind) -> Factors {
    use BrowserKind::*;
    use OsKind::*;
    let (general, flash, java) = match (kind, os) {
        (Chrome, Ubuntu1204) => (1.0, 1.2, 1.0),
        (Firefox, Ubuntu1204) => (1.15, 1.5, 1.0),
        (Opera, Ubuntu1204) => (1.3, 0.95, 1.0),
        (Chrome, Windows7) => (1.6, 1.5, 1.0),
        (Firefox, Windows7) => (1.9, 1.7, 1.0),
        (Ie9, Windows7) => (2.8, 2.0, 1.0),
        (Opera, Windows7) => (2.1, 0.9, 1.0),
        (Safari, Windows7) => (3.2, 2.2, 0.65),
        // Not in the testbed, but keep the model total.
        (Ie9, Ubuntu1204) | (Safari, Ubuntu1204) => (2.0, 2.0, 1.0),
    };
    Factors {
        general,
        flash,
        java,
    }
}

/// Baseline primitives (Chrome on Ubuntu ≙ factor 1.0). Magnitudes in µs.
fn baseline() -> PathPrimitives {
    PathPrimitives {
        os_send: DelayModel::fixed(6.0),
        os_recv: DelayModel::fixed(10.0),
        event_dispatch: DelayModel::lognorm(100.0, 250.0, 0.8).with_spike(0.02, 3_000.0, 25_000.0),
        js_exec: DelayModel::lognorm(40.0, 120.0, 0.5),
        xhr_send: DelayModel::lognorm(150.0, 600.0, 0.6),
        xhr_recv: DelayModel::lognorm(400.0, 2_000.0, 0.7),
        dom_insert: DelayModel::lognorm(100.0, 350.0, 0.5),
        dom_onload: DelayModel::lognorm(200.0, 700.0, 0.6),
        flash_bridge: DelayModel::lognorm(250.0, 900.0, 0.6),
        flash_url_send: DelayModel::lognorm(2_500.0, 5_500.0, 0.45),
        flash_url_recv: DelayModel::lognorm(3_500.0, 8_000.0, 0.5),
        flash_socket_send: DelayModel::lognorm(80.0, 180.0, 0.5),
        flash_socket_recv: DelayModel::lognorm(150.0, 420.0, 0.7),
        java_http_send: DelayModel::lognorm(500.0, 700.0, 0.3),
        java_http_recv: DelayModel::lognorm(700.0, 900.0, 0.35),
        java_get_round2_extra: DelayModel::lognorm(800.0, 1_000.0, 0.3),
        java_post_round2_scale: 0.62,
        java_socket_send: DelayModel::fixed(8.0),
        java_socket_recv: DelayModel::lognorm(10.0, 15.0, 0.3),
        java_round2_noise: None,
        ws_send: DelayModel::lognorm(50.0, 90.0, 0.4),
        ws_recv: DelayModel::lognorm(120.0, 250.0, 0.5),
        page_render: DelayModel::lognorm(2_000.0, 5_000.0, 0.5),
    }
}

impl BrowserProfile {
    /// The profile for a browser on an OS; `None` if that browser is not
    /// in the testbed on that OS (Table 2).
    pub fn build(kind: BrowserKind, os: OsKind) -> Option<BrowserProfile> {
        if !kind.available_on(os) {
            return None;
        }
        let f = factors(kind, os);
        let b = baseline();
        let g = f.general;
        let fl = f.flash;
        let j = f.java;
        let mut prims = PathPrimitives {
            os_send: b.os_send,
            os_recv: b.os_recv,
            event_dispatch: b.event_dispatch.scaled(g),
            js_exec: b.js_exec.scaled(g),
            xhr_send: b.xhr_send.scaled(g),
            xhr_recv: b.xhr_recv.scaled(g),
            dom_insert: b.dom_insert.scaled(g),
            dom_onload: b.dom_onload.scaled(g),
            flash_bridge: b.flash_bridge.scaled(fl),
            flash_url_send: b.flash_url_send.scaled(fl),
            flash_url_recv: b.flash_url_recv.scaled(fl),
            flash_socket_send: b.flash_socket_send.scaled(fl),
            flash_socket_recv: b.flash_socket_recv.scaled(fl),
            java_http_send: b.java_http_send.scaled(j),
            java_http_recv: b.java_http_recv.scaled(j),
            java_get_round2_extra: b.java_get_round2_extra.scaled(j),
            java_post_round2_scale: b.java_post_round2_scale,
            java_socket_send: b.java_socket_send,
            java_socket_recv: b.java_socket_recv,
            java_round2_noise: None,
            ws_send: b.ws_send.scaled(g),
            ws_recv: b.ws_recv.scaled(g),
            page_render: b.page_render.scaled(g),
        };
        // Safari's default Java interface (JavaPlugin.jar /
        // npJavaPlugin.dll) "runs into problems easily" (§5): broad
        // continuous noise on repeated use. Safari has no round-2 GET
        // penalty either — its Δd2 is *lower* than Δd1 in Table 4.
        if kind == BrowserKind::Safari {
            prims.java_round2_noise =
                Some(DelayModel::lognorm(0.0, 4_000.0, 0.9).with_spike(0.3, 4_000.0, 10_000.0));
            prims.java_get_round2_extra = DelayModel::ZERO;
            prims.java_post_round2_scale = 0.85;
        }
        let first_use = FirstUse {
            xhr: DelayModel::lognorm(300.0, 900.0, 0.5).scaled(g),
            dom: DelayModel::lognorm(150.0, 350.0, 0.5).scaled(g),
            flash_http: DelayModel::lognorm(9_000.0, 14_000.0, 0.4).scaled(
                if kind == BrowserKind::Opera {
                    fl * 1.55
                } else {
                    fl
                },
            ),
            flash_socket: DelayModel::lognorm(100.0, 200.0, 0.4).scaled(fl),
            java_http: DelayModel::ZERO, // applet warm-up happens in prep
            java_socket: DelayModel::ZERO,
            ws: if kind == BrowserKind::Opera && os == OsKind::Windows7 {
                // Opera (W) Δd1 is the one unstable WebSocket box in
                // Figure 3(d).
                DelayModel::lognorm(200.0, 400.0, 0.5).with_spike(0.35, 8_000.0, 40_000.0)
            } else {
                DelayModel::lognorm(100.0, 250.0, 0.4).scaled(g)
            },
        };
        Some(BrowserProfile {
            runtime: Runtime::Browser(kind),
            os,
            prims,
            first_use,
            native_policy: ConnPolicy::REUSE,
            flash_policy: if kind == BrowserKind::Opera {
                ConnPolicy::OPERA_FLASH
            } else {
                ConnPolicy::REUSE
            },
            java_policy: ConnPolicy::REUSE,
            supports_websocket: kind.supports_websocket(),
        })
    }

    /// The `appletviewer` profile: Java applets with no browser and no
    /// Java Plug-in (Figure 4(b)). Only Java methods are meaningful.
    pub fn appletviewer(os: OsKind) -> BrowserProfile {
        let b = baseline();
        BrowserProfile {
            runtime: Runtime::AppletViewer,
            os,
            prims: b.clone(),
            first_use: FirstUse {
                xhr: DelayModel::ZERO,
                dom: DelayModel::ZERO,
                flash_http: DelayModel::ZERO,
                flash_socket: DelayModel::ZERO,
                java_http: DelayModel::ZERO,
                java_socket: DelayModel::ZERO,
                ws: DelayModel::ZERO,
            },
            native_policy: ConnPolicy::REUSE,
            flash_policy: ConnPolicy::REUSE,
            java_policy: ConnPolicy::REUSE,
            supports_websocket: false,
        }
    }

    /// A mobile WebKit profile (§7 extension): native code paths only,
    /// scaled up for 2013 mobile CPUs; plug-ins do not exist on the
    /// platform, making WebSocket "the remaining choice for performing
    /// socket-based measurement" (§2.1).
    pub fn mobile_webkit() -> BrowserProfile {
        let b = baseline();
        let g = 3.5; // mobile-CPU scaling of the browser paths
        let prims = PathPrimitives {
            os_send: b.os_send,
            os_recv: b.os_recv,
            event_dispatch: b.event_dispatch.scaled(g),
            js_exec: b.js_exec.scaled(g),
            xhr_send: b.xhr_send.scaled(g),
            xhr_recv: b.xhr_recv.scaled(g),
            dom_insert: b.dom_insert.scaled(g),
            dom_onload: b.dom_onload.scaled(g),
            ws_send: b.ws_send.scaled(g),
            ws_recv: b.ws_recv.scaled(g),
            page_render: b.page_render.scaled(g * 1.5),
            ..b
        };
        let first_use = FirstUse {
            xhr: DelayModel::lognorm(300.0, 900.0, 0.5).scaled(g),
            dom: DelayModel::lognorm(150.0, 350.0, 0.5).scaled(g),
            flash_http: DelayModel::ZERO,
            flash_socket: DelayModel::ZERO,
            java_http: DelayModel::ZERO,
            java_socket: DelayModel::ZERO,
            ws: DelayModel::lognorm(100.0, 250.0, 0.4).scaled(g),
        };
        BrowserProfile {
            runtime: Runtime::MobileWebKit,
            os: OsKind::Ubuntu1204, // a Linux-kernel mobile OS: 1 ms timer
            prims,
            first_use,
            native_policy: ConnPolicy::REUSE,
            flash_policy: ConnPolicy::REUSE,
            java_policy: ConnPolicy::REUSE,
            supports_websocket: true,
        }
    }

    /// §5's Safari fix: delete `JavaPlugin.jar`/`npJavaPlugin.dll` so the
    /// Oracle JRE is used directly — removes the round-2 Java noise.
    pub fn with_fixed_safari_java(mut self) -> BrowserProfile {
        self.prims.java_round2_noise = None;
        self
    }

    /// Connection policy for a technology.
    pub fn conn_policy(&self, tech: Technology) -> ConnPolicy {
        match tech {
            Technology::Native => self.native_policy,
            Technology::Flash => self.flash_policy,
            Technology::JavaApplet => self.java_policy,
        }
    }

    /// The delay segments between "measurement code decides to send" and
    /// "bytes handed to the network stack", for one probe.
    pub fn send_path(
        &self,
        tech: Technology,
        transport: ProbeTransport,
        round: u8,
    ) -> Vec<PathSeg> {
        use Component::{Bridge, Parse, Stack};
        let p = &self.prims;
        let mut path = match (tech, transport) {
            (Technology::Native, ProbeTransport::HttpGet | ProbeTransport::HttpPost) => {
                vec![
                    seg("js_exec", Component::Dispatch, p.js_exec),
                    seg("xhr_send", Parse, p.xhr_send),
                ]
            }
            (Technology::Native, ProbeTransport::WebSocketEcho) => vec![
                seg("js_exec", Component::Dispatch, p.js_exec),
                seg("ws_send", Parse, p.ws_send),
            ],
            // The data-channel `send()` costs what a WebSocket send does:
            // both serialize a small message and hand it to the stack.
            (Technology::Native, ProbeTransport::WebRtcData) => vec![
                seg("js_exec", Component::Dispatch, p.js_exec),
                seg("dc_send", Parse, p.ws_send),
            ],
            (Technology::Flash, ProbeTransport::HttpGet | ProbeTransport::HttpPost) => {
                vec![
                    seg("flash_url_send", Parse, p.flash_url_send),
                    seg("flash_bridge", Bridge, p.flash_bridge),
                ]
            }
            (Technology::Flash, ProbeTransport::TcpEcho) => {
                vec![seg("flash_socket_send", Stack, p.flash_socket_send)]
            }
            (Technology::JavaApplet, ProbeTransport::HttpGet | ProbeTransport::HttpPost) => {
                let mut m = p.java_http_send;
                if transport == ProbeTransport::HttpPost && round >= 2 {
                    m = m.scaled(p.java_post_round2_scale);
                }
                vec![seg("java_http_send", Parse, m)]
            }
            (Technology::JavaApplet, ProbeTransport::TcpEcho | ProbeTransport::UdpEcho) => {
                vec![seg("java_socket_send", Stack, p.java_socket_send)]
            }
            // DOM is Native+HttpGet in Table 1; the DOM-specific path is
            // selected by the method label through `dom_paths`.
            (t, tr) => unreachable!("no path for {t:?} over {tr:?}"),
        };
        path.push(seg("os_send", Stack, p.os_send));
        path
    }

    /// The DOM method's send path (element insertion instead of XHR).
    pub fn dom_send_path(&self) -> Vec<PathSeg> {
        vec![
            seg("js_exec", Component::Dispatch, self.prims.js_exec),
            seg("dom_insert", Component::Dispatch, self.prims.dom_insert),
            seg("os_send", Component::Stack, self.prims.os_send),
        ]
    }

    /// The delay segments between "response bytes readable" and "the
    /// measurement code reads `tB_r`".
    pub fn recv_path(
        &self,
        tech: Technology,
        transport: ProbeTransport,
        round: u8,
    ) -> Vec<PathSeg> {
        use Component::{Bridge, Dispatch, Parse, Stack};
        let p = &self.prims;
        let mut path = vec![seg("os_recv", Stack, p.os_recv)];
        match (tech, transport) {
            (Technology::Native, ProbeTransport::HttpGet | ProbeTransport::HttpPost) => {
                path.push(seg("event_dispatch", Dispatch, p.event_dispatch));
                path.push(seg("xhr_recv", Parse, p.xhr_recv));
            }
            (Technology::Native, ProbeTransport::WebSocketEcho) => {
                path.push(seg("ws_recv", Parse, p.ws_recv));
            }
            (Technology::Native, ProbeTransport::WebRtcData) => {
                path.push(seg("dc_recv", Parse, p.ws_recv));
            }
            (Technology::Flash, ProbeTransport::HttpGet | ProbeTransport::HttpPost) => {
                path.push(seg("flash_bridge", Bridge, p.flash_bridge));
                path.push(seg("flash_url_recv", Parse, p.flash_url_recv));
                path.push(seg("event_dispatch", Dispatch, p.event_dispatch));
            }
            (Technology::Flash, ProbeTransport::TcpEcho) => {
                path.push(seg("flash_socket_recv", Stack, p.flash_socket_recv));
            }
            (Technology::JavaApplet, ProbeTransport::HttpGet | ProbeTransport::HttpPost) => {
                let mut m = p.java_http_recv;
                if transport == ProbeTransport::HttpPost && round >= 2 {
                    m = m.scaled(p.java_post_round2_scale);
                }
                path.push(seg("java_http_recv", Parse, m));
                if transport == ProbeTransport::HttpGet && round >= 2 {
                    path.push(seg("java_get_round2_extra", Parse, p.java_get_round2_extra));
                }
                if round >= 2 {
                    if let Some(noise) = p.java_round2_noise {
                        path.push(seg("java_round2_noise", Parse, noise));
                    }
                }
            }
            (Technology::JavaApplet, ProbeTransport::TcpEcho | ProbeTransport::UdpEcho) => {
                path.push(seg("java_socket_recv", Stack, p.java_socket_recv));
                if round >= 2 {
                    // Small warm-cache asymmetry: Table 4 shows socket Δd2
                    // marginally above Δd1.
                    path.push(seg(
                        "java_socket_warm_cache",
                        Stack,
                        DelayModel::fixed(55.0),
                    ));
                    if let Some(noise) = p.java_round2_noise {
                        path.push(seg("java_round2_noise", Parse, noise));
                    }
                }
            }
            (t, tr) => unreachable!("no path for {t:?} over {tr:?}"),
        }
        path
    }

    /// The DOM method's receive path (`onload` instead of readyState).
    pub fn dom_recv_path(&self) -> Vec<PathSeg> {
        vec![
            seg("os_recv", Component::Stack, self.prims.os_recv),
            seg(
                "event_dispatch",
                Component::Dispatch,
                self.prims.event_dispatch,
            ),
            seg("dom_onload", Component::Dispatch, self.prims.dom_onload),
        ]
    }

    /// First-use (round 1) instantiation cost for a technology/transport.
    pub fn first_use_cost(&self, tech: Technology, transport: ProbeTransport) -> DelayModel {
        match (tech, transport) {
            (Technology::Native, ProbeTransport::WebSocketEcho | ProbeTransport::WebRtcData) => {
                self.first_use.ws
            }
            (Technology::Native, _) => self.first_use.xhr,
            (Technology::Flash, ProbeTransport::TcpEcho) => self.first_use.flash_socket,
            (Technology::Flash, _) => self.first_use.flash_http,
            (Technology::JavaApplet, ProbeTransport::TcpEcho | ProbeTransport::UdpEcho) => {
                self.first_use.java_socket
            }
            (Technology::JavaApplet, _) => self.first_use.java_http,
        }
    }

    /// First-use cost for the DOM method.
    pub fn dom_first_use_cost(&self) -> DelayModel {
        self.first_use.dom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_matches_table2() {
        use BrowserKind::*;
        use OsKind::*;
        let win: Vec<_> = BrowserKind::ALL
            .iter()
            .filter(|b| b.available_on(Windows7))
            .collect();
        assert_eq!(win.len(), 5);
        let ubu: Vec<_> = BrowserKind::ALL
            .iter()
            .filter(|b| b.available_on(Ubuntu1204))
            .collect();
        assert_eq!(ubu.len(), 3);
        assert!(!Ie9.available_on(Ubuntu1204));
        assert!(!Safari.available_on(Ubuntu1204));
        assert!(BrowserProfile::build(Ie9, Ubuntu1204).is_none());
    }

    #[test]
    fn websocket_support_matches_table2() {
        assert!(BrowserKind::Chrome.supports_websocket());
        assert!(BrowserKind::Firefox.supports_websocket());
        assert!(BrowserKind::Opera.supports_websocket());
        assert!(!BrowserKind::Ie9.supports_websocket());
        assert!(!BrowserKind::Safari.supports_websocket());
    }

    #[test]
    fn only_opera_flash_opens_fresh_connections() {
        for kind in BrowserKind::ALL {
            let Some(p) = BrowserProfile::build(kind, OsKind::Windows7) else {
                continue;
            };
            let policy = p.conn_policy(Technology::Flash);
            if kind == BrowserKind::Opera {
                assert!(policy.fresh_conn_round1);
                assert!(policy.fresh_conn_per_post);
            } else {
                assert_eq!(policy, ConnPolicy::REUSE);
            }
            assert_eq!(p.conn_policy(Technology::Native), ConnPolicy::REUSE);
        }
    }

    /// Sum of path-segment medians, ms.
    fn median_path_ms(path: &[PathSeg]) -> f64 {
        path.iter().map(|s| s.model.median_us()).sum::<f64>() / 1e3
    }

    #[test]
    fn path_cost_ordering_matches_the_paper() {
        let p = BrowserProfile::build(BrowserKind::Chrome, OsKind::Ubuntu1204).unwrap();
        let xhr = median_path_ms(&p.send_path(Technology::Native, ProbeTransport::HttpGet, 1))
            + median_path_ms(&p.recv_path(Technology::Native, ProbeTransport::HttpGet, 1));
        let dom = median_path_ms(&p.dom_send_path()) + median_path_ms(&p.dom_recv_path());
        let flash = median_path_ms(&p.send_path(Technology::Flash, ProbeTransport::HttpGet, 1))
            + median_path_ms(&p.recv_path(Technology::Flash, ProbeTransport::HttpGet, 1));
        let ws = median_path_ms(&p.send_path(Technology::Native, ProbeTransport::WebSocketEcho, 1))
            + median_path_ms(&p.recv_path(Technology::Native, ProbeTransport::WebSocketEcho, 1));
        let jsock =
            median_path_ms(&p.send_path(Technology::JavaApplet, ProbeTransport::TcpEcho, 1))
                + median_path_ms(&p.recv_path(Technology::JavaApplet, ProbeTransport::TcpEcho, 1));
        assert!(flash > xhr, "Flash {flash} > XHR {xhr}");
        assert!(xhr > dom, "XHR {xhr} > DOM {dom}");
        assert!(dom > ws, "DOM {dom} > WS {ws}");
        assert!(ws > jsock, "WS {ws} > Java socket {jsock}");
        // Socket methods are sub-millisecond; Flash HTTP is tens of ms.
        assert!(jsock < 0.1, "java socket path {jsock} ms");
        assert!(ws < 1.0, "ws path {ws} ms");
        assert!(flash > 15.0, "flash path {flash} ms");
    }

    #[test]
    fn windows_paths_cost_more_than_ubuntu() {
        for kind in [
            BrowserKind::Chrome,
            BrowserKind::Firefox,
            BrowserKind::Opera,
        ] {
            let u = BrowserProfile::build(kind, OsKind::Ubuntu1204).unwrap();
            let w = BrowserProfile::build(kind, OsKind::Windows7).unwrap();
            let cost = |p: &BrowserProfile| {
                median_path_ms(&p.send_path(Technology::Native, ProbeTransport::HttpGet, 1))
                    + median_path_ms(&p.recv_path(Technology::Native, ProbeTransport::HttpGet, 1))
            };
            assert!(cost(&w) > cost(&u), "{kind:?}");
        }
    }

    #[test]
    fn java_paths_are_browser_independent() {
        let c = BrowserProfile::build(BrowserKind::Chrome, OsKind::Windows7).unwrap();
        let f = BrowserProfile::build(BrowserKind::Firefox, OsKind::Windows7).unwrap();
        let cost = |p: &BrowserProfile| {
            median_path_ms(&p.send_path(Technology::JavaApplet, ProbeTransport::HttpGet, 1))
        };
        assert!((cost(&c) - cost(&f)).abs() < 1e-9);
    }

    #[test]
    fn java_round2_get_is_dearer_and_post_is_cheaper() {
        let p = BrowserProfile::build(BrowserKind::Chrome, OsKind::Windows7).unwrap();
        let get1 = median_path_ms(&p.recv_path(Technology::JavaApplet, ProbeTransport::HttpGet, 1));
        let get2 = median_path_ms(&p.recv_path(Technology::JavaApplet, ProbeTransport::HttpGet, 2));
        assert!(get2 > get1 + 1.0, "round-2 GET extra");
        let post1 =
            median_path_ms(&p.send_path(Technology::JavaApplet, ProbeTransport::HttpPost, 1))
                + median_path_ms(&p.recv_path(Technology::JavaApplet, ProbeTransport::HttpPost, 1));
        let post2 =
            median_path_ms(&p.send_path(Technology::JavaApplet, ProbeTransport::HttpPost, 2))
                + median_path_ms(&p.recv_path(Technology::JavaApplet, ProbeTransport::HttpPost, 2));
        assert!(post2 < post1, "round-2 POST cheaper");
    }

    #[test]
    fn safari_java_noise_and_its_fix() {
        let s = BrowserProfile::build(BrowserKind::Safari, OsKind::Windows7).unwrap();
        assert!(s.prims.java_round2_noise.is_some());
        let fixed = s.with_fixed_safari_java();
        assert!(fixed.prims.java_round2_noise.is_none());
    }

    #[test]
    fn appletviewer_has_no_browser_costs() {
        let av = BrowserProfile::appletviewer(OsKind::Windows7);
        assert_eq!(av.runtime, Runtime::AppletViewer);
        assert_eq!(av.first_use.java_http, DelayModel::ZERO);
        assert!(!av.supports_websocket);
        assert_eq!(av.runtime.label(), "appletviewer");
    }

    #[test]
    fn versions_match_table2() {
        assert_eq!(BrowserKind::Chrome.version(), "23.0");
        assert_eq!(
            BrowserKind::Chrome.flash_version(OsKind::Windows7),
            "11.7.700"
        );
        assert_eq!(
            BrowserKind::Firefox.flash_version(OsKind::Ubuntu1204),
            "11.2.202"
        );
        assert_eq!(BrowserKind::Opera.java_version(OsKind::Windows7), "1.7.0");
        assert_eq!(BrowserKind::Opera.java_version(OsKind::Ubuntu1204), "1.6.0");
    }
}
