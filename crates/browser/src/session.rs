//! The browser session: executes the paper's two-phase methodology.
//!
//! One [`BrowserSession`] is one repetition of one experiment cell:
//!
//! 1. **Preparation phase** (Figure 1): fetch the container page over the
//!    browser's connection pool, "render" it, then load the technology's
//!    assets — the `.swf` over the same pool, the applet `.jar` over the
//!    **JVM's own** connection, a WebSocket upgrade or a raw socket
//!    connect for the socket transports.
//! 2. **Measurement phase**: for each round *r* (the paper uses two —
//!    Δd1 and Δd2): read `tB_s` through the plan's timing API, traverse
//!    the sampled send path (plus the round-1 instantiation cost), put the
//!    request on the wire — opening a **fresh TCP connection first** if
//!    the browser's policy says so, which is how Opera's Flash methods
//!    absorb a handshake into the "RTT" — wait for the complete response,
//!    traverse the receive path, and read `tB_r`.
//!
//! The session never looks at the simulator's clock directly for its
//! reported timestamps: `tB` values come from the [`TimingApi`], including
//! its quantization. Ground truth comes from capture taps, elsewhere.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use bytes::Bytes;
use rand::rngs::SmallRng;

use bnm_http::message::{HttpRequest, Method};
use bnm_http::parser::{HttpParser, ParseOutcome};
use bnm_http::websocket::{self, Frame, FrameDecoder, Opcode};
use bnm_obs::{Component, Trace};
use bnm_sim::rng;
use bnm_sim::time::SimDuration;
use bnm_sim::wire::{ChunkKind, DataChunk};
use bnm_tcp::stack::SockEvent;
use bnm_tcp::udp::UdpRx;
use bnm_tcp::{HostApp, HostCtx, SocketId};
use bnm_time::{make_api, MachineTimer, TimingApi};

use crate::plan::{ProbePlan, ProbeTransport, Technology};
use crate::profile::{BrowserProfile, PathSeg, Runtime};

/// Browser-level timestamps of one measurement round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundResult {
    /// Round number (1 = Δd1, 2 = Δd2).
    pub round: u8,
    /// `tB_s` as reported by the timing API, ms.
    pub tb_s_ms: f64,
    /// `tB_r` as reported by the timing API, ms.
    pub tb_r_ms: f64,
    /// Whether this round opened a fresh TCP connection (handshake
    /// included in `tB_r − tB_s`).
    pub opened_new_connection: bool,
}

impl RoundResult {
    /// The browser-level RTT estimate, ms.
    pub fn browser_rtt_ms(&self) -> f64 {
        self.tb_r_ms - self.tb_s_ms
    }
}

/// Everything a finished session reports.
#[derive(Debug, Clone, Default)]
pub struct SessionResult {
    /// Per-round timestamps, in round order.
    pub rounds: Vec<RoundResult>,
    /// True once every planned round finished.
    pub completed: bool,
}

/// Compose the marker token carried on the wire by a session's probes:
/// the session id in the high 32 bits, the repetition in the low 32.
/// Session 0 therefore produces the same token (and the same wire bytes)
/// as the single-session testbed always did.
pub fn session_token(session: u64, rep_token: u64) -> u64 {
    (session << 32) | (rep_token & 0xFFFF_FFFF)
}

/// Split a composite marker token back into `(session, rep)`.
pub fn split_token(token: u64) -> (u64, u64) {
    (token >> 32, token & 0xFFFF_FFFF)
}

/// Session configuration.
pub struct SessionConfig {
    /// The web server's address.
    pub server_ip: Ipv4Addr,
    /// HTTP / WebSocket port.
    pub http_port: u16,
    /// Raw TCP echo port.
    pub echo_port: u16,
    /// UDP echo port.
    pub udp_port: u16,
    /// WebRTC data-channel port on the server.
    pub webrtc_port: u16,
    /// The method to execute.
    pub plan: ProbePlan,
    /// The runtime cost profile.
    pub profile: BrowserProfile,
    /// The client machine's timer (shared granularity regimes).
    pub machine: MachineTimer,
    /// Repetition token — embedded in probe markers so capture analysis
    /// can tell rounds and repetitions apart.
    pub rep_token: u64,
    /// Session id within a multi-client scenario; combined with
    /// `rep_token` via [`session_token`] in every probe marker so
    /// concurrent sessions' captures stay matchable. 0 in the
    /// single-session testbed (tokens unchanged).
    pub session: u64,
    /// Master seed for this session's noise streams.
    pub seed: u64,
    /// Trace handle (disabled by default): browser-side delay segments
    /// are recorded as component-tagged spans.
    pub trace: Trace,
}

/// Pending timer actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    RenderDone,
    StartRound(u8),
    DoSend(u8),
    StampEnd(u8),
    /// Re-send the DCEP OPEN if no ACK arrived (the handshake is the
    /// one reliable part of the channel; probes are never retried).
    RtcOpenRetry,
    /// Read `tB_s` and traverse the send path for probe `seq`.
    RtcBegin(u8),
    /// Put probe `seq` on the wire.
    RtcSend(u8),
    /// Read `tB_r` for a delivered probe `seq`.
    RtcStamp(u8),
    /// End of the tail wait: late probes are counted lost.
    RtcFinish,
}

/// WebRTC data-channel stream id used for probes.
const RTC_STREAM: u16 = 1;

/// What a connection is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Browser connection pool (container page, XHR/DOM/Flash reuse).
    Container,
    /// The JVM's own HTTP connection.
    JavaPool,
    /// A fresh measurement connection (Opera Flash policy).
    Probe,
    /// The WebSocket connection.
    WebSocket,
    /// The raw TCP echo connection.
    Echo,
}

/// High-level phase of the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Boot,
    ContainerLoading,
    Rendering,
    AssetLoading,
    SocketSetup,
    AwaitSend(u8),
    AwaitConnect(u8),
    AwaitResponse(u8),
    AwaitStampEnd(u8),
    /// The WebRTC probe train is in flight: probes overlap, each keyed
    /// by its sequence number rather than a single scalar round.
    RtcMeasuring,
    Done,
}

/// The measurement client application.
pub struct BrowserSession {
    cfg: SessionConfig,
    api: Box<dyn TimingApi>,
    rng: SmallRng,
    phase: Phase,
    pending: HashMap<u64, Step>,
    next_token: u64,
    conns: HashMap<SocketId, Role>,
    parsers: HashMap<SocketId, HttpParser>,
    ws_decoder: FrameDecoder,
    container: Option<SocketId>,
    java_pool: Option<SocketId>,
    probe_conn: Option<SocketId>,
    ws_conn: Option<SocketId>,
    echo_conn: Option<SocketId>,
    udp_port_local: Option<u16>,
    echo_bytes_round: usize,
    round_opened_conn: bool,
    /// Browser HTTP cache: GET URLs already fetched this session.
    http_cache: std::collections::HashSet<String>,
    /// Target of the in-flight GET (inserted into the cache on completion).
    inflight_get: Option<String>,
    tb_s: f64,
    /// Per-probe `tB_s` for the WebRTC train (probes overlap in flight).
    rtc_tb_s: HashMap<u8, f64>,
    /// Probes whose message event already fired (browser-level dedupe:
    /// a duplicated datagram re-fires the event, the script keys by seq).
    rtc_seen: std::collections::HashSet<u8>,
    /// DCEP ACK received; the data channel is open.
    rtc_acked: bool,
    /// DCEP OPEN transmissions so far.
    rtc_open_tries: u32,
    result: SessionResult,
    trace: Trace,
    /// Diagnostics: how many TCP connections this session opened.
    pub connections_opened: u32,
}

impl BrowserSession {
    /// Build a session; it starts executing at engine boot.
    pub fn new(cfg: SessionConfig) -> Self {
        let api = make_api(cfg.plan.timing, &cfg.machine);
        let rng = rng::stream_indexed(cfg.seed, "browser.session", cfg.rep_token);
        BrowserSession {
            api,
            rng,
            phase: Phase::Boot,
            pending: HashMap::new(),
            next_token: 0,
            conns: HashMap::new(),
            parsers: HashMap::new(),
            ws_decoder: FrameDecoder::new(),
            container: None,
            java_pool: None,
            probe_conn: None,
            ws_conn: None,
            echo_conn: None,
            udp_port_local: None,
            echo_bytes_round: 0,
            round_opened_conn: false,
            http_cache: std::collections::HashSet::new(),
            inflight_get: None,
            tb_s: 0.0,
            rtc_tb_s: HashMap::new(),
            rtc_seen: std::collections::HashSet::new(),
            rtc_acked: false,
            rtc_open_tries: 0,
            result: SessionResult::default(),
            trace: cfg.trace.clone(),
            connections_opened: 0,
            cfg,
        }
    }

    /// The session's results (read after the run).
    pub fn result(&self) -> &SessionResult {
        &self.result
    }

    /// The plan being executed.
    pub fn plan(&self) -> &ProbePlan {
        &self.cfg.plan
    }

    fn schedule(&mut self, ctx: &mut HostCtx, delay: SimDuration, step: Step) {
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(token, step);
        ctx.set_app_timer(delay, token);
    }

    /// Sample every segment of a path, emitting back-to-back spans
    /// starting at `start_ns`. Draw order is identical whether tracing
    /// is on or off, so traced runs reproduce untraced numbers.
    fn sample_path(&mut self, start_ns: u64, segs: &[PathSeg]) -> SimDuration {
        let mut total = SimDuration::ZERO;
        let mut t = start_ns;
        for s in segs {
            let d = s.model.sample(&mut self.rng);
            if self.trace.is_enabled() {
                self.trace
                    .span(t, t + d.as_nanos(), "session", s.label, Some(s.component));
            }
            t += d.as_nanos();
            total += d;
        }
        total
    }

    /// A parser sharing this session's trace handle, so completed HTTP
    /// messages get `http/message` spans.
    fn new_parser(&self) -> HttpParser {
        HttpParser::new().with_trace(self.trace.clone())
    }

    fn user_agent(&self) -> String {
        match self.cfg.profile.runtime {
            Runtime::Browser(b) => {
                format!("{}/{} ({})", b.name(), b.version(), self.cfg.profile.os)
            }
            Runtime::AppletViewer => "appletviewer/1.7".to_string(),
            Runtime::MobileWebKit => "Mobile Safari/537 (like iOS 6)".to_string(),
        }
    }

    /// The composite marker token for this session's probes.
    fn token(&self) -> u64 {
        session_token(self.cfg.session, self.cfg.rep_token)
    }

    fn probe_marker(&self, round: u8) -> String {
        format!("m={}&r={}&t={}", self.cfg.plan.label, round, self.token())
    }

    fn socket_payload(&self, round: u8) -> Bytes {
        let mut s = format!(
            "probe m={} r={} t={} ",
            self.cfg.plan.label,
            round,
            self.token()
        );
        // Pad to the configured size; never truncate the marker itself.
        while s.len() < self.cfg.plan.request_size {
            s.push('.');
        }
        Bytes::from(s)
    }

    /// The GET target for a round. With cache busting (the default, and
    /// what every real tool does) the round/repetition tokens make each
    /// URL unique; without it the URL repeats across rounds.
    fn http_get_target(&self, round: u8) -> String {
        let query = if self.cfg.plan.cache_buster {
            self.probe_marker(round)
        } else {
            format!("m={}", self.cfg.plan.label)
        };
        match self.cfg.plan.bulk {
            Some(n) => format!("/bulk?n={n}&{query}"),
            None => format!("/probe?{query}"),
        }
    }

    fn http_request(&self, round: u8) -> Bytes {
        let marker = self.probe_marker(round);
        if let Some(n) = self.cfg.plan.bulk {
            // Throughput mode: download a bulk object instead of a pong.
            let _ = n;
            assert_eq!(self.cfg.plan.transport, ProbeTransport::HttpGet);
            return HttpRequest::new(Method::Get, self.http_get_target(round))
                .header("Host", self.cfg.server_ip.to_string())
                .header("User-Agent", self.user_agent())
                .header("Accept", "*/*")
                .emit();
        }
        let req = match self.cfg.plan.transport {
            ProbeTransport::HttpGet => HttpRequest::new(Method::Get, self.http_get_target(round))
                .header("Host", self.cfg.server_ip.to_string())
                .header("User-Agent", self.user_agent())
                .header("Accept", "*/*"),
            ProbeTransport::HttpPost => HttpRequest::new(Method::Post, "/probe")
                .header("Host", self.cfg.server_ip.to_string())
                .header("User-Agent", self.user_agent())
                .header("Content-Type", "application/x-www-form-urlencoded")
                .with_body(Bytes::from(marker)),
            _ => unreachable!("http_request on a socket transport"),
        };
        req.emit()
    }

    /// The HTTP connection a measurement request should use when no fresh
    /// connection is being opened.
    fn http_conn(&self) -> SocketId {
        // A previously opened fresh probe connection is preferred (Opera
        // Flash GET round 2 reuses round 1's connection).
        if let Some(p) = self.probe_conn {
            return p;
        }
        match self.cfg.plan.technology {
            Technology::JavaApplet => self.java_pool.expect("java pool connected"),
            _ => self.container.expect("container connected"),
        }
    }

    fn begin_round(&mut self, ctx: &mut HostCtx, round: u8) {
        // tB_s is read *before* the send machinery runs (Figure 1).
        let now = ctx.now();
        self.trace.set_round(Some(round));
        self.tb_s = self.api.read(now);
        self.trace
            .instant(now.as_nanos(), "session", "round.start", Some(self.tb_s));
        let mut t_ns = now.as_nanos();
        let call = self.api.call_cost();
        if self.trace.is_enabled() {
            self.trace.span(
                t_ns,
                t_ns + call.as_nanos(),
                "session",
                "timing_api_call",
                Some(Component::Dispatch),
            );
        }
        t_ns += call.as_nanos();
        let mut delay = call;
        if round == 1 {
            let fu = if self.is_dom() {
                self.cfg.profile.dom_first_use_cost()
            } else {
                self.cfg
                    .profile
                    .first_use_cost(self.cfg.plan.technology, self.cfg.plan.transport)
            };
            let d = fu.sample(&mut self.rng);
            if self.trace.is_enabled() {
                self.trace.span(
                    t_ns,
                    t_ns + d.as_nanos(),
                    "session",
                    "first_use",
                    Some(Component::Init),
                );
            }
            t_ns += d.as_nanos();
            delay += d;
        }
        let send_path = if self.is_dom() {
            self.cfg.profile.dom_send_path()
        } else {
            self.cfg
                .profile
                .send_path(self.cfg.plan.technology, self.cfg.plan.transport, round)
        };
        delay += self.sample_path(t_ns, &send_path);
        self.phase = Phase::AwaitSend(round);
        self.schedule(ctx, delay, Step::DoSend(round));
    }

    fn is_dom(&self) -> bool {
        self.cfg.plan.label.starts_with("dom")
    }

    fn needs_fresh_conn(&self, round: u8) -> bool {
        if !self.cfg.plan.transport.is_http() {
            return false;
        }
        let policy = self.cfg.profile.conn_policy(self.cfg.plan.technology);
        if policy.fresh_conn_per_post && self.cfg.plan.transport == ProbeTransport::HttpPost {
            return true;
        }
        policy.fresh_conn_round1 && round == 1
    }

    fn do_send(&mut self, ctx: &mut HostCtx, round: u8) {
        self.round_opened_conn = false;
        self.echo_bytes_round = 0;
        match self.cfg.plan.transport {
            ProbeTransport::HttpGet | ProbeTransport::HttpPost => {
                // Browser cache: a repeated GET URL never reaches the
                // network — the response comes from the cache after a
                // lookup cost, and the "RTT" collapses to the local path.
                if self.cfg.plan.transport == ProbeTransport::HttpGet {
                    let target = self.http_get_target(round);
                    if self.http_cache.contains(&target) {
                        let recv = if self.is_dom() {
                            self.cfg.profile.dom_recv_path()
                        } else {
                            self.cfg.profile.recv_path(
                                self.cfg.plan.technology,
                                self.cfg.plan.transport,
                                round,
                            )
                        };
                        let lookup = SimDuration::from_micros(150);
                        let mut t_ns = ctx.now().as_nanos();
                        if self.trace.is_enabled() {
                            self.trace.span(
                                t_ns,
                                t_ns + lookup.as_nanos(),
                                "session",
                                "cache_lookup",
                                Some(Component::Parse),
                            );
                        }
                        t_ns += lookup.as_nanos();
                        let delay = lookup + self.sample_path(t_ns, &recv);
                        self.phase = Phase::AwaitStampEnd(round);
                        self.schedule(ctx, delay, Step::StampEnd(round));
                        return;
                    }
                    self.inflight_get = Some(target);
                }
                if self.needs_fresh_conn(round) {
                    // POST always replaces the probe connection; round-1
                    // GET creates it.
                    let sock = ctx.connect((self.cfg.server_ip, self.cfg.http_port));
                    self.connections_opened += 1;
                    self.round_opened_conn = true;
                    self.conns.insert(sock, Role::Probe);
                    self.parsers.insert(sock, self.new_parser());
                    self.probe_conn = Some(sock);
                    self.phase = Phase::AwaitConnect(round);
                    return;
                }
                let sock = self.http_conn();
                let bytes = self.http_request(round);
                ctx.send(sock, &bytes);
                self.phase = Phase::AwaitResponse(round);
            }
            ProbeTransport::WebSocketEcho => {
                let sock = self.ws_conn.expect("ws connected");
                let frame = match self.cfg.plan.bulk {
                    Some(n) => Frame::text(&format!("bulk n={} r={} t={}", n, round, self.token())),
                    None => Frame::text(std::str::from_utf8(&self.socket_payload(round)).unwrap()),
                };
                // Deterministic zero masking key: RFC-shaped frames whose
                // payload stays greppable in capture traces.
                let bytes = frame.emit(Some([0, 0, 0, 0]));
                ctx.send(sock, &bytes);
                self.phase = Phase::AwaitResponse(round);
            }
            ProbeTransport::TcpEcho => {
                let sock = self.echo_conn.expect("echo connected");
                let payload = self.socket_payload(round);
                ctx.send(sock, &payload);
                self.phase = Phase::AwaitResponse(round);
            }
            ProbeTransport::UdpEcho => {
                let port = self.udp_port_local.expect("udp bound");
                let payload = self.socket_payload(round);
                ctx.udp_send(port, (self.cfg.server_ip, self.cfg.udp_port), payload);
                self.phase = Phase::AwaitResponse(round);
            }
            ProbeTransport::WebRtcData => {
                unreachable!("webrtc probes are driven by the Rtc* steps")
            }
        }
    }

    /// Transmit a DCEP OPEN and arm the retry timer. The handshake is
    /// reliable (DCEP rides SCTP's reliable delivery in real stacks);
    /// it happens before measurement, so retries never taint probes.
    fn rtc_send_open(&mut self, ctx: &mut HostCtx) {
        let port = self.udp_port_local.expect("dc bound");
        ctx.udp_send(
            port,
            (self.cfg.server_ip, self.cfg.webrtc_port),
            DataChunk::open(RTC_STREAM).emit(),
        );
        self.rtc_open_tries += 1;
        self.schedule(ctx, SimDuration::from_millis(200), Step::RtcOpenRetry);
    }

    /// Channel open: schedule the whole paced probe train plus the tail
    /// wait. Probes overlap in flight (gap 20 ms < RTT), so loss and
    /// reordering show up exactly as the network produced them.
    fn rtc_start_train(&mut self, ctx: &mut HostCtx) {
        self.phase = Phase::RtcMeasuring;
        let rounds = self.cfg.plan.rounds;
        for seq in 1..=rounds {
            let at = SimDuration::from_millis(5 + 20 * (seq as u64 - 1));
            self.schedule(ctx, at, Step::RtcBegin(seq));
        }
        let last = 5 + 20 * (rounds as u64 - 1);
        self.schedule(ctx, SimDuration::from_millis(last + 1000), Step::RtcFinish);
    }

    /// Read `tB_s` and traverse the send path for probe `seq` —
    /// the same quantization/dispatch modelling as [`Self::begin_round`],
    /// keyed per probe because several are in flight at once.
    fn rtc_begin(&mut self, ctx: &mut HostCtx, seq: u8) {
        if self.phase != Phase::RtcMeasuring {
            return;
        }
        let now = ctx.now();
        self.trace.set_round(Some(seq));
        let tb_s = self.api.read(now);
        self.rtc_tb_s.insert(seq, tb_s);
        self.trace
            .instant(now.as_nanos(), "session", "round.start", Some(tb_s));
        let mut t_ns = now.as_nanos();
        let call = self.api.call_cost();
        if self.trace.is_enabled() {
            self.trace.span(
                t_ns,
                t_ns + call.as_nanos(),
                "session",
                "timing_api_call",
                Some(Component::Dispatch),
            );
        }
        t_ns += call.as_nanos();
        let mut delay = call;
        if seq == 1 {
            let fu = self
                .cfg
                .profile
                .first_use_cost(self.cfg.plan.technology, self.cfg.plan.transport);
            let d = fu.sample(&mut self.rng);
            if self.trace.is_enabled() {
                self.trace.span(
                    t_ns,
                    t_ns + d.as_nanos(),
                    "session",
                    "first_use",
                    Some(Component::Init),
                );
            }
            t_ns += d.as_nanos();
            delay += d;
        }
        let send_path =
            self.cfg
                .profile
                .send_path(self.cfg.plan.technology, self.cfg.plan.transport, seq);
        delay += self.sample_path(t_ns, &send_path);
        self.trace.set_round(None);
        self.schedule(ctx, delay, Step::RtcSend(seq));
    }

    /// Put probe `seq` on the wire as a sequence-numbered data chunk.
    fn rtc_send(&mut self, ctx: &mut HostCtx, seq: u8) {
        if self.phase != Phase::RtcMeasuring {
            return;
        }
        let port = self.udp_port_local.expect("dc bound");
        let chunk = DataChunk::data(RTC_STREAM, seq as u32, self.socket_payload(seq));
        ctx.udp_send(
            port,
            (self.cfg.server_ip, self.cfg.webrtc_port),
            chunk.emit(),
        );
    }

    /// A datagram arrived on the data channel.
    fn rtc_on_udp(&mut self, ctx: &mut HostCtx, rx: UdpRx) {
        let Ok(chunk) = DataChunk::parse(&rx.payload) else {
            return;
        };
        match chunk.kind {
            ChunkKind::DcepAck => {
                if self.phase == Phase::SocketSetup && !self.rtc_acked {
                    self.rtc_acked = true;
                    self.rtc_start_train(ctx);
                }
            }
            ChunkKind::Data => {
                if self.phase != Phase::RtcMeasuring {
                    return;
                }
                if chunk.seq == 0 || chunk.seq > self.cfg.plan.rounds as u32 {
                    return;
                }
                let seq = chunk.seq as u8;
                // Dedupe duplicated datagrams; ignore echoes for probes
                // whose tB_s was never stamped (cannot happen in-order,
                // but a guard keeps the arithmetic honest).
                if !self.rtc_tb_s.contains_key(&seq) || !self.rtc_seen.insert(seq) {
                    return;
                }
                self.trace.set_round(Some(seq));
                let recv_path = self.cfg.profile.recv_path(
                    self.cfg.plan.technology,
                    self.cfg.plan.transport,
                    seq,
                );
                let mut t_ns = ctx.now().as_nanos();
                let path_delay = self.sample_path(t_ns, &recv_path);
                t_ns += path_delay.as_nanos();
                let call = self.api.call_cost();
                if self.trace.is_enabled() {
                    self.trace.span(
                        t_ns,
                        t_ns + call.as_nanos(),
                        "session",
                        "timing_api_call",
                        Some(Component::Dispatch),
                    );
                }
                self.trace.set_round(None);
                self.schedule(ctx, path_delay + call, Step::RtcStamp(seq));
            }
            ChunkKind::DcepOpen => {}
        }
    }

    /// Read `tB_r` for probe `seq` and record the round. Results are
    /// pushed in arrival order, so browser-side reordering is visible.
    fn rtc_stamp(&mut self, ctx: &mut HostCtx, seq: u8) {
        if self.phase != Phase::RtcMeasuring {
            return;
        }
        let now = ctx.now();
        self.trace.set_round(Some(seq));
        let tb_r = self.api.read(now);
        self.trace
            .instant(now.as_nanos(), "session", "round.end", Some(tb_r));
        self.trace.set_round(None);
        let tb_s = self.rtc_tb_s[&seq];
        self.result.rounds.push(RoundResult {
            round: seq,
            tb_s_ms: tb_s,
            tb_r_ms: tb_r,
            opened_new_connection: false,
        });
    }

    /// Tail wait elapsed: whatever has not arrived is lost. A lossy run
    /// still completes — missing probes are the measurement.
    fn rtc_finish(&mut self, ctx: &mut HostCtx) {
        if self.phase != Phase::RtcMeasuring {
            return;
        }
        self.result.completed = true;
        self.phase = Phase::Done;
        let mut socks: Vec<SocketId> = self.conns.keys().copied().collect();
        socks.sort_unstable();
        for s in socks {
            ctx.close(s);
        }
    }

    fn response_complete(&mut self, ctx: &mut HostCtx, round: u8) {
        let recv_path = if self.is_dom() {
            self.cfg.profile.dom_recv_path()
        } else {
            self.cfg
                .profile
                .recv_path(self.cfg.plan.technology, self.cfg.plan.transport, round)
        };
        let mut t_ns = ctx.now().as_nanos();
        let path_delay = self.sample_path(t_ns, &recv_path);
        t_ns += path_delay.as_nanos();
        let call = self.api.call_cost();
        if self.trace.is_enabled() {
            self.trace.span(
                t_ns,
                t_ns + call.as_nanos(),
                "session",
                "timing_api_call",
                Some(Component::Dispatch),
            );
        }
        let delay = path_delay + call;
        self.phase = Phase::AwaitStampEnd(round);
        self.schedule(ctx, delay, Step::StampEnd(round));
    }

    fn stamp_end(&mut self, ctx: &mut HostCtx, round: u8) {
        let now = ctx.now();
        let tb_r = self.api.read(now);
        self.trace
            .instant(now.as_nanos(), "session", "round.end", Some(tb_r));
        self.trace.set_round(None);
        self.result.rounds.push(RoundResult {
            round,
            tb_s_ms: self.tb_s,
            tb_r_ms: tb_r,
            opened_new_connection: self.round_opened_conn,
        });
        if round < self.cfg.plan.rounds {
            // "a second RTT measurement immediately after the first one"
            // — a short think gap, then reuse the same object.
            self.schedule(
                ctx,
                SimDuration::from_millis(20),
                Step::StartRound(round + 1),
            );
            self.phase = Phase::AwaitSend(round + 1);
        } else {
            self.result.completed = true;
            self.phase = Phase::Done;
            // Orderly teardown: close every connection we own, in
            // socket-id order — HashMap order varies per process/thread,
            // and the close order decides which teardown frame meets
            // which fault draw, so it must be deterministic.
            let mut socks: Vec<SocketId> = self.conns.keys().copied().collect();
            socks.sort_unstable();
            for s in socks {
                ctx.close(s);
            }
        }
    }

    /// Preparation continues after the container page rendered.
    fn after_render(&mut self, ctx: &mut HostCtx) {
        match self.cfg.plan.technology {
            Technology::Flash => {
                // The browser fetches the .swf over its pool connection.
                let sock = self.container.expect("container connected");
                let req = HttpRequest::new(Method::Get, "/plugin.swf")
                    .header("Host", self.cfg.server_ip.to_string())
                    .header("User-Agent", self.user_agent())
                    .emit();
                ctx.send(sock, &req);
                self.phase = Phase::AssetLoading;
            }
            Technology::JavaApplet => {
                // The JVM opens its own connection for the applet jar —
                // this is the connection Java HTTP probes later reuse.
                let sock = ctx.connect((self.cfg.server_ip, self.cfg.http_port));
                self.connections_opened += 1;
                self.conns.insert(sock, Role::JavaPool);
                self.parsers.insert(sock, self.new_parser());
                self.java_pool = Some(sock);
                self.phase = Phase::AssetLoading;
            }
            Technology::Native => self.setup_socket_or_start(ctx),
        }
    }

    /// Open the measurement socket (if the transport needs one), then
    /// start round 1.
    fn setup_socket_or_start(&mut self, ctx: &mut HostCtx) {
        match self.cfg.plan.transport {
            ProbeTransport::WebSocketEcho => {
                assert!(
                    self.cfg.profile.supports_websocket,
                    "plan requires WebSocket but {:?} lacks it",
                    self.cfg.profile.runtime
                );
                let sock = ctx.connect((self.cfg.server_ip, self.cfg.http_port));
                self.connections_opened += 1;
                self.conns.insert(sock, Role::WebSocket);
                self.parsers.insert(sock, self.new_parser());
                self.ws_conn = Some(sock);
                self.phase = Phase::SocketSetup;
            }
            ProbeTransport::TcpEcho => {
                let sock = ctx.connect((self.cfg.server_ip, self.cfg.echo_port));
                self.connections_opened += 1;
                self.conns.insert(sock, Role::Echo);
                self.echo_conn = Some(sock);
                self.phase = Phase::SocketSetup;
            }
            ProbeTransport::UdpEcho => {
                self.udp_port_local = Some(ctx.udp_bind_ephemeral());
                self.start_rounds(ctx);
            }
            ProbeTransport::WebRtcData => {
                assert!(
                    self.cfg.profile.supports_websocket,
                    "plan requires WebRTC but {:?} predates it",
                    self.cfg.profile.runtime
                );
                self.udp_port_local = Some(ctx.udp_bind_ephemeral());
                self.rtc_send_open(ctx);
                self.phase = Phase::SocketSetup;
            }
            _ => self.start_rounds(ctx),
        }
    }

    fn start_rounds(&mut self, ctx: &mut HostCtx) {
        self.phase = Phase::AwaitSend(1);
        self.schedule(ctx, SimDuration::from_millis(5), Step::StartRound(1));
    }

    fn on_http_data(&mut self, ctx: &mut HostCtx, sock: SocketId, data: Bytes) {
        let role = *self.conns.get(&sock).expect("known conn");
        if role == Role::WebSocket && self.ws_conn == Some(sock) && self.phase != Phase::SocketSetup
        {
            // Post-upgrade: frames.
            self.ws_decoder.feed(&data);
            while let Ok(Some(frame)) = self.ws_decoder.poll() {
                if let Phase::AwaitResponse(round) = self.phase {
                    if matches!(frame.opcode, Opcode::Text | Opcode::Binary) {
                        self.response_complete(ctx, round);
                    }
                }
            }
            return;
        }
        let now_ns = ctx.now().as_nanos();
        let Some(parser) = self.parsers.get_mut(&sock) else {
            return;
        };
        let mut outcome = parser.feed_at(now_ns, &data);
        while let ParseOutcome::Response(resp) = outcome {
            let remainder = if resp.status == 101 {
                Some(self.parsers.get_mut(&sock).unwrap().take_remainder())
            } else {
                None
            };
            self.on_http_response_complete(ctx, sock, resp.status, remainder);
            outcome = match self.parsers.get_mut(&sock) {
                Some(p) => p.poll(),
                None => break,
            };
        }
    }

    fn on_http_response_complete(
        &mut self,
        ctx: &mut HostCtx,
        sock: SocketId,
        status: u16,
        upgrade_remainder: Option<Vec<u8>>,
    ) {
        match self.phase {
            Phase::ContainerLoading if Some(sock) == self.container => {
                let render = self.cfg.profile.prims.page_render;
                let d = render.sample(&mut self.rng);
                self.schedule(ctx, d, Step::RenderDone);
                self.phase = Phase::Rendering;
            }
            Phase::AssetLoading => {
                // .swf or .jar finished loading.
                self.setup_socket_or_start(ctx);
            }
            Phase::SocketSetup if Some(sock) == self.ws_conn => {
                assert_eq!(status, 101, "websocket upgrade failed");
                if let Some(rem) = upgrade_remainder {
                    self.ws_decoder.feed(&rem);
                }
                self.start_rounds(ctx);
            }
            Phase::AwaitResponse(round) => {
                if let Some(target) = self.inflight_get.take() {
                    self.http_cache.insert(target);
                }
                self.response_complete(ctx, round);
            }
            _ => {}
        }
    }
}

impl HostApp for BrowserSession {
    fn on_boot(&mut self, ctx: &mut HostCtx) {
        let sock = ctx.connect((self.cfg.server_ip, self.cfg.http_port));
        self.connections_opened += 1;
        self.conns.insert(sock, Role::Container);
        self.parsers.insert(sock, self.new_parser());
        self.container = Some(sock);
        self.phase = Phase::Boot;
    }

    fn on_event(&mut self, ctx: &mut HostCtx, ev: SockEvent) {
        match ev {
            SockEvent::Connected { sock } => {
                let role = *self.conns.get(&sock).expect("connected unknown socket");
                match role {
                    Role::Container => {
                        let req = HttpRequest::new(Method::Get, "/")
                            .header("Host", self.cfg.server_ip.to_string())
                            .header("User-Agent", self.user_agent())
                            .emit();
                        ctx.send(sock, &req);
                        self.phase = Phase::ContainerLoading;
                    }
                    Role::JavaPool => {
                        let req = HttpRequest::new(Method::Get, "/applet.jar")
                            .header("Host", self.cfg.server_ip.to_string())
                            .header("User-Agent", format!("Java/{}", "1.7"))
                            .emit();
                        ctx.send(sock, &req);
                    }
                    Role::WebSocket => {
                        // Deterministic nonce derived from the marker token.
                        let mut nonce = [0u8; 16];
                        nonce[..8].copy_from_slice(&self.token().to_le_bytes());
                        let req = websocket::client_handshake(
                            "/ws",
                            &self.cfg.server_ip.to_string(),
                            nonce,
                        )
                        .emit();
                        ctx.send(sock, &req);
                    }
                    Role::Echo => {
                        // Raw socket ready: begin measuring.
                        self.start_rounds(ctx);
                    }
                    Role::Probe => {
                        // Fresh measurement connection established: the
                        // request leaves now (the handshake already burned
                        // its time inside tB_r − tB_s).
                        if let Phase::AwaitConnect(round) = self.phase {
                            let bytes = self.http_request(round);
                            ctx.send(sock, &bytes);
                            self.phase = Phase::AwaitResponse(round);
                        }
                    }
                }
            }
            SockEvent::Data { sock } => {
                let data = ctx.recv(sock);
                let role = self.conns.get(&sock).copied();
                match role {
                    Some(Role::Echo) => {
                        self.echo_bytes_round += data.len();
                        if let Phase::AwaitResponse(round) = self.phase {
                            if self.echo_bytes_round >= self.cfg.plan.request_size {
                                self.response_complete(ctx, round);
                            }
                        }
                    }
                    Some(_) => self.on_http_data(ctx, sock, data),
                    None => {}
                }
            }
            SockEvent::PeerClosed { sock } => {
                ctx.close(sock);
            }
            SockEvent::Closed { sock } | SockEvent::Reset { sock } => {
                self.conns.remove(&sock);
                self.parsers.remove(&sock);
            }
            SockEvent::Accepted { .. } | SockEvent::Writable { .. } => {}
        }
    }

    fn on_udp(&mut self, ctx: &mut HostCtx, rx: UdpRx) {
        if Some(rx.local_port) != self.udp_port_local {
            return;
        }
        if self.cfg.plan.transport == ProbeTransport::WebRtcData {
            self.rtc_on_udp(ctx, rx);
        } else if let Phase::AwaitResponse(round) = self.phase {
            self.response_complete(ctx, round);
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCtx, token: u64) {
        let Some(step) = self.pending.remove(&token) else {
            return;
        };
        match step {
            Step::RenderDone => self.after_render(ctx),
            Step::StartRound(r) => self.begin_round(ctx, r),
            Step::DoSend(r) => self.do_send(ctx, r),
            Step::StampEnd(r) => self.stamp_end(ctx, r),
            Step::RtcOpenRetry => {
                if !self.rtc_acked && self.phase == Phase::SocketSetup {
                    if self.rtc_open_tries >= 50 {
                        // Give up: the channel never opened. `completed`
                        // stays false and the rep reports a failure.
                        self.phase = Phase::Done;
                    } else {
                        self.rtc_send_open(ctx);
                    }
                }
            }
            Step::RtcBegin(seq) => self.rtc_begin(ctx, seq),
            Step::RtcSend(seq) => self.rtc_send(ctx, seq),
            Step::RtcStamp(seq) => self.rtc_stamp(ctx, seq),
            Step::RtcFinish => self.rtc_finish(ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BrowserKind;
    use bnm_http::server::{ServerConfig, WebServer};
    use bnm_sim::engine::Engine;
    use bnm_sim::link::LinkSpec;
    use bnm_sim::switch::Switch;
    use bnm_sim::wire::MacAddr;
    use bnm_tcp::{Host, HostConfig};
    use bnm_time::{OsKind, TimingApiKind};

    const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 2);
    const SERVER_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 10);

    fn run_session(plan: ProbePlan, kind: BrowserKind, os: OsKind) -> (Engine, usize, usize) {
        let profile = BrowserProfile::build(kind, os).expect("available");
        let machine = MachineTimer::new(os, 1234);
        let session = BrowserSession::new(SessionConfig {
            server_ip: SERVER_IP,
            http_port: 80,
            echo_port: 8081,
            udp_port: 7,
            webrtc_port: 3478,
            plan,
            profile,
            machine,
            rep_token: 42,
            session: 0,
            seed: 99,
            trace: Trace::disabled(),
        });
        let mut e = Engine::new();
        let c = e.add_node(Box::new(Host::new(
            HostConfig::new("client", MacAddr::local(2), CLIENT_IP)
                .with_neighbor(SERVER_IP, MacAddr::local(1)),
            session,
        )));
        let s = e.add_node(Box::new(Host::new(
            HostConfig::new("server", MacAddr::local(1), SERVER_IP)
                .with_neighbor(CLIENT_IP, MacAddr::local(2)),
            WebServer::new(ServerConfig::default()),
        )));
        let sw = e.add_node(Box::new(Switch::new(2)));
        e.connect(c, 0, sw, 0, LinkSpec::fast_ethernet());
        let server_link = e.connect(s, 0, sw, 1, LinkSpec::fast_ethernet());
        // The paper's 50 ms netem delay on the server side (egress only).
        e.set_one_way_delay(server_link, s, SimDuration::from_millis(50));
        e.run();
        (e, c, s)
    }

    fn rounds_of(e: &Engine, c: usize) -> Vec<RoundResult> {
        let host = e.node_ref::<Host<BrowserSession>>(c);
        assert!(host.app().result().completed, "session did not finish");
        host.app().result().rounds.clone()
    }

    fn plan(label: &str, tech: Technology, tr: ProbeTransport, api: TimingApiKind) -> ProbePlan {
        ProbePlan::new(label, tech, tr, api)
    }

    #[test]
    fn xhr_get_completes_two_rounds_with_plausible_rtt() {
        let (e, c, _) = run_session(
            plan(
                "xhr_get",
                Technology::Native,
                ProbeTransport::HttpGet,
                TimingApiKind::JsDateGetTime,
            ),
            BrowserKind::Chrome,
            OsKind::Ubuntu1204,
        );
        let rounds = rounds_of(&e, c);
        assert_eq!(rounds.len(), 2);
        for r in &rounds {
            // True network RTT is ~50 ms; browser-level must exceed it but
            // stay well under the 50+handshake regime.
            let rtt = r.browser_rtt_ms();
            assert!(rtt > 50.0, "round {} rtt {rtt}", r.round);
            assert!(rtt < 90.0, "round {} rtt {rtt}", r.round);
            assert!(!r.opened_new_connection);
        }
    }

    #[test]
    fn websocket_overhead_is_small() {
        let (e, c, _) = run_session(
            plan(
                "ws",
                Technology::Native,
                ProbeTransport::WebSocketEcho,
                TimingApiKind::JsDateGetTime,
            ),
            BrowserKind::Chrome,
            OsKind::Ubuntu1204,
        );
        let rounds = rounds_of(&e, c);
        // Round 2 (no first-use) should sit within ~3 ms of the true RTT.
        let rtt2 = rounds[1].browser_rtt_ms();
        assert!((49.0..54.0).contains(&rtt2), "ws rtt {rtt2}");
    }

    #[test]
    fn opera_flash_get_round1_includes_handshake() {
        let (e, c, _) = run_session(
            plan(
                "flash_get",
                Technology::Flash,
                ProbeTransport::HttpGet,
                TimingApiKind::FlashGetTime,
            ),
            BrowserKind::Opera,
            OsKind::Windows7,
        );
        let rounds = rounds_of(&e, c);
        assert!(rounds[0].opened_new_connection);
        assert!(!rounds[1].opened_new_connection, "round-2 GET reuses");
        let d1 = rounds[0].browser_rtt_ms() - 50.0;
        let d2 = rounds[1].browser_rtt_ms() - 50.0;
        // Δd1 carries handshake (~50 ms) + flash init; Δd2 only the path.
        assert!(d1 > 75.0, "Δd1 = {d1}");
        assert!(d2 < 50.0, "Δd2 = {d2}");
        assert!(d1 - d2 > 40.0, "handshake gap {d1} vs {d2}");
    }

    #[test]
    fn opera_flash_post_opens_fresh_connection_every_round() {
        let (e, c, _) = run_session(
            plan(
                "flash_post",
                Technology::Flash,
                ProbeTransport::HttpPost,
                TimingApiKind::FlashGetTime,
            ),
            BrowserKind::Opera,
            OsKind::Windows7,
        );
        let rounds = rounds_of(&e, c);
        assert!(rounds[0].opened_new_connection);
        assert!(rounds[1].opened_new_connection);
        // Both rounds inflated by a handshake.
        assert!(rounds[1].browser_rtt_ms() - 50.0 > 50.0);
    }

    #[test]
    fn chrome_flash_reuses_browser_pool() {
        let (e, c, _) = run_session(
            plan(
                "flash_get",
                Technology::Flash,
                ProbeTransport::HttpGet,
                TimingApiKind::FlashGetTime,
            ),
            BrowserKind::Chrome,
            OsKind::Windows7,
        );
        let rounds = rounds_of(&e, c);
        assert!(!rounds[0].opened_new_connection);
        assert!(!rounds[1].opened_new_connection);
        // Δd2 has no first-use cost: pure Flash path, well under the
        // handshake-inflated regime Opera shows.
        let d2 = rounds[1].browser_rtt_ms() - 50.0;
        assert!(d2 < 60.0, "Δd2 = {d2}");
    }

    #[test]
    fn java_tcp_socket_is_near_zero_overhead_with_nanotime() {
        let (e, c, _) = run_session(
            plan(
                "java_tcp",
                Technology::JavaApplet,
                ProbeTransport::TcpEcho,
                TimingApiKind::JavaNanoTime,
            ),
            BrowserKind::Firefox,
            OsKind::Windows7,
        );
        let rounds = rounds_of(&e, c);
        for r in &rounds {
            let overhead = r.browser_rtt_ms() - 50.0;
            // Wire time adds ~0.2 ms; the browser path adds < 0.3 ms.
            assert!(overhead > 0.0 && overhead < 0.6, "overhead {overhead}");
        }
    }

    #[test]
    fn java_udp_echo_completes() {
        let (e, c, _) = run_session(
            plan(
                "java_udp",
                Technology::JavaApplet,
                ProbeTransport::UdpEcho,
                TimingApiKind::JavaNanoTime,
            ),
            BrowserKind::Chrome,
            OsKind::Windows7,
        );
        let rounds = rounds_of(&e, c);
        assert_eq!(rounds.len(), 2);
        assert!(rounds[0].browser_rtt_ms() > 50.0);
    }

    #[test]
    fn java_gettime_on_windows_can_underestimate() {
        // Across many repetitions, the coarse-granularity regime must
        // produce at least one negative overhead — the paper's headline
        // §4.2 artifact. (Seeds vary the regime per repetition.)
        let mut negatives = 0;
        let mut total = 0;
        for rep in 0..12 {
            let profile = BrowserProfile::build(BrowserKind::Firefox, OsKind::Windows7).unwrap();
            let machine = MachineTimer::new(OsKind::Windows7, 5000 + rep);
            let session = BrowserSession::new(SessionConfig {
                server_ip: SERVER_IP,
                http_port: 80,
                echo_port: 8081,
                udp_port: 7,
                webrtc_port: 3478,
                plan: plan(
                    "java_tcp",
                    Technology::JavaApplet,
                    ProbeTransport::TcpEcho,
                    TimingApiKind::JavaDateGetTime,
                ),
                profile,
                machine,
                rep_token: rep,
                session: 0,
                seed: rep,
                trace: Trace::disabled(),
            });
            let mut e = Engine::new();
            let c = e.add_node(Box::new(Host::new(
                HostConfig::new("client", MacAddr::local(2), CLIENT_IP)
                    .with_neighbor(SERVER_IP, MacAddr::local(1)),
                session,
            )));
            let s = e.add_node(Box::new(Host::new(
                HostConfig::new("server", MacAddr::local(1), SERVER_IP)
                    .with_neighbor(CLIENT_IP, MacAddr::local(2)),
                WebServer::new(ServerConfig::default()),
            )));
            let link = e.connect(c, 0, s, 0, LinkSpec::fast_ethernet());
            e.set_one_way_delay(link, s, SimDuration::from_millis(50));
            e.run();
            for r in rounds_of(&e, c) {
                total += 1;
                if r.browser_rtt_ms() < 50.0 {
                    negatives += 1;
                }
            }
        }
        assert!(total == 24);
        assert!(negatives > 0, "no under-estimation in {total} rounds");
    }

    #[test]
    fn webrtc_train_delivers_every_probe_on_a_clean_network() {
        let mut p = plan(
            "webrtc",
            Technology::Native,
            ProbeTransport::WebRtcData,
            TimingApiKind::JsDateGetTime,
        );
        p.rounds = 8;
        let (e, c, s) = run_session(p, BrowserKind::Chrome, OsKind::Ubuntu1204);
        let rounds = rounds_of(&e, c);
        assert_eq!(rounds.len(), 8, "clean network loses nothing");
        // Every probe seq appears exactly once.
        let mut seqs: Vec<u8> = rounds.iter().map(|r| r.round).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (1..=8).collect::<Vec<_>>());
        for r in &rounds {
            let rtt = r.browser_rtt_ms();
            // 50 ms one-way server delay => ~50 ms echo RTT, small
            // overhead (Date.getTime() quantization can round to 50).
            assert!(rtt >= 49.0, "probe {} rtt {rtt}", r.round);
            assert!(rtt < 60.0, "probe {} rtt {rtt}", r.round);
            assert!(!r.opened_new_connection);
        }
        let stats = &e.node_ref::<Host<WebServer>>(s).app().stats;
        assert_eq!(stats.webrtc_opens, 1);
        assert_eq!(stats.webrtc_echoes, 8);
    }

    #[test]
    fn ie_has_no_websocket() {
        let profile = BrowserProfile::build(BrowserKind::Ie9, OsKind::Windows7).unwrap();
        assert!(!profile.supports_websocket);
    }

    #[test]
    fn session_closes_connections_when_done() {
        let (e, c, _) = run_session(
            plan(
                "xhr_get",
                Technology::Native,
                ProbeTransport::HttpGet,
                TimingApiKind::JsDateGetTime,
            ),
            BrowserKind::Firefox,
            OsKind::Ubuntu1204,
        );
        let host = e.node_ref::<Host<BrowserSession>>(c);
        // All sockets torn down after completion (TIME-WAIT reaping may
        // leave at most the time-wait side; live_sockets counts those).
        assert!(host.app().result().completed);
        assert_eq!(host.app().connections_opened, 1);
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use crate::profile::{BrowserKind, BrowserProfile};
    use bnm_http::server::{ServerConfig, WebServer};
    use bnm_sim::engine::Engine;
    use bnm_sim::link::LinkSpec;
    use bnm_sim::switch::Switch;
    use bnm_sim::wire::MacAddr;
    use bnm_tcp::{Host, HostConfig};
    use bnm_time::{MachineTimer, OsKind, TimingApiKind};

    const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 2);
    const SERVER_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 10);

    fn run_plan(plan: ProbePlan) -> (Engine, usize, usize) {
        let profile = BrowserProfile::build(BrowserKind::Chrome, OsKind::Ubuntu1204).unwrap();
        let machine = MachineTimer::new(OsKind::Ubuntu1204, 77);
        let session = BrowserSession::new(SessionConfig {
            server_ip: SERVER_IP,
            http_port: 80,
            echo_port: 8081,
            udp_port: 7,
            webrtc_port: 3478,
            plan,
            profile,
            machine,
            rep_token: 9,
            session: 0,
            seed: 77,
            trace: Trace::disabled(),
        });
        let mut e = Engine::new();
        let c = e.add_node(Box::new(Host::new(
            HostConfig::new("client", MacAddr::local(2), CLIENT_IP)
                .with_neighbor(SERVER_IP, MacAddr::local(1)),
            session,
        )));
        let s = e.add_node(Box::new(Host::new(
            HostConfig::new("server", MacAddr::local(1), SERVER_IP)
                .with_neighbor(CLIENT_IP, MacAddr::local(2)),
            WebServer::new(ServerConfig::default()),
        )));
        let sw = e.add_node(Box::new(Switch::new(2)));
        e.connect(c, 0, sw, 0, LinkSpec::fast_ethernet());
        let link = e.connect(s, 0, sw, 1, LinkSpec::fast_ethernet());
        e.set_one_way_delay(link, s, SimDuration::from_millis(50));
        e.run();
        (e, c, s)
    }

    #[test]
    fn without_cache_buster_round_two_is_served_from_cache() {
        let plan = ProbePlan::new(
            "xhr_get",
            Technology::Native,
            ProbeTransport::HttpGet,
            bnm_time::TimingApiKind::JsDateGetTime,
        )
        .without_cache_buster();
        let (e, c, s) = run_plan(plan);
        let host = e.node_ref::<Host<BrowserSession>>(c);
        let rounds = &host.app().result().rounds;
        assert_eq!(rounds.len(), 2);
        // Round 1 went to the network; round 2 came from the cache and
        // reports a catastrophically small "RTT".
        assert!(rounds[0].browser_rtt_ms() > 50.0);
        assert!(
            rounds[1].browser_rtt_ms() < 10.0,
            "cached round must not see the network: {} ms",
            rounds[1].browser_rtt_ms()
        );
        // The server only ever saw one probe GET.
        assert_eq!(e.node_ref::<Host<WebServer>>(s).app().stats.gets, 1);
    }

    #[test]
    fn cache_buster_defeats_the_cache() {
        let plan = ProbePlan::new(
            "xhr_get",
            Technology::Native,
            ProbeTransport::HttpGet,
            TimingApiKind::JsDateGetTime,
        );
        let (e, c, s) = run_plan(plan);
        let host = e.node_ref::<Host<BrowserSession>>(c);
        let rounds = &host.app().result().rounds;
        assert!(rounds.iter().all(|r| r.browser_rtt_ms() > 50.0));
        assert_eq!(e.node_ref::<Host<WebServer>>(s).app().stats.gets, 2);
    }
}
