//! # bnm-browser — browser, OS and plugin runtime models
//!
//! The paper measures ten browser-side code paths on five browsers × two
//! OSes. Here those code paths are explicit, parameterised mechanisms:
//!
//! * [`delay::DelayModel`] — a latency primitive: floor + lognormal body +
//!   occasional "render jank" spike. Every code-path segment (event-loop
//!   dispatch, plugin bridge crossing, XHR internals, …) is one of these.
//! * [`profile::BrowserProfile`] — per-(browser, OS) primitive latencies
//!   and multipliers, plus the feature matrix of the paper's Table 2
//!   (WebSocket support, plugin versions).
//! * [`profile::ConnPolicy`] — connection-management behaviour: whether a
//!   technology reuses the container page's TCP connection, and whether
//!   POST forces a fresh connection. This single policy knob is what
//!   produces the paper's Table 3 (Opera's Flash methods silently include
//!   a TCP handshake in the measured "RTT").
//! * [`plan::ProbePlan`] — a declarative description of one measurement
//!   method (technology × transport × timing API × message sizes).
//! * [`session::BrowserSession`] — the client application: executes the
//!   paper's two-phase methodology (container page, then Δd1 and Δd2
//!   measurement rounds) against a plan, stamping `tB` through a
//!   [`bnm_time::TimingApi`].
//!
//! Nothing in this crate reads simulator internals to fabricate a result:
//! the session *acts* (schedules delays, opens connections, writes bytes)
//! and *records timestamps*; the overheads measured later are whatever
//! those mechanisms produced on the wire.

pub mod delay;
pub mod plan;
pub mod profile;
pub mod session;

pub use delay::DelayModel;
pub use plan::{ProbePlan, ProbeTransport, Technology};
pub use profile::{BrowserKind, BrowserProfile, ConnPolicy, PathSeg, Runtime};
pub use session::{session_token, split_token, BrowserSession, RoundResult, SessionResult};
