//! The timestamp-granularity probe of the paper's Figure 5.
//!
//! The original Java code busy-waits on `Date.getTime()` until the value
//! changes and prints the difference. We reproduce it against any
//! [`TimingApi`]: each call advances virtual time by the API's call cost,
//! exactly like a tight loop on a real CPU.

use bnm_sim::time::{SimDuration, SimTime};

use crate::api::TimingApi;

/// Result of one probe run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GranularityProbe {
    /// The observed tick: `end - start` of the first value change, in ms.
    pub observed_ms: f64,
    /// Calls spent spinning.
    pub calls: u64,
    /// Virtual time consumed.
    pub elapsed: SimDuration,
}

/// Run the Figure 5 loop starting at virtual instant `start`.
///
/// Returns `None` if the clock never changes within `max_calls`
/// (a broken/frozen clock — cannot happen with the in-tree APIs, but the
/// probe is defensive, as the original had to be).
pub fn probe_granularity(
    api: &mut dyn TimingApi,
    start: SimTime,
    max_calls: u64,
) -> Option<GranularityProbe> {
    let cost = api.call_cost();
    let mut t = start;
    let first = api.read(t);
    let mut calls = 1u64;
    while calls < max_calls {
        t += cost;
        calls += 1;
        let current = api.read(t);
        if current != first {
            return Some(GranularityProbe {
                observed_ms: current - first,
                calls,
                elapsed: t.saturating_since(start),
            });
        }
    }
    None
}

/// Run the probe repeatedly over a span of virtual time, spacing runs by
/// `interval` — this is how the paper discovered that the granularity "can
/// be 1 ms, or ∼15 ms" and "each possible value will last for a period of
/// time".
pub fn probe_series(
    api: &mut dyn TimingApi,
    start: SimTime,
    interval: SimDuration,
    runs: usize,
) -> Vec<(SimTime, f64)> {
    let mut out = Vec::with_capacity(runs);
    let mut t = start;
    for _ in 0..runs {
        if let Some(p) = probe_granularity(api, t, 10_000_000) {
            out.push((t, p.observed_ms));
        }
        t += interval;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{JavaDateGetTime, JavaNanoTime, JsDateGetTime};
    use crate::machine::{MachineTimer, OsKind};

    #[test]
    fn js_probe_sees_1ms() {
        let mut api = JsDateGetTime::new(MachineTimer::new(OsKind::Ubuntu1204, 1));
        let p = probe_granularity(&mut api, SimTime::from_millis(5), 1_000_000).unwrap();
        assert_eq!(p.observed_ms, 1.0);
        assert!(p.elapsed <= SimDuration::from_millis(1));
    }

    #[test]
    fn java_probe_on_windows_sees_both_regimes() {
        let mut api = JavaDateGetTime::new(MachineTimer::new(OsKind::Windows7, 42));
        let series = probe_series(
            &mut api,
            SimTime::ZERO,
            SimDuration::from_secs(60),
            3 * 60, // 3 hours of minute-spaced probes
        );
        let fine = series.iter().filter(|(_, g)| *g <= 1.0).count();
        let coarse = series
            .iter()
            .filter(|(_, g)| (14.0..=16.0).contains(g))
            .count();
        assert!(fine > 0, "1 ms observations present");
        assert!(coarse > 0, "~15.6 ms observations present");
        assert_eq!(fine + coarse, series.len(), "only the two levels appear");
    }

    #[test]
    fn regimes_persist_for_minutes() {
        let mut api = JavaDateGetTime::new(MachineTimer::new(OsKind::Windows7, 42));
        let series = probe_series(
            &mut api,
            SimTime::ZERO,
            SimDuration::from_secs(10),
            6 * 60, // one hour, 10 s apart
        );
        // A regime lasting minutes means long runs of equal observations.
        // The dwell model bounds transitions mechanically: dwells are
        // >= 120 s, so an hour fits at most 3600/120 = 30 of them — and
        // at least one dwell must span >= 12 consecutive 10 s probes.
        let mut transitions = 0;
        let mut run = 1usize;
        let mut longest_run = 1usize;
        for w in series.windows(2) {
            if (w[0].1 > 2.0) != (w[1].1 > 2.0) {
                transitions += 1;
                run = 1;
            } else {
                run += 1;
                longest_run = longest_run.max(run);
            }
        }
        assert!(transitions <= 30, "{transitions} transitions in an hour");
        assert!(longest_run >= 12, "longest regime run {longest_run} probes");
    }

    #[test]
    fn nanotime_probe_sees_nanoscale_tick() {
        let mut api = JavaNanoTime;
        let p = probe_granularity(&mut api, SimTime::ZERO, 1_000).unwrap();
        assert!(p.observed_ms < 0.001, "tick {} ms", p.observed_ms);
        assert_eq!(p.calls, 2, "changes on the very next call");
    }

    #[test]
    fn probe_gives_up_on_frozen_clock() {
        struct Frozen;
        impl TimingApi for Frozen {
            fn kind(&self) -> crate::api::TimingApiKind {
                crate::api::TimingApiKind::JsDateGetTime
            }
            fn call_cost(&self) -> SimDuration {
                SimDuration::from_nanos(100)
            }
            fn read(&mut self, _now: SimTime) -> f64 {
                42.0
            }
            fn nominal_resolution_ms(&self) -> f64 {
                1.0
            }
        }
        assert!(probe_granularity(&mut Frozen, SimTime::ZERO, 1_000).is_none());
    }
}
