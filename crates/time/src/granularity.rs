//! The OS timer-resolution regime process.
//!
//! On Windows 7 the system time (`GetSystemTimeAsFileTime`, which backs
//! Java's `System.currentTimeMillis`) advances at the timer-interrupt
//! period: 15.625 ms (64 Hz) by default, or 1 ms whenever *any* process has
//! called `timeBeginPeriod(1)` — media players, browsers and the like do
//! this and undo it, so the effective granularity flips between the two
//! values and, as the paper measures, "each possible value will last for a
//! period of time (several minutes) before changing to other values".
//!
//! We model exactly that: a piecewise-constant granularity over virtual
//! time, alternating between configured levels with uniformly distributed
//! multi-minute dwell times, generated lazily from a seeded RNG stream.

use rand::rngs::SmallRng;
use rand::Rng;

use bnm_sim::time::{SimDuration, SimTime};

/// A lazily generated, piecewise-constant granularity schedule.
#[derive(Debug)]
pub struct GranularityRegimes {
    /// `(segment start, granularity)` — starts at `SimTime::ZERO`,
    /// non-decreasing.
    segments: Vec<(SimTime, SimDuration)>,
    /// Time covered so far: segments are valid up to here.
    horizon: SimTime,
    levels: Vec<SimDuration>,
    dwell_min: SimDuration,
    dwell_max: SimDuration,
    rng: SmallRng,
    /// Index into `levels` of the current (last) segment.
    current_level: usize,
}

impl GranularityRegimes {
    /// The Windows 7 process observed by the paper: 1 ms and 15.625 ms
    /// levels, dwell times of 2–8 minutes.
    pub fn windows7(rng: SmallRng) -> Self {
        Self::new(
            vec![
                SimDuration::from_millis(1),
                SimDuration::from_micros(15_625),
            ],
            SimDuration::from_secs(120),
            SimDuration::from_secs(480),
            rng,
        )
    }

    /// A custom regime process. `levels` must be non-empty.
    pub fn new(
        levels: Vec<SimDuration>,
        dwell_min: SimDuration,
        dwell_max: SimDuration,
        mut rng: SmallRng,
    ) -> Self {
        assert!(!levels.is_empty(), "need at least one granularity level");
        assert!(dwell_min <= dwell_max);
        let first = rng.gen_range(0..levels.len());
        GranularityRegimes {
            segments: vec![(SimTime::ZERO, levels[first])],
            horizon: SimTime::ZERO,
            levels,
            dwell_min,
            dwell_max,
            rng,
            current_level: first,
        }
    }

    fn dwell(&mut self) -> SimDuration {
        let lo = self.dwell_min.as_nanos();
        let hi = self.dwell_max.as_nanos();
        SimDuration::from_nanos(if lo == hi {
            lo
        } else {
            self.rng.gen_range(lo..=hi)
        })
    }

    fn extend_to(&mut self, t: SimTime) {
        while self.horizon <= t {
            let dwell = self.dwell();
            self.horizon += dwell;
            // Switch to a different level (or stay if only one exists).
            let next = if self.levels.len() == 1 {
                0
            } else {
                let mut n = self.rng.gen_range(0..self.levels.len() - 1);
                if n >= self.current_level {
                    n += 1;
                }
                n
            };
            self.current_level = next;
            self.segments.push((self.horizon, self.levels[next]));
        }
    }

    /// Granularity in force at instant `t`.
    pub fn granularity_at(&mut self, t: SimTime) -> SimDuration {
        self.extend_to(t);
        // Binary search for the segment containing t.
        let idx = match self.segments.binary_search_by(|(s, _)| s.cmp(&t)) {
            Ok(i) => i,
            Err(i) => i - 1, // segments[0].0 == ZERO, so i >= 1 here
        };
        self.segments[idx].1
    }

    /// The segment boundaries generated so far (diagnostics/plots).
    pub fn segments(&self) -> &[(SimTime, SimDuration)] {
        &self.segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnm_sim::rng;

    #[test]
    fn constant_when_single_level() {
        let mut g = GranularityRegimes::new(
            vec![SimDuration::from_millis(1)],
            SimDuration::from_secs(60),
            SimDuration::from_secs(60),
            rng::stream(1, "g"),
        );
        for t in [0u64, 5, 500, 50_000] {
            assert_eq!(
                g.granularity_at(SimTime::from_secs(t)),
                SimDuration::from_millis(1)
            );
        }
    }

    #[test]
    fn windows_alternates_between_both_levels() {
        let mut g = GranularityRegimes::windows7(rng::stream(7, "win"));
        let mut seen = std::collections::HashSet::new();
        // Walk four simulated hours in 30 s steps.
        for t in (0..(4 * 3600)).step_by(30) {
            seen.insert(g.granularity_at(SimTime::from_secs(t)).as_nanos());
        }
        assert!(seen.contains(&1_000_000), "1 ms level visited");
        assert!(seen.contains(&15_625_000), "15.625 ms level visited");
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn regimes_are_piecewise_constant_minutes_long() {
        let mut g = GranularityRegimes::windows7(rng::stream(9, "win"));
        g.granularity_at(SimTime::from_secs(4 * 3600));
        let segs = g.segments().to_vec();
        assert!(segs.len() > 10, "several regime changes over 4 h");
        for w in segs.windows(2) {
            let dwell = w[1].0.saturating_since(w[0].0);
            assert!(dwell >= SimDuration::from_secs(120), "dwell {dwell}");
            assert!(dwell <= SimDuration::from_secs(480), "dwell {dwell}");
            assert_ne!(w[0].1, w[1].1, "consecutive segments differ");
        }
    }

    #[test]
    fn queries_are_consistent_and_order_independent() {
        let seed = rng::stream(11, "win");
        let mut a = GranularityRegimes::windows7(seed);
        let mut b = GranularityRegimes::windows7(rng::stream(11, "win"));
        // Query b in reverse order; same schedule must result.
        let times: Vec<SimTime> = (0..200).map(|i| SimTime::from_secs(i * 37)).collect();
        let fwd: Vec<_> = times.iter().map(|&t| a.granularity_at(t)).collect();
        let rev: Vec<_> = times.iter().rev().map(|&t| b.granularity_at(t)).collect();
        let rev: Vec<_> = rev.into_iter().rev().collect();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn both_levels_get_comparable_time_share() {
        let mut g = GranularityRegimes::windows7(rng::stream(5, "share"));
        let mut coarse = 0u64;
        let total = 12 * 3600u64;
        for t in 0..total / 10 {
            if g.granularity_at(SimTime::from_secs(t * 10)) == SimDuration::from_micros(15_625) {
                coarse += 1;
            }
        }
        let share = coarse as f64 / (total / 10) as f64;
        assert!(share > 0.25 && share < 0.75, "coarse share {share}");
    }
}
