//! The per-machine system timer.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use bnm_sim::rng;
use bnm_sim::time::{SimDuration, SimTime};

use crate::granularity::GranularityRegimes;

/// Operating systems of the paper's dual-boot client machine (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OsKind {
    /// Windows 7 (the OS with the unstable timer granularity).
    Windows7,
    /// Ubuntu 12.04 LTS.
    Ubuntu1204,
}

impl OsKind {
    /// The single-letter label the paper's figures use ("W"/"U").
    pub fn initial(self) -> &'static str {
        match self {
            OsKind::Windows7 => "W",
            OsKind::Ubuntu1204 => "U",
        }
    }

    /// Full display name.
    pub fn name(self) -> &'static str {
        match self {
            OsKind::Windows7 => "Windows 7",
            OsKind::Ubuntu1204 => "Ubuntu 12.04",
        }
    }

    /// Both OSes, in the paper's order.
    pub const ALL: [OsKind; 2] = [OsKind::Ubuntu1204, OsKind::Windows7];
}

impl fmt::Display for OsKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The client machine's system timer, shared by every clock consumer on
/// that machine (the JVM, the browser, Flash).
///
/// Cloning shares the underlying regime process — clones observe the same
/// timer, as processes on one machine do.
#[derive(Debug, Clone)]
pub struct MachineTimer {
    os: OsKind,
    /// Windows carries the regime process; Ubuntu's clocksource is
    /// effectively tickless at the millisecond scale.
    regimes: Option<Rc<RefCell<GranularityRegimes>>>,
    /// Wall-clock epoch at simulation boot, in milliseconds — so absolute
    /// `Date.getTime()` values look like real epoch times.
    epoch_ms: u64,
    /// Offset of this view into the machine's timeline. Experiment
    /// repetitions each run in a fresh simulation starting at t = 0, but
    /// on the *same machine* a few seconds apart — the offset places each
    /// repetition at its real position on the shared regime timeline.
    offset: SimDuration,
}

impl MachineTimer {
    /// A machine timer for `os`, with its regime process seeded from the
    /// master seed.
    pub fn new(os: OsKind, master_seed: u64) -> Self {
        let regimes = match os {
            OsKind::Windows7 => Some(Rc::new(RefCell::new(GranularityRegimes::windows7(
                rng::stream(master_seed, "machine.timer.regimes"),
            )))),
            OsKind::Ubuntu1204 => None,
        };
        MachineTimer {
            os,
            regimes,
            // 2013-10-23 00:00:00 UTC — the week of IMC'13.
            epoch_ms: 1_382_486_400_000,
            offset: SimDuration::ZERO,
        }
    }

    /// A view of the same machine shifted `offset` into its timeline
    /// (shares the regime process with `self`).
    pub fn at_offset(&self, offset: SimDuration) -> MachineTimer {
        MachineTimer {
            offset,
            ..self.clone()
        }
    }

    /// The machine's OS.
    pub fn os(&self) -> OsKind {
        self.os
    }

    /// Wall epoch offset (ms at simulation boot).
    pub fn epoch_ms(&self) -> u64 {
        self.epoch_ms
    }

    /// Map a simulation instant onto the machine's timeline.
    fn machine_time(&self, t: SimTime) -> SimTime {
        t + self.offset
    }

    /// System-timer granularity in force at `t`.
    pub fn system_granularity(&self, t: SimTime) -> SimDuration {
        let mt = self.machine_time(t);
        match &self.regimes {
            Some(r) => r.borrow_mut().granularity_at(mt),
            None => SimDuration::from_millis(1),
        }
    }

    /// The absolute system time (epoch milliseconds) a granularity-bound
    /// clock reports at instant `t`: machine time quantized to the current
    /// tick, plus the epoch.
    pub fn system_time_ms(&self, t: SimTime) -> u64 {
        let mt = self.machine_time(t);
        let g = self.system_granularity(t).as_nanos();
        let ticked_ns = (mt.as_nanos() / g) * g;
        self.epoch_ms + ticked_ns / 1_000_000
    }

    /// Unquantized wall time in ms (used by the browser clocks that
    /// interpolate from a high-resolution counter), truncated to 1 ms.
    pub fn wall_ms(&self, t: SimTime) -> u64 {
        self.epoch_ms + self.machine_time(t).as_millis()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ubuntu_is_steady_1ms() {
        let m = MachineTimer::new(OsKind::Ubuntu1204, 1);
        for s in [0u64, 10, 1000, 100_000] {
            assert_eq!(
                m.system_granularity(SimTime::from_secs(s)),
                SimDuration::from_millis(1)
            );
        }
    }

    #[test]
    fn windows_granularity_varies_over_hours() {
        let m = MachineTimer::new(OsKind::Windows7, 42);
        let mut seen = std::collections::HashSet::new();
        for s in (0..6 * 3600).step_by(60) {
            seen.insert(m.system_granularity(SimTime::from_secs(s)).as_nanos());
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn clones_share_the_regime_process() {
        let a = MachineTimer::new(OsKind::Windows7, 42);
        let b = a.clone();
        for s in (0..7200).step_by(300) {
            let t = SimTime::from_secs(s);
            assert_eq!(a.system_granularity(t), b.system_granularity(t));
        }
    }

    #[test]
    fn system_time_advances_in_ticks() {
        let m = MachineTimer::new(OsKind::Ubuntu1204, 1);
        let t0 = m.system_time_ms(SimTime::from_micros(100));
        let t1 = m.system_time_ms(SimTime::from_micros(999));
        assert_eq!(t0, t1, "within one 1 ms tick the value is frozen");
        let t2 = m.system_time_ms(SimTime::from_micros(1_001));
        assert_eq!(t2, t1 + 1);
    }

    #[test]
    fn epoch_is_plausible_wall_time() {
        let m = MachineTimer::new(OsKind::Ubuntu1204, 1);
        assert!(m.system_time_ms(SimTime::ZERO) > 1_300_000_000_000);
    }
}
