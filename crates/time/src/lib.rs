//! # bnm-time — timing-API models
//!
//! The paper's most striking finding (§4.2) is that Java's
//! `Date.getTime()` — nominally millisecond-resolution — actually ticks at
//! the granularity of the underlying OS timer, and on Windows 7 that
//! granularity is **not even constant**: it alternates between 1 ms and
//! ~15.6 ms, each regime lasting several minutes. Measurement tools that
//! subtract two such timestamps under-estimate RTTs by up to a full tick.
//!
//! This crate models that whole mechanism:
//!
//! * [`machine::MachineTimer`] — the per-machine system timer, whose
//!   granularity on Windows follows a seeded regime process
//!   ([`granularity::GranularityRegimes`]): dwell a few minutes at 1 ms,
//!   then a few minutes at 15.625 ms (the classic 64 Hz Windows tick), and
//!   so on. This reproduces the behaviour the paper attributes to other
//!   processes toggling `timeBeginPeriod`.
//! * [`api::TimingApi`] — the interface measurement code reads clocks
//!   through. Implementations:
//!   [`api::JsDateGetTime`] (browser JS, steady 1 ms),
//!   [`api::FlashGetTime`] (ActionScript, steady 1 ms),
//!   [`api::JavaDateGetTime`] (ticks with the machine timer — the culprit),
//!   [`api::JavaNanoTime`] (the fix: monotonic, sub-microsecond),
//!   [`api::PerformanceNow`] (modern extension, 5 µs quantum).
//! * [`probe`] — the busy-wait granularity probe of the paper's Figure 5,
//!   reimplemented against [`api::TimingApi`].

pub mod api;
pub mod granularity;
pub mod machine;
pub mod probe;

pub use api::{
    make_api, FlashGetTime, JavaDateGetTime, JavaNanoTime, JsDateGetTime, PerformanceNow,
    TimingApi, TimingApiKind,
};
pub use machine::{MachineTimer, OsKind};
pub use probe::{probe_granularity, GranularityProbe};
