//! The timing APIs measurement code reads clocks through.
//!
//! Every method in the paper records `tB_s`/`tB_r` via one of these. The
//! API choice is exactly what §4.2 and Table 4 are about: swapping
//! `Date.getTime()` for `System.nanoTime()` removes the RTT
//! under-estimation without touching anything else.

use std::fmt;

use bnm_sim::time::{SimDuration, SimTime};

use crate::machine::MachineTimer;

/// Identifies a timing API in configs and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimingApiKind {
    /// JavaScript `new Date().getTime()`.
    JsDateGetTime,
    /// ActionScript `new Date().getTime()`.
    FlashGetTime,
    /// Java `new Date().getTime()` / `System.currentTimeMillis()`.
    JavaDateGetTime,
    /// Java `System.nanoTime()`.
    JavaNanoTime,
    /// `performance.now()` (modern extension; not in the paper's browsers).
    PerformanceNow,
}

impl fmt::Display for TimingApiKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TimingApiKind::JsDateGetTime => "Date.getTime [JS]",
            TimingApiKind::FlashGetTime => "Date.getTime [Flash]",
            TimingApiKind::JavaDateGetTime => "Date.getTime [Java]",
            TimingApiKind::JavaNanoTime => "System.nanoTime [Java]",
            TimingApiKind::PerformanceNow => "performance.now [JS]",
        };
        f.write_str(s)
    }
}

/// A clock as seen by measurement code.
pub trait TimingApi {
    /// Which API this is.
    fn kind(&self) -> TimingApiKind;

    /// Cost of one call (drives busy-wait loops like the Figure 5 probe).
    fn call_cost(&self) -> SimDuration;

    /// Read the clock at virtual instant `now`. Milliseconds; integral for
    /// millisecond-resolution APIs, fractional for high-resolution ones.
    fn read(&mut self, now: SimTime) -> f64;

    /// The resolution the documentation claims, in ms (1.0 for
    /// `Date.getTime()` — the point is that the *actual granularity* can
    /// be worse).
    fn nominal_resolution_ms(&self) -> f64;
}

/// Instantiate the timing API of `kind` on `machine`.
pub fn make_api(kind: TimingApiKind, machine: &MachineTimer) -> Box<dyn TimingApi> {
    match kind {
        TimingApiKind::JsDateGetTime => Box::new(JsDateGetTime::new(machine.clone())),
        TimingApiKind::FlashGetTime => Box::new(FlashGetTime::new(machine.clone())),
        TimingApiKind::JavaDateGetTime => Box::new(JavaDateGetTime::new(machine.clone())),
        TimingApiKind::JavaNanoTime => Box::new(JavaNanoTime),
        TimingApiKind::PerformanceNow => Box::new(PerformanceNow),
    }
}

/// JavaScript `Date.getTime()`: browsers keep this at a steady 1 ms on
/// both OSes (they interpolate from a high-resolution counter), which is
/// why the paper's JS methods never show the 15.6 ms artifact.
#[derive(Debug, Clone)]
pub struct JsDateGetTime {
    machine: MachineTimer,
}

impl JsDateGetTime {
    /// JS clock on `machine`.
    pub fn new(machine: MachineTimer) -> Self {
        JsDateGetTime { machine }
    }
}

impl TimingApi for JsDateGetTime {
    fn kind(&self) -> TimingApiKind {
        TimingApiKind::JsDateGetTime
    }
    fn call_cost(&self) -> SimDuration {
        SimDuration::from_nanos(250)
    }
    fn read(&mut self, now: SimTime) -> f64 {
        self.machine.wall_ms(now) as f64
    }
    fn nominal_resolution_ms(&self) -> f64 {
        1.0
    }
}

/// ActionScript `Date.getTime()`: same steady 1 ms behaviour, slightly
/// dearer call through the plugin runtime.
#[derive(Debug, Clone)]
pub struct FlashGetTime {
    machine: MachineTimer,
}

impl FlashGetTime {
    /// Flash clock on `machine`.
    pub fn new(machine: MachineTimer) -> Self {
        FlashGetTime { machine }
    }
}

impl TimingApi for FlashGetTime {
    fn kind(&self) -> TimingApiKind {
        TimingApiKind::FlashGetTime
    }
    fn call_cost(&self) -> SimDuration {
        SimDuration::from_nanos(600)
    }
    fn read(&mut self, now: SimTime) -> f64 {
        self.machine.wall_ms(now) as f64
    }
    fn nominal_resolution_ms(&self) -> f64 {
        1.0
    }
}

/// Java `Date.getTime()` / `System.currentTimeMillis()`: reads the raw
/// system timer, so it ticks at the machine's current granularity — 1 ms
/// or 15.625 ms on Windows, whichever regime is in force.
#[derive(Debug, Clone)]
pub struct JavaDateGetTime {
    machine: MachineTimer,
}

impl JavaDateGetTime {
    /// JVM millisecond clock on `machine`.
    pub fn new(machine: MachineTimer) -> Self {
        JavaDateGetTime { machine }
    }
}

impl TimingApi for JavaDateGetTime {
    fn kind(&self) -> TimingApiKind {
        TimingApiKind::JavaDateGetTime
    }
    fn call_cost(&self) -> SimDuration {
        SimDuration::from_nanos(120)
    }
    fn read(&mut self, now: SimTime) -> f64 {
        self.machine.system_time_ms(now) as f64
    }
    fn nominal_resolution_ms(&self) -> f64 {
        1.0
    }
}

/// Java `System.nanoTime()`: a monotonic high-resolution counter
/// (QueryPerformanceCounter / CLOCK_MONOTONIC), immune to the system-timer
/// granularity. Values are reported here as fractional milliseconds since
/// boot.
#[derive(Debug, Clone, Default)]
pub struct JavaNanoTime;

impl TimingApi for JavaNanoTime {
    fn kind(&self) -> TimingApiKind {
        TimingApiKind::JavaNanoTime
    }
    fn call_cost(&self) -> SimDuration {
        SimDuration::from_nanos(40)
    }
    fn read(&mut self, now: SimTime) -> f64 {
        now.as_nanos() as f64 / 1e6
    }
    fn nominal_resolution_ms(&self) -> f64 {
        1e-6
    }
}

/// `performance.now()`: high-resolution DOM timestamps with a 5 µs
/// quantum, as standardised after the paper's study. Included as the
/// "what modern browsers fixed" ablation.
#[derive(Debug, Clone, Default)]
pub struct PerformanceNow;

impl TimingApi for PerformanceNow {
    fn kind(&self) -> TimingApiKind {
        TimingApiKind::PerformanceNow
    }
    fn call_cost(&self) -> SimDuration {
        SimDuration::from_nanos(150)
    }
    fn read(&mut self, now: SimTime) -> f64 {
        const QUANTUM_NS: u64 = 5_000;
        let q = (now.as_nanos() / QUANTUM_NS) * QUANTUM_NS;
        q as f64 / 1e6
    }
    fn nominal_resolution_ms(&self) -> f64 {
        0.005
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::OsKind;

    fn win() -> MachineTimer {
        MachineTimer::new(OsKind::Windows7, 42)
    }

    fn ubuntu() -> MachineTimer {
        MachineTimer::new(OsKind::Ubuntu1204, 42)
    }

    #[test]
    fn js_clock_is_steady_1ms_on_windows() {
        let mut api = JsDateGetTime::new(win());
        let a = api.read(SimTime::from_micros(500));
        let b = api.read(SimTime::from_micros(1_500));
        assert_eq!(b - a, 1.0);
    }

    #[test]
    fn java_clock_freezes_within_a_coarse_tick() {
        // Find a coarse-regime instant on the Windows machine.
        let m = win();
        let mut t = SimTime::ZERO;
        while m.system_granularity(t) != SimDuration::from_micros(15_625) {
            t += SimDuration::from_secs(30);
        }
        let mut api = JavaDateGetTime::new(m);
        let a = api.read(t);
        let b = api.read(t + SimDuration::from_millis(10));
        // 10 ms later, still inside (or at most one tick past) the coarse
        // granule: difference is 0 or ~15/16 ms, never 10 ms.
        let d = b - a;
        assert!(d == 0.0 || (14.0..=16.0).contains(&d), "delta {d}");
    }

    #[test]
    fn java_clock_on_ubuntu_is_1ms() {
        let mut api = JavaDateGetTime::new(ubuntu());
        let a = api.read(SimTime::from_millis(100));
        let b = api.read(SimTime::from_millis(103));
        assert_eq!(b - a, 3.0);
    }

    #[test]
    fn nanotime_preserves_submillisecond_deltas() {
        let mut api = JavaNanoTime;
        let a = api.read(SimTime::from_micros(100));
        let b = api.read(SimTime::from_micros(350));
        assert!((b - a - 0.25).abs() < 1e-9);
    }

    #[test]
    fn performance_now_quantizes_to_5us() {
        let mut api = PerformanceNow;
        let a = api.read(SimTime::from_nanos(12_345_678));
        assert!((a - 12.345).abs() < 1e-9);
    }

    #[test]
    fn call_costs_are_ordered_sensibly() {
        // nanoTime is the cheapest; the Flash bridge is the dearest.
        assert!(JavaNanoTime.call_cost() < JavaDateGetTime::new(ubuntu()).call_cost());
        assert!(JsDateGetTime::new(ubuntu()).call_cost() < FlashGetTime::new(ubuntu()).call_cost());
    }

    #[test]
    fn epoch_values_look_like_wall_clock() {
        let mut api = JsDateGetTime::new(ubuntu());
        assert!(api.read(SimTime::ZERO) > 1.3e12);
    }
}
