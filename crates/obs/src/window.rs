//! Per-window counters over virtual time.
//!
//! The continuous-monitoring loop counts rounds, exclusions and
//! failures per window ("last second", "last minute", …). Like the
//! sketch windows in `bnm-stats`, a [`WindowedCounter`] keeps one
//! integer per live *pan* (the tumbling base interval) and rotates pans
//! out as the caller's virtual clock advances, so memory is bounded by
//! the span regardless of how long the monitor runs. Rotation is driven
//! entirely by the timestamps handed in — never wall time — so the
//! counters stay deterministic.

use std::collections::VecDeque;

/// A sliding window of integer counts over virtual time.
///
/// Covers the `span_pans` pans ending at the pan of the most recent
/// timestamp seen; `span_pans == 1` makes it tumbling. Timestamps must
/// be non-decreasing; increments older than the live window are
/// dropped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowedCounter {
    pan_ns: u64,
    span_pans: usize,
    /// Live `(pan index, count)` pairs, ascending; only pans that were
    /// incremented exist, and at most `span_pans` are live.
    pans: VecDeque<(u64, u64)>,
}

impl WindowedCounter {
    /// A window of `span_pans` pans of `pan_ns` nanoseconds each; both
    /// are clamped to at least 1.
    pub fn new(pan_ns: u64, span_pans: usize) -> WindowedCounter {
        WindowedCounter {
            pan_ns: pan_ns.max(1),
            span_pans: span_pans.max(1),
            pans: VecDeque::new(),
        }
    }

    /// Pan width in nanoseconds.
    pub fn pan_ns(&self) -> u64 {
        self.pan_ns
    }

    /// Window span in pans.
    pub fn span_pans(&self) -> usize {
        self.span_pans
    }

    fn pan_of(&self, t_ns: u64) -> u64 {
        t_ns / self.pan_ns
    }

    /// Advance the window's clock to `t_ns`, dropping pans outside the
    /// span ending at `t_ns`'s pan.
    pub fn advance(&mut self, t_ns: u64) {
        let oldest_live = self.pan_of(t_ns).saturating_sub(self.span_pans as u64 - 1);
        while self.pans.front().is_some_and(|(pan, _)| *pan < oldest_live) {
            self.pans.pop_front();
        }
    }

    /// Add `n` to the window at virtual time `t_ns`, rotating first.
    pub fn add(&mut self, t_ns: u64, n: u64) {
        self.advance(t_ns);
        if n == 0 {
            return;
        }
        let pan = self.pan_of(t_ns);
        if self.pans.back().is_some_and(|(last, _)| *last > pan) {
            // Older than the live window: already rotated past.
            return;
        }
        match self.pans.back_mut() {
            Some((last, count)) if *last == pan => *count += n,
            _ => self.pans.push_back((pan, n)),
        }
    }

    /// Sum of counts currently inside the window.
    pub fn total(&self) -> u64 {
        self.pans.iter().map(|(_, c)| c).sum()
    }

    /// Live pans — never more than [`WindowedCounter::span_pans`].
    pub fn live_pans(&self) -> usize {
        self.pans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000;

    #[test]
    fn tumbling_counter_resets_each_pan() {
        let mut c = WindowedCounter::new(S, 1);
        c.add(0, 2);
        c.add(S / 2, 3);
        assert_eq!(c.total(), 5);
        c.add(S, 1);
        assert_eq!(c.total(), 1);
        assert_eq!(c.live_pans(), 1);
    }

    #[test]
    fn sliding_counter_rotates_and_bounds_pans() {
        let mut c = WindowedCounter::new(S, 3);
        for t in 0..10u64 {
            c.add(t * S, 1);
        }
        assert_eq!(c.total(), 3);
        assert_eq!(c.live_pans(), 3);
        c.advance(11 * S); // window now pans 9..=11; only pan 9 has a count
        assert_eq!(c.total(), 1);
        c.advance(100 * S);
        assert_eq!(c.total(), 0);
        assert_eq!(c.live_pans(), 0);
    }

    #[test]
    fn zero_increments_do_not_materialise_pans() {
        let mut c = WindowedCounter::new(S, 4);
        c.add(0, 0);
        c.add(S, 0);
        assert_eq!(c.live_pans(), 0);
        c.add(2 * S, 7);
        assert_eq!(c.total(), 7);
        assert_eq!(c.live_pans(), 1);
    }

    #[test]
    fn stale_increments_are_dropped() {
        let mut c = WindowedCounter::new(S, 2);
        c.add(5 * S, 1);
        c.add(0, 99);
        assert_eq!(c.total(), 1);
    }
}
