//! `bnm-obs`: lightweight, zero-cost-when-disabled instrumentation for
//! the bnm stack.
//!
//! The simulation is deterministic and single-threaded per repetition,
//! so observability can be too: every event carries a *virtual-time*
//! timestamp (nanoseconds of `bnm-sim` clock), events are recorded in
//! emission order, and a parallel run's trace is byte-identical to a
//! serial one because each repetition owns its own buffer.
//!
//! The API is a [`Trace`] handle — a cheap clone-able reference that is
//! either *enabled* (backed by a shared buffer) or *disabled* (a `None`,
//! making every recording call a single inlined branch). Components hold
//! a `Trace` and call [`Trace::span`], [`Trace::instant`],
//! [`Trace::count`] or [`Trace::observe`] unconditionally; when tracing
//! is off these compile down to a tag check and return.
//!
//! At the end of a repetition the owner extracts the plain-data
//! [`TraceData`] (which is `Send`, unlike the `Rc`-based handle) with
//! [`Trace::take`] and ships it across the executor boundary.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

pub mod window;

pub use window::WindowedCounter;

/// Named Δd overhead components (Eq. 1 decomposition).
///
/// The first six are *attributed* from virtual-time spans; the last two
/// are derived per round: quantization from the browser-clock reads vs.
/// the virtual interval, residual as whatever is left of measured Δd.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// Event-loop dispatch, JS execution, DOM work and timing-API call
    /// cost on the browser side.
    Dispatch,
    /// Plugin bridge hops (Flash `ExternalInterface` and friends).
    Bridge,
    /// Payload handling in the measurement object (XHR / URLLoader /
    /// Java HTTP / WebSocket framing), including cache lookups.
    Parse,
    /// Host OS socket stack send/receive costs.
    Stack,
    /// TCP connection establishment awaited inside a timed round.
    Handshake,
    /// One-time first-use costs (object instantiation, class loading).
    Init,
    /// Time lost waiting for TCP data retransmissions (RTO expiries and
    /// fast-retransmit recoveries on the traced stack). The paper
    /// excluded rounds containing retransmissions, so attributed rounds
    /// carry 0 here; the component makes the exclusion auditable.
    Retrans,
    /// Browser timestamp quantization: `(tb_r − tb_s)` minus the
    /// virtual-time width of the round.
    Quantization,
    /// Measured Δd minus everything above; ≈ 0 for single-segment
    /// probes on a noise-free capture.
    Residual,
}

impl Component {
    /// The components attributed directly from trace spans, in report
    /// order.
    pub const ATTRIBUTED: [Component; 7] = [
        Component::Dispatch,
        Component::Bridge,
        Component::Parse,
        Component::Stack,
        Component::Handshake,
        Component::Init,
        Component::Retrans,
    ];

    /// Stable lower-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Component::Dispatch => "dispatch",
            Component::Bridge => "bridge",
            Component::Parse => "parse",
            Component::Stack => "stack",
            Component::Handshake => "handshake",
            Component::Init => "init",
            Component::Retrans => "retrans",
            Component::Quantization => "quantization",
            Component::Residual => "residual",
        }
    }
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded event: a span (`end_ns > start_ns`) or an instant
/// (`end_ns == start_ns`). Timestamps are virtual-time nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual-time start, ns.
    pub start_ns: u64,
    /// Virtual-time end, ns (equal to `start_ns` for instants).
    pub end_ns: u64,
    /// Subsystem that emitted the event (`"session"`, `"link"`, `"tcp"`,
    /// `"http"`, `"tap"`).
    pub scope: &'static str,
    /// Event name within the scope (`"xhr_send"`, `"serialize"`, …).
    pub label: &'static str,
    /// Δd component this span is attributed to, if any.
    pub component: Option<Component>,
    /// Probe round the event belongs to (set while a round is open).
    pub round: Option<u8>,
    /// Free-slot payload: browser clock reading for round markers,
    /// frame length for link events.
    pub value: Option<f64>,
}

impl TraceEvent {
    /// Span duration in nanoseconds (0 for instants).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A power-of-two-bucketed histogram of nanosecond observations.
///
/// Bucket `i` counts observations with `floor(log2(v)) == i` (bucket 0
/// also takes `v == 0`); the top bucket is open-ended. Fixed buckets
/// keep merging and export deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations, ns.
    pub sum_ns: u64,
    /// log2 buckets.
    pub buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum_ns: 0,
            buckets: [0; 64],
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, v_ns: u64) {
        self.count += 1;
        self.sum_ns += v_ns;
        let idx = (63 - u64::leading_zeros(v_ns.max(1))) as usize;
        self.buckets[idx] += 1;
    }

    /// Mean observation, ns (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// The extracted, plain-data form of a trace: safe to send across
/// threads, compare for equality and export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceData {
    /// Events in emission order (which is virtual-time order per scope).
    pub events: Vec<TraceEvent>,
    /// Named monotonic counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Named histograms of nanosecond observations.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl TraceData {
    /// Total virtual time of all spans carrying `component`, ns.
    pub fn component_total_ns(&self, c: Component, round: Option<u8>) -> u64 {
        self.events
            .iter()
            .filter(|e| e.component == Some(c) && (round.is_none() || e.round == round))
            .map(TraceEvent::duration_ns)
            .sum()
    }

    /// Serialize to deterministic JSON (stable key order, shortest
    /// round-trip float formatting).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"start_ns\":{},\"end_ns\":{},\"scope\":{},\"label\":{}",
                e.start_ns,
                e.end_ns,
                json_str(e.scope),
                json_str(e.label)
            );
            if let Some(c) = e.component {
                let _ = write!(s, ",\"component\":{}", json_str(c.name()));
            }
            if let Some(r) = e.round {
                let _ = write!(s, ",\"round\":{r}");
            }
            if let Some(v) = e.value {
                let _ = write!(s, ",\"value\":{v:?}");
            }
            s.push('}');
        }
        s.push_str("],\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}:{v}", json_str(k));
        }
        s.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{}:{{\"count\":{},\"sum_ns\":{},\"mean_ns\":{:?}}}",
                json_str(k),
                h.count,
                h.sum_ns,
                h.mean_ns()
            );
        }
        s.push_str("}}");
        s
    }

    /// Serialize events to CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("start_ns,end_ns,scope,label,component,round,value\n");
        for e in &self.events {
            let _ = write!(s, "{},{},{},{},", e.start_ns, e.end_ns, e.scope, e.label);
            if let Some(c) = e.component {
                s.push_str(c.name());
            }
            s.push(',');
            if let Some(r) = e.round {
                let _ = write!(s, "{r}");
            }
            s.push(',');
            if let Some(v) = e.value {
                let _ = write!(s, "{v:?}");
            }
            s.push('\n');
        }
        s
    }
}

/// Escape a string for JSON. Labels are plain identifiers, so this only
/// needs the minimal escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Internal buffer behind an enabled trace: the recorded data plus the
/// "current round" tag applied to events as they are emitted.
#[derive(Debug, Default)]
struct TraceBuf {
    data: TraceData,
    round: Option<u8>,
}

/// A recording handle, either enabled (shared buffer) or disabled.
///
/// Cloning is cheap; clones share the buffer. The handle is deliberately
/// *not* `Send`: a repetition's simulation is single-threaded, and the
/// extracted [`TraceData`] is what crosses thread boundaries.
#[derive(Debug, Clone, Default)]
pub struct Trace(Option<Rc<RefCell<TraceBuf>>>);

impl Trace {
    /// A handle that records nothing; every call is a single branch.
    pub fn disabled() -> Trace {
        Trace(None)
    }

    /// A handle backed by a fresh buffer.
    pub fn enabled() -> Trace {
        Trace(Some(Rc::new(RefCell::new(TraceBuf::default()))))
    }

    /// Whether recording is on. Inlined so disabled-path call sites
    /// reduce to one predictable branch.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Tag subsequent events with a probe round (or clear the tag).
    pub fn set_round(&self, round: Option<u8>) {
        if let Some(buf) = &self.0 {
            buf.borrow_mut().round = round;
        }
    }

    /// Record a span `[start_ns, end_ns]`, optionally attributed to a
    /// Δd component. No-op when disabled.
    #[inline]
    pub fn span(
        &self,
        start_ns: u64,
        end_ns: u64,
        scope: &'static str,
        label: &'static str,
        component: Option<Component>,
    ) {
        if let Some(buf) = &self.0 {
            let mut b = buf.borrow_mut();
            let round = b.round;
            b.data.events.push(TraceEvent {
                start_ns,
                end_ns,
                scope,
                label,
                component,
                round,
                value: None,
            });
        }
    }

    /// Record a point event with an optional payload. No-op when
    /// disabled.
    #[inline]
    pub fn instant(&self, t_ns: u64, scope: &'static str, label: &'static str, value: Option<f64>) {
        if let Some(buf) = &self.0 {
            let mut b = buf.borrow_mut();
            let round = b.round;
            b.data.events.push(TraceEvent {
                start_ns: t_ns,
                end_ns: t_ns,
                scope,
                label,
                component: None,
                round,
                value,
            });
        }
    }

    /// Add `n` to a named counter. No-op when disabled.
    #[inline]
    pub fn count(&self, key: &'static str, n: u64) {
        if let Some(buf) = &self.0 {
            *buf.borrow_mut().data.counters.entry(key).or_insert(0) += n;
        }
    }

    /// Record a nanosecond observation into a named histogram. No-op
    /// when disabled.
    #[inline]
    pub fn observe(&self, key: &'static str, v_ns: u64) {
        if let Some(buf) = &self.0 {
            buf.borrow_mut()
                .data
                .histograms
                .entry(key)
                .or_default()
                .observe(v_ns);
        }
    }

    /// Extract the recorded data, leaving the buffer empty. Returns
    /// `None` when the handle is disabled.
    pub fn take(&self) -> Option<TraceData> {
        self.0
            .as_ref()
            .map(|buf| std::mem::take(&mut buf.borrow_mut().data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing_and_takes_none() {
        let t = Trace::disabled();
        assert!(!t.is_enabled());
        t.span(0, 10, "session", "xhr_send", Some(Component::Parse));
        t.instant(5, "session", "round.start", Some(1.0));
        t.count("frames", 3);
        t.observe("serialize", 42);
        assert!(t.take().is_none());
    }

    #[test]
    fn clones_share_one_buffer_and_round_tag() {
        let t = Trace::enabled();
        let t2 = t.clone();
        t.set_round(Some(1));
        t2.span(0, 7, "session", "js_exec", Some(Component::Dispatch));
        t.set_round(None);
        t2.instant(9, "session", "done", None);
        let data = t.take().unwrap();
        assert_eq!(data.events.len(), 2);
        assert_eq!(data.events[0].round, Some(1));
        assert_eq!(data.events[1].round, None);
        // Taking drains the shared buffer for every clone.
        assert_eq!(t2.take().unwrap(), TraceData::default());
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let t = Trace::enabled();
        t.count("frames", 2);
        t.count("frames", 3);
        t.observe("ser", 8);
        t.observe("ser", 16);
        let d = t.take().unwrap();
        assert_eq!(d.counters["frames"], 5);
        let h = &d.histograms["ser"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum_ns, 24);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[4], 1);
        assert!((h.mean_ns() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn component_totals_filter_by_round() {
        let t = Trace::enabled();
        t.set_round(Some(1));
        t.span(0, 10, "session", "a", Some(Component::Stack));
        t.set_round(Some(2));
        t.span(20, 25, "session", "b", Some(Component::Stack));
        let d = t.take().unwrap();
        assert_eq!(d.component_total_ns(Component::Stack, None), 15);
        assert_eq!(d.component_total_ns(Component::Stack, Some(1)), 10);
        assert_eq!(d.component_total_ns(Component::Stack, Some(2)), 5);
        assert_eq!(d.component_total_ns(Component::Parse, None), 0);
    }

    #[test]
    fn json_and_csv_are_deterministic() {
        let mk = || {
            let t = Trace::enabled();
            t.set_round(Some(1));
            t.span(1, 4, "link", "serialize", None);
            t.instant(4, "tap", "rx", Some(64.0));
            t.count("frames", 1);
            t.observe("ser", 3);
            t.take().unwrap()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_csv(), b.to_csv());
        assert!(a.to_json().contains("\"counters\":{\"frames\":1}"));
        assert!(a.to_csv().starts_with("start_ns,end_ns,scope,label"));
    }

    #[test]
    fn histogram_bucket_zero_takes_zero_values() {
        let mut h = Histogram::default();
        h.observe(0);
        h.observe(1);
        assert_eq!(h.buckets[0], 2);
    }

    #[test]
    fn component_names_are_stable() {
        assert_eq!(Component::ATTRIBUTED.len(), 7);
        assert_eq!(Component::Retrans.name(), "retrans");
        assert_eq!(Component::Quantization.name(), "quantization");
        assert_eq!(Component::Dispatch.to_string(), "dispatch");
    }
}
