//! Hierarchical timer wheel — the engine's production event scheduler.
//!
//! The original scheduler was a single `BinaryHeap` keyed by
//! `(time, seq)`; correct, but every push/pop pays `O(log n)` comparator
//! work and the heap's memory access pattern scatters across the whole
//! backing array. A discrete-event network simulation has structure a
//! heap ignores: almost every event is scheduled a *short* time ahead
//! (serialization delays of microseconds, propagation of tens of
//! microseconds, RTO timers of seconds), and events are consumed in
//! closely-spaced bursts.
//!
//! The wheel here is the classic hashed-and-hierarchical design
//! (Varghese–Lauck, and the shape used by kernel timers and tokio's
//! driver): `LEVELS` levels of 64 slots each, where a level-`L` slot
//! spans `2^(SHIFT + 6·L)` nanoseconds. Level 0 slots are ~4 µs wide;
//! the top level's slots are wide enough that the nine levels together
//! cover the full `u64` nanosecond range (584 years of simulated time).
//! An event is filed at the level whose granularity first distinguishes
//! its deadline from the current time — found with one XOR and a
//! leading-zeros count — so insertion is `O(1)`. Expiry drains the
//! current level-0 slot into a tiny `ready` heap (which restores exact
//! `(time, seq)` order within the ~4 µs slot) and cascades
//! coarser-level slots downward as time reaches them.
//!
//! Determinism is inherited rather than re-proven: the wheel never
//! compares events beyond `(at, seq)`, and `tests/properties.rs` holds
//! an exhaustive equivalence proptest against the reference
//! `BinaryHeap` implementation in [`crate::event`].

use std::collections::BinaryHeap;
use std::mem;

use crate::event::Event;
use crate::time::SimTime;

/// log2 of the level-0 slot width in nanoseconds (4096 ns ≈ 4 µs).
const SHIFT: u32 = 12;
/// log2 of the slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of levels; `SHIFT + 6·LEVELS ≥ 64` so the top level spans the
/// entire `u64` nanosecond range.
const LEVELS: usize = 9;

/// Width of a level-0 slot in nanoseconds.
const WIDTH0: u64 = 1 << SHIFT;

#[derive(Debug)]
struct Level {
    /// Bitmap of non-empty slots (bit `s` set ⇔ `slots[s]` non-empty).
    occupied: u64,
    slots: [Vec<Event>; SLOTS],
}

impl Default for Level {
    fn default() -> Self {
        Level {
            occupied: 0,
            slots: std::array::from_fn(|_| Vec::new()),
        }
    }
}

/// Hierarchical timer wheel over [`Event`]s, popping in exact
/// `(time, seq)` order.
#[derive(Debug)]
pub struct TimerWheel {
    /// Start of the current level-0 slot, in nanoseconds. All events
    /// still filed in the wheel fire at `ready_until` or later.
    elapsed: u64,
    /// End of the current level-0 slot: events before this instant live
    /// in `ready`, not in the wheel.
    ready_until: u64,
    /// Events within the current level-0 slot, in exact order.
    ready: BinaryHeap<Event>,
    levels: Box<[Level; LEVELS]>,
    len: usize,
}

impl Default for TimerWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimerWheel {
    /// An empty wheel positioned at time zero.
    pub fn new() -> Self {
        TimerWheel {
            elapsed: 0,
            ready_until: WIDTH0,
            ready: BinaryHeap::new(),
            levels: Box::new(std::array::from_fn(|_| Level::default())),
            len: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// File `ev` for later retrieval. Events are expected at or after
    /// the last popped time (the engine asserts this), but any deadline
    /// inside the current slot is honoured exactly.
    pub fn push(&mut self, ev: Event) {
        self.len += 1;
        self.insert(ev);
    }

    /// Remove and return the earliest `(time, seq)` event.
    pub fn pop(&mut self) -> Option<Event> {
        if self.ready.is_empty() && !self.advance() {
            return None;
        }
        let ev = self.ready.pop();
        debug_assert!(ev.is_some());
        self.len -= 1;
        ev
    }

    /// When the next event would fire, if any. Cascades internally, so
    /// it needs `&mut self`; the observable queue content is unchanged.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.ready.is_empty() && !self.advance() {
            return None;
        }
        self.ready.peek().map(|e| e.at)
    }

    fn insert(&mut self, ev: Event) {
        let at = ev.at.as_nanos();
        if at < self.ready_until {
            self.ready.push(ev);
            return;
        }
        // The level whose slot width first distinguishes `at` from the
        // current time: position of the highest differing bit, in
        // 6-bit groups above SHIFT. `at >= ready_until` guarantees the
        // XOR is non-zero at or above bit SHIFT.
        let diff = (at ^ self.elapsed) >> SHIFT;
        if diff == 0 {
            // Same level-0 slot as `elapsed` but at/after a saturated
            // `ready_until` — only reachable in the last ~4 µs of the
            // u64 nanosecond range.
            self.ready.push(ev);
            return;
        }
        let level = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
        debug_assert!(level < LEVELS);
        let slot = ((at >> (SHIFT + SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.levels[level].slots[slot].push(ev);
        self.levels[level].occupied |= 1 << slot;
    }

    /// Move time forward to the next occupied slot and refill `ready`.
    /// Returns false when the wheel holds no events at all.
    fn advance(&mut self) -> bool {
        loop {
            let Some((level, slot)) = self.next_occupied() else {
                return false;
            };
            let shift = SHIFT + SLOT_BITS * level as u32;
            // Slot start time: the current time's bits above this
            // level's range, this slot's index within it, zeros below.
            let high = if shift + SLOT_BITS >= 64 {
                0
            } else {
                self.elapsed & (!0u64 << (shift + SLOT_BITS))
            };
            let slot_start = high | ((slot as u64) << shift);
            debug_assert!(slot_start >= self.elapsed);
            self.elapsed = slot_start & !(WIDTH0 - 1);
            // Saturates in the last slot of the u64 range; `insert`
            // routes anything past a saturated boundary to `ready`.
            self.ready_until = self.elapsed.saturating_add(WIDTH0);
            let evs = mem::take(&mut self.levels[level].slots[slot]);
            self.levels[level].occupied &= !(1 << slot);
            if level == 0 {
                // Level-0 slots land in `ready` wholesale.
                self.ready.extend(evs);
                return true;
            }
            // Coarser slots cascade: each event re-files at a strictly
            // lower level (its deadline now shares this level's bits
            // with `elapsed`), so this terminates.
            for ev in evs {
                self.insert(ev);
            }
            if !self.ready.is_empty() {
                return true;
            }
        }
    }

    /// The lowest-level, earliest occupied slot. Occupied slots are
    /// always strictly ahead of the current position at their level
    /// (events in or before the current slot were drained into `ready`
    /// on insert or cascade), so the earliest occupied slot at the
    /// lowest occupied level is the next to expire.
    fn next_occupied(&self) -> Option<(usize, usize)> {
        for (level, l) in self.levels.iter().enumerate() {
            if l.occupied != 0 {
                return Some((level, l.occupied.trailing_zeros() as usize));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(at_ns: u64, seq: u64) -> Event {
        Event {
            at: SimTime::from_nanos(at_ns),
            seq,
            kind: EventKind::Timer {
                node: 0,
                token: seq,
            },
        }
    }

    fn drain(w: &mut TimerWheel) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| w.pop())
            .map(|e| (e.at.as_nanos(), e.seq))
            .collect()
    }

    #[test]
    fn orders_across_levels() {
        let mut w = TimerWheel::new();
        // Deadlines spanning every level: ns to minutes.
        let times = [
            0u64,
            1,
            4_095,
            4_096,
            1 << 18,
            (1 << 18) + 7,
            1_000_000,
            50_000_000,
            1 << 40,
            (1 << 40) + 123,
            90_000_000_000,
        ];
        for (seq, &t) in times.iter().enumerate() {
            w.push(ev(t, seq as u64));
        }
        let got = drain(&mut w);
        let mut want: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(s, &t)| (t, s as u64))
            .collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut w = TimerWheel::new();
        for seq in 0..100 {
            w.push(ev(1 << 30, seq));
        }
        let got = drain(&mut w);
        assert_eq!(got, (0..100).map(|s| (1 << 30, s)).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut w = TimerWheel::new();
        w.push(ev(10_000, 0));
        w.push(ev(5_000_000, 1));
        assert_eq!(w.pop().unwrap().seq, 0);
        // Push something between the popped time and the far event.
        w.push(ev(20_000, 2));
        w.push(ev(15_000, 3));
        assert_eq!(w.pop().unwrap().seq, 3);
        assert_eq!(w.pop().unwrap().seq, 2);
        assert_eq!(w.pop().unwrap().seq, 1);
        assert!(w.pop().is_none());
    }

    #[test]
    fn push_at_popped_instant_still_orders_by_seq() {
        let mut w = TimerWheel::new();
        w.push(ev(7_000, 0));
        assert_eq!(w.pop().unwrap().seq, 0);
        // Same instant as the event just popped — the engine does this
        // constantly (a node reacts by sending immediately).
        w.push(ev(7_000, 1));
        w.push(ev(7_000, 2));
        assert_eq!(drain(&mut w), vec![(7_000, 1), (7_000, 2)]);
    }

    #[test]
    fn peek_matches_pop_and_cascades() {
        let mut w = TimerWheel::new();
        assert!(w.peek_time().is_none());
        w.push(ev(1 << 35, 0));
        assert_eq!(w.peek_time(), Some(SimTime::from_nanos(1 << 35)));
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop().unwrap().at.as_nanos(), 1 << 35);
        assert!(w.is_empty());
    }

    #[test]
    fn far_future_near_u64_range() {
        let mut w = TimerWheel::new();
        w.push(ev(u64::MAX - 1, 0));
        w.push(ev(1, 1));
        assert_eq!(w.pop().unwrap().seq, 1);
        assert_eq!(w.pop().unwrap().at.as_nanos(), u64::MAX - 1);
    }
}
