//! # bnm-sim — deterministic discrete-event network simulator
//!
//! This crate is the physical substrate for the IMC'13 reproduction: it
//! simulates the two-machine, one-switch 100 Mbps testbed of the paper at
//! packet granularity.
//!
//! Design goals (in the spirit of `smoltcp`):
//!
//! * **Determinism.** A single-threaded event loop ordered by
//!   `(time, sequence)`; all randomness lives in explicitly seeded
//!   [`rand::rngs::SmallRng`] streams owned by individual components.
//! * **Real wire formats.** Frames on links are byte-exact Ethernet II /
//!   IPv4 / TCP / UDP packets with checksums (see [`wire`]). Capture taps
//!   record raw frames, and ground truth for the experiments is recovered by
//!   *parsing those bytes* — never by peeking at simulator internals.
//! * **Observable.** Any link endpoint can carry capture taps
//!   ([`capture`]) whose contents can be exported to a Wireshark-readable
//!   libpcap file ([`pcap`]).
//! * **Fault injection.** Links support loss, corruption and duplication
//!   knobs ([`fault`]) for robustness testing, mirroring smoltcp's example
//!   options (the paper's experiments run loss-free).
//!
//! The building blocks are:
//!
//! * [`time::SimTime`] / [`time::SimDuration`] — nanosecond virtual time.
//! * [`engine::Engine`] — the event loop; owns nodes, links and taps.
//! * [`engine::Node`] — trait implemented by anything attached to the
//!   network (hosts, switches).
//! * [`link::LinkSpec`] — bandwidth / propagation / queueing / extra-delay
//!   parameters (the paper's 50 ms server-side delay is a link
//!   `extra_delay`).
//! * [`switch::Switch`] — a learning L2 switch.

pub mod capture;
pub mod dynamics;
pub mod engine;
pub mod event;
pub mod fault;
pub mod link;
pub mod pcap;
pub mod rng;
pub mod sched;
pub mod switch;
pub mod time;
pub mod wire;

pub use capture::{CaptureBuffer, CaptureRecord, CaptureSink, TapId};
pub use dynamics::{LinkDynamics, LinkShape, QueueDiscipline, RateSchedule};
pub use engine::{Ctx, Engine, EngineError, Node, NodeId, PortNo};
pub use fault::{FaultSpec, Impairment};
pub use link::{LinkId, LinkSpec};
pub use time::{SimDuration, SimTime};
