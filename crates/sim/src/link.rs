//! Full-duplex point-to-point links.
//!
//! Each direction models: a drop-tail FIFO queue bounded in bytes, a
//! serialization stage (`bytes * 8 / rate`), a propagation delay, and an
//! optional fixed *extra delay* — the simulator's equivalent of `netem
//! delay`, used to reproduce the paper's "additional delay of 50 ms on the
//! server side".

use rand::rngs::SmallRng;
use rand::Rng;

use crate::capture::TapId;
use crate::dynamics::{CoDelState, LinkDynamics};
use crate::engine::{NodeId, PortNo};
use crate::fault::FaultInjector;
use crate::time::{SimDuration, SimTime};

/// Identifies a link within an [`crate::engine::Engine`].
pub type LinkId = usize;

/// Which direction of a full-duplex link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Endpoint A transmits toward endpoint B.
    AToB,
    /// Endpoint B transmits toward endpoint A.
    BToA,
}

impl Dir {
    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::AToB => Dir::BToA,
            Dir::BToA => Dir::AToB,
        }
    }
}

/// Static parameters of one link direction.
///
/// [`crate::engine::Engine::connect`] seeds both directions with the
/// same spec; [`crate::engine::Engine::set_link_spec`] can then override
/// one direction for asymmetric links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Line rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// Extra fixed one-way delay (netem-style), applied after
    /// serialization. The paper's server-side 50 ms lives here.
    pub extra_delay: SimDuration,
    /// Drop-tail queue bound in bytes (per direction).
    pub queue_limit_bytes: usize,
}

impl LinkSpec {
    /// The paper's testbed link: 100 Mbps Ethernet through a switch, with
    /// microsecond-scale propagation and a generous queue.
    pub fn fast_ethernet() -> LinkSpec {
        LinkSpec {
            rate_bps: 100_000_000,
            propagation: SimDuration::from_micros(5),
            extra_delay: SimDuration::ZERO,
            queue_limit_bytes: 256 * 1024,
        }
    }

    /// Fast Ethernet with a netem-style extra one-way delay.
    pub fn fast_ethernet_delayed(extra: SimDuration) -> LinkSpec {
        LinkSpec {
            extra_delay: extra,
            ..LinkSpec::fast_ethernet()
        }
    }

    /// Gigabit Ethernet (for extension experiments).
    pub fn gigabit() -> LinkSpec {
        LinkSpec {
            rate_bps: 1_000_000_000,
            propagation: SimDuration::from_micros(2),
            extra_delay: SimDuration::ZERO,
            queue_limit_bytes: 1024 * 1024,
        }
    }

    /// Check the spec's documented preconditions. A zero rate would
    /// panic deep in [`SimDuration::serialization`]; a zero queue bound
    /// silently drops every frame and hangs any protocol above it.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.rate_bps == 0 {
            return Err("link rate_bps must be positive");
        }
        if self.queue_limit_bytes == 0 {
            return Err("link queue_limit_bytes must be positive");
        }
        Ok(())
    }
}

/// One endpoint of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Endpoint {
    /// The attached node.
    pub node: NodeId,
    /// The interface index on that node.
    pub port: PortNo,
}

/// Mutable per-direction state.
///
/// The direction owns its [`LinkSpec`] — the single source of truth for
/// rate, propagation, queue bound *and* `extra_delay` (historically
/// `extra_delay` was duplicated here; per-direction overrides like the
/// paper's server-side 50 ms now mutate `spec.extra_delay` directly).
#[derive(Debug)]
pub(crate) struct DirState {
    /// This direction's static parameters (seeded from the link's
    /// construction spec, overridable per direction).
    pub spec: LinkSpec,
    /// This direction's rate schedule and queue discipline.
    pub dynamics: LinkDynamics,
    /// CoDel controller state (inert under drop-tail).
    pub codel: CoDelState,
    /// When the transmitter becomes free.
    pub busy_until: SimTime,
    /// Bytes currently queued or serializing.
    pub queued_bytes: usize,
    /// High-water mark of `queued_bytes` — the gauge that makes
    /// bufferbloat runs explainable.
    pub queue_peak_bytes: usize,
    /// Frames dropped at the queue (drop-tail overflow and AQM drops).
    pub queue_drops: u64,
    /// Fault injection for this direction.
    pub fault: Option<FaultInjector>,
    /// Netem-style uniform jitter on `extra_delay` (the `netem delay
    /// 50ms 2ms` second argument): each frame draws an extra delay in
    /// `[0, bound]` from a dedicated stream. `None` = no jitter.
    pub jitter: Option<LinkJitter>,
}

/// Per-direction delay jitter: a bound and its RNG stream.
#[derive(Debug)]
pub(crate) struct LinkJitter {
    /// Upper bound of the uniform extra delay.
    pub bound: SimDuration,
    /// Dedicated RNG stream (one draw per frame, in event order, so
    /// runs stay deterministic).
    pub rng: SmallRng,
}

impl LinkJitter {
    /// Draw one frame's extra delay in `[0, bound]`.
    pub(crate) fn draw(&mut self) -> SimDuration {
        let bound = self.bound.as_nanos();
        if bound == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(self.rng.gen_range(0..=bound))
    }
}

impl DirState {
    pub(crate) fn new(spec: LinkSpec) -> Self {
        DirState {
            spec,
            dynamics: LinkDynamics::default(),
            codel: CoDelState::default(),
            busy_until: SimTime::ZERO,
            queued_bytes: 0,
            queue_peak_bytes: 0,
            queue_drops: 0,
            fault: None,
            jitter: None,
        }
    }
}

/// A full-duplex link between two endpoints. Each direction carries its
/// own spec and dynamics (see [`DirState`]).
#[derive(Debug)]
pub(crate) struct Link {
    pub a: Endpoint,
    pub b: Endpoint,
    pub a_to_b: DirState,
    pub b_to_a: DirState,
    /// Taps attached at endpoint A (see Tx/Rx semantics in [`crate::capture`]).
    pub taps_a: Vec<TapId>,
    /// Taps attached at endpoint B.
    pub taps_b: Vec<TapId>,
}

impl Link {
    pub(crate) fn new(spec: LinkSpec, a: Endpoint, b: Endpoint) -> Self {
        Link {
            a,
            b,
            a_to_b: DirState::new(spec),
            b_to_a: DirState::new(spec),
            taps_a: Vec::new(),
            taps_b: Vec::new(),
        }
    }

    /// Which direction a transmission from `ep` travels.
    pub(crate) fn dir_from(&self, ep: Endpoint) -> Option<Dir> {
        if ep == self.a {
            Some(Dir::AToB)
        } else if ep == self.b {
            Some(Dir::BToA)
        } else {
            None
        }
    }

    pub(crate) fn dir_state(&mut self, dir: Dir) -> &mut DirState {
        match dir {
            Dir::AToB => &mut self.a_to_b,
            Dir::BToA => &mut self.b_to_a,
        }
    }

    /// The receiving endpoint for a direction.
    pub(crate) fn sink(&self, dir: Dir) -> Endpoint {
        match dir {
            Dir::AToB => self.b,
            Dir::BToA => self.a,
        }
    }

    /// The transmitting endpoint for a direction.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn source(&self, dir: Dir) -> Endpoint {
        match dir {
            Dir::AToB => self.a,
            Dir::BToA => self.b,
        }
    }

    /// Taps at the transmitting side of `dir`.
    pub(crate) fn source_taps(&self, dir: Dir) -> &[TapId] {
        match dir {
            Dir::AToB => &self.taps_a,
            Dir::BToA => &self.taps_b,
        }
    }

    /// Taps at the receiving side of `dir`.
    pub(crate) fn sink_taps(&self, dir: Dir) -> &[TapId] {
        match dir {
            Dir::AToB => &self.taps_b,
            Dir::BToA => &self.taps_a,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_flip() {
        assert_eq!(Dir::AToB.flip(), Dir::BToA);
        assert_eq!(Dir::BToA.flip(), Dir::AToB);
    }

    #[test]
    fn dir_from_endpoints() {
        let a = Endpoint { node: 0, port: 0 };
        let b = Endpoint { node: 1, port: 2 };
        let link = Link::new(LinkSpec::fast_ethernet(), a, b);
        assert_eq!(link.dir_from(a), Some(Dir::AToB));
        assert_eq!(link.dir_from(b), Some(Dir::BToA));
        assert_eq!(link.dir_from(Endpoint { node: 9, port: 9 }), None);
        assert_eq!(link.sink(Dir::AToB), b);
        assert_eq!(link.source(Dir::AToB), a);
    }

    #[test]
    fn fast_ethernet_spec() {
        let s = LinkSpec::fast_ethernet();
        assert_eq!(s.rate_bps, 100_000_000);
        assert_eq!(s.extra_delay, SimDuration::ZERO);
        let d = LinkSpec::fast_ethernet_delayed(SimDuration::from_millis(50));
        assert_eq!(d.extra_delay.as_millis(), 50);
        assert_eq!(d.rate_bps, 100_000_000);
    }
}
