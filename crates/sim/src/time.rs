//! Virtual time.
//!
//! The simulator counts **nanoseconds** in a `u64`, which covers ~584 years
//! of simulated time — comfortably more than the multi-hour timelines the
//! granularity-regime experiments need.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual time (nanoseconds since simulation boot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// Simulation boot.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since boot.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since boot (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since boot (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional milliseconds since boot.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds since boot.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`. Saturates at zero rather than
    /// panicking, since capture-timestamp noise can reorder nearby stamps.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Signed difference `self - other` in fractional milliseconds.
    ///
    /// This is the quantity Eq. 1 of the paper is built from, and it can be
    /// negative (that is the point of Section 4.2).
    pub fn signed_millis_since(self, other: SimTime) -> f64 {
        (self.0 as i128 - other.0 as i128) as f64 / 1e6
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional milliseconds (rounding to nanoseconds;
    /// negative inputs clamp to zero).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1e6).round() as u64)
    }

    /// Construct from fractional seconds (rounding; clamped at zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The time a `bytes`-long frame needs to serialize onto a link of
    /// `bits_per_sec`, rounded up to the next nanosecond.
    pub fn serialization(bytes: usize, bits_per_sec: u64) -> Self {
        assert!(bits_per_sec > 0, "link rate must be positive");
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(bits_per_sec as u128);
        SimDuration(ns as u64)
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_millis(50).as_nanos(), 50_000_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_nanos(), 1_500_000);
    }

    #[test]
    fn negative_float_durations_clamp() {
        assert_eq!(SimDuration::from_millis_f64(-4.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        let d = t.saturating_since(SimTime::from_millis(12));
        assert_eq!(d.as_millis(), 3);
        // saturates instead of underflowing
        let z = SimTime::from_millis(1).saturating_since(t);
        assert_eq!(z, SimDuration::ZERO);
    }

    #[test]
    fn signed_difference_can_be_negative() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(25);
        assert_eq!(a.signed_millis_since(b), -15.0);
        assert_eq!(b.signed_millis_since(a), 15.0);
    }

    #[test]
    fn serialization_delay_100mbps() {
        // A 1000-byte frame on 100 Mbps takes 80 microseconds.
        let d = SimDuration::serialization(1000, 100_000_000);
        assert_eq!(d.as_nanos(), 80_000);
        // Rounds up.
        let d = SimDuration::serialization(1, 3);
        assert_eq!(d.as_nanos(), 2_666_666_667);
    }

    #[test]
    #[should_panic(expected = "link rate must be positive")]
    fn zero_rate_panics() {
        let _ = SimDuration::serialization(10, 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(7)), "7.000us");
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
    }
}
