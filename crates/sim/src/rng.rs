//! Named, reproducible RNG streams.
//!
//! Every stochastic component in the simulation owns its own
//! [`rand::rngs::SmallRng`] derived from `(master seed, component label)`.
//! This decouples components: adding a draw to one component never perturbs
//! another component's stream, which keeps A/B experiment comparisons
//! paired (the ablation benches rely on this).

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 step — the standard seed-expansion permutation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a 64-bit stream seed from a master seed and a textual label.
pub fn derive_seed(master: u64, label: &str) -> u64 {
    // FNV-1a over the label, then mixed with the master through SplitMix64.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    let mut state = master ^ h;
    splitmix64(&mut state)
}

/// A labelled RNG stream rooted at a master seed.
pub fn stream(master: u64, label: &str) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master, label))
}

/// Derive a sub-stream for a numbered repetition of a labelled component.
pub fn stream_indexed(master: u64, label: &str, index: u64) -> SmallRng {
    let mut state = derive_seed(master, label) ^ index.wrapping_mul(0xA24B_AED4_963E_E407);
    SmallRng::seed_from_u64(splitmix64(&mut state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = stream(42, "link.fault");
        let mut b = stream(42, "link.fault");
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = stream(42, "browser.eventloop");
        let mut b = stream(42, "browser.plugin");
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(derive_seed(1, "x"), derive_seed(2, "x"));
    }

    #[test]
    fn indexed_streams_differ() {
        let mut a = stream_indexed(7, "rep", 0);
        let mut b = stream_indexed(7, "rep", 1);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
