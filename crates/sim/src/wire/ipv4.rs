//! IPv4 header emission and parsing (no options, no fragmentation —
//! the testbed's MTU is never exceeded because the experiment messages are
//! deliberately single-packet, per Section 3 of the paper).

use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

use super::checksum;
use super::WireError;

/// Length of the option-less IPv4 header.
pub const HEADER_LEN: usize = 20;

/// IP protocol numbers this crate understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpProtocol {
    /// 1.
    Icmp,
    /// 6.
    Tcp,
    /// 17.
    Udp,
    /// Anything else.
    Other(u8),
}

impl IpProtocol {
    /// Numeric protocol value.
    pub fn value(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }

    /// From the numeric value.
    pub fn from_value(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

/// An IPv4 packet (DF set, never fragmented).
#[derive(Debug, Clone)]
pub struct Ipv4Packet {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol.
    pub protocol: IpProtocol,
    /// Time to live.
    pub ttl: u8,
    /// Identification field (used by the hosts as a per-packet counter,
    /// handy when eyeballing pcaps).
    pub ident: u16,
    /// Transport payload.
    pub payload: Bytes,
}

impl Ipv4Packet {
    /// Serialize, computing the header checksum.
    pub fn emit(&self) -> Bytes {
        let total_len = HEADER_LEN + self.payload.len();
        assert!(total_len <= u16::MAX as usize, "IPv4 packet too large");
        let mut buf = BytesMut::with_capacity(total_len);
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(0); // DSCP/ECN
        buf.put_u16(total_len as u16);
        buf.put_u16(self.ident);
        buf.put_u16(0x4000); // flags: DF, fragment offset 0
        buf.put_u8(self.ttl);
        buf.put_u8(self.protocol.value());
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&self.src.octets());
        buf.put_slice(&self.dst.octets());
        let c = checksum::checksum(&buf[..HEADER_LEN]);
        buf[10..12].copy_from_slice(&c.to_be_bytes());
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parse and verify the header checksum and length fields.
    pub fn parse(data: &[u8]) -> Result<Ipv4Packet, WireError> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if data[0] >> 4 != 4 {
            return Err(WireError::Malformed);
        }
        let ihl = (data[0] & 0x0F) as usize * 4;
        if ihl < HEADER_LEN || data.len() < ihl {
            return Err(WireError::Malformed);
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]) as usize;
        if total_len < ihl || total_len > data.len() {
            return Err(WireError::BadLength);
        }
        if !checksum::verify(checksum::sum(0, &data[..ihl])) {
            return Err(WireError::BadChecksum);
        }
        let ident = u16::from_be_bytes([data[4], data[5]]);
        let ttl = data[8];
        let protocol = IpProtocol::from_value(data[9]);
        let src = Ipv4Addr::new(data[12], data[13], data[14], data[15]);
        let dst = Ipv4Addr::new(data[16], data[17], data[18], data[19]);
        Ok(Ipv4Packet {
            src,
            dst,
            protocol,
            ttl,
            ident,
            payload: Bytes::copy_from_slice(&data[ihl..total_len]),
        })
    }

    /// Length of the emitted packet.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Packet {
        Ipv4Packet {
            src: Ipv4Addr::new(192, 168, 1, 2),
            dst: Ipv4Addr::new(192, 168, 1, 10),
            protocol: IpProtocol::Tcp,
            ttl: 64,
            ident: 0x1234,
            payload: Bytes::from_static(b"payload bytes"),
        }
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let bytes = p.emit();
        let q = Ipv4Packet::parse(&bytes).unwrap();
        assert_eq!(q.src, p.src);
        assert_eq!(q.dst, p.dst);
        assert_eq!(q.protocol, IpProtocol::Tcp);
        assert_eq!(q.ttl, 64);
        assert_eq!(q.ident, 0x1234);
        assert_eq!(q.payload, p.payload);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut bytes = sample().emit().to_vec();
        bytes[8] ^= 0x55; // flip TTL bits
        assert_eq!(
            Ipv4Packet::parse(&bytes).unwrap_err(),
            WireError::BadChecksum
        );
    }

    #[test]
    fn rejects_non_v4() {
        let mut bytes = sample().emit().to_vec();
        bytes[0] = 0x65; // version 6
        assert_eq!(Ipv4Packet::parse(&bytes).unwrap_err(), WireError::Malformed);
    }

    #[test]
    fn rejects_bad_total_length() {
        let mut bytes = sample().emit().to_vec();
        // Claim a longer packet than the buffer holds; recompute checksum
        // so the length check (not the checksum) trips.
        bytes[2] = 0xFF;
        bytes[3] = 0xFF;
        bytes[10] = 0;
        bytes[11] = 0;
        let c = checksum::checksum(&bytes[..HEADER_LEN]);
        bytes[10..12].copy_from_slice(&c.to_be_bytes());
        assert_eq!(Ipv4Packet::parse(&bytes).unwrap_err(), WireError::BadLength);
    }

    #[test]
    fn truncated() {
        assert_eq!(
            Ipv4Packet::parse(&[0x45; 10]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn trailing_link_padding_ignored() {
        // Ethernet can pad short frames; parse must honour total_len.
        let p = sample();
        let mut bytes = p.emit().to_vec();
        bytes.extend_from_slice(&[0u8; 12]);
        let q = Ipv4Packet::parse(&bytes).unwrap();
        assert_eq!(q.payload, p.payload);
    }
}
