//! ICMPv4 echo (ping) messages.
//!
//! The related work the paper discusses (Yeboah et al., §6) compares
//! browser-based delay measurements against ICMP ping; this module gives
//! the reproduction the same baseline. Only echo request/reply are
//! modelled — exactly what `ping` uses.

use bytes::{BufMut, Bytes, BytesMut};

use super::checksum;
use super::WireError;

/// ICMP header length (echo variant).
pub const HEADER_LEN: usize = 8;

/// An ICMPv4 echo message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpEcho {
    /// True for echo request (type 8), false for reply (type 0).
    pub is_request: bool,
    /// Identifier (ping process id).
    pub ident: u16,
    /// Sequence number.
    pub seq: u16,
    /// Payload (ping pattern + timestamp bytes).
    pub payload: Bytes,
}

impl IcmpEcho {
    /// Serialize with a valid checksum.
    pub fn emit(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_LEN + self.payload.len());
        buf.put_u8(if self.is_request { 8 } else { 0 });
        buf.put_u8(0); // code
        buf.put_u16(0); // checksum placeholder
        buf.put_u16(self.ident);
        buf.put_u16(self.seq);
        buf.put_slice(&self.payload);
        let c = checksum::checksum(&buf);
        buf[2..4].copy_from_slice(&c.to_be_bytes());
        buf.freeze()
    }

    /// Parse and verify the checksum.
    pub fn parse(data: &[u8]) -> Result<IcmpEcho, WireError> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if !checksum::verify(checksum::sum(0, data)) {
            return Err(WireError::BadChecksum);
        }
        let is_request = match data[0] {
            8 => true,
            0 => false,
            _ => return Err(WireError::Malformed),
        };
        if data[1] != 0 {
            return Err(WireError::Malformed);
        }
        Ok(IcmpEcho {
            is_request,
            ident: u16::from_be_bytes([data[4], data[5]]),
            seq: u16::from_be_bytes([data[6], data[7]]),
            payload: Bytes::copy_from_slice(&data[HEADER_LEN..]),
        })
    }

    /// The reply to this request (echoes the payload, per RFC 792).
    pub fn reply(&self) -> IcmpEcho {
        IcmpEcho {
            is_request: false,
            ident: self.ident,
            seq: self.seq,
            payload: self.payload.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> IcmpEcho {
        IcmpEcho {
            is_request: true,
            ident: 0x1234,
            seq: 7,
            payload: Bytes::from_static(b"ping payload 0123456789"),
        }
    }

    #[test]
    fn roundtrip_request() {
        let r = request();
        let parsed = IcmpEcho::parse(&r.emit()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn reply_mirrors_request() {
        let req = request();
        let rep = req.reply();
        assert!(!rep.is_request);
        assert_eq!(rep.ident, req.ident);
        assert_eq!(rep.seq, req.seq);
        assert_eq!(rep.payload, req.payload);
        let parsed = IcmpEcho::parse(&rep.emit()).unwrap();
        assert_eq!(parsed, rep);
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = request().emit().to_vec();
        bytes[6] ^= 0x40;
        assert_eq!(IcmpEcho::parse(&bytes).unwrap_err(), WireError::BadChecksum);
    }

    #[test]
    fn non_echo_types_rejected() {
        // Type 3 (destination unreachable) is not an echo message.
        let mut buf = vec![3u8, 0, 0, 0, 0, 0, 0, 0];
        let c = checksum::checksum(&buf);
        buf[2..4].copy_from_slice(&c.to_be_bytes());
        assert_eq!(IcmpEcho::parse(&buf).unwrap_err(), WireError::Malformed);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            IcmpEcho::parse(&[8, 0, 0]).unwrap_err(),
            WireError::Truncated
        );
    }
}
