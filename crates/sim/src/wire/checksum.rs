//! The Internet checksum (RFC 1071) and the TCP/UDP pseudo-header.

use std::net::Ipv4Addr;

/// One's-complement sum over `data`, starting from `initial`.
///
/// Returns the running 32-bit accumulator (not yet folded), so partial
/// sums can be chained (pseudo-header + header + payload).
pub fn sum(mut acc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        acc += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Fold a 32-bit accumulator into the final 16-bit checksum.
pub fn finish(mut acc: u32) -> u16 {
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    !(acc as u16)
}

/// Checksum a self-contained buffer (e.g. an IPv4 header).
pub fn checksum(data: &[u8]) -> u16 {
    finish(sum(0, data))
}

/// Accumulate the TCP/UDP pseudo-header: src, dst, zero+protocol,
/// transport length.
pub fn pseudo_header(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, len: usize) -> u32 {
    let mut acc = 0u32;
    acc = sum(acc, &src.octets());
    acc = sum(acc, &dst.octets());
    acc = sum(acc, &[0, protocol]);
    acc = sum(acc, &(len as u16).to_be_bytes());
    acc
}

/// Verify that a buffer containing its own checksum field sums to zero.
pub fn verify(acc: u32) -> bool {
    finish(acc) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let acc = sum(0, &data);
        assert_eq!(acc, 0x2ddf0);
        assert_eq!(finish(acc), !0xddf2u16);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xFF]), checksum(&[0xFF, 0x00]));
    }

    #[test]
    fn buffer_including_own_checksum_verifies() {
        let mut header = vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 64, 6, 0, 0];
        header.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        let c = checksum(&header);
        header[10] = (c >> 8) as u8;
        header[11] = (c & 0xFF) as u8;
        assert!(verify(sum(0, &header)));
    }

    #[test]
    fn pseudo_header_is_order_sensitive() {
        let a = pseudo_header(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8), 6, 20);
        let b = pseudo_header(Ipv4Addr::new(5, 6, 7, 8), Ipv4Addr::new(1, 2, 3, 4), 6, 20);
        // One's-complement addition is commutative, so swapping addresses
        // yields the same sum — both ends must agree regardless of
        // direction, which is exactly why TCP checksums stay valid on the
        // return path computation.
        assert_eq!(finish(a), finish(b));
    }
}
