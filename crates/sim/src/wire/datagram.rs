//! Data-channel chunk format for the WebRTC datagram method.
//!
//! Models the subset of SCTP-over-DTLS-over-UDP that matters for delay
//! appraisal: a tiny fixed header carrying a chunk kind, stream id and
//! transmission sequence number (TSN), followed by the application
//! payload. Runs directly over [`super::udp::UdpDatagram`] payloads — no
//! retransmission, no ordering, no fragmentation, exactly the semantics
//! of an unreliable/unordered data channel (`maxRetransmits: 0`).
//!
//! The header is deliberately binary-prefixed but keeps the ASCII probe
//! marker verbatim in `payload`, so the capture-analysis "grep" used by
//! `core::matching` still finds markers by substring search.

use bytes::{BufMut, Bytes, BytesMut};

use super::WireError;

/// Chunk header length: kind (1) + flags (1) + stream (2) + seq (4) +
/// ppid (4).
pub const CHUNK_HEADER_LEN: usize = 12;

/// Chunk kinds understood by the data-channel layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkKind {
    /// DCEP DATA_CHANNEL_OPEN: client asks the peer to open a channel.
    DcepOpen,
    /// DCEP DATA_CHANNEL_ACK: peer confirms the channel is open.
    DcepAck,
    /// An application datagram on an open channel.
    Data,
}

impl ChunkKind {
    fn to_byte(self) -> u8 {
        match self {
            // DCEP message types from RFC 8832 §5.
            ChunkKind::DcepOpen => 0x03,
            ChunkKind::DcepAck => 0x02,
            ChunkKind::Data => 0x00,
        }
    }

    fn from_byte(b: u8) -> Result<ChunkKind, WireError> {
        match b {
            0x03 => Ok(ChunkKind::DcepOpen),
            0x02 => Ok(ChunkKind::DcepAck),
            0x00 => Ok(ChunkKind::Data),
            _ => Err(WireError::Malformed),
        }
    }
}

/// One data-channel chunk: the unit that rides in a UDP payload.
///
/// `seq` is the TSN. The transport never retransmits, reorders-back or
/// deduplicates — whatever the network does to the datagram is exactly
/// what the receiver observes, which is the whole point of the method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataChunk {
    /// Chunk kind.
    pub kind: ChunkKind,
    /// Stream (channel) identifier.
    pub stream: u16,
    /// Transmission sequence number, assigned by the sender per stream.
    pub seq: u32,
    /// Payload protocol identifier (opaque to the transport).
    pub ppid: u32,
    /// Application payload (probe marker text for measurement chunks).
    pub payload: Bytes,
}

impl DataChunk {
    /// A DCEP DATA_CHANNEL_OPEN chunk for `stream`.
    pub fn open(stream: u16) -> DataChunk {
        DataChunk {
            kind: ChunkKind::DcepOpen,
            stream,
            seq: 0,
            ppid: 50, // DCEP PPID (RFC 8832)
            payload: Bytes::from_static(b"dcep open"),
        }
    }

    /// A DCEP DATA_CHANNEL_ACK chunk answering an open on `stream`.
    pub fn ack(stream: u16) -> DataChunk {
        DataChunk {
            kind: ChunkKind::DcepAck,
            stream,
            seq: 0,
            ppid: 50,
            payload: Bytes::from_static(b"dcep ack"),
        }
    }

    /// An application datagram on `stream` with sequence number `seq`.
    pub fn data(stream: u16, seq: u32, payload: Bytes) -> DataChunk {
        DataChunk {
            kind: ChunkKind::Data,
            stream,
            seq,
            ppid: 53, // WebRTC String PPID
            payload,
        }
    }

    /// Serialize into the byte layout carried inside a UDP payload.
    pub fn emit(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(CHUNK_HEADER_LEN + self.payload.len());
        buf.put_u8(self.kind.to_byte());
        buf.put_u8(0); // flags (unordered/unreliable is the only mode)
        buf.put_u16(self.stream);
        buf.put_u32(self.seq);
        buf.put_u32(self.ppid);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parse a chunk from a UDP payload.
    pub fn parse(data: &[u8]) -> Result<DataChunk, WireError> {
        if data.len() < CHUNK_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let kind = ChunkKind::from_byte(data[0])?;
        Ok(DataChunk {
            kind,
            stream: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ppid: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            payload: Bytes::copy_from_slice(&data[CHUNK_HEADER_LEN..]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_roundtrip() {
        let c = DataChunk::data(1, 42, Bytes::from_static(b"probe m=webrtc r=3 t=7 ..."));
        let bytes = c.emit();
        let e = DataChunk::parse(&bytes).unwrap();
        assert_eq!(e, c);
        assert_eq!(e.seq, 42);
        assert_eq!(e.kind, ChunkKind::Data);
    }

    #[test]
    fn marker_stays_greppable() {
        // The capture matcher greps the UDP payload for the ASCII
        // marker; the binary chunk header must not obscure it.
        let marker = b"probe m=webrtc r=3 t=7 ";
        let bytes = DataChunk::data(1, 3, Bytes::copy_from_slice(marker)).emit();
        assert!(bytes.windows(marker.len()).any(|w| w == marker));
    }

    #[test]
    fn dcep_roundtrip() {
        for c in [DataChunk::open(5), DataChunk::ack(5)] {
            let e = DataChunk::parse(&c.emit()).unwrap();
            assert_eq!(e, c);
        }
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            DataChunk::parse(&[0u8; CHUNK_HEADER_LEN - 1]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut bytes = DataChunk::open(1).emit().to_vec();
        bytes[0] = 0x7F;
        assert_eq!(DataChunk::parse(&bytes).unwrap_err(), WireError::Malformed);
    }
}
