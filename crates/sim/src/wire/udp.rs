//! UDP datagram emission and parsing.

use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

use super::checksum;
use super::WireError;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A UDP datagram.
#[derive(Debug, Clone)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload.
    pub payload: Bytes,
}

impl UdpDatagram {
    /// Serialize with a valid checksum.
    pub fn emit(&self, src_ip: Ipv4Addr, dst_ip: Ipv4Addr) -> Bytes {
        let total = HEADER_LEN + self.payload.len();
        let mut buf = BytesMut::with_capacity(total);
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(total as u16);
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&self.payload);
        let mut acc = checksum::pseudo_header(src_ip, dst_ip, 17, total);
        acc = checksum::sum(acc, &buf);
        let mut c = checksum::finish(acc);
        // RFC 768: a computed zero checksum is transmitted as all ones.
        if c == 0 {
            c = 0xFFFF;
        }
        buf[6..8].copy_from_slice(&c.to_be_bytes());
        buf.freeze()
    }

    /// Parse and verify length and checksum.
    pub fn parse(
        data: &[u8],
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
    ) -> Result<UdpDatagram, WireError> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let len = u16::from_be_bytes([data[4], data[5]]) as usize;
        if len < HEADER_LEN || len > data.len() {
            return Err(WireError::BadLength);
        }
        let cksum = u16::from_be_bytes([data[6], data[7]]);
        if cksum != 0 {
            let mut acc = checksum::pseudo_header(src_ip, dst_ip, 17, len);
            acc = checksum::sum(acc, &data[..len]);
            if !checksum::verify(acc) {
                return Err(WireError::BadChecksum);
            }
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            payload: Bytes::copy_from_slice(&data[HEADER_LEN..len]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 2);
    const B: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 10);

    #[test]
    fn roundtrip() {
        let d = UdpDatagram {
            src_port: 5000,
            dst_port: 7,
            payload: Bytes::from_static(b"ping-round-1"),
        };
        let bytes = d.emit(A, B);
        let e = UdpDatagram::parse(&bytes, A, B).unwrap();
        assert_eq!(e.src_port, 5000);
        assert_eq!(e.dst_port, 7);
        assert_eq!(&e.payload[..], b"ping-round-1");
    }

    #[test]
    fn corruption_detected() {
        let d = UdpDatagram {
            src_port: 1,
            dst_port: 2,
            payload: Bytes::from_static(b"x"),
        };
        let mut bytes = d.emit(A, B).to_vec();
        bytes[8] ^= 0x01;
        assert_eq!(
            UdpDatagram::parse(&bytes, A, B).unwrap_err(),
            WireError::BadChecksum
        );
    }

    #[test]
    fn empty_payload_ok() {
        let d = UdpDatagram {
            src_port: 9,
            dst_port: 9,
            payload: Bytes::new(),
        };
        let e = UdpDatagram::parse(&d.emit(A, B), A, B).unwrap();
        assert!(e.payload.is_empty());
    }

    #[test]
    fn bad_length_field() {
        let d = UdpDatagram {
            src_port: 9,
            dst_port: 9,
            payload: Bytes::from_static(b"abc"),
        };
        let mut bytes = d.emit(A, B).to_vec();
        bytes[4] = 0xFF;
        bytes[5] = 0xFF;
        assert_eq!(
            UdpDatagram::parse(&bytes, A, B).unwrap_err(),
            WireError::BadLength
        );
    }
}
