//! Byte-exact wire formats: Ethernet II, IPv4, TCP, UDP.
//!
//! Frames that travel over simulated links are real packet bytes. The
//! experiment harness recovers its ground-truth timestamps (`tN` in the
//! paper's Eq. 1) by parsing capture-tap records with these parsers — the
//! same workflow as running WinDump/tcpdump next to a browser.

pub mod checksum;
pub mod datagram;
pub mod ethernet;
pub mod icmp;
pub mod ipv4;
pub mod tcp;
pub mod udp;

pub use datagram::{ChunkKind, DataChunk};
pub use ethernet::{EtherType, EthernetFrame, MacAddr};
pub use icmp::IcmpEcho;
pub use ipv4::{IpProtocol, Ipv4Packet};
pub use tcp::{TcpFlags, TcpSegment};
pub use udp::UdpDatagram;

use std::fmt;

/// Errors raised while parsing or emitting wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Buffer shorter than the fixed header.
    Truncated,
    /// A checksum failed to verify.
    BadChecksum,
    /// A length field disagrees with the buffer.
    BadLength,
    /// A version/format field has an unsupported value.
    Malformed,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated packet"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::BadLength => write!(f, "length field mismatch"),
            WireError::Malformed => write!(f, "malformed header"),
        }
    }
}

impl std::error::Error for WireError {}

/// A fully parsed client-visible packet: Ethernet → IPv4 → TCP/UDP.
///
/// Convenience for capture-analysis code that wants to go from raw frame
/// bytes to transport payload in one call.
#[derive(Debug, Clone)]
pub struct ParsedPacket {
    /// Link-layer header.
    pub eth: EthernetFrame,
    /// Network-layer header (present for IPv4 ethertype).
    pub ip: Ipv4Packet,
    /// Transport-layer content.
    pub transport: Transport,
}

/// Transport-layer content of a [`ParsedPacket`].
#[derive(Debug, Clone)]
pub enum Transport {
    /// A TCP segment.
    Tcp(TcpSegment),
    /// A UDP datagram.
    Udp(UdpDatagram),
    /// An ICMP echo message.
    Icmp(IcmpEcho),
    /// An IP protocol this crate does not parse further.
    Other(u8),
}

impl ParsedPacket {
    /// Parse a raw Ethernet frame all the way to the transport layer,
    /// verifying every checksum on the way.
    pub fn parse(frame: &[u8]) -> Result<ParsedPacket, WireError> {
        let eth = EthernetFrame::parse(frame)?;
        if eth.ethertype != EtherType::Ipv4 {
            return Err(WireError::Malformed);
        }
        let ip = Ipv4Packet::parse(&eth.payload)?;
        let transport = match ip.protocol {
            IpProtocol::Tcp => Transport::Tcp(TcpSegment::parse(&ip.payload, ip.src, ip.dst)?),
            IpProtocol::Udp => Transport::Udp(UdpDatagram::parse(&ip.payload, ip.src, ip.dst)?),
            IpProtocol::Icmp => Transport::Icmp(IcmpEcho::parse(&ip.payload)?),
            IpProtocol::Other(p) => Transport::Other(p),
        };
        Ok(ParsedPacket { eth, ip, transport })
    }

    /// The TCP segment, if this packet carries one.
    pub fn tcp(&self) -> Option<&TcpSegment> {
        match &self.transport {
            Transport::Tcp(seg) => Some(seg),
            _ => None,
        }
    }

    /// The UDP datagram, if this packet carries one.
    pub fn udp(&self) -> Option<&UdpDatagram> {
        match &self.transport {
            Transport::Udp(d) => Some(d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::net::Ipv4Addr;

    #[test]
    fn end_to_end_tcp_roundtrip() {
        let src_ip = Ipv4Addr::new(192, 168, 1, 2);
        let dst_ip = Ipv4Addr::new(192, 168, 1, 10);
        let seg = TcpSegment {
            src_port: 49152,
            dst_port: 80,
            seq: 1000,
            ack: 2000,
            flags: TcpFlags::PSH | TcpFlags::ACK,
            window: 65535,
            mss: None,
            payload: Bytes::from_static(b"GET /probe?r=1 HTTP/1.1\r\n\r\n"),
        };
        let ip = Ipv4Packet {
            src: src_ip,
            dst: dst_ip,
            protocol: IpProtocol::Tcp,
            ttl: 64,
            ident: 7,
            payload: seg.emit(src_ip, dst_ip),
        };
        let eth = EthernetFrame {
            dst: MacAddr([2, 0, 0, 0, 0, 1]),
            src: MacAddr([2, 0, 0, 0, 0, 2]),
            ethertype: EtherType::Ipv4,
            payload: ip.emit(),
        };
        let bytes = eth.emit();
        let parsed = ParsedPacket::parse(&bytes).expect("parse");
        let tcp = parsed.tcp().expect("tcp");
        assert_eq!(tcp.src_port, 49152);
        assert_eq!(tcp.dst_port, 80);
        assert_eq!(&tcp.payload[..], b"GET /probe?r=1 HTTP/1.1\r\n\r\n");
        assert!(tcp.flags.contains(TcpFlags::PSH));
        assert_eq!(parsed.ip.src, src_ip);
    }

    #[test]
    fn non_ip_frame_rejected() {
        let eth = EthernetFrame {
            dst: MacAddr::BROADCAST,
            src: MacAddr([2, 0, 0, 0, 0, 2]),
            ethertype: EtherType::Other(0x0806), // ARP
            payload: Bytes::from_static(&[0u8; 28]),
        };
        assert_eq!(
            ParsedPacket::parse(&eth.emit()).unwrap_err(),
            WireError::Malformed
        );
    }

    #[test]
    fn corrupted_byte_fails_checksum() {
        let src_ip = Ipv4Addr::new(10, 0, 0, 1);
        let dst_ip = Ipv4Addr::new(10, 0, 0, 2);
        let seg = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 1000,
            mss: Some(1460),
            payload: Bytes::new(),
        };
        let ip = Ipv4Packet {
            src: src_ip,
            dst: dst_ip,
            protocol: IpProtocol::Tcp,
            ttl: 64,
            ident: 0,
            payload: seg.emit(src_ip, dst_ip),
        };
        let eth = EthernetFrame {
            dst: MacAddr([0; 6]),
            src: MacAddr([1; 6]),
            ethertype: EtherType::Ipv4,
            payload: ip.emit(),
        };
        let mut bytes = eth.emit().to_vec();
        // Corrupt a byte inside the TCP header (after 14 eth + 20 ip).
        let idx = 14 + 20 + 4;
        bytes[idx] ^= 0xFF;
        assert!(ParsedPacket::parse(&bytes).is_err());
    }
}
