//! TCP segment emission and parsing, including the MSS option and the
//! pseudo-header checksum.

use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;
use std::net::Ipv4Addr;
use std::ops::BitOr;

use super::checksum;
use super::WireError;

/// Length of the option-less TCP header.
pub const HEADER_LEN: usize = 20;

/// TCP control flags as a bit set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// No flags.
    pub const EMPTY: TcpFlags = TcpFlags(0);
    /// FIN.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK.
    pub const ACK: TcpFlags = TcpFlags(0x10);

    /// Whether every flag in `other` is set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether any flag in `other` is set in `self`.
    pub fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }
}

impl BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.contains(TcpFlags::SYN) {
            parts.push("SYN");
        }
        if self.contains(TcpFlags::ACK) {
            parts.push("ACK");
        }
        if self.contains(TcpFlags::FIN) {
            parts.push("FIN");
        }
        if self.contains(TcpFlags::RST) {
            parts.push("RST");
        }
        if self.contains(TcpFlags::PSH) {
            parts.push("PSH");
        }
        if parts.is_empty() {
            parts.push(".");
        }
        write!(f, "{}", parts.join("|"))
    }
}

/// A TCP segment.
#[derive(Debug, Clone)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number (meaningful when ACK is set).
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
    /// MSS option (emitted only on SYN segments, as real stacks do).
    pub mss: Option<u16>,
    /// Application payload.
    pub payload: Bytes,
}

impl TcpSegment {
    /// Serialize with a valid checksum over the given pseudo-header
    /// addresses.
    pub fn emit(&self, src_ip: Ipv4Addr, dst_ip: Ipv4Addr) -> Bytes {
        let opt_len = if self.mss.is_some() { 4 } else { 0 };
        let header_len = HEADER_LEN + opt_len;
        let total = header_len + self.payload.len();
        let mut buf = BytesMut::with_capacity(total);
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u32(self.seq);
        buf.put_u32(self.ack);
        buf.put_u8(((header_len / 4) as u8) << 4);
        buf.put_u8(self.flags.0);
        buf.put_u16(self.window);
        buf.put_u16(0); // checksum placeholder
        buf.put_u16(0); // urgent pointer
        if let Some(mss) = self.mss {
            buf.put_u8(2); // kind: MSS
            buf.put_u8(4); // length
            buf.put_u16(mss);
        }
        buf.put_slice(&self.payload);
        let mut acc = checksum::pseudo_header(src_ip, dst_ip, 6, total);
        acc = checksum::sum(acc, &buf);
        let c = checksum::finish(acc);
        buf[16..18].copy_from_slice(&c.to_be_bytes());
        buf.freeze()
    }

    /// Parse and verify the checksum against the pseudo-header.
    pub fn parse(data: &[u8], src_ip: Ipv4Addr, dst_ip: Ipv4Addr) -> Result<TcpSegment, WireError> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let data_offset = ((data[12] >> 4) as usize) * 4;
        if data_offset < HEADER_LEN || data.len() < data_offset {
            return Err(WireError::Malformed);
        }
        let mut acc = checksum::pseudo_header(src_ip, dst_ip, 6, data.len());
        acc = checksum::sum(acc, data);
        if !checksum::verify(acc) {
            return Err(WireError::BadChecksum);
        }
        let src_port = u16::from_be_bytes([data[0], data[1]]);
        let dst_port = u16::from_be_bytes([data[2], data[3]]);
        let seq = u32::from_be_bytes([data[4], data[5], data[6], data[7]]);
        let ack = u32::from_be_bytes([data[8], data[9], data[10], data[11]]);
        let flags = TcpFlags(data[13]);
        let window = u16::from_be_bytes([data[14], data[15]]);
        let mut mss = None;
        let mut opts = &data[HEADER_LEN..data_offset];
        while !opts.is_empty() {
            match opts[0] {
                0 => break,             // end of options
                1 => opts = &opts[1..], // NOP
                2 => {
                    if opts.len() < 4 || opts[1] != 4 {
                        return Err(WireError::Malformed);
                    }
                    mss = Some(u16::from_be_bytes([opts[2], opts[3]]));
                    opts = &opts[4..];
                }
                _ => {
                    // Unknown option: skip by its length byte.
                    if opts.len() < 2 {
                        return Err(WireError::Malformed);
                    }
                    let l = opts[1] as usize;
                    if l < 2 || opts.len() < l {
                        return Err(WireError::Malformed);
                    }
                    opts = &opts[l..];
                }
            }
        }
        Ok(TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
            mss,
            payload: Bytes::copy_from_slice(&data[data_offset..]),
        })
    }

    /// Sequence-number footprint of this segment (payload + SYN/FIN).
    pub fn seq_len(&self) -> u32 {
        let mut len = self.payload.len() as u32;
        if self.flags.contains(TcpFlags::SYN) {
            len += 1;
        }
        if self.flags.contains(TcpFlags::FIN) {
            len += 1;
        }
        len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 2);
    const B: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 10);

    fn syn() -> TcpSegment {
        TcpSegment {
            src_port: 50000,
            dst_port: 80,
            seq: 0xDEADBEEF,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 29200,
            mss: Some(1460),
            payload: Bytes::new(),
        }
    }

    #[test]
    fn roundtrip_with_mss() {
        let bytes = syn().emit(A, B);
        assert_eq!(bytes.len(), 24);
        let seg = TcpSegment::parse(&bytes, A, B).unwrap();
        assert_eq!(seg.mss, Some(1460));
        assert_eq!(seg.seq, 0xDEADBEEF);
        assert!(seg.flags.contains(TcpFlags::SYN));
        assert_eq!(seg.seq_len(), 1);
    }

    #[test]
    fn roundtrip_with_payload() {
        let seg = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 100,
            ack: 200,
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 1000,
            mss: None,
            payload: Bytes::from_static(b"abcdef"),
        };
        let bytes = seg.emit(A, B);
        let out = TcpSegment::parse(&bytes, A, B).unwrap();
        assert_eq!(&out.payload[..], b"abcdef");
        assert_eq!(out.seq_len(), 6);
    }

    #[test]
    fn checksum_ties_to_addresses() {
        // Parsing with the wrong pseudo-header addresses must fail: this is
        // what catches misdelivered packets.
        let bytes = syn().emit(A, B);
        let wrong = Ipv4Addr::new(10, 0, 0, 99);
        assert_eq!(
            TcpSegment::parse(&bytes, A, wrong).unwrap_err(),
            WireError::BadChecksum
        );
    }

    #[test]
    fn fin_consumes_sequence_space() {
        let seg = TcpSegment {
            flags: TcpFlags::FIN | TcpFlags::ACK,
            ..syn()
        };
        // A bare FIN consumes one sequence number.
        assert_eq!(seg.seq_len(), 1);
        let synfin = TcpSegment {
            flags: TcpFlags::SYN | TcpFlags::FIN,
            ..syn()
        };
        // SYN and FIN each consume one (not a legal segment, but seq_len is
        // pure arithmetic).
        assert_eq!(synfin.seq_len(), 2);
    }

    #[test]
    fn flags_display() {
        assert_eq!(format!("{}", TcpFlags::SYN | TcpFlags::ACK), "SYN|ACK");
        assert_eq!(format!("{}", TcpFlags::EMPTY), ".");
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            TcpSegment::parse(&[0u8; 10], A, B).unwrap_err(),
            WireError::Truncated
        );
    }
}
