//! Ethernet II framing.

use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;

use super::WireError;

/// Length of the Ethernet II header.
pub const HEADER_LEN: usize = 14;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// Locally-administered unicast address derived from a small host
    /// index, in the style of smoltcp's examples (`02-00-00-00-00-XX`).
    pub const fn local(index: u8) -> MacAddr {
        MacAddr([0x02, 0, 0, 0, 0, index])
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Whether the group bit (multicast/broadcast) is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// The 16-bit ethertype field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EtherType {
    /// 0x0800.
    Ipv4,
    /// Anything else (carried verbatim).
    Other(u16),
}

impl EtherType {
    /// Numeric value.
    pub fn value(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Other(v) => v,
        }
    }

    /// From the numeric value.
    pub fn from_value(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II frame (no FCS; the simulator models corruption at the
/// payload level and the upper-layer checksums catch it).
#[derive(Debug, Clone)]
pub struct EthernetFrame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Ethertype of the payload.
    pub ethertype: EtherType,
    /// Layer-3 payload.
    pub payload: Bytes,
}

impl EthernetFrame {
    /// Serialize to raw bytes.
    pub fn emit(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_LEN + self.payload.len());
        buf.put_slice(&self.dst.0);
        buf.put_slice(&self.src.0);
        buf.put_u16(self.ethertype.value());
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parse from raw bytes.
    pub fn parse(data: &[u8]) -> Result<EthernetFrame, WireError> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        let ethertype = EtherType::from_value(u16::from_be_bytes([data[12], data[13]]));
        Ok(EthernetFrame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            payload: Bytes::copy_from_slice(&data[HEADER_LEN..]),
        })
    }

    /// Total frame length on the wire.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let f = EthernetFrame {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            ethertype: EtherType::Ipv4,
            payload: Bytes::from_static(b"hello"),
        };
        let bytes = f.emit();
        assert_eq!(bytes.len(), 19);
        let g = EthernetFrame::parse(&bytes).unwrap();
        assert_eq!(g.dst, MacAddr::local(1));
        assert_eq!(g.src, MacAddr::local(2));
        assert_eq!(g.ethertype, EtherType::Ipv4);
        assert_eq!(&g.payload[..], b"hello");
    }

    #[test]
    fn too_short_is_truncated() {
        assert_eq!(
            EthernetFrame::parse(&[0u8; 13]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn mac_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::local(3).is_multicast());
        assert_eq!(format!("{}", MacAddr::local(0x0a)), "02:00:00:00:00:0a");
    }

    #[test]
    fn unknown_ethertype_preserved() {
        assert_eq!(EtherType::from_value(0x86DD).value(), 0x86DD);
    }
}
