//! Pluggable per-direction link dynamics: time-varying service rates and
//! queue disciplines.
//!
//! Every link direction carries a [`LinkDynamics`]: a [`RateSchedule`]
//! describing how the line rate evolves over virtual time (the
//! Lübben–Fidler time-varying-service setting), and a [`QueueDiscipline`]
//! deciding which frames the queue admits (deep drop-tail "bufferbloat"
//! versus a CoDel-style AQM). The defaults reproduce the historical
//! static link bit-for-bit:
//!
//! * [`RateSchedule::Static`] evaluates to the spec's `rate_bps`
//!   unchanged, so the serialization expression is the exact one the
//!   fixed-rate engine computed.
//! * [`QueueDiscipline::DropTail`] adds no admission check beyond the
//!   byte bound that has always existed.
//!
//! Rates are evaluated **lazily at the instant serialization starts** —
//! there are no scheduled rate-change events, so the timer wheel's event
//! population (and therefore `(time, seq)` order) is untouched by a
//! schedule until a frame actually observes it. The CoDel law is fully
//! deterministic (no RNG): it derives its drop decisions from the
//! would-be queueing delay of each arriving frame.

use crate::link::LinkSpec;
use crate::time::{SimDuration, SimTime};

/// How a direction's service rate evolves over virtual time.
///
/// The schedule maps `(instant, base rate)` to the rate in force at that
/// instant; the base rate is the direction's [`LinkSpec::rate_bps`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum RateSchedule {
    /// The spec rate at every instant — bit-identical to the fixed-rate
    /// path.
    #[default]
    Static,
    /// Piecewise-constant: `(from, rate_bps)` change-points in strictly
    /// increasing time order. Before the first change-point the base
    /// rate applies; from each change-point on, its rate applies.
    Steps(Vec<(SimTime, u64)>),
    /// Periodic on-off cross-traffic: within every `period`, the first
    /// `on` of it serves at `on_bps` (the residual rate left over by a
    /// competing burst), the rest at the base rate.
    OnOff {
        /// Cycle length.
        period: SimDuration,
        /// Leading span of each cycle served at `on_bps`.
        on: SimDuration,
        /// Rate in force during the `on` span.
        on_bps: u64,
    },
}

impl RateSchedule {
    /// The rate in force at `t` given the direction's base rate.
    pub fn rate_at(&self, t: SimTime, base_bps: u64) -> u64 {
        match self {
            RateSchedule::Static => base_bps,
            RateSchedule::Steps(steps) => steps
                .iter()
                .take_while(|(from, _)| *from <= t)
                .last()
                .map(|(_, bps)| *bps)
                .unwrap_or(base_bps),
            RateSchedule::OnOff { period, on, on_bps } => {
                let phase = t.as_nanos() % period.as_nanos();
                if phase < on.as_nanos() {
                    *on_bps
                } else {
                    base_bps
                }
            }
        }
    }

    /// The largest rate the schedule can ever yield (used to bound byte
    /// conservation: no window can deliver more than `max_rate × span`
    /// plus one in-flight frame).
    pub fn max_rate(&self, base_bps: u64) -> u64 {
        match self {
            RateSchedule::Static => base_bps,
            RateSchedule::Steps(steps) => {
                steps.iter().map(|(_, bps)| *bps).fold(base_bps, u64::max)
            }
            RateSchedule::OnOff { on_bps, .. } => base_bps.max(*on_bps),
        }
    }

    /// `true` for the schedule that never deviates from the base rate.
    pub fn is_static(&self) -> bool {
        matches!(self, RateSchedule::Static)
    }

    /// Check the schedule's documented preconditions: every rate
    /// positive, change-points strictly increasing, and a positive
    /// period containing its `on` span.
    pub fn validate(&self) -> Result<(), &'static str> {
        match self {
            RateSchedule::Static => Ok(()),
            RateSchedule::Steps(steps) => {
                for w in steps.windows(2) {
                    if w[1].0 <= w[0].0 {
                        return Err("rate schedule steps must be strictly increasing in time");
                    }
                }
                if steps.iter().any(|(_, bps)| *bps == 0) {
                    return Err("rate schedule rates must be positive");
                }
                Ok(())
            }
            RateSchedule::OnOff { period, on, on_bps } => {
                if *period == SimDuration::ZERO {
                    return Err("on-off period must be positive");
                }
                if on > period {
                    return Err("on-off 'on' span must not exceed the period");
                }
                if *on_bps == 0 {
                    return Err("on-off rate must be positive");
                }
                Ok(())
            }
        }
    }
}

/// Which frames a direction's queue admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueDiscipline {
    /// Admit until the byte bound, then drop — the historical behaviour.
    /// With a deep [`LinkSpec::queue_limit_bytes`] on a slow link this
    /// *is* bufferbloat: seconds of standing queue and no signal.
    #[default]
    DropTail,
    /// CoDel-style active queue management (RFC 8289 shape): once the
    /// queueing delay has stayed above `target` for a full `interval`,
    /// drop, then keep dropping with `interval/√count` spacing until the
    /// delay recovers. Deterministic — no RNG stream is consumed.
    CoDel {
        /// Acceptable standing queueing delay (RFC 8289 suggests 5 ms).
        target: SimDuration,
        /// Sliding window over which the delay must exceed `target`
        /// before the first drop (RFC 8289 suggests 100 ms).
        interval: SimDuration,
    },
}

impl QueueDiscipline {
    /// A CoDel with the RFC 8289 recommended constants.
    pub fn codel() -> QueueDiscipline {
        QueueDiscipline::CoDel {
            target: SimDuration::from_millis(5),
            interval: SimDuration::from_millis(100),
        }
    }

    /// `true` for plain drop-tail.
    pub fn is_drop_tail(&self) -> bool {
        matches!(self, QueueDiscipline::DropTail)
    }
}

/// Deterministic CoDel controller state for one direction.
///
/// The classic algorithm measures sojourn at dequeue; this engine's
/// queue is virtual (a byte gauge plus `busy_until`), so the controller
/// runs at admission on the *would-be* queueing delay
/// `busy_until − now` — the exact time the frame would wait before its
/// serialization starts, known in advance because the link is
/// work-conserving.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CoDelState {
    /// When the delay first rose above target (None while below).
    first_above: Option<SimTime>,
    /// Whether the controller is in its dropping phase.
    dropping: bool,
    /// Next scheduled drop while dropping.
    drop_next: SimTime,
    /// Drops in the current dropping phase (controls the √-law spacing).
    count: u32,
}

impl CoDelState {
    /// Decide whether the frame arriving at `now` that would wait
    /// `delay` in queue should be dropped.
    pub(crate) fn should_drop(
        &mut self,
        now: SimTime,
        delay: SimDuration,
        target: SimDuration,
        interval: SimDuration,
    ) -> bool {
        if delay < target {
            self.first_above = None;
            self.dropping = false;
            return false;
        }
        let first_above = match self.first_above {
            None => {
                self.first_above = Some(now + interval);
                return false;
            }
            Some(t) => t,
        };
        if now < first_above {
            return false;
        }
        if !self.dropping {
            self.dropping = true;
            self.count = 1;
            self.drop_next = now + interval;
            return true;
        }
        if now >= self.drop_next {
            self.count += 1;
            let spacing = interval.as_nanos() as f64 / (self.count as f64).sqrt();
            self.drop_next = now + SimDuration::from_nanos(spacing as u64);
            return true;
        }
        false
    }
}

/// The pluggable behaviour of one link direction: rate over time plus
/// queue discipline. [`LinkDynamics::default`] is exactly the historical
/// static drop-tail link.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinkDynamics {
    /// Service-rate evolution.
    pub schedule: RateSchedule,
    /// Queue admission policy.
    pub discipline: QueueDiscipline,
}

impl LinkDynamics {
    /// The static drop-tail dynamics (the default).
    pub fn stat() -> LinkDynamics {
        LinkDynamics::default()
    }

    /// Dynamics with the given schedule over a drop-tail queue.
    pub fn scheduled(schedule: RateSchedule) -> LinkDynamics {
        LinkDynamics {
            schedule,
            discipline: QueueDiscipline::DropTail,
        }
    }

    /// Drop-tail dynamics replaced by an RFC 8289 CoDel.
    pub fn codel() -> LinkDynamics {
        LinkDynamics {
            schedule: RateSchedule::Static,
            discipline: QueueDiscipline::codel(),
        }
    }

    /// `true` when the dynamics change nothing relative to the
    /// historical static link (the bit-parity gate).
    pub fn is_static(&self) -> bool {
        self.schedule.is_static() && self.discipline.is_drop_tail()
    }

    /// Check both components' preconditions.
    pub fn validate(&self) -> Result<(), &'static str> {
        self.schedule.validate()?;
        if let QueueDiscipline::CoDel { target, interval } = self.discipline {
            if target == SimDuration::ZERO || interval == SimDuration::ZERO {
                return Err("codel target and interval must be positive");
            }
        }
        Ok(())
    }
}

/// Per-link shape: optional per-direction spec overrides (asymmetric
/// rates) plus per-direction dynamics.
///
/// "Down" is the direction transmitted by the link's primary host (for
/// the testbed's server access link: server → switch → clients), "up"
/// the reverse. `LinkShape::default()` installs nothing and keeps every
/// run bit-identical to the unshaped engine.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinkShape {
    /// Replace the downstream direction's spec (rate, queue bound, …).
    pub down_spec: Option<LinkSpec>,
    /// Replace the upstream direction's spec.
    pub up_spec: Option<LinkSpec>,
    /// Downstream dynamics.
    pub down: LinkDynamics,
    /// Upstream dynamics.
    pub up: LinkDynamics,
}

impl LinkShape {
    /// `true` when the shape overrides nothing.
    pub fn is_static(&self) -> bool {
        self.down_spec.is_none()
            && self.up_spec.is_none()
            && self.down.is_static()
            && self.up.is_static()
    }

    /// Apply the same dynamics to both directions.
    pub fn symmetric(dynamics: LinkDynamics) -> LinkShape {
        LinkShape {
            down: dynamics.clone(),
            up: dynamics,
            ..LinkShape::default()
        }
    }

    /// Validate the overridden specs and both directions' dynamics.
    pub fn validate(&self) -> Result<(), &'static str> {
        if let Some(spec) = &self.down_spec {
            spec.validate()?;
        }
        if let Some(spec) = &self.up_spec {
            spec.validate()?;
        }
        self.down.validate()?;
        self.up.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_schedule_is_identity() {
        let s = RateSchedule::Static;
        for t in [0, 1, 1_000_000_000] {
            assert_eq!(s.rate_at(SimTime::from_nanos(t), 42_000), 42_000);
        }
        assert!(s.is_static());
        assert_eq!(s.max_rate(42_000), 42_000);
    }

    #[test]
    fn steps_apply_from_their_change_point() {
        let s = RateSchedule::Steps(vec![
            (SimTime::from_secs(1), 10_000),
            (SimTime::from_secs(2), 90_000),
        ]);
        assert_eq!(s.rate_at(SimTime::ZERO, 50_000), 50_000);
        assert_eq!(s.rate_at(SimTime::from_millis(999), 50_000), 50_000);
        assert_eq!(s.rate_at(SimTime::from_secs(1), 50_000), 10_000);
        assert_eq!(s.rate_at(SimTime::from_millis(1_500), 50_000), 10_000);
        assert_eq!(s.rate_at(SimTime::from_secs(2), 50_000), 90_000);
        assert_eq!(s.max_rate(50_000), 90_000);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn on_off_cycles_by_phase() {
        let s = RateSchedule::OnOff {
            period: SimDuration::from_millis(100),
            on: SimDuration::from_millis(25),
            on_bps: 1_000,
        };
        assert_eq!(s.rate_at(SimTime::ZERO, 8_000), 1_000);
        assert_eq!(s.rate_at(SimTime::from_millis(24), 8_000), 1_000);
        assert_eq!(s.rate_at(SimTime::from_millis(25), 8_000), 8_000);
        assert_eq!(s.rate_at(SimTime::from_millis(99), 8_000), 8_000);
        // Next cycle wraps back into the on phase.
        assert_eq!(s.rate_at(SimTime::from_millis(100), 8_000), 1_000);
        assert_eq!(s.max_rate(8_000), 8_000);
    }

    #[test]
    fn schedules_validate_their_preconditions() {
        let unsorted = RateSchedule::Steps(vec![
            (SimTime::from_secs(2), 10),
            (SimTime::from_secs(1), 20),
        ]);
        assert!(unsorted.validate().is_err());
        let zero_rate = RateSchedule::Steps(vec![(SimTime::from_secs(1), 0)]);
        assert!(zero_rate.validate().is_err());
        let bad_period = RateSchedule::OnOff {
            period: SimDuration::ZERO,
            on: SimDuration::ZERO,
            on_bps: 1,
        };
        assert!(bad_period.validate().is_err());
        let on_exceeds = RateSchedule::OnOff {
            period: SimDuration::from_millis(10),
            on: SimDuration::from_millis(20),
            on_bps: 1,
        };
        assert!(on_exceeds.validate().is_err());
    }

    #[test]
    fn codel_waits_an_interval_before_dropping() {
        let mut st = CoDelState::default();
        let target = SimDuration::from_millis(5);
        let interval = SimDuration::from_millis(100);
        let high = SimDuration::from_millis(50);
        // Below target: never drops, state resets.
        assert!(!st.should_drop(SimTime::from_millis(0), SimDuration::ZERO, target, interval));
        // Above target but not yet for a full interval.
        assert!(!st.should_drop(SimTime::from_millis(10), high, target, interval));
        assert!(!st.should_drop(SimTime::from_millis(60), high, target, interval));
        // A full interval above target: first drop.
        assert!(st.should_drop(SimTime::from_millis(115), high, target, interval));
        // Still dropping, but spaced by the control law.
        assert!(!st.should_drop(SimTime::from_millis(120), high, target, interval));
        assert!(st.should_drop(SimTime::from_millis(216), high, target, interval));
        // Delay recovers: dropping phase ends immediately.
        assert!(!st.should_drop(
            SimTime::from_millis(217),
            SimDuration::ZERO,
            target,
            interval
        ));
        assert!(!st.should_drop(SimTime::from_millis(218), high, target, interval));
    }

    #[test]
    fn codel_drop_spacing_tightens_with_count() {
        let mut st = CoDelState::default();
        let target = SimDuration::from_millis(5);
        let interval = SimDuration::from_millis(100);
        let high = SimDuration::from_millis(50);
        let mut drops = Vec::new();
        for ms in 0..2_000u64 {
            if st.should_drop(SimTime::from_millis(ms), high, target, interval) {
                drops.push(ms);
            }
        }
        assert!(
            drops.len() >= 4,
            "sustained delay keeps dropping: {drops:?}"
        );
        let gaps: Vec<u64> = drops.windows(2).map(|w| w[1] - w[0]).collect();
        for pair in gaps.windows(2) {
            assert!(pair[1] <= pair[0], "spacing must tighten: {gaps:?}");
        }
    }

    #[test]
    fn default_dynamics_are_static() {
        assert!(LinkDynamics::default().is_static());
        assert!(LinkDynamics::stat().is_static());
        assert!(!LinkDynamics::codel().is_static());
        assert!(!LinkDynamics::scheduled(RateSchedule::OnOff {
            period: SimDuration::from_millis(10),
            on: SimDuration::from_millis(5),
            on_bps: 1,
        })
        .is_static());
        assert!(LinkDynamics::default().validate().is_ok());
    }

    #[test]
    fn shape_static_and_validation() {
        assert!(LinkShape::default().is_static());
        let shaped = LinkShape {
            down_spec: Some(LinkSpec::fast_ethernet()),
            ..LinkShape::default()
        };
        assert!(!shaped.is_static());
        assert!(shaped.validate().is_ok());
        let bad = LinkShape {
            up_spec: Some(LinkSpec {
                rate_bps: 0,
                ..LinkSpec::fast_ethernet()
            }),
            ..LinkShape::default()
        };
        assert!(bad.validate().is_err());
        assert!(!LinkShape::symmetric(LinkDynamics::codel()).is_static());
        assert!(LinkShape::symmetric(LinkDynamics::default()).is_static());
    }
}
