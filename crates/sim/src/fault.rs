//! Link fault injection, in the spirit of smoltcp's example options
//! (`--drop-chance`, `--corrupt-chance`, …).
//!
//! The paper's experiments are explicitly run on a clean network
//! ("we also ensure that the network was free of cross traffic, packet
//! loss, and retransmissions"), so the default injector is a no-op.
//! The knobs exist for robustness testing of the TCP substrate and for
//! extension experiments.

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::time::SimDuration;

/// What the injector decided to do with one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver unchanged.
    Deliver(Bytes),
    /// Deliver a corrupted copy (one octet mutated, like smoltcp).
    DeliverCorrupted(Bytes),
    /// Deliver twice.
    Duplicate(Bytes),
    /// Drop silently.
    Drop,
}

/// Per-direction fault configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSpec {
    /// Probability ∈ \[0,1\] of dropping a frame.
    pub drop_chance: f64,
    /// Probability ∈ \[0,1\] of mutating one octet.
    pub corrupt_chance: f64,
    /// Probability ∈ \[0,1\] of duplicating a frame.
    pub duplicate_chance: f64,
    /// Frames larger than this are dropped (0 = no limit), mirroring
    /// smoltcp's `--size-limit`.
    pub size_limit: usize,
}

impl FaultSpec {
    /// A clean link: everything delivers.
    pub const CLEAN: FaultSpec = FaultSpec {
        drop_chance: 0.0,
        corrupt_chance: 0.0,
        duplicate_chance: 0.0,
        size_limit: 0,
    };

    /// Whether this spec can ever alter a frame.
    pub fn is_clean(&self) -> bool {
        self.drop_chance == 0.0
            && self.corrupt_chance == 0.0
            && self.duplicate_chance == 0.0
            && self.size_limit == 0
    }

    /// A spec that only drops, at `rate` ∈ \[0,1\].
    pub fn loss(rate: f64) -> FaultSpec {
        FaultSpec {
            drop_chance: rate,
            ..FaultSpec::CLEAN
        }
    }
}

/// End-to-end network impairment for a testbed: per-direction fault
/// specs plus a netem-style uniform jitter bound on the server's
/// egress delay (`tc qdisc … netem delay 50ms <jitter>`).
///
/// "Up" is the client→server direction, "down" server→client, matching
/// where the paper's netem delay sits. The default is the paper's
/// clean network: no loss, no corruption, no duplication, no jitter.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Impairment {
    /// Faults on the client→server direction.
    pub up: FaultSpec,
    /// Faults on the server→client direction.
    pub down: FaultSpec,
    /// Uniform jitter bound added to the server-egress one-way delay:
    /// each frame draws an extra delay in `[0, jitter]`.
    pub jitter: SimDuration,
}

impl Impairment {
    /// The paper's clean network (§3): no impairment at all.
    pub const NONE: Impairment = Impairment {
        up: FaultSpec::CLEAN,
        down: FaultSpec::CLEAN,
        jitter: SimDuration::ZERO,
    };

    /// Symmetric random loss at `rate` ∈ \[0,1\] in both directions.
    pub fn loss(rate: f64) -> Impairment {
        Impairment {
            up: FaultSpec::loss(rate),
            down: FaultSpec::loss(rate),
            ..Impairment::NONE
        }
    }

    /// Replace the jitter bound.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Impairment {
        self.jitter = jitter;
        self
    }

    /// Whether this impairment can ever perturb the network. A clean
    /// impairment must leave every simulation bit-identical to one that
    /// never heard of impairments.
    pub fn is_clean(&self) -> bool {
        self.up.is_clean() && self.down.is_clean() && self.jitter == SimDuration::ZERO
    }
}

/// Stateful injector: a spec plus its RNG stream.
#[derive(Debug)]
pub struct FaultInjector {
    spec: FaultSpec,
    rng: SmallRng,
    drops: u64,
    corruptions: u64,
    duplicates: u64,
}

impl FaultInjector {
    /// Build an injector from a spec and a dedicated RNG stream.
    pub fn new(spec: FaultSpec, rng: SmallRng) -> Self {
        FaultInjector {
            spec,
            rng,
            drops: 0,
            corruptions: 0,
            duplicates: 0,
        }
    }

    /// Decide the fate of one frame.
    pub fn apply(&mut self, frame: Bytes) -> FaultAction {
        if self.spec.is_clean() {
            return FaultAction::Deliver(frame);
        }
        if self.spec.size_limit > 0 && frame.len() > self.spec.size_limit {
            self.drops += 1;
            return FaultAction::Drop;
        }
        if self.spec.drop_chance > 0.0 && self.rng.gen_bool(self.spec.drop_chance.min(1.0)) {
            self.drops += 1;
            return FaultAction::Drop;
        }
        // An empty frame has no octet to mutate: skip the corruption
        // draw entirely rather than counting a corruption that never
        // happened and mislabelling the delivery.
        if !frame.is_empty()
            && self.spec.corrupt_chance > 0.0
            && self.rng.gen_bool(self.spec.corrupt_chance.min(1.0))
        {
            self.corruptions += 1;
            let mut data = frame.to_vec();
            let idx = self.rng.gen_range(0..data.len());
            // Guaranteed-visible mutation.
            data[idx] ^= self.rng.gen_range(1..=255u8);
            return FaultAction::DeliverCorrupted(Bytes::from(data));
        }
        if self.spec.duplicate_chance > 0.0
            && self.rng.gen_bool(self.spec.duplicate_chance.min(1.0))
        {
            self.duplicates += 1;
            return FaultAction::Duplicate(frame);
        }
        FaultAction::Deliver(frame)
    }

    /// (drops, corruptions, duplicates) so far.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.drops, self.corruptions, self.duplicates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    fn frame() -> Bytes {
        Bytes::from_static(&[1, 2, 3, 4, 5, 6, 7, 8])
    }

    #[test]
    fn clean_spec_never_touches_frames() {
        let mut inj = FaultInjector::new(FaultSpec::CLEAN, rng::stream(1, "t"));
        for _ in 0..1000 {
            assert_eq!(inj.apply(frame()), FaultAction::Deliver(frame()));
        }
        assert_eq!(inj.counters(), (0, 0, 0));
    }

    #[test]
    fn always_drop() {
        let spec = FaultSpec {
            drop_chance: 1.0,
            ..FaultSpec::CLEAN
        };
        let mut inj = FaultInjector::new(spec, rng::stream(1, "t"));
        assert_eq!(inj.apply(frame()), FaultAction::Drop);
        assert_eq!(inj.counters().0, 1);
    }

    #[test]
    fn corruption_changes_exactly_one_octet() {
        let spec = FaultSpec {
            corrupt_chance: 1.0,
            ..FaultSpec::CLEAN
        };
        let mut inj = FaultInjector::new(spec, rng::stream(2, "t"));
        match inj.apply(frame()) {
            FaultAction::DeliverCorrupted(data) => {
                let orig = frame();
                let diffs = data.iter().zip(orig.iter()).filter(|(a, b)| a != b).count();
                assert_eq!(diffs, 1);
                assert_eq!(data.len(), orig.len());
            }
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn size_limit_drops_large_frames() {
        let spec = FaultSpec {
            size_limit: 4,
            ..FaultSpec::CLEAN
        };
        let mut inj = FaultInjector::new(spec, rng::stream(3, "t"));
        assert_eq!(inj.apply(frame()), FaultAction::Drop);
        assert_eq!(
            inj.apply(Bytes::from_static(&[1, 2])),
            FaultAction::Deliver(Bytes::from_static(&[1, 2]))
        );
    }

    #[test]
    fn empty_frames_are_never_counted_as_corrupted() {
        let spec = FaultSpec {
            corrupt_chance: 1.0,
            ..FaultSpec::CLEAN
        };
        let mut inj = FaultInjector::new(spec, rng::stream(5, "t"));
        for _ in 0..100 {
            assert_eq!(
                inj.apply(Bytes::new()),
                FaultAction::Deliver(Bytes::new()),
                "an empty frame cannot be corrupted"
            );
        }
        assert_eq!(inj.counters(), (0, 0, 0));
        // Non-empty frames still corrupt.
        assert!(matches!(
            inj.apply(frame()),
            FaultAction::DeliverCorrupted(_)
        ));
        assert_eq!(inj.counters().1, 1);
    }

    #[test]
    fn impairment_cleanliness_and_constructors() {
        assert!(Impairment::NONE.is_clean());
        assert!(Impairment::default().is_clean());
        let lossy = Impairment::loss(0.02);
        assert!(!lossy.is_clean());
        assert_eq!(lossy.up.drop_chance, 0.02);
        assert_eq!(lossy.down.drop_chance, 0.02);
        assert_eq!(lossy.up.corrupt_chance, 0.0);
        let jittered = Impairment::NONE.with_jitter(SimDuration::from_millis(2));
        assert!(!jittered.is_clean());
        assert!(jittered.up.is_clean() && jittered.down.is_clean());
    }

    #[test]
    fn drop_rate_is_statistically_plausible() {
        let spec = FaultSpec {
            drop_chance: 0.25,
            ..FaultSpec::CLEAN
        };
        let mut inj = FaultInjector::new(spec, rng::stream(4, "t"));
        let n = 10_000;
        let mut drops = 0;
        for _ in 0..n {
            if inj.apply(frame()) == FaultAction::Drop {
                drops += 1;
            }
        }
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
