//! Link fault injection, in the spirit of smoltcp's example options
//! (`--drop-chance`, `--corrupt-chance`, …).
//!
//! The paper's experiments are explicitly run on a clean network
//! ("we also ensure that the network was free of cross traffic, packet
//! loss, and retransmissions"), so the default injector is a no-op.
//! The knobs exist for robustness testing of the TCP substrate and for
//! extension experiments.

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::Rng;

/// What the injector decided to do with one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver unchanged.
    Deliver(Bytes),
    /// Deliver a corrupted copy (one octet mutated, like smoltcp).
    DeliverCorrupted(Bytes),
    /// Deliver twice.
    Duplicate(Bytes),
    /// Drop silently.
    Drop,
}

/// Per-direction fault configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultSpec {
    /// Probability ∈ \[0,1\] of dropping a frame.
    pub drop_chance: f64,
    /// Probability ∈ \[0,1\] of mutating one octet.
    pub corrupt_chance: f64,
    /// Probability ∈ \[0,1\] of duplicating a frame.
    pub duplicate_chance: f64,
    /// Frames larger than this are dropped (0 = no limit), mirroring
    /// smoltcp's `--size-limit`.
    pub size_limit: usize,
}

impl FaultSpec {
    /// A clean link: everything delivers.
    pub const CLEAN: FaultSpec = FaultSpec {
        drop_chance: 0.0,
        corrupt_chance: 0.0,
        duplicate_chance: 0.0,
        size_limit: 0,
    };

    /// Whether this spec can ever alter a frame.
    pub fn is_clean(&self) -> bool {
        self.drop_chance == 0.0
            && self.corrupt_chance == 0.0
            && self.duplicate_chance == 0.0
            && self.size_limit == 0
    }
}

/// Stateful injector: a spec plus its RNG stream.
#[derive(Debug)]
pub struct FaultInjector {
    spec: FaultSpec,
    rng: SmallRng,
    drops: u64,
    corruptions: u64,
    duplicates: u64,
}

impl FaultInjector {
    /// Build an injector from a spec and a dedicated RNG stream.
    pub fn new(spec: FaultSpec, rng: SmallRng) -> Self {
        FaultInjector {
            spec,
            rng,
            drops: 0,
            corruptions: 0,
            duplicates: 0,
        }
    }

    /// Decide the fate of one frame.
    pub fn apply(&mut self, frame: Bytes) -> FaultAction {
        if self.spec.is_clean() {
            return FaultAction::Deliver(frame);
        }
        if self.spec.size_limit > 0 && frame.len() > self.spec.size_limit {
            self.drops += 1;
            return FaultAction::Drop;
        }
        if self.spec.drop_chance > 0.0 && self.rng.gen_bool(self.spec.drop_chance.min(1.0)) {
            self.drops += 1;
            return FaultAction::Drop;
        }
        if self.spec.corrupt_chance > 0.0 && self.rng.gen_bool(self.spec.corrupt_chance.min(1.0)) {
            self.corruptions += 1;
            let mut data = frame.to_vec();
            if !data.is_empty() {
                let idx = self.rng.gen_range(0..data.len());
                // Guaranteed-visible mutation.
                data[idx] ^= self.rng.gen_range(1..=255u8);
            }
            return FaultAction::DeliverCorrupted(Bytes::from(data));
        }
        if self.spec.duplicate_chance > 0.0 && self.rng.gen_bool(self.spec.duplicate_chance.min(1.0))
        {
            self.duplicates += 1;
            return FaultAction::Duplicate(frame);
        }
        FaultAction::Deliver(frame)
    }

    /// (drops, corruptions, duplicates) so far.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.drops, self.corruptions, self.duplicates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    fn frame() -> Bytes {
        Bytes::from_static(&[1, 2, 3, 4, 5, 6, 7, 8])
    }

    #[test]
    fn clean_spec_never_touches_frames() {
        let mut inj = FaultInjector::new(FaultSpec::CLEAN, rng::stream(1, "t"));
        for _ in 0..1000 {
            assert_eq!(inj.apply(frame()), FaultAction::Deliver(frame()));
        }
        assert_eq!(inj.counters(), (0, 0, 0));
    }

    #[test]
    fn always_drop() {
        let spec = FaultSpec {
            drop_chance: 1.0,
            ..FaultSpec::CLEAN
        };
        let mut inj = FaultInjector::new(spec, rng::stream(1, "t"));
        assert_eq!(inj.apply(frame()), FaultAction::Drop);
        assert_eq!(inj.counters().0, 1);
    }

    #[test]
    fn corruption_changes_exactly_one_octet() {
        let spec = FaultSpec {
            corrupt_chance: 1.0,
            ..FaultSpec::CLEAN
        };
        let mut inj = FaultInjector::new(spec, rng::stream(2, "t"));
        match inj.apply(frame()) {
            FaultAction::DeliverCorrupted(data) => {
                let orig = frame();
                let diffs = data.iter().zip(orig.iter()).filter(|(a, b)| a != b).count();
                assert_eq!(diffs, 1);
                assert_eq!(data.len(), orig.len());
            }
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn size_limit_drops_large_frames() {
        let spec = FaultSpec {
            size_limit: 4,
            ..FaultSpec::CLEAN
        };
        let mut inj = FaultInjector::new(spec, rng::stream(3, "t"));
        assert_eq!(inj.apply(frame()), FaultAction::Drop);
        assert_eq!(
            inj.apply(Bytes::from_static(&[1, 2])),
            FaultAction::Deliver(Bytes::from_static(&[1, 2]))
        );
    }

    #[test]
    fn drop_rate_is_statistically_plausible() {
        let spec = FaultSpec {
            drop_chance: 0.25,
            ..FaultSpec::CLEAN
        };
        let mut inj = FaultInjector::new(spec, rng::stream(4, "t"));
        let n = 10_000;
        let mut drops = 0;
        for _ in 0..n {
            if inj.apply(frame()) == FaultAction::Drop {
                drops += 1;
            }
        }
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
