//! The event queue.
//!
//! Keyed by `(time, sequence)`. The monotonically increasing sequence
//! number breaks ties in insertion order, which makes the whole
//! simulation deterministic: two events scheduled for the same instant
//! are always delivered in the order they were scheduled.
//!
//! Two interchangeable scheduler implementations sit behind
//! [`EventQueue`]: the default hierarchical timer wheel
//! ([`crate::sched::TimerWheel`], `O(1)` insert) and the original
//! binary heap, kept as the executable specification. They produce
//! bit-identical pop orders — `tests/properties.rs` holds an
//! exhaustive equivalence proptest — and
//! [`EventQueue::reference_heap`] selects the heap for baselining and
//! differential testing.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use bytes::Bytes;

use crate::engine::{NodeId, PortNo};
use crate::link::{Dir, LinkId};
use crate::time::SimTime;

/// What happens when an event fires.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A frame finishes propagating and arrives at `(node, port)`.
    FrameDelivery {
        /// Receiving node.
        node: NodeId,
        /// Receiving interface on that node.
        port: PortNo,
        /// Raw Ethernet frame bytes.
        frame: Bytes,
    },
    /// A node timer fires with an application-chosen token.
    Timer {
        /// Node that armed the timer.
        node: NodeId,
        /// Opaque token chosen by the node when arming.
        token: u64,
    },
    /// A link direction finished serializing a frame of `bytes` length;
    /// used internally for queue accounting.
    LinkTxDone {
        /// The link in question.
        link: LinkId,
        /// Which direction of the full-duplex link.
        dir: Dir,
        /// Size of the frame leaving the queue.
        bytes: usize,
    },
    /// Deliver `Node::on_start` at simulation boot.
    Start {
        /// Node to start.
        node: NodeId,
    },
}

/// A scheduled event.
#[derive(Debug, Clone)]
pub struct Event {
    /// When the event fires.
    pub at: SimTime,
    /// FIFO tiebreaker among same-instant events.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Which scheduler backs an [`EventQueue`].
#[derive(Debug)]
enum QueueImpl {
    /// Hierarchical timer wheel — the production scheduler.
    Wheel(crate::sched::TimerWheel),
    /// The original `BinaryHeap` — the reference implementation, kept
    /// for differential testing and as the benchmark baseline.
    Heap(BinaryHeap<Event>),
}

/// Deterministic priority queue of simulation events.
#[derive(Debug)]
pub struct EventQueue {
    inner: QueueImpl,
    next_seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty queue backed by the timer wheel.
    pub fn new() -> Self {
        EventQueue {
            inner: QueueImpl::Wheel(crate::sched::TimerWheel::new()),
            next_seq: 0,
        }
    }

    /// An empty queue backed by the reference `BinaryHeap` scheduler.
    ///
    /// Pops in exactly the same order as [`EventQueue::new`]; exists so
    /// tests can check that claim and benchmarks can measure the gap.
    pub fn reference_heap() -> Self {
        EventQueue {
            inner: QueueImpl::Heap(BinaryHeap::new()),
            next_seq: 0,
        }
    }

    /// Schedule `kind` to fire at `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = Event { at, seq, kind };
        match &mut self.inner {
            QueueImpl::Wheel(w) => w.push(ev),
            QueueImpl::Heap(h) => h.push(ev),
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        match &mut self.inner {
            QueueImpl::Wheel(w) => w.pop(),
            QueueImpl::Heap(h) => h.pop(),
        }
    }

    /// When the next event would fire, if any.
    ///
    /// Takes `&mut self` because the wheel may cascade internally; the
    /// observable queue content is unchanged.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.inner {
            QueueImpl::Wheel(w) => w.peek_time(),
            QueueImpl::Heap(h) => h.peek().map(|e| e.at),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.inner {
            QueueImpl::Wheel(w) => w.len(),
            QueueImpl::Heap(h) => h.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: NodeId, token: u64) -> EventKind {
        EventKind::Timer { node, token }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), timer(0, 3));
        q.push(SimTime::from_millis(10), timer(0, 1));
        q.push(SimTime::from_millis(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for token in 0..100 {
            q.push(t, timer(0, token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::from_micros(7), timer(1, 0));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn wheel_and_heap_agree() {
        // A deterministic but irregular schedule spanning several wheel
        // levels, with interleaved pops. The exhaustive randomized
        // version of this check lives in `tests/properties.rs`.
        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::reference_heap();
        let mut x: u64 = 0x243F_6A88_85A3_08D3; // deterministic xorshift
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut last = 0u64;
        for i in 0..2_000u64 {
            // Mostly short hops, occasionally seconds ahead.
            let hop = match next() % 10 {
                0 => next() % 4_000_000_000,
                1..=3 => next() % 1_000_000,
                _ => next() % 10_000,
            };
            let at = SimTime::from_nanos(last + hop);
            wheel.push(at, timer(0, i));
            heap.push(at, timer(0, i));
            if next() % 3 == 0 {
                let (a, b) = (wheel.pop(), heap.pop());
                let a = a.expect("wheel empty while heap has events");
                let b = b.unwrap();
                assert_eq!((a.at, a.seq), (b.at, b.seq));
                last = last.max(a.at.as_nanos());
            }
        }
        loop {
            match (wheel.pop(), heap.pop()) {
                (None, None) => break,
                (a, b) => {
                    let a = a.expect("wheel drained early");
                    let b = b.expect("heap drained early");
                    assert_eq!((a.at, a.seq), (b.at, b.seq));
                }
            }
        }
    }
}
