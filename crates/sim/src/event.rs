//! The event queue.
//!
//! A binary heap keyed by `(time, sequence)`. The monotonically increasing
//! sequence number breaks ties in insertion order, which makes the whole
//! simulation deterministic: two events scheduled for the same instant are
//! always delivered in the order they were scheduled.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use bytes::Bytes;

use crate::engine::{NodeId, PortNo};
use crate::link::{Dir, LinkId};
use crate::time::SimTime;

/// What happens when an event fires.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A frame finishes propagating and arrives at `(node, port)`.
    FrameDelivery {
        /// Receiving node.
        node: NodeId,
        /// Receiving interface on that node.
        port: PortNo,
        /// Raw Ethernet frame bytes.
        frame: Bytes,
    },
    /// A node timer fires with an application-chosen token.
    Timer {
        /// Node that armed the timer.
        node: NodeId,
        /// Opaque token chosen by the node when arming.
        token: u64,
    },
    /// A link direction finished serializing a frame of `bytes` length;
    /// used internally for queue accounting.
    LinkTxDone {
        /// The link in question.
        link: LinkId,
        /// Which direction of the full-duplex link.
        dir: Dir,
        /// Size of the frame leaving the queue.
        bytes: usize,
    },
    /// Deliver `Node::on_start` at simulation boot.
    Start {
        /// Node to start.
        node: NodeId,
    },
}

/// A scheduled event.
#[derive(Debug, Clone)]
pub struct Event {
    /// When the event fires.
    pub at: SimTime,
    /// FIFO tiebreaker among same-instant events.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Deterministic priority queue of simulation events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` to fire at `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// When the next event would fire, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: NodeId, token: u64) -> EventKind {
        EventKind::Timer { node, token }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), timer(0, 3));
        q.push(SimTime::from_millis(10), timer(0, 1));
        q.push(SimTime::from_millis(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for token in 0..100 {
            q.push(t, timer(0, token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::from_micros(7), timer(1, 0));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
