//! libpcap file writer.
//!
//! Serializes a [`CaptureBuffer`] into the
//! classic libpcap format (magic `0xa1b2c3d4`, version 2.4, LINKTYPE_ETHERNET)
//! so traces from the simulator open directly in Wireshark/tcpdump — the
//! same artifact the paper's authors worked from.

use std::io::{self, Write};
use std::path::Path;

use crate::capture::CaptureBuffer;

/// libpcap magic for microsecond timestamps.
const MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_ETHERNET.
const LINKTYPE_EN10MB: u32 = 1;

/// Write the global libpcap header.
fn write_global_header<W: Write>(w: &mut W, snaplen: u32) -> io::Result<()> {
    w.write_all(&MAGIC.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?; // version major
    w.write_all(&4u16.to_le_bytes())?; // version minor
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&snaplen.to_le_bytes())?;
    w.write_all(&LINKTYPE_EN10MB.to_le_bytes())?;
    Ok(())
}

/// Stream `buffer` as a pcap byte stream into any writer.
///
/// Records are written straight from the capture's shared frame
/// buffers — no intermediate full-trace copy is materialized, so
/// exporting a capture costs one pass over the records regardless of
/// trace size.
pub fn write_to<W: Write>(buffer: &CaptureBuffer, w: &mut W) -> io::Result<()> {
    write_global_header(w, 65535)?;
    for rec in buffer.records() {
        let ts_ns = rec.ts.as_nanos();
        let ts_sec = (ts_ns / 1_000_000_000) as u32;
        let ts_usec = ((ts_ns % 1_000_000_000) / 1_000) as u32;
        let len = rec.frame.len() as u32;
        w.write_all(&ts_sec.to_le_bytes())?;
        w.write_all(&ts_usec.to_le_bytes())?;
        w.write_all(&len.to_le_bytes())?; // incl_len
        w.write_all(&len.to_le_bytes())?; // orig_len
        w.write_all(&rec.frame)?;
    }
    Ok(())
}

/// Serialize `buffer` as a pcap byte stream in memory.
pub fn to_bytes(buffer: &CaptureBuffer) -> Vec<u8> {
    let mut out = Vec::new();
    write_to(buffer, &mut out).expect("writing to Vec cannot fail");
    out
}

/// Write `buffer` to a `.pcap` file at `path`, streaming records
/// through a buffered writer instead of building the trace in memory.
pub fn write_file(buffer: &CaptureBuffer, path: &Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(file);
    write_to(buffer, &mut w)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{CaptureBuffer, CaptureDir};
    use crate::time::SimTime;
    use bytes::Bytes;

    fn sample_buffer() -> CaptureBuffer {
        let mut b = CaptureBuffer::new("test");
        b.record(
            SimTime::from_nanos(1_500_002_000),
            CaptureDir::Tx,
            Bytes::from_static(&[0xAA; 60]),
        );
        b.record(
            SimTime::from_millis(1600),
            CaptureDir::Rx,
            Bytes::from_static(&[0xBB; 100]),
        );
        b
    }

    #[test]
    fn global_header_layout() {
        let bytes = to_bytes(&CaptureBuffer::new("empty"));
        assert_eq!(bytes.len(), 24);
        assert_eq!(&bytes[0..4], &MAGIC.to_le_bytes());
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 2);
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), 4);
        assert_eq!(
            u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]),
            LINKTYPE_EN10MB
        );
    }

    #[test]
    fn record_headers_and_payloads() {
        let bytes = to_bytes(&sample_buffer());
        // 24 global + (16 + 60) + (16 + 100)
        assert_eq!(bytes.len(), 24 + 76 + 116);
        // First record header at offset 24.
        let r = &bytes[24..];
        let ts_sec = u32::from_le_bytes([r[0], r[1], r[2], r[3]]);
        let ts_usec = u32::from_le_bytes([r[4], r[5], r[6], r[7]]);
        let incl = u32::from_le_bytes([r[8], r[9], r[10], r[11]]);
        let orig = u32::from_le_bytes([r[12], r[13], r[14], r[15]]);
        assert_eq!(ts_sec, 1);
        assert_eq!(ts_usec, 500_002);
        assert_eq!(incl, 60);
        assert_eq!(orig, 60);
        assert_eq!(&r[16..20], &[0xAA; 4]);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("bnm_pcap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.pcap");
        write_file(&sample_buffer(), &path).unwrap();
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk, to_bytes(&sample_buffer()));
        std::fs::remove_file(&path).ok();
    }
}
