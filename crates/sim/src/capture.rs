//! Packet capture taps — the simulator's WinDump/tcpdump.
//!
//! A tap attaches to one endpoint of a link and records every frame the
//! endpoint transmits or receives, together with a timestamp. The
//! experiment harness derives its ground-truth network timestamps
//! (`tN_s`, `tN_r` in Eq. 1 of the paper) exclusively from these records,
//! by parsing the raw frame bytes with [`crate::wire`].
//!
//! Software capturers are themselves imperfect — the paper cites an
//! accuracy worse than 0.3 ms for software capture — so a tap can model
//! timestamping noise with a uniform ± jitter bound. The default is exact
//! timestamps.

use std::any::Any;

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::time::SimTime;

/// Identifies a capture tap within an [`crate::engine::Engine`].
pub type TapId = usize;

/// Direction of a captured frame relative to the tapped node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureDir {
    /// The tapped node transmitted this frame.
    Tx,
    /// The tapped node received this frame.
    Rx,
}

/// One captured frame.
#[derive(Debug, Clone)]
pub struct CaptureRecord {
    /// Capture timestamp (possibly jittered; see [`CaptureBuffer`]).
    pub ts: SimTime,
    /// Direction relative to the tapped node.
    pub dir: CaptureDir,
    /// Raw Ethernet frame bytes.
    pub frame: Bytes,
}

/// Timestamping-noise model for a tap.
#[derive(Debug)]
pub enum TimestampNoise {
    /// Exact virtual-time stamps.
    Exact,
    /// Uniform noise in `[0, bound_ns]` added to each stamp (capture
    /// stamps lag the wire event; they never lead it). Stamps are
    /// additionally clamped to be monotone per tap — a real capturer's
    /// clock never runs backwards between records.
    UniformLag {
        /// Upper bound of the lag, nanoseconds.
        bound_ns: u64,
        /// Dedicated RNG stream.
        rng: SmallRng,
    },
}

/// Streaming consumer for a tap: sees every record as it is stamped, in
/// capture order, instead of the tap retaining it.
///
/// With a sink installed the tap holds no frame past the `on_record`
/// call — the refcounted frame view drops as soon as the sink returns,
/// so pooled buffers recycle mid-run instead of accumulating until the
/// scenario ends. The sink observes exactly what a retaining tap would
/// have stored: the same noise-stamped timestamp (the noise RNG stream
/// and the monotonicity clamp are shared code), the same direction, the
/// same (snap-length-truncated) frame view. A run with a sink is
/// therefore bit-equivalent to a retained run followed by a replay of
/// `records()` — the parity the streaming pipeline relies on.
pub trait CaptureSink: std::fmt::Debug {
    /// Observe one stamped record. `frame` is only valid for the call.
    fn on_record(&mut self, ts: SimTime, dir: CaptureDir, frame: &Bytes);
    /// Downcast support for retrieving concrete sink state after a run.
    fn as_any(&self) -> &dyn Any;
    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A buffer of captured frames for one tap.
#[derive(Debug)]
pub struct CaptureBuffer {
    /// Human-readable tap name (e.g. `"client-nic"`).
    pub name: String,
    records: Vec<CaptureRecord>,
    noise: TimestampNoise,
    /// Last stamped timestamp, for the monotonicity clamp under noise.
    last_ts: SimTime,
    /// Snap length: frames longer than this are truncated in the record
    /// (the original length is not preserved — experiments use full snap).
    snaplen: usize,
    /// Streaming consumer; when present, records are fed to it instead
    /// of being retained.
    sink: Option<Box<dyn CaptureSink>>,
    /// Total records stamped, retained or streamed.
    total: u64,
}

impl CaptureBuffer {
    /// A tap with exact timestamps and full snap length.
    pub fn new(name: impl Into<String>) -> Self {
        CaptureBuffer {
            name: name.into(),
            records: Vec::new(),
            noise: TimestampNoise::Exact,
            last_ts: SimTime::ZERO,
            snaplen: usize::MAX,
            sink: None,
            total: 0,
        }
    }

    /// Replace the noise model.
    pub fn with_noise(mut self, noise: TimestampNoise) -> Self {
        self.noise = noise;
        self
    }

    /// Set the snap length.
    pub fn with_snaplen(mut self, snaplen: usize) -> Self {
        self.snaplen = snaplen.max(1);
        self
    }

    /// Record one frame at wire-event time `ts`.
    ///
    /// Takes the frame by value: `Bytes` is a refcounted view, so the
    /// record indexes into the same allocation the wire delivered —
    /// nothing is copied, even under a snap length (truncation is a
    /// zero-copy sub-view).
    pub fn record(&mut self, ts: SimTime, dir: CaptureDir, frame: Bytes) {
        let stamped = match &mut self.noise {
            TimestampNoise::Exact => ts,
            TimestampNoise::UniformLag { bound_ns, rng } => {
                let lag = if *bound_ns == 0 {
                    0
                } else {
                    rng.gen_range(0..=*bound_ns)
                };
                // Clamp to the previous record's stamp: independent lag
                // draws could otherwise order two nearby records
                // backwards, which a real pcap never shows (the capture
                // clock is read monotonically per tap).
                (ts + crate::time::SimDuration::from_nanos(lag)).max(self.last_ts)
            }
        };
        self.last_ts = stamped;
        let frame = if frame.len() > self.snaplen {
            frame.slice(..self.snaplen)
        } else {
            frame
        };
        self.total += 1;
        if let Some(sink) = &mut self.sink {
            sink.on_record(stamped, dir, &frame);
            // `frame` drops here — the underlying buffer recycles now.
        } else {
            self.records.push(CaptureRecord {
                ts: stamped,
                dir,
                frame,
            });
        }
    }

    /// Install a streaming sink: subsequent records are fed to it and
    /// not retained. Records captured before the switch stay in place.
    pub fn set_sink(&mut self, sink: Box<dyn CaptureSink>) {
        self.sink = Some(sink);
    }

    /// The installed sink, if any.
    pub fn sink_mut(&mut self) -> Option<&mut (dyn CaptureSink + 'static)> {
        self.sink.as_deref_mut()
    }

    /// Remove and return the sink (e.g. to extract its accumulated
    /// state after a run); the tap reverts to retaining records.
    pub fn take_sink(&mut self) -> Option<Box<dyn CaptureSink>> {
        self.sink.take()
    }

    /// Move all retained records out of the tap, leaving it empty.
    ///
    /// This is the batch-mode half of the streaming pipeline: once a
    /// session's capture has been drained for matching, the consumer
    /// drops the records as it finishes with them and the pooled frame
    /// buffers recycle without waiting for the whole scenario's taps to
    /// be torn down. Noise state (the monotonicity clamp) is preserved,
    /// so a tap can keep recording after a drain.
    pub fn drain(&mut self) -> Vec<CaptureRecord> {
        std::mem::take(&mut self.records)
    }

    /// All records in capture order.
    pub fn records(&self) -> &[CaptureRecord] {
        &self.records
    }

    /// Total records stamped over the tap's lifetime, counting both
    /// retained and streamed (sink-consumed) records.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Number of retained frames (streamed records are not counted;
    /// see [`CaptureBuffer::total_recorded`]).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drop all records (e.g. after the preparation phase, so the
    /// measurement phase starts from a clean trace).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn records_in_order() {
        let mut buf = CaptureBuffer::new("t");
        buf.record(
            SimTime::from_millis(1),
            CaptureDir::Tx,
            Bytes::from_static(b"a"),
        );
        buf.record(
            SimTime::from_millis(2),
            CaptureDir::Rx,
            Bytes::from_static(b"b"),
        );
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.records()[0].dir, CaptureDir::Tx);
        assert_eq!(buf.records()[1].ts, SimTime::from_millis(2));
    }

    #[test]
    fn noise_only_lags() {
        let noise = TimestampNoise::UniformLag {
            bound_ns: 300_000, // 0.3 ms, the paper's software-capture bound
            rng: rng::stream(9, "cap"),
        };
        let mut buf = CaptureBuffer::new("t").with_noise(noise);
        let t = SimTime::from_millis(10);
        for _ in 0..100 {
            buf.record(t, CaptureDir::Rx, Bytes::from_static(b"x"));
        }
        for r in buf.records() {
            assert!(r.ts >= t);
            assert!(r.ts.as_nanos() - t.as_nanos() <= 300_000);
        }
    }

    #[test]
    fn noisy_stamps_stay_monotone() {
        let noise = TimestampNoise::UniformLag {
            bound_ns: 300_000,
            rng: rng::stream(11, "cap"),
        };
        let mut buf = CaptureBuffer::new("t").with_noise(noise);
        // Records arriving a few ns apart: without clamping, a large lag
        // on an early record would order it after a later one.
        for i in 0..500u64 {
            buf.record(
                SimTime::from_nanos(i * 10),
                CaptureDir::Rx,
                Bytes::from_static(b"x"),
            );
        }
        let mut prev = SimTime::ZERO;
        for r in buf.records() {
            assert!(r.ts >= prev, "stamp went backwards: {:?} < {prev:?}", r.ts);
            prev = r.ts;
        }
    }

    #[test]
    fn snaplen_truncates() {
        let mut buf = CaptureBuffer::new("t").with_snaplen(3);
        buf.record(SimTime::ZERO, CaptureDir::Tx, Bytes::from_static(b"abcdef"));
        assert_eq!(&buf.records()[0].frame[..], b"abc");
    }

    #[test]
    fn clear_empties() {
        let mut buf = CaptureBuffer::new("t");
        buf.record(SimTime::ZERO, CaptureDir::Tx, Bytes::from_static(b"a"));
        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    fn drain_moves_records_out_and_keeps_recording() {
        let mut buf = CaptureBuffer::new("t");
        buf.record(
            SimTime::from_millis(1),
            CaptureDir::Tx,
            Bytes::from_static(b"a"),
        );
        buf.record(
            SimTime::from_millis(2),
            CaptureDir::Rx,
            Bytes::from_static(b"b"),
        );
        let drained = buf.drain();
        assert_eq!(drained.len(), 2);
        assert!(buf.is_empty());
        buf.record(
            SimTime::from_millis(3),
            CaptureDir::Tx,
            Bytes::from_static(b"c"),
        );
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.total_recorded(), 3);
    }

    /// Mirror sink used to prove stream-vs-retain equivalence.
    #[derive(Debug, Default)]
    struct Mirror {
        seen: Vec<(SimTime, CaptureDir, Vec<u8>)>,
    }
    impl CaptureSink for Mirror {
        fn on_record(&mut self, ts: SimTime, dir: CaptureDir, frame: &Bytes) {
            self.seen.push((ts, dir, frame.to_vec()));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn sink_observes_exactly_what_retention_would_store() {
        // Two taps with identical noise streams, one retaining and one
        // streaming: the sink must see the same stamps, directions and
        // (snap-truncated) bytes the retained tap stores.
        let mk_noise = || TimestampNoise::UniformLag {
            bound_ns: 250_000,
            rng: rng::stream(41, "cap"),
        };
        let mut retained = CaptureBuffer::new("a")
            .with_noise(mk_noise())
            .with_snaplen(4);
        let mut streamed = CaptureBuffer::new("b")
            .with_noise(mk_noise())
            .with_snaplen(4);
        streamed.set_sink(Box::new(Mirror::default()));
        for i in 0..200u64 {
            let dir = if i % 3 == 0 {
                CaptureDir::Tx
            } else {
                CaptureDir::Rx
            };
            let frame = Bytes::copy_from_slice(&[i as u8; 6]);
            retained.record(SimTime::from_nanos(i * 50), dir, frame.clone());
            streamed.record(SimTime::from_nanos(i * 50), dir, frame);
        }
        assert!(streamed.is_empty(), "streaming tap must retain nothing");
        assert_eq!(streamed.total_recorded(), 200);
        let sink = streamed.take_sink().unwrap();
        let mirror = sink.as_any().downcast_ref::<Mirror>().unwrap();
        assert_eq!(mirror.seen.len(), retained.len());
        for (got, want) in mirror.seen.iter().zip(retained.records()) {
            assert_eq!(got.0, want.ts);
            assert_eq!(got.1, want.dir);
            assert_eq!(got.2, want.frame.to_vec());
        }
    }
}
