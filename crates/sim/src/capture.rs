//! Packet capture taps — the simulator's WinDump/tcpdump.
//!
//! A tap attaches to one endpoint of a link and records every frame the
//! endpoint transmits or receives, together with a timestamp. The
//! experiment harness derives its ground-truth network timestamps
//! (`tN_s`, `tN_r` in Eq. 1 of the paper) exclusively from these records,
//! by parsing the raw frame bytes with [`crate::wire`].
//!
//! Software capturers are themselves imperfect — the paper cites an
//! accuracy worse than 0.3 ms for software capture — so a tap can model
//! timestamping noise with a uniform ± jitter bound. The default is exact
//! timestamps.

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::time::SimTime;

/// Identifies a capture tap within an [`crate::engine::Engine`].
pub type TapId = usize;

/// Direction of a captured frame relative to the tapped node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureDir {
    /// The tapped node transmitted this frame.
    Tx,
    /// The tapped node received this frame.
    Rx,
}

/// One captured frame.
#[derive(Debug, Clone)]
pub struct CaptureRecord {
    /// Capture timestamp (possibly jittered; see [`CaptureBuffer`]).
    pub ts: SimTime,
    /// Direction relative to the tapped node.
    pub dir: CaptureDir,
    /// Raw Ethernet frame bytes.
    pub frame: Bytes,
}

/// Timestamping-noise model for a tap.
#[derive(Debug)]
pub enum TimestampNoise {
    /// Exact virtual-time stamps.
    Exact,
    /// Uniform noise in `[0, bound_ns]` added to each stamp (capture
    /// stamps lag the wire event; they never lead it). Stamps are
    /// additionally clamped to be monotone per tap — a real capturer's
    /// clock never runs backwards between records.
    UniformLag {
        /// Upper bound of the lag, nanoseconds.
        bound_ns: u64,
        /// Dedicated RNG stream.
        rng: SmallRng,
    },
}

/// A buffer of captured frames for one tap.
#[derive(Debug)]
pub struct CaptureBuffer {
    /// Human-readable tap name (e.g. `"client-nic"`).
    pub name: String,
    records: Vec<CaptureRecord>,
    noise: TimestampNoise,
    /// Last stamped timestamp, for the monotonicity clamp under noise.
    last_ts: SimTime,
    /// Snap length: frames longer than this are truncated in the record
    /// (the original length is not preserved — experiments use full snap).
    snaplen: usize,
}

impl CaptureBuffer {
    /// A tap with exact timestamps and full snap length.
    pub fn new(name: impl Into<String>) -> Self {
        CaptureBuffer {
            name: name.into(),
            records: Vec::new(),
            noise: TimestampNoise::Exact,
            last_ts: SimTime::ZERO,
            snaplen: usize::MAX,
        }
    }

    /// Replace the noise model.
    pub fn with_noise(mut self, noise: TimestampNoise) -> Self {
        self.noise = noise;
        self
    }

    /// Set the snap length.
    pub fn with_snaplen(mut self, snaplen: usize) -> Self {
        self.snaplen = snaplen.max(1);
        self
    }

    /// Record one frame at wire-event time `ts`.
    ///
    /// Takes the frame by value: `Bytes` is a refcounted view, so the
    /// record indexes into the same allocation the wire delivered —
    /// nothing is copied, even under a snap length (truncation is a
    /// zero-copy sub-view).
    pub fn record(&mut self, ts: SimTime, dir: CaptureDir, frame: Bytes) {
        let stamped = match &mut self.noise {
            TimestampNoise::Exact => ts,
            TimestampNoise::UniformLag { bound_ns, rng } => {
                let lag = if *bound_ns == 0 {
                    0
                } else {
                    rng.gen_range(0..=*bound_ns)
                };
                // Clamp to the previous record's stamp: independent lag
                // draws could otherwise order two nearby records
                // backwards, which a real pcap never shows (the capture
                // clock is read monotonically per tap).
                (ts + crate::time::SimDuration::from_nanos(lag)).max(self.last_ts)
            }
        };
        self.last_ts = stamped;
        let frame = if frame.len() > self.snaplen {
            frame.slice(..self.snaplen)
        } else {
            frame
        };
        self.records.push(CaptureRecord {
            ts: stamped,
            dir,
            frame,
        });
    }

    /// All records in capture order.
    pub fn records(&self) -> &[CaptureRecord] {
        &self.records
    }

    /// Number of captured frames.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drop all records (e.g. after the preparation phase, so the
    /// measurement phase starts from a clean trace).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn records_in_order() {
        let mut buf = CaptureBuffer::new("t");
        buf.record(
            SimTime::from_millis(1),
            CaptureDir::Tx,
            Bytes::from_static(b"a"),
        );
        buf.record(
            SimTime::from_millis(2),
            CaptureDir::Rx,
            Bytes::from_static(b"b"),
        );
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.records()[0].dir, CaptureDir::Tx);
        assert_eq!(buf.records()[1].ts, SimTime::from_millis(2));
    }

    #[test]
    fn noise_only_lags() {
        let noise = TimestampNoise::UniformLag {
            bound_ns: 300_000, // 0.3 ms, the paper's software-capture bound
            rng: rng::stream(9, "cap"),
        };
        let mut buf = CaptureBuffer::new("t").with_noise(noise);
        let t = SimTime::from_millis(10);
        for _ in 0..100 {
            buf.record(t, CaptureDir::Rx, Bytes::from_static(b"x"));
        }
        for r in buf.records() {
            assert!(r.ts >= t);
            assert!(r.ts.as_nanos() - t.as_nanos() <= 300_000);
        }
    }

    #[test]
    fn noisy_stamps_stay_monotone() {
        let noise = TimestampNoise::UniformLag {
            bound_ns: 300_000,
            rng: rng::stream(11, "cap"),
        };
        let mut buf = CaptureBuffer::new("t").with_noise(noise);
        // Records arriving a few ns apart: without clamping, a large lag
        // on an early record would order it after a later one.
        for i in 0..500u64 {
            buf.record(
                SimTime::from_nanos(i * 10),
                CaptureDir::Rx,
                Bytes::from_static(b"x"),
            );
        }
        let mut prev = SimTime::ZERO;
        for r in buf.records() {
            assert!(r.ts >= prev, "stamp went backwards: {:?} < {prev:?}", r.ts);
            prev = r.ts;
        }
    }

    #[test]
    fn snaplen_truncates() {
        let mut buf = CaptureBuffer::new("t").with_snaplen(3);
        buf.record(SimTime::ZERO, CaptureDir::Tx, Bytes::from_static(b"abcdef"));
        assert_eq!(&buf.records()[0].frame[..], b"abc");
    }

    #[test]
    fn clear_empties() {
        let mut buf = CaptureBuffer::new("t");
        buf.record(SimTime::ZERO, CaptureDir::Tx, Bytes::from_static(b"a"));
        buf.clear();
        assert!(buf.is_empty());
    }
}
