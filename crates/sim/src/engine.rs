//! The discrete-event engine: owns nodes, links, taps and the event queue.
//!
//! Dispatch is strictly deterministic: events fire in `(time, seq)` order
//! and all randomness lives inside components. A node being dispatched is
//! temporarily taken out of the node table, so its handler receives a
//! [`Ctx`] with full mutable access to the rest of the engine (links,
//! timers, taps) without aliasing.

use std::any::Any;

use bnm_obs::Trace;
use bytes::Bytes;

use crate::capture::{CaptureBuffer, CaptureDir, TapId};
use crate::dynamics::{CoDelState, LinkDynamics, QueueDiscipline};
use crate::event::{EventKind, EventQueue};
use crate::fault::{FaultAction, FaultInjector, FaultSpec};
use crate::link::{Dir, Endpoint, Link, LinkId, LinkJitter, LinkSpec};
use crate::time::{SimDuration, SimTime};

/// Index of a node in the engine.
pub type NodeId = usize;
/// Interface index on a node.
pub type PortNo = usize;

/// Typed failure of a node lookup: with many clients in one engine a
/// wrong-node bug is likely, and "node type mismatch" without the node
/// id or the types involved is useless to debug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The node id is out of range.
    NoSuchNode {
        /// The requested id.
        id: NodeId,
        /// How many nodes the engine holds.
        count: usize,
    },
    /// The node is temporarily out of the table (its handler is running).
    BeingDispatched {
        /// The requested id.
        id: NodeId,
    },
    /// The node exists but is not of the requested type.
    TypeMismatch {
        /// The requested id.
        id: NodeId,
        /// The type the caller asked for.
        expected: &'static str,
        /// The type actually stored at that id.
        actual: &'static str,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NoSuchNode { id, count } => {
                write!(f, "node {id} does not exist (engine holds {count} nodes)")
            }
            EngineError::BeingDispatched { id } => {
                write!(f, "node {id} is being dispatched (re-entrant access)")
            }
            EngineError::TypeMismatch {
                id,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "node {id} is a `{actual}`, not the requested `{expected}`"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Anything attached to the simulated network.
///
/// Handlers run at a single virtual instant; to model processing time, a
/// node schedules timers rather than "sleeping".
pub trait Node: Any {
    /// Called once at simulation start (time zero), before any frame.
    fn on_start(&mut self, _ctx: &mut Ctx) {}

    /// A frame arrived on `port`.
    fn on_frame(&mut self, ctx: &mut Ctx, port: PortNo, frame: Bytes);

    /// A timer armed via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx, _token: u64) {}

    /// Downcasting support (results are read back after the run).
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// The concrete type's name, for diagnostics on failed downcasts.
    fn type_name(&self) -> &'static str {
        std::any::type_name::<Self>()
    }
}

/// Handler-side view of the engine.
pub struct Ctx<'a> {
    engine: &'a mut Engine,
    node: NodeId,
}

impl Ctx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.engine.now
    }

    /// The node being dispatched.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Hand a frame to the NIC on `port` for transmission now.
    ///
    /// Panics if the port is not connected — a wiring bug, not a runtime
    /// condition.
    pub fn send_frame(&mut self, port: PortNo, frame: Bytes) {
        self.engine.transmit(self.node, port, frame);
    }

    /// Arm a one-shot timer that calls [`Node::on_timer`] with `token`
    /// after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let at = self.engine.now + delay;
        self.engine.queue.push(
            at,
            EventKind::Timer {
                node: self.node,
                token,
            },
        );
    }
}

/// The simulation engine.
pub struct Engine {
    now: SimTime,
    queue: EventQueue,
    nodes: Vec<Option<Box<dyn Node>>>,
    links: Vec<Link>,
    /// `port_map[node][port] -> link`.
    port_map: Vec<Vec<Option<LinkId>>>,
    taps: Vec<CaptureBuffer>,
    started: bool,
    events_processed: u64,
    trace: Trace,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An empty simulation.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes: Vec::new(),
            links: Vec::new(),
            port_map: Vec::new(),
            taps: Vec::new(),
            started: false,
            events_processed: 0,
            trace: Trace::disabled(),
        }
    }

    /// Install a trace handle; packet lifecycle events (enqueue, link
    /// serialization, dequeue, tap stamps, queue drops) are recorded in
    /// virtual time. The default handle is disabled, reducing every
    /// record site to one branch.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// Swap the scheduler for the reference `BinaryHeap` implementation
    /// (see [`EventQueue::reference_heap`]). Pop order — and therefore
    /// every simulation result — is identical to the default timer
    /// wheel; this exists for differential tests and as the benchmark
    /// baseline.
    ///
    /// Panics if the simulation has already started.
    pub fn use_reference_scheduler(&mut self) {
        assert!(
            !self.started && self.queue.is_empty(),
            "scheduler must be selected before the simulation starts"
        );
        self.queue = EventQueue::reference_heap();
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Attach a node; returns its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Some(node));
        self.port_map.push(Vec::new());
        id
    }

    /// Wire `(a, a_port)` to `(b, b_port)` with the given spec.
    ///
    /// Panics if a port is already wired.
    pub fn connect(
        &mut self,
        a: NodeId,
        a_port: PortNo,
        b: NodeId,
        b_port: PortNo,
        spec: LinkSpec,
    ) -> LinkId {
        let id = self.links.len();
        let ea = Endpoint {
            node: a,
            port: a_port,
        };
        let eb = Endpoint {
            node: b,
            port: b_port,
        };
        self.links.push(Link::new(spec, ea, eb));
        for (node, port) in [(a, a_port), (b, b_port)] {
            let ports = &mut self.port_map[node];
            if ports.len() <= port {
                ports.resize(port + 1, None);
            }
            assert!(
                ports[port].is_none(),
                "port {port} on node {node} already wired"
            );
            ports[port] = Some(id);
        }
        id
    }

    /// Attach a capture tap at `node`'s end of `link`; returns the tap id.
    ///
    /// Panics if `node` is not an endpoint of `link`.
    pub fn add_tap(&mut self, link: LinkId, node: NodeId, buffer: CaptureBuffer) -> TapId {
        let tap = self.taps.len();
        self.taps.push(buffer);
        let l = &mut self.links[link];
        if l.a.node == node {
            l.taps_a.push(tap);
        } else if l.b.node == node {
            l.taps_b.push(tap);
        } else {
            panic!("node {node} is not an endpoint of link {link}");
        }
        tap
    }

    /// Resolve the direction of `link` transmitted by `from`, panicking
    /// (a wiring bug) when `from` is not an endpoint.
    fn dir_of(&self, link: LinkId, from: NodeId) -> Dir {
        let l = &self.links[link];
        if l.a.node == from {
            Dir::AToB
        } else if l.b.node == from {
            Dir::BToA
        } else {
            panic!("node {from} is not an endpoint of link {link}");
        }
    }

    /// Install fault injection on one direction of a link. `from` names
    /// the transmitting node of the affected direction.
    pub fn set_fault(
        &mut self,
        link: LinkId,
        from: NodeId,
        spec: FaultSpec,
        rng: rand::rngs::SmallRng,
    ) {
        let dir = self.dir_of(link, from);
        self.links[link].dir_state(dir).fault = Some(FaultInjector::new(spec, rng));
    }

    /// Override the netem-style extra one-way delay on the direction of
    /// `link` transmitted by `from`. This is the simulator's
    /// `tc qdisc add dev eth0 root netem delay …`: the paper applies 50 ms
    /// to the server's egress only.
    pub fn set_one_way_delay(&mut self, link: LinkId, from: NodeId, delay: SimDuration) {
        let dir = self.dir_of(link, from);
        self.links[link].dir_state(dir).spec.extra_delay = delay;
    }

    /// Replace the [`LinkSpec`] of the direction of `link` transmitted
    /// by `from` — asymmetric rates, per-direction queue bounds. The
    /// other direction keeps the spec `connect` installed.
    ///
    /// Panics on a spec that fails [`LinkSpec::validate`]; builders are
    /// expected to have rejected it with a typed error already.
    pub fn set_link_spec(&mut self, link: LinkId, from: NodeId, spec: LinkSpec) {
        spec.validate()
            .unwrap_or_else(|e| panic!("invalid link spec: {e}"));
        let dir = self.dir_of(link, from);
        self.links[link].dir_state(dir).spec = spec;
    }

    /// Install [`LinkDynamics`] (rate schedule + queue discipline) on
    /// the direction of `link` transmitted by `from`. The default
    /// dynamics reproduce the static drop-tail link bit-for-bit, so
    /// builders only call this for non-static shapes.
    pub fn set_dynamics(&mut self, link: LinkId, from: NodeId, dynamics: LinkDynamics) {
        dynamics
            .validate()
            .unwrap_or_else(|e| panic!("invalid link dynamics: {e}"));
        let dir = self.dir_of(link, from);
        let st = self.links[link].dir_state(dir);
        st.dynamics = dynamics;
        st.codel = CoDelState::default();
    }

    /// Install netem-style uniform delay jitter on the direction of
    /// `link` transmitted by `from`: each frame draws an extra one-way
    /// delay in `[0, bound]` from the dedicated stream (the second
    /// argument of `netem delay 50ms 2ms`). Draws happen in event order
    /// inside the single-threaded engine, so runs stay deterministic.
    pub fn set_jitter(
        &mut self,
        link: LinkId,
        from: NodeId,
        bound: SimDuration,
        rng: rand::rngs::SmallRng,
    ) {
        let dir = self.dir_of(link, from);
        self.links[link].dir_state(dir).jitter = Some(LinkJitter { bound, rng });
    }

    /// Read a capture buffer.
    pub fn tap(&self, id: TapId) -> &CaptureBuffer {
        &self.taps[id]
    }

    /// Mutable access to a capture buffer (e.g. to clear it between
    /// phases).
    pub fn tap_mut(&mut self, id: TapId) -> &mut CaptureBuffer {
        &mut self.taps[id]
    }

    /// Borrow a node downcast to its concrete type, reporting the node
    /// id and both type names on failure.
    pub fn try_node_ref<T: Node>(&self, id: NodeId) -> Result<&T, EngineError> {
        let slot = self.nodes.get(id).ok_or(EngineError::NoSuchNode {
            id,
            count: self.nodes.len(),
        })?;
        let node = slot.as_ref().ok_or(EngineError::BeingDispatched { id })?;
        node.as_any()
            .downcast_ref::<T>()
            .ok_or_else(|| EngineError::TypeMismatch {
                id,
                expected: std::any::type_name::<T>(),
                actual: node.type_name(),
            })
    }

    /// Mutable sibling of [`Engine::try_node_ref`].
    pub fn try_node_mut<T: Node>(&mut self, id: NodeId) -> Result<&mut T, EngineError> {
        let count = self.nodes.len();
        let slot = self
            .nodes
            .get_mut(id)
            .ok_or(EngineError::NoSuchNode { id, count })?;
        let node = slot.as_mut().ok_or(EngineError::BeingDispatched { id })?;
        let actual = node.type_name();
        node.as_any_mut()
            .downcast_mut::<T>()
            .ok_or(EngineError::TypeMismatch {
                id,
                expected: std::any::type_name::<T>(),
                actual,
            })
    }

    /// Borrow a node downcast to its concrete type.
    ///
    /// Panics with the node id and the expected/actual type names when
    /// the lookup fails; use [`Engine::try_node_ref`] to handle the
    /// failure instead.
    pub fn node_ref<T: Node>(&self, id: NodeId) -> &T {
        self.try_node_ref(id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Mutably borrow a node downcast to its concrete type.
    ///
    /// Panics with the node id and the expected/actual type names when
    /// the lookup fails; use [`Engine::try_node_mut`] to handle the
    /// failure instead.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> &mut T {
        self.try_node_mut(id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Queue-drop counter for the direction of `link` transmitted by
    /// `from` (drop-tail overflows plus AQM drops).
    pub fn queue_drops(&self, link: LinkId, from: NodeId) -> u64 {
        let l = &self.links[link];
        if l.a.node == from {
            l.a_to_b.queue_drops
        } else {
            l.b_to_a.queue_drops
        }
    }

    /// High-water mark of queued bytes for the direction of `link`
    /// transmitted by `from` — how deep the standing queue ever got.
    pub fn queue_peak_bytes(&self, link: LinkId, from: NodeId) -> usize {
        let l = &self.links[link];
        if l.a.node == from {
            l.a_to_b.queue_peak_bytes
        } else {
            l.b_to_a.queue_peak_bytes
        }
    }

    fn ensure_started(&mut self) {
        if !self.started {
            self.started = true;
            for id in 0..self.nodes.len() {
                self.queue
                    .push(SimTime::ZERO, EventKind::Start { node: id });
            }
        }
    }

    /// Run until the event queue drains. Returns the final time.
    pub fn run(&mut self) -> SimTime {
        self.ensure_started();
        while self.step() {}
        self.now
    }

    /// Run while events fire strictly before `deadline`. Time stops at the
    /// deadline if events remain beyond it.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.ensure_started();
        while let Some(t) = self.queue.peek_time() {
            if t >= deadline {
                self.now = deadline;
                return self.now;
            }
            self.step();
        }
        // Queue drained before the deadline.
        self.now = self.now.max(deadline.min(self.now.max(deadline)));
        self.now
    }

    /// Dispatch one event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some(event) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.at >= self.now, "time went backwards");
        self.now = event.at;
        self.events_processed += 1;
        match event.kind {
            EventKind::Start { node } => self.dispatch(node, |n, ctx| n.on_start(ctx)),
            EventKind::Timer { node, token } => {
                self.dispatch(node, |n, ctx| n.on_timer(ctx, token))
            }
            EventKind::FrameDelivery { node, port, frame } => {
                self.dispatch(node, |n, ctx| n.on_frame(ctx, port, frame))
            }
            EventKind::LinkTxDone { link, dir, bytes } => {
                let st = self.links[link].dir_state(dir);
                st.queued_bytes = st.queued_bytes.saturating_sub(bytes);
            }
        }
        true
    }

    fn dispatch<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut Box<dyn Node>, &mut Ctx),
    {
        let mut taken = self.nodes[node].take().expect("re-entrant dispatch");
        {
            let mut ctx = Ctx { engine: self, node };
            f(&mut taken, &mut ctx);
        }
        self.nodes[node] = Some(taken);
    }

    /// Transmit `frame` from `(node, port)` at the current time.
    fn transmit(&mut self, node: NodeId, port: PortNo, frame: Bytes) {
        let link_id = self.port_map[node]
            .get(port)
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("port {port} on node {node} is not wired"));
        let t = self.now;
        let ep = Endpoint { node, port };
        let dir = self.links[link_id].dir_from(ep).expect("endpoint mismatch");

        // Transmit-side taps see the frame as the host hands it to the
        // wire, before fault injection — smoltcp's "dropped packets still
        // get traced" behaviour, and what a capture driver on the sending
        // host sees. Taps are walked by index so the hot path borrows
        // the link's tap list without copying it.
        let n_src_taps = self.links[link_id].source_taps(dir).len();
        if self.trace.is_enabled() && n_src_taps > 0 {
            self.trace
                .instant(t.as_nanos(), "tap", "tx", Some(frame.len() as f64));
        }
        for i in 0..n_src_taps {
            let tap = self.links[link_id].source_taps(dir)[i];
            self.taps[tap].record(t, CaptureDir::Tx, frame.clone());
        }

        let action = match self.links[link_id].dir_state(dir).fault.as_mut() {
            Some(inj) => inj.apply(frame),
            None => FaultAction::Deliver(frame),
        };
        // At most two frames leave (the duplication fault); threading
        // them through an `Option` keeps the common single-frame case
        // free of a `Vec` allocation. The refcounted buffer means the
        // duplicate shares the original's allocation.
        let (first, dup) = match action {
            FaultAction::Drop => return,
            FaultAction::Deliver(f) | FaultAction::DeliverCorrupted(f) => (f, false),
            FaultAction::Duplicate(f) => (f, true),
        };
        let mut dup_pending = dup;
        let mut next_frame = Some(first);

        while let Some(f) = next_frame.take() {
            if dup_pending {
                dup_pending = false;
                next_frame = Some(f.clone());
            }
            let len = f.len();
            let st = self.links[link_id].dir_state(dir);
            if st.queued_bytes + len > st.spec.queue_limit_bytes {
                st.queue_drops += 1;
                self.trace
                    .instant(t.as_nanos(), "link", "drop", Some(len as f64));
                self.trace.count("link.queue_drops", 1);
                continue;
            }
            let start = st.busy_until.max(t);
            // AQM admission: CoDel judges the frame by the queueing
            // delay it would experience. Drop-tail installs no check.
            if let QueueDiscipline::CoDel { target, interval } = st.dynamics.discipline {
                let delay = start.saturating_since(t);
                if st.codel.should_drop(t, delay, target, interval) {
                    st.queue_drops += 1;
                    self.trace
                        .instant(t.as_nanos(), "link", "aqm_drop", Some(len as f64));
                    self.trace.count("link.queue_drops", 1);
                    continue;
                }
            }
            // Per-frame jitter draw on top of the fixed extra delay
            // (netem's uniform delay variation).
            let extra = st.spec.extra_delay
                + st.jitter
                    .as_mut()
                    .map_or(SimDuration::ZERO, LinkJitter::draw);
            // The rate is evaluated lazily at the instant serialization
            // starts; a static schedule yields the spec rate, making
            // this expression bit-identical to the fixed-rate path.
            let rate = st.dynamics.schedule.rate_at(start, st.spec.rate_bps);
            let tx_done = start + SimDuration::serialization(len, rate);
            st.busy_until = tx_done;
            st.queued_bytes += len;
            st.queue_peak_bytes = st.queue_peak_bytes.max(st.queued_bytes);
            let propagation = st.spec.propagation;
            if self.trace.is_enabled() {
                self.trace
                    .instant(t.as_nanos(), "link", "enqueue", Some(len as f64));
                self.trace.span(
                    start.as_nanos(),
                    tx_done.as_nanos(),
                    "link",
                    "serialize",
                    None,
                );
                self.trace
                    .instant(tx_done.as_nanos(), "link", "dequeue", Some(len as f64));
                self.trace.count("link.frames", 1);
                self.trace.count("link.bytes", len as u64);
                self.trace.observe(
                    "link.serialize_ns",
                    tx_done.saturating_since(start).as_nanos(),
                );
            }
            self.queue.push(
                tx_done,
                EventKind::LinkTxDone {
                    link: link_id,
                    dir,
                    bytes: len,
                },
            );
            let arrival = tx_done + propagation + extra;
            let sink = self.links[link_id].sink(dir);
            // Receive-side taps stamp at arrival.
            let n_sink_taps = self.links[link_id].sink_taps(dir).len();
            if self.trace.is_enabled() && n_sink_taps > 0 {
                self.trace
                    .instant(arrival.as_nanos(), "tap", "rx", Some(len as f64));
            }
            for i in 0..n_sink_taps {
                // Tap records are written at schedule time but stamped with
                // the arrival instant; since `arrival` is deterministic this
                // is equivalent to recording on delivery, and keeps taps
                // ordered even if the receiving node is slow.
                let tap = self.links[link_id].sink_taps(dir)[i];
                self.taps[tap].record(arrival, CaptureDir::Rx, f.clone());
            }
            self.queue.push(
                arrival,
                EventKind::FrameDelivery {
                    node: sink.node,
                    port: sink.port,
                    frame: f,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every frame back out the port it arrived on, after a fixed
    /// processing delay signalled via a timer.
    struct Echo {
        received: Vec<(SimTime, Bytes)>,
    }

    impl Node for Echo {
        fn on_frame(&mut self, ctx: &mut Ctx, port: PortNo, frame: Bytes) {
            self.received.push((ctx.now(), frame.clone()));
            ctx.send_frame(port, frame);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Sends `count` frames at start, records what comes back.
    struct Pinger {
        count: usize,
        sent_at: Vec<SimTime>,
        replies: Vec<SimTime>,
    }

    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx) {
            for i in 0..self.count {
                self.sent_at.push(ctx.now());
                ctx.send_frame(0, Bytes::from(vec![i as u8; 100]));
            }
        }
        fn on_frame(&mut self, ctx: &mut Ctx, _port: PortNo, _frame: Bytes) {
            self.replies.push(ctx.now());
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_node_setup(spec: LinkSpec, count: usize) -> (Engine, NodeId, NodeId) {
        let mut e = Engine::new();
        let p = e.add_node(Box::new(Pinger {
            count,
            sent_at: Vec::new(),
            replies: Vec::new(),
        }));
        let s = e.add_node(Box::new(Echo {
            received: Vec::new(),
        }));
        e.connect(p, 0, s, 0, spec);
        (e, p, s)
    }

    #[test]
    fn rtt_includes_serialization_propagation_and_extra_delay() {
        let spec = LinkSpec {
            rate_bps: 100_000_000,
            propagation: SimDuration::from_micros(5),
            extra_delay: SimDuration::from_millis(50),
            queue_limit_bytes: 1 << 20,
        };
        let (mut e, p, _) = two_node_setup(spec, 1);
        e.run();
        let pinger = e.node_ref::<Pinger>(p);
        assert_eq!(pinger.replies.len(), 1);
        // One way: 8us serialization (100B @ 100Mbps) + 5us prop + 50ms.
        // RTT: twice that.
        let rtt = pinger.replies[0].saturating_since(pinger.sent_at[0]);
        assert_eq!(rtt.as_nanos(), 2 * (8_000 + 5_000 + 50_000_000));
    }

    #[test]
    fn back_to_back_frames_queue_behind_each_other() {
        let spec = LinkSpec {
            rate_bps: 8_000_000, // 1 byte per microsecond
            propagation: SimDuration::ZERO,
            extra_delay: SimDuration::ZERO,
            queue_limit_bytes: 1 << 20,
        };
        let (mut e, _, s) = two_node_setup(spec, 3);
        e.run();
        let echo = e.node_ref::<Echo>(s);
        assert_eq!(echo.received.len(), 3);
        // 100-byte frames at 1 B/us serialize in 100 us each; arrivals are
        // spaced by exactly the serialization time.
        let times: Vec<u64> = echo.received.iter().map(|(t, _)| t.as_micros()).collect();
        assert_eq!(times, vec![100, 200, 300]);
    }

    #[test]
    fn queue_limit_drops_excess() {
        let spec = LinkSpec {
            rate_bps: 8_000,
            propagation: SimDuration::ZERO,
            extra_delay: SimDuration::ZERO,
            queue_limit_bytes: 250, // room for two 100-byte frames
        };
        let (mut e, p, s) = two_node_setup(spec, 5);
        let link = 0;
        e.run();
        assert_eq!(e.node_ref::<Echo>(s).received.len(), 2);
        assert_eq!(e.queue_drops(link, p), 3);
    }

    #[test]
    fn taps_capture_both_directions() {
        let (mut e, p, _) = two_node_setup(LinkSpec::fast_ethernet(), 2);
        let tap = e.add_tap(0, p, CaptureBuffer::new("client"));
        e.run();
        let buf = e.tap(tap);
        // 2 tx + 2 rx.
        assert_eq!(buf.len(), 4);
        let tx = buf
            .records()
            .iter()
            .filter(|r| r.dir == CaptureDir::Tx)
            .count();
        assert_eq!(tx, 2);
    }

    #[test]
    fn timers_fire_in_order_with_tokens() {
        struct TimerNode {
            fired: Vec<(u64, SimTime)>,
        }
        impl Node for TimerNode {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.set_timer(SimDuration::from_millis(10), 1);
            }
            fn on_frame(&mut self, _: &mut Ctx, _: PortNo, _: Bytes) {}
            fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
                self.fired.push((token, ctx.now()));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut e = Engine::new();
        let n = e.add_node(Box::new(TimerNode { fired: Vec::new() }));
        e.run();
        let node = e.node_ref::<TimerNode>(n);
        assert_eq!(node.fired.len(), 2);
        assert_eq!(node.fired[0].0, 1);
        assert_eq!(node.fired[0].1, SimTime::from_millis(10));
        assert_eq!(node.fired[1].0, 2);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut e, _, _) = two_node_setup(
            LinkSpec::fast_ethernet_delayed(SimDuration::from_secs(1)),
            1,
        );
        let t = e.run_until(SimTime::from_millis(100));
        assert_eq!(t, SimTime::from_millis(100));
        // Finishing the run delivers the reply.
        e.run();
        assert!(e.now() > SimTime::from_secs(1));
    }

    #[test]
    fn determinism_two_identical_runs() {
        let run = || {
            let (mut e, p, _) = two_node_setup(LinkSpec::fast_ethernet(), 10);
            e.run();
            e.node_ref::<Pinger>(p).replies.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "not wired")]
    fn sending_on_unwired_port_panics() {
        struct Bad;
        impl Node for Bad {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.send_frame(3, Bytes::from_static(b"x"));
            }
            fn on_frame(&mut self, _: &mut Ctx, _: PortNo, _: Bytes) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut e = Engine::new();
        e.add_node(Box::new(Bad));
        e.run();
    }

    #[test]
    fn trace_records_link_lifecycle_and_tap_stamps() {
        let (mut e, p, _) = two_node_setup(LinkSpec::fast_ethernet(), 2);
        e.add_tap(0, p, CaptureBuffer::new("t"));
        let trace = Trace::enabled();
        e.set_trace(trace.clone());
        e.run();
        let d = trace.take().unwrap();
        // 2 pings out + 2 echoes back.
        assert_eq!(d.counters["link.frames"], 4);
        assert_eq!(d.histograms["link.serialize_ns"].count, 4);
        let has = |scope: &str, label: &str| {
            d.events
                .iter()
                .any(|ev| ev.scope == scope && ev.label == label)
        };
        assert!(has("link", "enqueue"));
        assert!(has("link", "serialize"));
        assert!(has("link", "dequeue"));
        // The tap sits on the pinger side: it sees its own tx and rx.
        assert!(has("tap", "tx"));
        assert!(has("tap", "rx"));
    }

    #[test]
    fn jitter_spreads_arrivals_deterministically() {
        let run = |with_jitter: bool| {
            let (mut e, _, s) = two_node_setup(LinkSpec::fast_ethernet(), 10);
            if with_jitter {
                e.set_jitter(
                    0,
                    0,
                    SimDuration::from_millis(5),
                    crate::rng::stream(3, "jitter"),
                );
            }
            e.run();
            e.node_ref::<Echo>(s)
                .received
                .iter()
                .map(|(t, _)| *t)
                .collect::<Vec<SimTime>>()
        };
        let clean = run(false);
        let jittered = run(true);
        assert_eq!(clean.len(), jittered.len());
        // Jitter only ever adds delay, and at least one frame must move.
        assert!(clean.iter().zip(&jittered).all(|(c, j)| j >= c));
        assert_ne!(clean, jittered);
        // Same seed, same draws: bit-identical reruns.
        assert_eq!(run(true), run(true));
    }

    #[test]
    fn asymmetric_specs_apply_per_direction() {
        // Slow the echo direction only: the request serializes at
        // 100 Mbps, the reply at 8 Mbps (100 B -> 100 us).
        let (mut e, p, s) = two_node_setup(LinkSpec::fast_ethernet(), 1);
        e.set_link_spec(
            0,
            s,
            LinkSpec {
                rate_bps: 8_000_000,
                ..LinkSpec::fast_ethernet()
            },
        );
        e.run();
        let pinger = e.node_ref::<Pinger>(p);
        let rtt = pinger.replies[0].saturating_since(pinger.sent_at[0]);
        // 8us + 5us out, 100us + 5us back.
        assert_eq!(rtt.as_nanos(), (8_000 + 5_000) + (100_000 + 5_000));
    }

    #[test]
    fn static_dynamics_change_nothing() {
        let run = |install: bool| {
            let (mut e, _, s) = two_node_setup(LinkSpec::fast_ethernet(), 10);
            if install {
                e.set_dynamics(0, 0, crate::dynamics::LinkDynamics::default());
            }
            e.run();
            e.node_ref::<Echo>(s)
                .received
                .iter()
                .map(|(t, _)| *t)
                .collect::<Vec<SimTime>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn rate_schedule_is_evaluated_lazily_at_serialization_start() {
        use crate::dynamics::{LinkDynamics, RateSchedule};
        let spec = LinkSpec {
            rate_bps: 8_000_000, // 100 B -> 100 us
            propagation: SimDuration::ZERO,
            extra_delay: SimDuration::ZERO,
            queue_limit_bytes: 1 << 20,
        };
        let (mut e, _, s) = two_node_setup(spec, 3);
        // From t = 150 us the link slows 10x. Frame 1 (starts at 0) and
        // frame 2 (starts at 100 us) serialize at the base rate; frame 3
        // starts at 200 us and observes the step.
        e.set_dynamics(
            0,
            0,
            LinkDynamics::scheduled(RateSchedule::Steps(vec![(
                SimTime::from_micros(150),
                800_000,
            )])),
        );
        e.run();
        let times: Vec<u64> = e
            .node_ref::<Echo>(s)
            .received
            .iter()
            .map(|(t, _)| t.as_micros())
            .collect();
        assert_eq!(times, vec![100, 200, 1200]);
    }

    #[test]
    fn codel_sheds_standing_queue_that_drop_tail_keeps() {
        use crate::dynamics::LinkDynamics;
        // One 100-byte frame every 5 ms into a 10 ms-per-frame link:
        // the standing queue grows without bound under drop-tail, while
        // CoDel starts shedding once the would-be wait has exceeded its
        // target for a full interval.
        struct Spaced {
            count: usize,
        }
        impl Node for Spaced {
            fn on_start(&mut self, ctx: &mut Ctx) {
                for i in 0..self.count {
                    ctx.set_timer(SimDuration::from_millis(5 * i as u64), i as u64);
                }
            }
            fn on_frame(&mut self, _: &mut Ctx, _: PortNo, _: Bytes) {}
            fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
                ctx.send_frame(0, Bytes::from(vec![token as u8; 100]));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let spec = LinkSpec {
            rate_bps: 80_000, // 100 B -> 10 ms serialization
            propagation: SimDuration::ZERO,
            extra_delay: SimDuration::ZERO,
            queue_limit_bytes: 1 << 20,
        };
        let run = |aqm: bool| {
            let mut e = Engine::new();
            let p = e.add_node(Box::new(Spaced { count: 100 }));
            let s = e.add_node(Box::new(Echo {
                received: Vec::new(),
            }));
            e.connect(p, 0, s, 0, spec);
            if aqm {
                e.set_dynamics(0, p, LinkDynamics::codel());
            }
            e.run();
            (
                e.node_ref::<Echo>(s).received.len(),
                e.queue_drops(0, p),
                e.queue_peak_bytes(0, p),
            )
        };
        let (tail_rx, tail_drops, tail_peak) = run(false);
        let (aqm_rx, aqm_drops, aqm_peak) = run(true);
        assert_eq!(tail_rx, 100);
        assert_eq!(tail_drops, 0);
        assert!(aqm_drops >= 3, "codel must keep shedding: {aqm_drops}");
        assert_eq!(aqm_rx + aqm_drops as usize, 100);
        assert!(
            aqm_peak < tail_peak,
            "codel bounds the queue: {aqm_peak} vs {tail_peak}"
        );
    }

    #[test]
    fn queue_peak_gauge_tracks_high_water() {
        let spec = LinkSpec {
            rate_bps: 8_000_000,
            propagation: SimDuration::ZERO,
            extra_delay: SimDuration::ZERO,
            queue_limit_bytes: 1 << 20,
        };
        let (mut e, p, _) = two_node_setup(spec, 5);
        e.run();
        // All five 100-byte frames arrive at once: the peak holds all
        // of them even after the queue drains.
        assert_eq!(e.queue_peak_bytes(0, p), 500);
        assert_eq!(e.queue_drops(0, p), 0);
    }

    #[test]
    fn fault_injection_drops_frames() {
        let (mut e, p, s) = two_node_setup(LinkSpec::fast_ethernet(), 10);
        e.set_fault(
            0,
            p,
            FaultSpec {
                drop_chance: 1.0,
                ..FaultSpec::CLEAN
            },
            crate::rng::stream(1, "fault"),
        );
        e.run();
        assert_eq!(e.node_ref::<Echo>(s).received.len(), 0);
        // The pinger got no replies either.
        assert!(e.node_ref::<Pinger>(p).replies.is_empty());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::link::LinkSpec;

    struct Inert;
    impl Node for Inert {
        fn on_frame(&mut self, _: &mut Ctx, _: PortNo, _: Bytes) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn run_on_empty_engine_terminates_at_zero() {
        let mut e = Engine::new();
        assert_eq!(e.run(), SimTime::ZERO);
        assert_eq!(e.events_processed(), 0);
    }

    #[test]
    fn start_events_fire_once_per_node() {
        struct Counter {
            started: u32,
        }
        impl Node for Counter {
            fn on_start(&mut self, _: &mut Ctx) {
                self.started += 1;
            }
            fn on_frame(&mut self, _: &mut Ctx, _: PortNo, _: Bytes) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut e = Engine::new();
        let n = e.add_node(Box::new(Counter { started: 0 }));
        e.run();
        e.run(); // idempotent: start fires once
        assert_eq!(e.node_ref::<Counter>(n).started, 1);
    }

    #[test]
    fn tap_mut_clear_between_phases() {
        let mut e = Engine::new();
        let a = e.add_node(Box::new(Inert));
        let b = e.add_node(Box::new(Inert));
        let link = e.connect(a, 0, b, 0, LinkSpec::fast_ethernet());
        let tap = e.add_tap(link, a, crate::capture::CaptureBuffer::new("t"));
        // Inject a frame by timer-driven send.
        struct Sender;
        impl Node for Sender {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.send_frame(0, Bytes::from_static(b"x"));
            }
            fn on_frame(&mut self, _: &mut Ctx, _: PortNo, _: Bytes) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut e2 = Engine::new();
        let s = e2.add_node(Box::new(Sender));
        let r = e2.add_node(Box::new(Inert));
        let link2 = e2.connect(s, 0, r, 0, LinkSpec::fast_ethernet());
        let tap2 = e2.add_tap(link2, s, crate::capture::CaptureBuffer::new("t2"));
        e2.run();
        assert_eq!(e2.tap(tap2).len(), 1);
        e2.tap_mut(tap2).clear();
        assert!(e2.tap(tap2).is_empty());
        let _ = (tap, &e);
    }

    #[test]
    fn failed_downcasts_report_id_and_types() {
        let mut e = Engine::new();
        let a = e.add_node(Box::new(Inert));
        assert!(e.try_node_ref::<Inert>(a).is_ok());
        assert_eq!(
            e.try_node_ref::<Inert>(7).map(|_| ()),
            Err(EngineError::NoSuchNode { id: 7, count: 1 })
        );
        struct Other;
        impl Node for Other {
            fn on_frame(&mut self, _: &mut Ctx, _: PortNo, _: Bytes) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let err = e.try_node_mut::<Other>(a).map(|_| ()).unwrap_err();
        match err {
            EngineError::TypeMismatch {
                id,
                expected,
                actual,
            } => {
                assert_eq!(id, a);
                assert!(expected.contains("Other"), "expected name: {expected}");
                assert!(actual.contains("Inert"), "actual name: {actual}");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    #[should_panic(expected = "node 0 is a")]
    fn node_ref_panic_names_the_types() {
        struct Other;
        impl Node for Other {
            fn on_frame(&mut self, _: &mut Ctx, _: PortNo, _: Bytes) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut e = Engine::new();
        let a = e.add_node(Box::new(Inert));
        let _ = e.node_ref::<Other>(a);
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn double_wiring_a_port_panics() {
        let mut e = Engine::new();
        let a = e.add_node(Box::new(Inert));
        let b = e.add_node(Box::new(Inert));
        let c = e.add_node(Box::new(Inert));
        e.connect(a, 0, b, 0, LinkSpec::fast_ethernet());
        e.connect(a, 0, c, 0, LinkSpec::fast_ethernet());
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn tap_on_non_endpoint_panics() {
        let mut e = Engine::new();
        let a = e.add_node(Box::new(Inert));
        let b = e.add_node(Box::new(Inert));
        let c = e.add_node(Box::new(Inert));
        let link = e.connect(a, 0, b, 0, LinkSpec::fast_ethernet());
        e.add_tap(link, c, crate::capture::CaptureBuffer::new("bad"));
    }
}
