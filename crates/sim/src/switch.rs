//! A learning L2 switch, modelling the testbed switch of Figure 2.
//!
//! Store-and-forward with a fixed per-frame forwarding latency; MAC
//! learning with flooding for unknown/broadcast destinations.

use std::any::Any;
use std::collections::HashMap;

use bytes::Bytes;

use crate::engine::{Ctx, Node, PortNo};
use crate::wire::{EthernetFrame, MacAddr};

/// A learning Ethernet switch with `ports` interfaces.
pub struct Switch {
    ports: usize,
    table: HashMap<MacAddr, PortNo>,
    /// Frames forwarded so far.
    pub forwarded: u64,
    /// Frames flooded (unknown destination or broadcast).
    pub flooded: u64,
    /// Frames dropped because they failed to parse as Ethernet.
    pub parse_drops: u64,
    /// Bytes handed to each egress port — the switch-side view of the
    /// load a shaped bottleneck link is asked to carry.
    egress_bytes: Vec<u64>,
}

impl Switch {
    /// A switch with the given number of ports.
    pub fn new(ports: usize) -> Self {
        Switch {
            ports,
            table: HashMap::new(),
            forwarded: 0,
            flooded: 0,
            parse_drops: 0,
            egress_bytes: vec![0; ports],
        }
    }

    /// The learned MAC table (for tests/diagnostics).
    pub fn table(&self) -> &HashMap<MacAddr, PortNo> {
        &self.table
    }

    /// Bytes handed to egress `port` so far (before that link's queue
    /// discipline ruled on them).
    pub fn egress_bytes(&self, port: PortNo) -> u64 {
        self.egress_bytes.get(port).copied().unwrap_or(0)
    }

    fn forward(&mut self, ctx: &mut Ctx, out: PortNo, frame: Bytes) {
        self.egress_bytes[out] += frame.len() as u64;
        ctx.send_frame(out, frame);
    }
}

impl Node for Switch {
    fn on_frame(&mut self, ctx: &mut Ctx, port: PortNo, frame: Bytes) {
        let Ok(eth) = EthernetFrame::parse(&frame) else {
            self.parse_drops += 1;
            return;
        };
        // Learn the source.
        if !eth.src.is_multicast() {
            self.table.insert(eth.src, port);
        }
        self.forwarded += 1;
        match self.table.get(&eth.dst) {
            Some(&out) if !eth.dst.is_broadcast() => {
                if out != port {
                    self.forward(ctx, out, frame);
                }
            }
            _ => {
                // Flood to every other port.
                self.flooded += 1;
                for out in 0..self.ports {
                    if out != port {
                        self.forward(ctx, out, frame.clone());
                    }
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::link::LinkSpec;
    use crate::time::SimDuration;
    use crate::wire::EtherType;

    /// Leaf host that sends scheduled frames and records arrivals.
    struct Leaf {
        mac: MacAddr,
        plan: Vec<(SimDuration, MacAddr)>,
        inbox: Vec<Bytes>,
    }

    impl Node for Leaf {
        fn on_start(&mut self, ctx: &mut Ctx) {
            for (i, (delay, _)) in self.plan.iter().enumerate() {
                ctx.set_timer(*delay, i as u64);
            }
        }
        fn on_frame(&mut self, _ctx: &mut Ctx, _port: PortNo, frame: Bytes) {
            self.inbox.push(frame);
        }
        fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
            let (_, dst) = self.plan[token as usize];
            let f = EthernetFrame {
                dst,
                src: self.mac,
                ethertype: EtherType::Other(0x88B5),
                payload: Bytes::from_static(b"test payload"),
            };
            ctx.send_frame(0, f.emit());
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Build a star of `n` leaves around one switch. Leaf `i` has MAC
    /// `02::0(i+1)` and sits on switch port `i`.
    fn star(n: usize) -> (Engine, Vec<usize>, usize) {
        let mut e = Engine::new();
        let sw = e.add_node(Box::new(Switch::new(n)));
        let mut leaves = Vec::new();
        for i in 0..n {
            let leaf = e.add_node(Box::new(Leaf {
                mac: MacAddr::local(i as u8 + 1),
                plan: Vec::new(),
                inbox: Vec::new(),
            }));
            e.connect(leaf, 0, sw, i, LinkSpec::fast_ethernet());
            leaves.push(leaf);
        }
        (e, leaves, sw)
    }

    #[test]
    fn unknown_destination_floods() {
        let (mut e, leaves, _) = star(3);
        e.node_mut::<Leaf>(leaves[0])
            .plan
            .push((SimDuration::ZERO, MacAddr::local(9)));
        e.run();
        assert_eq!(e.node_ref::<Leaf>(leaves[1]).inbox.len(), 1);
        assert_eq!(e.node_ref::<Leaf>(leaves[2]).inbox.len(), 1);
        assert_eq!(e.node_ref::<Leaf>(leaves[0]).inbox.len(), 0);
    }

    #[test]
    fn source_macs_are_learned() {
        let (mut e, leaves, sw) = star(3);
        e.node_mut::<Leaf>(leaves[1])
            .plan
            .push((SimDuration::ZERO, MacAddr::local(9)));
        e.run();
        let sw_ref = e.node_ref::<Switch>(sw);
        assert_eq!(sw_ref.table().get(&MacAddr::local(2)), Some(&1));
        assert!(sw_ref.table().get(&MacAddr::local(1)).is_none());
    }

    #[test]
    fn learned_destination_is_unicast() {
        let (mut e, leaves, _) = star(3);
        // Phase 1 (t=0): leaf 1 broadcasts, teaching the switch its MAC.
        e.node_mut::<Leaf>(leaves[1])
            .plan
            .push((SimDuration::ZERO, MacAddr::BROADCAST));
        // Phase 2 (t=1ms): leaf 0 unicasts to leaf 1.
        e.node_mut::<Leaf>(leaves[0])
            .plan
            .push((SimDuration::from_millis(1), MacAddr::local(2)));
        e.run();
        // Leaf 2 saw only the broadcast; leaf 1 got the unicast.
        assert_eq!(e.node_ref::<Leaf>(leaves[2]).inbox.len(), 1);
        assert_eq!(e.node_ref::<Leaf>(leaves[1]).inbox.len(), 1);
        assert_eq!(e.node_ref::<Leaf>(leaves[0]).inbox.len(), 1);
    }

    #[test]
    fn broadcast_always_floods() {
        let (mut e, leaves, _) = star(4);
        e.node_mut::<Leaf>(leaves[0])
            .plan
            .push((SimDuration::ZERO, MacAddr::BROADCAST));
        e.run();
        for &l in &leaves[1..] {
            assert_eq!(e.node_ref::<Leaf>(l).inbox.len(), 1);
        }
    }

    #[test]
    fn egress_bytes_and_floods_are_accounted() {
        let (mut e, leaves, sw) = star(3);
        // Unknown destination: flood out of ports 1 and 2.
        e.node_mut::<Leaf>(leaves[0])
            .plan
            .push((SimDuration::ZERO, MacAddr::local(9)));
        e.run();
        let s = e.node_ref::<Switch>(sw);
        assert_eq!(s.flooded, 1);
        assert_eq!(s.egress_bytes(0), 0, "never back out the ingress port");
        assert!(s.egress_bytes(1) > 0);
        assert_eq!(s.egress_bytes(1), s.egress_bytes(2));
        assert_eq!(s.egress_bytes(99), 0, "out-of-range port reads zero");
    }

    #[test]
    fn garbage_frames_counted_not_forwarded() {
        struct Garbage;
        impl Node for Garbage {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.send_frame(0, Bytes::from_static(b"xx"));
            }
            fn on_frame(&mut self, _: &mut Ctx, _: PortNo, _: Bytes) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut e = Engine::new();
        let sw = e.add_node(Box::new(Switch::new(2)));
        let g = e.add_node(Box::new(Garbage));
        e.connect(g, 0, sw, 0, LinkSpec::fast_ethernet());
        e.run();
        let s = e.node_ref::<Switch>(sw);
        assert_eq!(s.parse_drops, 1);
        assert_eq!(s.forwarded, 0);
    }
}
