//! Cost of simulating one full experiment repetition per method — the
//! unit of work every figure regenerator multiplies by 50 × cells.

use criterion::{criterion_group, criterion_main, Criterion};

use bnm_browser::BrowserKind;
use bnm_core::{Executor, ExperimentCell, ExperimentRunner, RuntimeSel};
use bnm_methods::MethodId;
use bnm_stats::{BoxStats, Cdf, MeanCi};
use bnm_time::OsKind;

fn bench_single_reps(c: &mut Criterion) {
    let mut group = c.benchmark_group("rep");
    for (method, browser, os) in [
        (MethodId::XhrGet, BrowserKind::Chrome, OsKind::Ubuntu1204),
        (MethodId::Dom, BrowserKind::Chrome, OsKind::Ubuntu1204),
        (MethodId::WebSocket, BrowserKind::Chrome, OsKind::Ubuntu1204),
        (MethodId::FlashGet, BrowserKind::Opera, OsKind::Windows7),
        (MethodId::JavaTcp, BrowserKind::Firefox, OsKind::Windows7),
        (MethodId::JavaUdp, BrowserKind::Firefox, OsKind::Windows7),
    ] {
        let cell = ExperimentCell::paper(method, RuntimeSel::Browser(browser), os).with_reps(1);
        group.bench_function(format!("{}_{}", method.label(), browser.initial()), |b| {
            b.iter(|| ExperimentRunner::run_rep(&cell, 0).expect("rep succeeds"));
        });
    }
    group.finish();
}

fn bench_full_cell(c: &mut Criterion) {
    let cell = ExperimentCell::paper(
        MethodId::WebSocket,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    )
    .with_reps(50);
    c.bench_function("cell/websocket_50_reps", |b| {
        b.iter(|| ExperimentRunner::try_run(&cell).unwrap());
    });
}

/// Serial vs parallel execution of a small grid — the executor's win on
/// multi-core hosts, and its scheduling overhead on single-core ones.
fn bench_executor(c: &mut Criterion) {
    let cells: Vec<ExperimentCell> = [
        (MethodId::XhrGet, BrowserKind::Chrome, OsKind::Ubuntu1204),
        (
            MethodId::WebSocket,
            BrowserKind::Firefox,
            OsKind::Ubuntu1204,
        ),
        (MethodId::JavaTcp, BrowserKind::Firefox, OsKind::Windows7),
        (MethodId::FlashGet, BrowserKind::Opera, OsKind::Windows7),
    ]
    .into_iter()
    .map(|(m, b, os)| ExperimentCell::paper(m, RuntimeSel::Browser(b), os).with_reps(10))
    .collect();
    let mut group = c.benchmark_group("exec");
    group.bench_function("grid_serial", |b| {
        b.iter(|| Executor::serial().run(&cells));
    });
    for workers in [2usize, 4, 8] {
        group.bench_function(format!("grid_{workers}_workers"), |b| {
            b.iter(|| Executor::with_workers(workers).run(&cells));
        });
    }
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let samples: Vec<f64> = (0..50).map(|i| 4.0 + (i % 7) as f64 * 0.31).collect();
    c.bench_function("stats/boxstats_50", |b| b.iter(|| BoxStats::of(&samples)));
    c.bench_function("stats/mean_ci_50", |b| b.iter(|| MeanCi::of(&samples)));
    c.bench_function("stats/cdf_levels_50", |b| {
        b.iter(|| Cdf::of(&samples).levels(2.0))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_single_reps, bench_full_cell, bench_executor, bench_stats
}
criterion_main!(benches);
