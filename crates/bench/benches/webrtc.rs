//! WebRTC datagram-appraisal benchmark: the per-probe matching path.
//!
//! The workload is a WebRTC data-channel cell under 2% symmetric loss —
//! every rep fires a 16-probe train, parses both capture taps in batch
//! mode, and runs `match_datagram_train` to give every probe a verdict
//! (delivered / lost-by-direction / reordered / duplicated) plus
//! per-probe OWDs and RFC 3550 jitter. Two costs matter and both are
//! reported:
//!
//! * `reps_per_sec` — end-to-end throughput of the datagram cell
//!   (simulate + parse + per-probe match + fold), the number that must
//!   not regress as the matcher grows features.
//! * `probes_per_sec` — the same run normalised to appraised probes,
//!   comparable across train lengths.
//!
//! Quick mode (`BNM_BENCH_QUICK=1`, what `scripts/check.sh --bench`
//! runs) times one batch and writes `BENCH_webrtc.json` (to
//! `$BNM_BENCH_WEBRTC_OUT` or the current directory).

use criterion::{criterion_group, Criterion};

use bnm_bench::meta;
use bnm_browser::BrowserKind;
use bnm_core::{CellResult, ExperimentCell, ExperimentRunner, Impairment, RuntimeSel};
use bnm_methods::MethodId;
use bnm_time::OsKind;

/// Frame loss on the path, so the matcher exercises the lost/reordered
/// verdict arms and not just the happy path.
const LOSS: f64 = 0.02;
/// Repetitions (16-probe trains) folded in quick mode.
const REPS: u32 = 200;

fn webrtc_cell(reps: u32) -> ExperimentCell {
    ExperimentCell::builder(
        MethodId::WebRtc,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    )
    .reps(reps)
    .seed(0x5E17_BEEF)
    .impairment(Impairment::loss(LOSS))
    .build()
    .expect("webrtc cell is runnable")
}

/// Run the cell; wall seconds spent and the result.
fn timed_run(cell: &ExperimentCell) -> (f64, CellResult) {
    let start = std::time::Instant::now();
    let r = ExperimentRunner::try_run(cell).expect("webrtc cell runs");
    (start.elapsed().as_secs_f64(), r)
}

// ---------------------------------------------------------------------
// Criterion mode: smaller rep counts so the statistics pass stays
// tractable.

fn bench_webrtc(c: &mut Criterion) {
    let mut g = c.benchmark_group("webrtc");
    g.sample_size(10);
    g.bench_function("train_10_reps", |b| {
        let cell = webrtc_cell(10);
        b.iter(|| ExperimentRunner::try_run(&cell).expect("runnable"))
    });
    g.finish();
}

// ---------------------------------------------------------------------
// Quick mode: one batch with the acceptance numbers written to
// BENCH_webrtc.json.

fn quick_webrtc_report() {
    let cell = webrtc_cell(REPS);
    let (secs, result) = timed_run(&cell);
    let reps_per_sec = f64::from(REPS) / secs.max(1e-9);

    let d = result
        .sessions
        .iter()
        .find_map(|s| s.datagram.as_ref())
        .expect("webrtc cell yields datagram samples");
    assert_eq!(d.sent, u64::from(REPS) * 16, "every probe appraised");
    assert!(d.delivered > 0, "loss sweep must deliver probes");
    let probes_per_sec = d.sent as f64 / secs.max(1e-9);

    let json = format!(
        "{{\n  \"bench\": \"webrtc_datagram\",\n  \"meta\": {},\n  \"loss\": {LOSS},\n  \"reps\": {REPS},\n  \"probes_sent\": {},\n  \"probes_delivered\": {},\n  \"reps_per_sec\": {reps_per_sec:.2},\n  \"probes_per_sec\": {probes_per_sec:.1},\n  \"peak_rss_kib\": {}\n}}\n",
        meta::json_object(),
        d.sent,
        d.delivered,
        meta::peak_rss_kib()
    );
    let out = std::env::var("BNM_BENCH_WEBRTC_OUT").unwrap_or_else(|_| "BENCH_webrtc.json".into());
    std::fs::write(&out, &json).expect("write BENCH_webrtc.json");
    println!("webrtc datagram bench ({REPS} reps, {LOSS} loss)");
    println!("  run       {secs:>9.3} s  ({reps_per_sec:.1} reps/s)");
    println!(
        "  probes    {} sent, {} delivered ({probes_per_sec:.0} probes/s)",
        d.sent, d.delivered
    );
    println!("  wrote {out}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_webrtc
}

fn main() {
    if std::env::var("BNM_BENCH_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
    {
        quick_webrtc_report();
        return;
    }
    benches();
}
