//! Battery benchmark: the `bnm battery` scored suite end to end.
//!
//! The workload is one full quick-depth battery — every scenario family
//! (clean, impaired, contended, bufferbloat, its AQM variant, and the
//! time-varying schedule) crossed with the method roster, run through
//! the work-stealing executor and folded into the scored report. This
//! is the heaviest single command the CLI exposes, and the scenario
//! families deliberately stress the link-dynamics layer (CoDel
//! admission, lazy rate evaluation), so the bench doubles as a
//! regression gate on that path:
//!
//! * `seconds` — wall time of one quick battery run, report rendering
//!   included.
//! * `entries_per_sec` — scored (scenario × method) entries produced
//!   per second.
//! * `peak_rss_kib` — the process high-water mark, which must reflect
//!   the bounded per-cell retention, not the battery's total sample
//!   volume.
//!
//! Quick mode (`BNM_BENCH_QUICK=1`, what `scripts/check.sh --bench`
//! runs) times one battery and writes `BENCH_battery.json` (to
//! `$BNM_BENCH_BATTERY_OUT` or the current directory).

use criterion::{criterion_group, Criterion};

use bnm_bench::meta;
use bnm_core::exec::Executor;
use bnm_core::{run_battery, BatteryConfig, BatteryReport, Render};

/// Repetitions per cell in the timed battery (the CLI's `--quick`
/// depth).
const REPS: u32 = 5;
/// Seed for the timed battery, distinct from the CLI default so a
/// committed `results/battery.json` and the bench never share RNG
/// streams.
const SEED: u64 = 0xB32B_BE2C;

fn timed_battery() -> (BatteryReport, f64) {
    let cfg = BatteryConfig {
        reps: REPS,
        seed: SEED,
    };
    let exec = Executor::new();
    let start = std::time::Instant::now();
    let report = run_battery(&cfg, &exec).expect("battery run");
    let _rendered = report.to_json();
    (report, start.elapsed().as_secs_f64())
}

// ---------------------------------------------------------------------
// Criterion mode: the statistics pass over whole-battery runs.

fn bench_battery(c: &mut Criterion) {
    let mut g = c.benchmark_group("battery");
    g.sample_size(10);
    g.bench_function("quick_suite", |b| b.iter(timed_battery));
    g.finish();
}

// ---------------------------------------------------------------------
// Quick mode: one battery with the acceptance numbers written to
// BENCH_battery.json.

fn quick_battery_report() {
    let (report, seconds) = timed_battery();
    let entries: usize = report.scenarios.iter().map(|s| s.entries.len()).sum();
    assert!(entries > 0, "battery produced no scored entries");
    let entries_per_sec = entries as f64 / seconds.max(1e-9);
    let rss = meta::peak_rss_kib();

    let json = format!(
        "{{\n  \"bench\": \"battery\",\n  \"meta\": {},\n  \"reps\": {REPS},\n  \"scenarios\": {},\n  \"entries\": {entries},\n  \"seconds\": {seconds:.3},\n  \"entries_per_sec\": {entries_per_sec:.2},\n  \"peak_rss_kib\": {rss}\n}}\n",
        meta::json_object(),
        report.scenarios.len(),
    );
    let out =
        std::env::var("BNM_BENCH_BATTERY_OUT").unwrap_or_else(|_| "BENCH_battery.json".into());
    std::fs::write(&out, &json).expect("write BENCH_battery.json");
    println!(
        "battery bench ({} scenarios x roster, {REPS} reps)",
        report.scenarios.len()
    );
    println!("  suite     {seconds:>9.3} s  ({entries_per_sec:.1} entries/s, {entries} entries)");
    println!("  peak RSS  {rss:>9} KiB");
    println!("  wrote {out}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_battery
}

fn main() {
    if std::env::var("BNM_BENCH_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
    {
        quick_battery_report();
        return;
    }
    benches();
}
