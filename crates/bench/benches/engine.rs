//! Microbenchmarks of the simulation substrate: event loop throughput,
//! wire-format codec, switch forwarding.

use std::any::Any;

use bytes::Bytes;
use criterion::{criterion_group, BatchSize, Criterion};

use bnm_sim::engine::{Ctx, Engine, Node, PortNo};
use bnm_sim::link::LinkSpec;
use bnm_sim::switch::Switch;
use bnm_sim::time::SimDuration;
use bnm_sim::wire::{
    EtherType, EthernetFrame, IpProtocol, Ipv4Packet, MacAddr, ParsedPacket, TcpFlags, TcpSegment,
};

struct Echo;
impl Node for Echo {
    fn on_frame(&mut self, ctx: &mut Ctx, port: PortNo, frame: Bytes) {
        ctx.send_frame(port, frame);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Burst {
    count: usize,
    received: usize,
}
impl Node for Burst {
    fn on_start(&mut self, ctx: &mut Ctx) {
        for i in 0..self.count {
            ctx.send_frame(0, Bytes::from(vec![i as u8; 64]));
        }
    }
    fn on_frame(&mut self, _ctx: &mut Ctx, _port: PortNo, _frame: Bytes) {
        self.received += 1;
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn bench_engine_pingpong(c: &mut Criterion) {
    // Both variants run the *instrumented* engine; the first with the
    // default disabled trace handle (every record call is one inlined
    // branch — the tier-1 budget holds this within 2% of pre-obs wall
    // time), the second with a live buffer for the enabled-path cost.
    for (name, traced) in [
        ("engine/1000_frame_roundtrips", false),
        ("engine/1000_frame_roundtrips_traced", true),
    ] {
        c.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut e = Engine::new();
                    let p = e.add_node(Box::new(Burst {
                        count: 1000,
                        received: 0,
                    }));
                    let s = e.add_node(Box::new(Echo));
                    e.connect(p, 0, s, 0, LinkSpec::fast_ethernet());
                    if traced {
                        e.set_trace(bnm_obs::Trace::enabled());
                    }
                    e
                },
                |mut e| {
                    e.run();
                    e.events_processed()
                },
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_switch_forwarding(c: &mut Criterion) {
    c.bench_function("engine/switched_500_roundtrips", |b| {
        b.iter_batched(
            || {
                let mut e = Engine::new();
                let p = e.add_node(Box::new(Burst {
                    count: 500,
                    received: 0,
                }));
                let s = e.add_node(Box::new(Echo));
                let sw = e.add_node(Box::new(Switch::new(2)));
                e.connect(p, 0, sw, 0, LinkSpec::fast_ethernet());
                e.connect(s, 0, sw, 1, LinkSpec::fast_ethernet());
                e
            },
            |mut e| {
                e.run();
                e.events_processed()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_wire_codec(c: &mut Criterion) {
    let src = std::net::Ipv4Addr::new(192, 168, 1, 2);
    let dst = std::net::Ipv4Addr::new(192, 168, 1, 10);
    let seg = TcpSegment {
        src_port: 49152,
        dst_port: 80,
        seq: 1000,
        ack: 2000,
        flags: TcpFlags::ACK | TcpFlags::PSH,
        window: 65535,
        mss: None,
        payload: Bytes::from(vec![0x42u8; 512]),
    };
    let frame = EthernetFrame {
        dst: MacAddr::local(1),
        src: MacAddr::local(2),
        ethertype: EtherType::Ipv4,
        payload: Ipv4Packet {
            src,
            dst,
            protocol: IpProtocol::Tcp,
            ttl: 64,
            ident: 7,
            payload: seg.emit(src, dst),
        }
        .emit(),
    }
    .emit();
    c.bench_function("wire/emit_tcp_frame_512B", |b| {
        b.iter(|| {
            let p = Ipv4Packet {
                src,
                dst,
                protocol: IpProtocol::Tcp,
                ttl: 64,
                ident: 7,
                payload: seg.emit(src, dst),
            };
            EthernetFrame {
                dst: MacAddr::local(1),
                src: MacAddr::local(2),
                ethertype: EtherType::Ipv4,
                payload: p.emit(),
            }
            .emit()
        })
    });
    c.bench_function("wire/parse_tcp_frame_512B", |b| {
        b.iter(|| ParsedPacket::parse(&frame).unwrap())
    });
}

// ---------------------------------------------------------------------
// Crowd workload: the scheduler-bound regime.
//
// N clients each arm T timers at pseudorandom instants inside a one-
// second horizon, and every firing timer pushes a 200-byte frame down a
// dedicated link to a shared sink. The standing event population is
// N * T at boot (64,000 for the default 1000 x 64), which is exactly
// where the original `BinaryHeap` scheduler paid O(log n) with cache
// misses per operation and the hierarchical timer wheel pays O(1).
// Run once with the production configuration (wheel + frame pool) and
// once with the seed baseline (`use_reference_scheduler` + pool off)
// to measure the gap in events/sec.

const CROWD_CLIENTS: usize = 1000;
const CROWD_TIMERS: usize = 4096;

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

struct CrowdClient {
    seed: u64,
    timers: usize,
}
impl Node for CrowdClient {
    fn on_start(&mut self, ctx: &mut Ctx) {
        for k in 0..self.timers {
            self.seed = xorshift(self.seed);
            let delay = self.seed % 16_000_000; // inside a 16 ms horizon
            ctx.set_timer(SimDuration::from_nanos(delay), k as u64);
        }
    }
    fn on_frame(&mut self, _ctx: &mut Ctx, _port: PortNo, _frame: Bytes) {}
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        // Every 32nd firing pushes a frame so the pool stays exercised
        // without the transmit path drowning out the scheduler.
        if token.is_multiple_of(32) {
            ctx.send_frame(0, Bytes::from(vec![token as u8; 200]));
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Sink {
    received: u64,
}
impl Node for Sink {
    fn on_frame(&mut self, _ctx: &mut Ctx, _port: PortNo, _frame: Bytes) {
        self.received += 1;
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn crowd_engine(clients: usize, timers: usize, reference: bool) -> Engine {
    let mut e = Engine::new();
    if reference {
        e.use_reference_scheduler();
    }
    let sink = e.add_node(Box::new(Sink { received: 0 }));
    for i in 0..clients {
        let c = e.add_node(Box::new(CrowdClient {
            seed: 0x9E37_79B9_7F4A_7C15 ^ (i as u64 + 1),
            timers,
        }));
        e.connect(c, 0, sink, i, LinkSpec::fast_ethernet());
    }
    e
}

/// One full crowd run; returns (events processed, frames delivered).
fn run_crowd(clients: usize, timers: usize, reference: bool, pooled: bool) -> (u64, u64) {
    bytes::pool::set_enabled(pooled);
    let mut e = crowd_engine(clients, timers, reference);
    e.run();
    bytes::pool::set_enabled(true);
    let sink: &Sink = e.node_ref(0);
    (e.events_processed(), sink.received)
}

fn bench_crowd_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("crowd_1000x4096_wheel_pooled", |b| {
        b.iter(|| run_crowd(CROWD_CLIENTS, CROWD_TIMERS, false, true))
    });
    g.bench_function("crowd_1000x4096_reference_heap", |b| {
        b.iter(|| run_crowd(CROWD_CLIENTS, CROWD_TIMERS, true, false))
    });
    g.finish();
}

// ---------------------------------------------------------------------
// Quick mode: `BNM_BENCH_QUICK=1 cargo bench -p bnm-bench --bench engine`
// (what `scripts/check.sh --bench` runs) skips the statistics pass,
// times the crowd workload directly — best of three for each scheduler —
// and writes machine-readable `BENCH_engine.json` (events/sec for both
// configurations, the speedup, peak RSS) to `$BNM_BENCH_OUT` or the
// current directory.

use bnm_bench::meta::peak_rss_kib;

fn time_crowd(reference: bool, pooled: bool) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..3 {
        let start = std::time::Instant::now();
        let (ev, _) = run_crowd(CROWD_CLIENTS, CROWD_TIMERS, reference, pooled);
        let dt = start.elapsed().as_secs_f64();
        events = ev;
        if dt < best {
            best = dt;
        }
    }
    (events, best)
}

fn quick_crowd_report() {
    let (ev_wheel, s_wheel) = time_crowd(false, true);
    let (ev_heap, s_heap) = time_crowd(true, false);
    assert_eq!(
        ev_wheel, ev_heap,
        "schedulers must process identical event streams"
    );
    let eps_wheel = ev_wheel as f64 / s_wheel;
    let eps_heap = ev_heap as f64 / s_heap;
    let speedup = eps_wheel / eps_heap;
    let rss = peak_rss_kib();
    let json = format!(
        "{{\n  \"bench\": \"engine_crowd\",\n  \"meta\": {},\n  \"clients\": {CROWD_CLIENTS},\n  \"timers_per_client\": {CROWD_TIMERS},\n  \"events\": {ev_wheel},\n  \"wheel_pooled\": {{ \"seconds\": {s_wheel:.6}, \"events_per_sec\": {eps_wheel:.0} }},\n  \"reference_heap\": {{ \"seconds\": {s_heap:.6}, \"events_per_sec\": {eps_heap:.0} }},\n  \"speedup\": {speedup:.2},\n  \"peak_rss_kib\": {rss}\n}}\n",
        bnm_bench::meta::json_object()
    );
    let out = std::env::var("BNM_BENCH_OUT").unwrap_or_else(|_| "BENCH_engine.json".into());
    std::fs::write(&out, &json).expect("write BENCH_engine.json");
    println!(
        "engine crowd bench ({CROWD_CLIENTS} clients x {CROWD_TIMERS} timers, {ev_wheel} events)"
    );
    println!("  wheel+pool      {eps_wheel:>12.0} events/sec  ({s_wheel:.3} s)");
    println!("  reference heap  {eps_heap:>12.0} events/sec  ({s_heap:.3} s)");
    println!("  speedup         {speedup:>12.2}x");
    println!("  peak RSS        {rss:>12} KiB");
    println!("  wrote {out}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engine_pingpong, bench_switch_forwarding, bench_wire_codec, bench_crowd_scheduler
}

fn main() {
    if std::env::var("BNM_BENCH_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
    {
        quick_crowd_report();
        return;
    }
    benches();
}
