//! Microbenchmarks of the simulation substrate: event loop throughput,
//! wire-format codec, switch forwarding.

use std::any::Any;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use bnm_sim::engine::{Ctx, Engine, Node, PortNo};
use bnm_sim::link::LinkSpec;
use bnm_sim::switch::Switch;
use bnm_sim::wire::{
    EtherType, EthernetFrame, IpProtocol, Ipv4Packet, MacAddr, ParsedPacket, TcpFlags, TcpSegment,
};

struct Echo;
impl Node for Echo {
    fn on_frame(&mut self, ctx: &mut Ctx, port: PortNo, frame: Bytes) {
        ctx.send_frame(port, frame);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Burst {
    count: usize,
    received: usize,
}
impl Node for Burst {
    fn on_start(&mut self, ctx: &mut Ctx) {
        for i in 0..self.count {
            ctx.send_frame(0, Bytes::from(vec![i as u8; 64]));
        }
    }
    fn on_frame(&mut self, _ctx: &mut Ctx, _port: PortNo, _frame: Bytes) {
        self.received += 1;
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn bench_engine_pingpong(c: &mut Criterion) {
    // Both variants run the *instrumented* engine; the first with the
    // default disabled trace handle (every record call is one inlined
    // branch — the tier-1 budget holds this within 2% of pre-obs wall
    // time), the second with a live buffer for the enabled-path cost.
    for (name, traced) in [
        ("engine/1000_frame_roundtrips", false),
        ("engine/1000_frame_roundtrips_traced", true),
    ] {
        c.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut e = Engine::new();
                    let p = e.add_node(Box::new(Burst {
                        count: 1000,
                        received: 0,
                    }));
                    let s = e.add_node(Box::new(Echo));
                    e.connect(p, 0, s, 0, LinkSpec::fast_ethernet());
                    if traced {
                        e.set_trace(bnm_obs::Trace::enabled());
                    }
                    e
                },
                |mut e| {
                    e.run();
                    e.events_processed()
                },
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_switch_forwarding(c: &mut Criterion) {
    c.bench_function("engine/switched_500_roundtrips", |b| {
        b.iter_batched(
            || {
                let mut e = Engine::new();
                let p = e.add_node(Box::new(Burst {
                    count: 500,
                    received: 0,
                }));
                let s = e.add_node(Box::new(Echo));
                let sw = e.add_node(Box::new(Switch::new(2)));
                e.connect(p, 0, sw, 0, LinkSpec::fast_ethernet());
                e.connect(s, 0, sw, 1, LinkSpec::fast_ethernet());
                e
            },
            |mut e| {
                e.run();
                e.events_processed()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_wire_codec(c: &mut Criterion) {
    let src = std::net::Ipv4Addr::new(192, 168, 1, 2);
    let dst = std::net::Ipv4Addr::new(192, 168, 1, 10);
    let seg = TcpSegment {
        src_port: 49152,
        dst_port: 80,
        seq: 1000,
        ack: 2000,
        flags: TcpFlags::ACK | TcpFlags::PSH,
        window: 65535,
        mss: None,
        payload: Bytes::from(vec![0x42u8; 512]),
    };
    let frame = EthernetFrame {
        dst: MacAddr::local(1),
        src: MacAddr::local(2),
        ethertype: EtherType::Ipv4,
        payload: Ipv4Packet {
            src,
            dst,
            protocol: IpProtocol::Tcp,
            ttl: 64,
            ident: 7,
            payload: seg.emit(src, dst),
        }
        .emit(),
    }
    .emit();
    c.bench_function("wire/emit_tcp_frame_512B", |b| {
        b.iter(|| {
            let p = Ipv4Packet {
                src,
                dst,
                protocol: IpProtocol::Tcp,
                ttl: 64,
                ident: 7,
                payload: seg.emit(src, dst),
            };
            EthernetFrame {
                dst: MacAddr::local(1),
                src: MacAddr::local(2),
                ethertype: EtherType::Ipv4,
                payload: p.emit(),
            }
            .emit()
        })
    });
    c.bench_function("wire/parse_tcp_frame_512B", |b| {
        b.iter(|| ParsedPacket::parse(&frame).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engine_pingpong, bench_switch_forwarding, bench_wire_codec
}
criterion_main!(benches);
