//! Ablation benches for the design choices DESIGN.md calls out: what do
//! the fidelity features (capture-noise modelling, the Windows
//! granularity-regime process, fault injection, the full wire-format
//! parse in capture matching) cost per repetition?

use criterion::{criterion_group, criterion_main, Criterion};

use bnm_browser::BrowserKind;
use bnm_core::{ExperimentCell, ExperimentRunner, RuntimeSel};
use bnm_methods::MethodId;
use bnm_time::{OsKind, TimingApiKind};

fn cell(os: OsKind) -> ExperimentCell {
    ExperimentCell::paper(
        MethodId::JavaTcp,
        RuntimeSel::Browser(BrowserKind::Firefox),
        os,
    )
    .with_reps(1)
}

fn bench_granularity_regimes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/granularity");
    // Windows carries the lazily-extended regime process; Ubuntu is a
    // constant — the delta is the cost of the regime machinery.
    g.bench_function("windows_regimes", |b| {
        let cl = cell(OsKind::Windows7);
        b.iter(|| ExperimentRunner::run_rep(&cl, 0).unwrap());
    });
    g.bench_function("ubuntu_constant", |b| {
        let cl = cell(OsKind::Ubuntu1204);
        b.iter(|| ExperimentRunner::run_rep(&cl, 0).unwrap());
    });
    g.finish();
}

fn bench_capture_noise(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/capture_noise");
    g.bench_function("exact_stamps", |b| {
        let cl = cell(OsKind::Ubuntu1204);
        b.iter(|| ExperimentRunner::run_rep(&cl, 0).unwrap());
    });
    g.bench_function("noisy_stamps_0.3ms", |b| {
        let mut cl = cell(OsKind::Ubuntu1204);
        cl.capture_noise_ns = 300_000;
        b.iter(|| ExperimentRunner::run_rep(&cl, 0).unwrap());
    });
    g.finish();
}

fn bench_timing_api(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/timing_api");
    g.bench_function("date_gettime", |b| {
        let cl = cell(OsKind::Windows7);
        b.iter(|| ExperimentRunner::run_rep(&cl, 0).unwrap());
    });
    g.bench_function("nanotime", |b| {
        let cl = cell(OsKind::Windows7).with_timing(TimingApiKind::JavaNanoTime);
        b.iter(|| ExperimentRunner::run_rep(&cl, 0).unwrap());
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_granularity_regimes, bench_capture_noise, bench_timing_api
}
criterion_main!(benches);
