//! Continuous-monitoring benchmark: the `bnm serve` replay loop.
//!
//! The workload is a monitored contention cell — 8 XHR clients sharing
//! a server link at the contention sweep's per-client rate, with 2%
//! frame loss and the serve streaming spec (streaming capture, bounded
//! per-session retention) — driven round by round through
//! `Monitor::step` exactly as `bnm serve` drives it. Two costs matter
//! for a long-running monitor and both are reported:
//!
//! * `rounds_per_sec` — how fast the monitor folds simulated rounds
//!   into its windowed sketches (the steady-state throughput of the
//!   serve loop).
//! * `snapshot_ms` — the cost of one mid-run `ReportSnapshot` poll,
//!   averaged over many polls. Polling must stay cheap enough to call
//!   every few (virtual) seconds without perturbing the loop.
//!
//! The footprint gauges (`live_pans`, `sketch_buckets`) are recorded so
//! the regression gate can also catch an unbounded-memory regression:
//! they must reflect the window spans, not the round count.
//!
//! Quick mode (`BNM_BENCH_QUICK=1`, what `scripts/check.sh --bench`
//! runs) times one monitored run and writes `BENCH_serve.json` (to
//! `$BNM_BENCH_SERVE_OUT` or the current directory).

use criterion::{criterion_group, Criterion};

use bnm_bench::meta;
use bnm_browser::BrowserKind;
use bnm_core::config::{ContentionSpec, StreamingSpec};
use bnm_core::{ExperimentCell, Impairment, Monitor, RuntimeSel};
use bnm_methods::MethodId;
use bnm_time::OsKind;

/// Monitored clients: enough contention for the shared link to queue.
const CLIENTS: u32 = 8;
/// Per-client share of the server link (the sweep's crowd constant).
const PER_CLIENT_BPS: u64 = 6_250;
/// Frame loss on the shared link, so rounds exercise the exclusion
/// path the monitor folds into its windowed counters.
const LOSS: f64 = 0.02;
/// Virtual-time rounds folded in quick mode.
const ROUNDS: u32 = 120;
/// Snapshot polls timed in quick mode.
const POLLS: u32 = 200;

fn monitored_cell() -> ExperimentCell {
    ExperimentCell::builder(
        MethodId::XhrGet,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    )
    .reps(1)
    .seed(0x5E17_BEEF)
    .contention(
        ContentionSpec::clients(CLIENTS).with_server_link_rate(PER_CLIENT_BPS * u64::from(CLIENTS)),
    )
    .impairment(Impairment::loss(LOSS))
    .streaming(StreamingSpec::serve())
    .build()
    .expect("monitored cell is runnable")
}

/// Fold `rounds` rounds into a fresh monitor; wall seconds spent.
fn timed_rounds(monitor: &mut Monitor, rounds: u32) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..rounds {
        monitor.step();
    }
    start.elapsed().as_secs_f64()
}

// ---------------------------------------------------------------------
// Criterion mode: smaller round counts so the statistics pass stays
// tractable.

fn bench_serve(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve");
    g.sample_size(10);
    g.bench_function("monitor_10_rounds", |b| {
        b.iter(|| {
            let mut m = Monitor::new(monitored_cell()).expect("runnable");
            timed_rounds(&mut m, 10)
        })
    });
    g.bench_function("snapshot", |b| {
        let mut m = Monitor::new(monitored_cell()).expect("runnable");
        timed_rounds(&mut m, 10);
        b.iter(|| m.snapshot())
    });
    g.finish();
}

// ---------------------------------------------------------------------
// Quick mode: one monitored run with the acceptance numbers written to
// BENCH_serve.json.

fn quick_serve_report() {
    let mut monitor = Monitor::new(monitored_cell()).expect("monitored cell is runnable");
    let fold_secs = timed_rounds(&mut monitor, ROUNDS);
    let rounds_per_sec = f64::from(ROUNDS) / fold_secs.max(1e-9);

    let start = std::time::Instant::now();
    let mut last_samples = 0;
    for _ in 0..POLLS {
        last_samples = monitor.snapshot().samples;
    }
    let snapshot_ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(POLLS);
    assert!(last_samples > 0, "monitored run produced no samples");

    let fp = monitor.footprint();
    let live_pans = fp.sketch_pans + fp.counter_pans;
    let json = format!(
        "{{\n  \"bench\": \"serve_monitor\",\n  \"meta\": {},\n  \"clients\": {CLIENTS},\n  \"loss\": {LOSS},\n  \"rounds\": {ROUNDS},\n  \"rounds_per_sec\": {rounds_per_sec:.2},\n  \"snapshot_ms\": {snapshot_ms:.4},\n  \"live_pans\": {live_pans},\n  \"sketch_buckets\": {}\n}}\n",
        meta::json_object(),
        fp.sketch_buckets
    );
    let out = std::env::var("BNM_BENCH_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    std::fs::write(&out, &json).expect("write BENCH_serve.json");
    println!("serve monitor bench ({CLIENTS} clients, {LOSS} loss, {ROUNDS} rounds)");
    println!("  fold      {fold_secs:>9.3} s  ({rounds_per_sec:.1} rounds/s)");
    println!("  snapshot  {snapshot_ms:>9.4} ms/poll over {POLLS} polls");
    println!(
        "  footprint {live_pans} live pans, {} sketch buckets",
        fp.sketch_buckets
    );
    println!("  wrote {out}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve
}

fn main() {
    if std::env::var("BNM_BENCH_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
    {
        quick_serve_report();
        return;
    }
    benches();
}
