//! Post-processing pipeline benchmark: batch retention + full-capture
//! re-parsing (the PR 6 baseline behaviour) against the streaming
//! pipeline (incremental tap draining, per-direction server marker
//! index, sketch-backed bounded retention).
//!
//! The headline workload is the crowd tier of the contention sweep —
//! 1,000 XHR clients sharing a server link at the sweep's constant
//! per-client rate — with 2% frame loss, run end to end through
//! `ExperimentRunner`. Loss is where the two pipelines diverge hardest:
//! the batch path answers "was this round retransmitted?" by scanning
//! the *entire* retained server capture once per (session, round),
//! which is quadratic in the crowd size, while the streaming
//! `ServerMarkerIndex` folds every marker occurrence into per-round
//! counters in a single pass at capture time.
//!
//! Two memory figures are reported, deliberately:
//!
//! * `peak_rss_kib` — whole-process `VmHWM`. At 1,000 clients this is
//!   dominated by live simulation state (TCP send/retransmission
//!   buffers, queued frames), which no post-processing change can
//!   touch, so the ratio understates the pipeline's effect.
//! * `capture_live_peak_frames` — the frame pool's live-buffer
//!   high-water mark, i.e. the retention footprint the pipeline
//!   actually controls. This is the basis of the headline `rss_ratio`.
//!
//! Quick mode (`BNM_BENCH_QUICK=1`, what `scripts/check.sh --bench`
//! runs) times both configurations once each and writes
//! `BENCH_pipeline.json` (to `$BNM_BENCH_PIPELINE_OUT` or the current
//! directory). `VmHWM` is monotone over a process lifetime, so the
//! low-memory streaming configuration MUST run first; the batch peak
//! read afterwards is still the true batch peak because it dominates.

use criterion::{criterion_group, Criterion};

use bnm_bench::meta;
use bnm_browser::BrowserKind;
use bnm_core::config::{ContentionSpec, StreamingSpec};
use bnm_core::{CellResult, Executor, ExperimentCell, Impairment, RuntimeSel};
use bnm_methods::MethodId;
use bnm_time::OsKind;

/// Crowd tier size: the contention sweep's largest tier.
const CROWD_CLIENTS: u32 = 1000;
/// Per-client share of the server link, matching the sweep's crowd
/// regime (0.4 Mbps legacy link split 64 ways).
const PER_CLIENT_BPS: u64 = 6_250;
const CROWD_REPS: u32 = 2;
/// Frame loss on the shared link: retransmissions force the exclusion
/// check, the regime the marker index exists for.
const LOSS: f64 = 0.02;
/// Raw samples kept per session before spilling to sketches.
const RETENTION: u32 = 64;

fn crowd_cell(clients: u32, streaming: StreamingSpec) -> ExperimentCell {
    ExperimentCell::builder(
        MethodId::XhrGet,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    )
    .reps(CROWD_REPS)
    .seed(0xC0FF_EE01)
    .contention(
        ContentionSpec::clients(clients).with_server_link_rate(PER_CLIENT_BPS * u64::from(clients)),
    )
    .impairment(Impairment::loss(LOSS))
    .streaming(streaming)
    .build()
    .expect("crowd cell is runnable")
}

/// The streaming configuration under test: incremental draining,
/// bounded retention, marker-index exclusion checks.
fn streaming_spec() -> StreamingSpec {
    StreamingSpec::bounded(RETENTION)
}

/// One timed end-to-end run; returns the result, the wall seconds and
/// the pool's live-frame high-water mark.
fn timed(cell: &ExperimentCell) -> (CellResult, f64, i64) {
    let start = std::time::Instant::now();
    let (mut results, stats) = Executor::new().run_with_stats(std::slice::from_ref(cell), |_| {});
    let dt = start.elapsed().as_secs_f64();
    let r = results
        .pop()
        .expect("one result per cell")
        .expect("crowd run succeeds");
    (r, dt, stats.pool.live_peak)
}

// ---------------------------------------------------------------------
// Criterion mode: a smaller tier so the statistics pass stays tractable.

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("crowd_128_batch", |b| {
        let cell = crowd_cell(128, StreamingSpec::batch());
        b.iter(|| timed(&cell))
    });
    g.bench_function("crowd_128_streaming", |b| {
        let cell = crowd_cell(128, streaming_spec());
        b.iter(|| timed(&cell))
    });
    g.finish();
}

// ---------------------------------------------------------------------
// Quick mode: the full 1,000-client tier, once per configuration, with
// the acceptance numbers written to BENCH_pipeline.json.

fn quick_pipeline_report() {
    // Streaming first: VmHWM is monotone, and this is the low-water
    // configuration.
    let (stream_res, s_stream, frames_stream) = timed(&crowd_cell(CROWD_CLIENTS, streaming_spec()));
    let rss_stream = meta::peak_rss_kib();
    let (batch_res, s_batch, frames_batch) =
        timed(&crowd_cell(CROWD_CLIENTS, StreamingSpec::batch()));
    let rss_batch = meta::peak_rss_kib();

    // The pipelines must agree on what they measured: same exclusions,
    // same per-session samples (retention of 64 keeps all raw samples
    // at 2 reps, so the comparison is exact).
    assert_eq!(
        stream_res.excluded_rounds, batch_res.excluded_rounds,
        "streaming and batch disagree on exclusions"
    );
    assert_eq!(
        stream_res.failures, batch_res.failures,
        "streaming and batch disagree on failures"
    );
    for (a, b) in stream_res.sessions.iter().zip(&batch_res.sessions) {
        assert_eq!(a.d1, b.d1, "session {} d1 diverged", a.session);
        assert_eq!(a.d2, b.d2, "session {} d2 diverged", a.session);
    }

    let speedup = s_batch / s_stream;
    let process_ratio = rss_batch as f64 / rss_stream.max(1) as f64;
    let capture_ratio = frames_batch as f64 / frames_stream.max(1) as f64;
    let json = format!(
        "{{\n  \"bench\": \"pipeline_crowd\",\n  \"meta\": {},\n  \"clients\": {CROWD_CLIENTS},\n  \"reps\": {CROWD_REPS},\n  \"loss\": {LOSS},\n  \"retention\": {RETENTION},\n  \"streaming\": {{ \"seconds\": {s_stream:.6}, \"peak_rss_kib\": {rss_stream}, \"capture_live_peak_frames\": {frames_stream} }},\n  \"batch\": {{ \"seconds\": {s_batch:.6}, \"peak_rss_kib\": {rss_batch}, \"capture_live_peak_frames\": {frames_batch} }},\n  \"speedup\": {speedup:.2},\n  \"rss_ratio\": {capture_ratio:.2},\n  \"rss_ratio_basis\": \"capture_live_peak_frames\",\n  \"process_rss_ratio\": {process_ratio:.2}\n}}\n",
        meta::json_object()
    );
    let out =
        std::env::var("BNM_BENCH_PIPELINE_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".into());
    std::fs::write(&out, &json).expect("write BENCH_pipeline.json");
    println!("pipeline crowd bench ({CROWD_CLIENTS} clients x {CROWD_REPS} reps, {LOSS} loss)");
    println!(
        "  streaming  {s_stream:>9.3} s   peak RSS {rss_stream:>9} KiB   live frames {frames_stream:>8}"
    );
    println!(
        "  batch      {s_batch:>9.3} s   peak RSS {rss_batch:>9} KiB   live frames {frames_batch:>8}"
    );
    println!("  speedup             {speedup:>8.2}x");
    println!("  capture footprint   {capture_ratio:>8.2}x lower (process RSS {process_ratio:.2}x)");
    println!("  wrote {out}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}

fn main() {
    if std::env::var("BNM_BENCH_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
    {
        quick_pipeline_report();
        return;
    }
    benches();
}
